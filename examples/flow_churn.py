#!/usr/bin/env python3
"""Thousand-flow churn: CEIO's active-flow strategy under QP churn.

RDMA UD mode, 512 B echo: 16 queue pairs are active at any instant out of
a much larger registered set, and the active set is reshuffled every time
slot (the Figure 12 methodology). Shows how the fast-path share collapses
once the steering-table scan can no longer keep up with the churn.

Run:  python examples/flow_churn.py
"""

from repro.experiments.report import render_table
from repro.sim.units import US
from repro.workloads import ChurnConfig, UdChurnScenario


def main() -> None:
    rows = []
    for total in (32, 512, 1024):
        for slot in (100 * US, 1000 * US):
            result = (UdChurnScenario(ChurnConfig(total_flows=total,
                                                  time_slot=slot, seed=3))
                      .build().run())
            rows.append([total, slot / US, result.aggregate_mpps,
                         f"{result.fast_fraction * 100:.0f}%"])
            print(f"  ... {total} flows @ {slot / US:.0f}us slots: "
                  f"{result.aggregate_mpps:.1f} Mpps, "
                  f"{result.fast_fraction * 100:.0f}% fast path")
    print()
    print(render_table(["registered flows", "slot us", "Mpps",
                        "fast-path share"], rows))
    print()
    print("With slow churn every active flow regains its credits in time;")
    print("fast churn over ~1K flows outruns the bounded-rate ARM scan and")
    print("traffic shifts to the (elastically buffered) slow path.")


if __name__ == "__main__":
    main()
