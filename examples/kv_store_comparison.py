#!/usr/bin/env python3
"""Compare all four I/O architectures on the paper's KV-store workload.

Eight eRPC key-value flows (144 B requests, 1:1 get/put) saturate the
receiver — the Figure 9 setup at one packet size. Prints a side-by-side
table of throughput, LLC miss rate, and tail latency.

Run:  python examples/kv_store_comparison.py
"""

from repro.experiments.report import render_table
from repro.workloads import Scenario, ScenarioConfig


def main() -> None:
    rows = []
    for arch in ("baseline", "hostcc", "shring", "ceio"):
        scenario = Scenario(ScenarioConfig(arch=arch, n_involved=8,
                                           payload=144, seed=1)).build()
        m = scenario.run_measure()
        rows.append([arch, m.involved_mpps, m.llc_miss_rate * 100,
                     m.p99_us, m.p999_us, m.dropped])
        print(f"  ... {arch} done "
              f"({m.involved_mpps:.1f} Mpps, "
              f"{m.llc_miss_rate * 100:.0f}% miss)")
    print()
    print(render_table(
        ["arch", "Mpps", "LLC miss %", "P99 us", "P99.9 us", "drops"],
        rows))
    print()
    base = rows[0][1]
    best = max(rows, key=lambda r: r[1])
    print(f"{best[0]} delivers {best[1] / base:.2f}x the baseline's "
          f"throughput (paper: 1.3-2.1x statically).")


if __name__ == "__main__":
    main()
