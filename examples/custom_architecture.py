#!/usr/bin/env python3
"""Extending the library: plug in your own receive-side I/O architecture.

Implements a toy "static partition" architecture — every flow gets a fixed
1/n slice of the DDIO buffer budget, enforced by dropping — and runs it
against CEIO on the KV workload. The point is the API surface: subclass
:class:`repro.io_arch.IOArchitecture`, override ``on_packet`` (NIC
firmware context) and ``release`` (host buffer recycling), register it,
and every app, workload, and experiment in the library can use it.

Run:  python examples/custom_architecture.py
"""

from repro.experiments.report import render_table
from repro.io_arch import ARCHITECTURES, IOArchitecture
from repro.workloads import Scenario, ScenarioConfig


class StaticPartitionArch(IOArchitecture):
    """Each flow may keep at most ``C_total / n_flows`` buffers in flight;
    excess packets are dropped (the network CCA slows the sender)."""

    name = "static-partition"

    def quota(self) -> int:
        return max(1, self.host.total_credits // max(1, len(self.flows)))

    def on_packet(self, packet):
        rx = self.flows.get(packet.flow.flow_id)
        if rx is None or rx.in_use >= self.quota():
            self._drop(packet, rx)
            return
        yield from self._dma_to_host(packet, rx, ddio=True)


def main() -> None:
    ARCHITECTURES["static-partition"] = StaticPartitionArch
    rows = []
    for arch in ("static-partition", "ceio"):
        scenario = Scenario(ScenarioConfig(arch=arch, n_involved=8,
                                           payload=144, seed=4)).build()
        m = scenario.run_measure()
        rows.append([arch, m.involved_mpps, m.llc_miss_rate * 100,
                     m.p999_us, m.dropped])
        print(f"  ... {arch}: {m.involved_mpps:.1f} Mpps")
    print()
    print(render_table(["arch", "Mpps", "LLC miss %", "P99.9 us", "drops"],
                       rows))
    print()
    print("The static partition avoids misses too, but pays in drops and")
    print("CCA back-off wherever a flow's instantaneous demand exceeds its")
    print("slice — the rigidity CEIO's credit reallocation removes.")


if __name__ == "__main__":
    main()
