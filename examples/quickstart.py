#!/usr/bin/env python3
"""Quickstart: one CEIO receiver, one saturating echo client.

Builds the two-server testbed, installs the CEIO I/O architecture on the
receiver, attaches an echo server to a dedicated core, drives it with a
closed-loop client for one simulated millisecond, and prints the data-path
statistics — fast/slow path split, LLC miss rate, throughput, and tail
latency.

Run:  python examples/quickstart.py
"""

from repro import CeioArchitecture, Testbed
from repro.apps import EchoServer
from repro.net import Flow, FlowKind, SaturatingSource
from repro.sim.units import MS, US, to_mpps


def main() -> None:
    # 1. A testbed = one simulated receiver host (NIC, PCIe, IIO, LLC,
    #    DRAM, CPU cores) plus the 200 Gbps fabric and DCTCP senders.
    bed = Testbed(seed=42)

    # 2. Install the receive-side I/O architecture. Swap this single line
    #    for LegacyDdioArch / HostccArch / ShringArch to compare designs.
    ceio = CeioArchitecture(bed.host)
    bed.install_io_arch(ceio)

    # 3. One CPU-involved echo flow served by a dedicated core.
    flow = Flow(FlowKind.CPU_INVOLVED, name="echo", message_payload=512)
    sender = bed.add_flow(flow)
    core = bed.host.cpu.allocate()
    server = EchoServer(ceio, flow, core)
    server.start()

    # 4. A closed-loop client that keeps 64 requests in flight.
    client = SaturatingSource(bed.sim, sender, outstanding=64)
    client.start()

    # 5. Run one simulated millisecond.
    bed.run(until=1 * MS)

    # 6. Inspect the data path.
    rx = ceio.flows[flow.flow_id]
    print(f"echoed            : {server.echoed.value:.0f} requests")
    print(f"throughput        : "
          f"{to_mpps(rx.processed.value / bed.sim.now):.2f} Mpps")
    print(f"p50 / p99 latency : {rx.latency.percentile(50) / US:.1f} / "
          f"{rx.latency.percentile(99) / US:.1f} us")
    print(f"LLC miss rate     : {bed.host.llc.stats.miss_rate * 100:.2f} %")
    print(f"fast-path share   : {ceio.fast_fraction() * 100:.1f} %")
    print(f"credits in flight : "
          f"{ceio.credits.account(flow.flow_id).inflight:.0f} "
          f"of {ceio.credits.total:.0f}")


if __name__ == "__main__":
    main()
