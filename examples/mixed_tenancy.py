#!/usr/bin/env python3
"""Mixed tenancy: an RPC service and a distributed file system sharing one
server — the paper's motivating co-location scenario (§2.2).

Six CPU-involved eRPC/KV flows share the receiver with two CPU-bypass
LineFS flows. Under plain DDIO the file transfers flush the RPC service's
packets out of the LLC; CEIO's credit reallocation keeps the RPC flows on
the fast path while the bulk transfers ride the elastic slow path.

Run:  python examples/mixed_tenancy.py
"""

from repro.experiments.report import render_table
from repro.workloads import Scenario, ScenarioConfig


def main() -> None:
    rows = []
    for arch in ("baseline", "ceio"):
        scenario = Scenario(ScenarioConfig(
            arch=arch, n_involved=6, n_bypass=2,
            payload=144, bypass_payload=1024, chunk_packets=32,
            seed=2)).build()
        m = scenario.run_measure()
        ff = m.extras.get("fast_fraction", float("nan"))
        rows.append([arch, m.involved_mpps, m.bypass_gbps,
                     m.llc_miss_rate * 100,
                     f"{ff * 100:.0f}%" if ff == ff else "n/a"])
        print(f"  ... {arch}: RPC {m.involved_mpps:.1f} Mpps, "
              f"DFS {m.bypass_gbps:.0f} Gbps")
    print()
    print(render_table(
        ["arch", "RPC Mpps", "DFS Gbps", "LLC miss %", "fast-path share"],
        rows))
    print()
    print("CEIO keeps the latency-critical RPC flows cache-resident while")
    print("the file transfers are absorbed by on-NIC elastic buffering.")


if __name__ == "__main__":
    main()
