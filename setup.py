"""Legacy shim so `pip install -e .` works offline without PEP 517 wheels."""

from setuptools import setup

setup()
