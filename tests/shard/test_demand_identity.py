"""Open-loop demand under sharding: byte identity of demand-driven runs.

The ``flash-crowd`` template is single-switch (degenerate one-cell
plan) but exercises the full open-loop stack — lazy arrival streams,
admission/shedding, the SLO tracker's fixed-cadence sampling — through
the shard coordinator. The leaf-spine case genuinely splits 4 ways:
client-side demand sources live in different shards from the server
whose SLO tracker observes them, so the arrival draws, shed decisions,
and window samples must all be partition-independent.
"""

import json

import pytest

from repro.scenario.templates import template
from repro.shard import run_sharded
from repro.workloads.topo_scenario import TopoScenario


def _payload(results):
    return json.dumps(results, sort_keys=True)


def _demand_leaf_spine():
    """all-to-all-storage with its KV tenant driven open-loop (guarded
    CEIO on its host) instead of closed-loop."""
    spec = template("all-to-all-storage")
    spec["hosts"]["l0s0"] = {"arch": "ceio",
                             "ceio": {"admission_control": True,
                                      "admission_ring_limit": 64}}
    spec["demand"] = {
        "window_us": 50.0,
        "profiles": {
            "burst": {"kind": "flash_crowd", "base_mpps": 4.0,
                      "peak_mpps": 48.0, "start_us": 250.0,
                      "ramp_us": 50.0, "hold_us": 200.0,
                      "decay_us": 50.0},
        },
        "tenants": {"kv-l0": {"profile": "burst",
                              "slo": {"p999_us": 100.0}}},
    }
    return spec


@pytest.mark.slow
@pytest.mark.parametrize("shards", [2, 4])
def test_demand_leaf_spine_sharded_is_byte_identical(shards):
    single = TopoScenario(_demand_leaf_spine()).run()
    stats = {}
    sharded = run_sharded(_demand_leaf_spine(), shards, stats=stats)
    assert _payload(sharded) == _payload(single)
    if shards == 4:
        assert stats["plan"]["shards"] == 4


@pytest.mark.slow
def test_flash_crowd_template_degenerates_to_the_plain_run():
    single = TopoScenario(template("flash-crowd")).run()
    stats = {}
    sharded = run_sharded(template("flash-crowd"), 4, stats=stats)
    assert _payload(sharded) == _payload(single)
    assert stats["plan"]["shards"] == 1
    # The run actually exercised the guardrails: the KV tenant shed.
    assert single["s0"]["extras"]["slo.kv.shed"] > 0
    assert single["s0"]["extras"]["slo.kv.ok"] == 1.0
