"""Golden byte-identity: sharded runs equal the single kernel's, to the
byte, at fixed seed (the correctness gate of docs/SHARDING.md).

``all-to-all-storage`` (2x2 leaf-spine) genuinely splits into 2 and 4
kernels with cross-shard traffic on every spine hop; ``incast-32`` is
single-switch, so any shard count degenerates to one cell and must
reproduce the plain run trivially.
"""

import json

import pytest

from repro.scenario.templates import template
from repro.shard import run_sharded
from repro.workloads.topo_scenario import TopoScenario


def _payload(results):
    return json.dumps(results, sort_keys=True)


@pytest.fixture(scope="module")
def all_to_all_single():
    return _payload(TopoScenario(template("all-to-all-storage")).run())


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_all_to_all_sharded_is_byte_identical(all_to_all_single, shards):
    stats = {}
    sharded = run_sharded(template("all-to-all-storage"), shards,
                          stats=stats)
    assert _payload(sharded) == all_to_all_single
    if shards > 1:
        assert stats["plan"]["shards"] == min(shards, 4)
        assert stats["rounds"] > 0
        assert all(n > 0 for n in stats["events"])


def test_all_to_all_process_mode_is_byte_identical(all_to_all_single):
    sharded = run_sharded(template("all-to-all-storage"), 2,
                          mode="process")
    assert _payload(sharded) == all_to_all_single


def test_incast_degenerates_to_the_plain_run():
    stats = {}
    sharded = run_sharded(template("incast-32"), 4, stats=stats)
    single = TopoScenario(template("incast-32")).run()
    assert _payload(sharded) == _payload(single)
    assert stats["plan"]["shards"] == 1
    assert stats["plan"]["cut_links"] == []


def test_sharded_audit_merge_matches_single_kernel():
    spec = template("all-to-all-storage")
    single = TopoScenario(spec).run()
    sharded = run_sharded(spec, 4)
    for host, metrics in single.items():
        audit = sharded[host]["audit"]
        assert audit == metrics["audit"]
        assert audit["ok"] is True
        assert audit["violations"] == []
        # Every account exactly once: locals plus merged cut wires.
        assert audit["checked"] == metrics["audit"]["checked"]


def test_invalid_mode_and_shard_count_rejected():
    spec = template("incast-32")
    with pytest.raises(ValueError):
        run_sharded(spec, 0)
    with pytest.raises(ValueError):
        run_sharded(spec, 2, mode="threads")


def _faulted_spec():
    """Host-site faults on both server hosts: loss on l0s0's last hop,
    a CPU slowdown window on l1s0 — each compiled by a different shard
    under any 2/4-way partition of the 2x2 leaf-spine."""
    spec = template("all-to-all-storage")
    spec["fault_plan"] = [
        {"site": "net.link", "kind": "loss", "start": 450_000.0,
         "duration": 100_000.0, "magnitude": 0.05, "host": "l0s0"},
        {"site": "hw.cpu", "kind": "slowdown", "start": 500_000.0,
         "duration": 100_000.0, "magnitude": 3.0, "host": "l1s0"},
    ]
    return spec


@pytest.fixture(scope="module")
def faulted_single(all_to_all_single):
    payload = _payload(TopoScenario(_faulted_spec()).run())
    # The plan must actually bite, or identity below proves nothing.
    assert payload != all_to_all_single
    return payload


@pytest.mark.parametrize("shards", [2, 4])
def test_host_fault_plan_sharded_is_byte_identical(faulted_single,
                                                   shards):
    sharded = run_sharded(_faulted_spec(), shards)
    assert _payload(sharded) == faulted_single
    audit = sharded["l0s0"]["audit"]
    assert audit["ok"] is True
    assert audit["violations"] == []


def test_host_fault_plan_process_mode_is_byte_identical(faulted_single):
    sharded = run_sharded(_faulted_spec(), 4, mode="process")
    assert _payload(sharded) == faulted_single
