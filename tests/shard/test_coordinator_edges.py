"""Barrier-loop edge cases in the shard coordinator.

The conservative loop of ``repro.shard.coordinator._barrier_run`` has
two boundary behaviours the byte-identity suite exercises only
implicitly, so they are pinned directly here against a scripted
executor:

- a channel message due *exactly* at the phase target still counts as
  pending, forcing another inclusive pass that delivers and executes it
  inside this phase (the single kernel would run a ``t == T`` event in
  the phase that owns ``T``);
- a message due *strictly after* the target is never delivered in this
  phase — it rides the undelivered inbox across the phase boundary and
  is injected in the next phase's first window, exactly where the
  single kernel's calendar entry would fire.

A third, integration-level check runs a real scenario whose phase
horizons deliberately do not align with the lookahead grid, so the
warm-up -> measurement hand-off happens mid-flight with live carryover.
"""

import json

from repro.shard import run_sharded
from repro.shard.coordinator import _barrier_run
from repro.workloads.topo_scenario import TopoScenario
from repro.scenario.templates import template


class ScriptedShards:
    """Fake executor: replays scripted outboxes and records every
    ``advance`` call's ``(horizon, inclusive, inboxes)``."""

    def __init__(self, n, script):
        self.n = n
        self.script = list(script)
        self.calls = []

    def advance(self, horizon, inclusive, inboxes):
        self.calls.append((horizon, inclusive,
                           [list(box) for box in inboxes]))
        if self.script:
            return self.script.pop(0)
        return [[] for _ in range(self.n)]


def _msg(dst, when, seq):
    return (dst, "pkt", when, seq, ("swA", "swB", ()))


def test_message_due_exactly_at_target_is_delivered_this_phase():
    # Shard 0's inclusive pass emits a message due exactly at T=100.
    script = [[[_msg(1, 100.0, 7)], []]]
    executor = ScriptedShards(2, script)
    rounds, now, inbox = _barrier_run(
        executor, 2, lookahead=100.0, start=0.0, target=100.0,
        inbox=[[], []])
    # The t == T message forces a second inclusive pass...
    assert rounds == 2
    assert now == 100.0
    horizon, inclusive, boxes = executor.calls[1]
    assert inclusive and horizon == 100.0
    # ...which hands it to shard 1 inside this phase,
    assert boxes[1] == [_msg(1, 100.0, 7)]
    # leaving nothing to carry over.
    assert inbox == [[], []]


def test_message_past_target_carries_into_the_next_phase():
    # Emitted during warm-up (T=100) but due at 150: must NOT be
    # delivered before the phase boundary.
    script = [[[], [_msg(0, 150.0, 3)]]]
    executor = ScriptedShards(2, script)
    rounds, now, inbox = _barrier_run(
        executor, 2, lookahead=100.0, start=0.0, target=100.0,
        inbox=[[], []])
    assert rounds == 1
    assert inbox == [[_msg(0, 150.0, 3)], []]
    assert all(not any(boxes) for _, _, boxes in executor.calls)

    # The measurement phase opens with that inbox: its very first
    # window injects the carried message into shard 0.
    _rounds2, _now2, inbox2 = _barrier_run(
        executor, 2, lookahead=100.0, start=now, target=200.0,
        inbox=inbox)
    horizon, inclusive, boxes = executor.calls[1]
    assert (horizon, inclusive) == (200.0, True)
    assert boxes[0] == [_msg(0, 150.0, 3)]
    assert inbox2 == [[], []]


def test_misaligned_phase_horizons_stay_byte_identical():
    # Horizons chosen so neither t_warm nor t_end is a multiple of the
    # cut-link lookahead: both phase boundaries land mid-window with
    # cross-shard traffic in flight, exercising the carryover path of
    # the real coordinator end to end.
    spec = template("all-to-all-storage")
    spec["measure"] = {"warmup_us": 23.7, "duration_us": 31.3}
    single = TopoScenario(spec).run()
    sharded = run_sharded(spec, 4)
    assert json.dumps(sharded, sort_keys=True) == \
        json.dumps(single, sort_keys=True)
    audit = sharded["l0s0"]["audit"]
    assert audit["ok"] is True and audit["violations"] == []
