"""``net.channel`` faults: coordinator-layer loss/latency on cut links.

The site only exists where a partition cuts links, so every behavioural
test runs ``all-to-all-storage`` at 4 shards; determinism is pinned by
inline == process, and the audit merge must still reconcile to zero
violations through the synthetic ``channel_dropped`` /
``channel_delayed`` credits.
"""

import json

import pytest

from repro.faults.plan import FaultSpec
from repro.scenario.schema import build_topology
from repro.scenario.templates import template
from repro.shard import run_sharded
from repro.shard.channel import ChannelFaultController
from repro.workloads.topo_scenario import TopoScenario


def _payload(results):
    return json.dumps(results, sort_keys=True)


def _channel_spec(kind, magnitude):
    spec = template("all-to-all-storage")
    spec["fault_plan"] = [
        {"site": "net.channel", "kind": kind, "start": 450_000.0,
         "duration": 100_000.0, "magnitude": magnitude}]
    return spec


@pytest.mark.parametrize("kind,magnitude,counter", [
    ("loss", 0.2, "dropped"),
    ("latency", 5_000.0, "delayed"),
])
def test_channel_fault_bites_and_audit_reconciles(kind, magnitude,
                                                  counter):
    stats = {}
    sharded = run_sharded(_channel_spec(kind, magnitude), 4, stats=stats)
    assert stats["channel"]["specs"] == 1
    assert stats["channel"][counter] > 0
    audit = sharded["l0s0"]["audit"]
    assert audit["ok"] is True
    assert audit["violations"] == []
    # It must differ from the healthy run, or the site is dead code.
    healthy = run_sharded(template("all-to-all-storage"), 4)
    assert _payload(sharded) != _payload(healthy)


def test_channel_fault_inline_equals_process():
    spec = _channel_spec("loss", 0.2)
    inline = run_sharded(spec, 4)
    process = run_sharded(spec, 4, mode="process")
    assert _payload(inline) == _payload(process)


def test_channel_fault_is_noop_on_single_kernel():
    single = TopoScenario(_channel_spec("loss", 0.5)).run()
    healthy = TopoScenario(template("all-to-all-storage")).run()
    assert _payload(single) == _payload(healthy)


def test_channel_spec_validation():
    ok = dict(site="net.channel", kind="loss", start=0.0,
              duration=1000.0, magnitude=0.1)
    FaultSpec(**ok)
    with pytest.raises(ValueError, match="drop the host qualifier"):
        FaultSpec(**{**ok, "host": "l0s0"})
    with pytest.raises(ValueError, match="flow filters"):
        FaultSpec(**{**ok, "flow": "kv0"})
    with pytest.raises(ValueError, match="finite duration"):
        FaultSpec(site="net.channel", kind="loss", magnitude=0.1)


def test_partial_snapshots_name_the_cut_wire_accounts():
    from repro.scenario import validate
    normal = validate(template("all-to-all-storage"))
    topology = build_topology(normal)
    controller = ChannelFaultController((), normal["seed"], topology)
    # leaf0 -> spine0 is leaf0's second egress (its server l0s0 is
    # first), so the account index is 1 — the single-kernel numbering.
    controller.drops.append(("leaf0", "spine0", 500_000.0))
    controller.drops.append(("leaf0", "spine0", 2_000_000.0))  # > t_end
    controller.delays.append(("spine0", "leaf1", 500_000.0, 1_200_000.0))
    controller.delays.append(("spine0", "leaf1", 500_000.0, 600_000.0))
    parts = controller.partial_snapshots(1_000_000.0)
    assert len(parts) == 2
    drop_part = next(p for p in parts
                     if "channel_dropped" in p["credits"])
    delay_part = next(p for p in parts
                      if "channel_delayed" in p["credits"])
    assert drop_part["credits"]["channel_dropped"] == 1.0
    assert delay_part["credits"]["channel_delayed"] == 1.0
    assert drop_part["account"] == "switch.leaf0.port.1.wire"
    assert delay_part["account"] == "switch.spine0.port.1.wire"
