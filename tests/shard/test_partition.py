"""Partitioner properties and the lookahead contract (docs/SHARDING.md).

The partition must be a pure function of ``(topology, shards)``, keep
every host with its attachment switch, cut only switch-switch links,
and refuse any cut whose lookahead would be zero.
"""

import pytest

from repro.topo import leaf_spine, partition, star
from repro.topo.builders import fat_tree


def test_partition_is_deterministic():
    for shards in (2, 3, 4):
        a = partition(leaf_spine(4, 2, 4), shards)
        b = partition(leaf_spine(4, 2, 4), shards)
        assert a == b


def test_every_switch_in_exactly_one_cell():
    topo = leaf_spine(4, 2, 4)
    plan = partition(topo, 3)
    seen = [sw for cell in plan.cells for sw in cell]
    assert sorted(seen) == sorted(topo.switches)
    assert len(seen) == len(set(seen))


def test_every_host_follows_its_attachment_switch():
    topo = fat_tree(4, hosts_per_edge=2)
    plan = partition(topo, 4)
    assert sorted(plan.shard_of_host) == sorted(topo.hosts)
    for host in topo.hosts:
        attach, _link = topo.attachment(host)
        assert plan.shard_of_host[host] == plan.shard_of_switch[attach]


def test_cut_links_join_switches_only():
    topo = leaf_spine(4, 2, 4)
    plan = partition(topo, 4)
    assert plan.cut_links  # a 4-way split of 6 switches must cut
    switches = set(topo.switches)
    for link in plan.cut_links:
        assert link.a in switches and link.b in switches


def test_cells_are_connected_subgraphs():
    topo = fat_tree(4, hosts_per_edge=1)
    for shards in (2, 3, 4, 5):
        plan = partition(topo, shards)
        for cell in plan.cells:
            members = set(cell)
            frontier = {cell[0]}
            reached = set()
            while frontier:
                sw = frontier.pop()
                reached.add(sw)
                frontier.update(n for n in topo.switch_neighbors(sw)
                                if n in members and n not in reached)
            assert reached == members


def test_shard_count_clamps_to_switch_count():
    assert partition(star(8), 8).n_shards == 1
    assert partition(leaf_spine(2, 2, 4), 16).n_shards == 4


def test_single_switch_topology_is_one_cell_with_infinite_lookahead():
    plan = partition(star(4), 4)
    assert plan.cells == (("tor",),)
    assert plan.cut_links == ()
    assert plan.lookahead == float("inf")


def test_lookahead_is_the_minimum_cut_delay():
    plan = partition(leaf_spine(2, 2, 4, delay=600.0), 2)
    assert plan.lookahead == 600.0


def test_invalid_shard_count_rejected():
    with pytest.raises(ValueError):
        partition(star(2), 0)


def test_zero_delay_switch_link_rejected_at_validation():
    # Satellite fix: the topology itself refuses a degenerate-lookahead
    # inter-switch link, path-addressed like a scenario error.
    with pytest.raises(ValueError, match=r"topology\.links\["):
        leaf_spine(2, 1, 2, delay=0.0)


def test_zero_reverse_delay_cut_rejected_by_partition():
    topo = leaf_spine(2, 1, 2, ack_delay=0.0)  # forward delay is fine
    with pytest.raises(ValueError, match="zero-delay"):
        partition(topo, 2)
    with pytest.raises(ValueError, match="ack_delay"):
        topo.lookahead()
