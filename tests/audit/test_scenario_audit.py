"""End-to-end audit tests against real scenarios: healthy runs balance,
faulted runs balance, and a deliberately corrupted meter is caught with a
named who-owes-whom delta."""

import pytest

from repro.faults import FaultPlan, FaultSpec
from repro.sim.units import US
from repro.workloads import Scenario, ScenarioConfig

WARMUP = 100 * US
DURATION = 150 * US


def _scenario(arch, faults=None, **kwargs):
    config = ScenarioConfig(arch=arch, scale=8, n_involved=2, n_bypass=1,
                            seed=11, warmup=WARMUP, duration=DURATION,
                            faults=faults, **kwargs)
    return Scenario(config).build()


def _drop_plan(magnitude=1.0):
    return FaultPlan((FaultSpec("hw.nic", "descriptor_drop",
                                start=WARMUP + 20 * US, duration=60 * US,
                                magnitude=magnitude),))


@pytest.mark.parametrize("arch,n_accounts", [
    ("ceio", 19), ("baseline", 15), ("shring", 16), ("mpq", 16),
    ("hostcc", 15),
])
def test_healthy_run_balances(arch, n_accounts):
    scenario = _scenario(arch)
    measurement = scenario.run_measure()
    audit = measurement.audit
    assert audit is not None
    assert audit["ok"], audit["violations"]
    assert audit["checked"] == n_accounts


@pytest.mark.parametrize("arch", ["ceio", "baseline", "shring", "hostcc"])
def test_descriptor_drop_run_still_balances(arch):
    scenario = _scenario(arch, faults=_drop_plan())
    measurement = scenario.run_measure()
    assert measurement.audit["ok"], measurement.audit["violations"]
    if arch != "shring":  # shring wedges on ring-full before the window
        assert scenario.testbed.host.nic.dma.dropped_writes.value > 0


@pytest.mark.parametrize("arch", ["baseline", "hostcc"])
def test_dma_drops_reach_measurement_dropped(arch):
    """Silent-drop accounting: NIC DMA drops surface as per-flow and
    measurement-level drops for the non-CEIO backends too."""
    scenario = _scenario(arch, faults=_drop_plan())
    measurement = scenario.run_measure()
    assert scenario.arch.dma_write_drops.value > 0
    assert measurement.dropped > 0
    assert sum(fm.dropped for fm in measurement.flows) == measurement.dropped


def test_corrupted_meter_is_caught_with_named_delta():
    scenario = _scenario("ceio")
    scenario.run_measure()
    report = scenario.reconciler.check(now=scenario.testbed.sim.now)
    assert report.ok
    # Forge three accepted packets that no layer ever handled.
    scenario.arch.rx_accepted.add(3)
    report = scenario.reconciler.check(now=scenario.testbed.sim.now)
    assert not report.ok
    messages = [v["message"] for v in report.violations]
    assert any("nic.handler" in m and "3 packets" in m for m in messages), (
        messages)


def test_audit_report_rides_on_measurement_and_mailbox():
    from repro.audit import drain_reports
    drain_reports()
    scenario = _scenario("baseline")
    measurement = scenario.run_measure()
    summary = drain_reports()
    assert summary["reports"] == 1
    assert summary["checked"] == measurement.audit["checked"]
    assert summary["violations"] == 0
