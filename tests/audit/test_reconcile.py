"""Reconciler + report-collector tests, including the deliberately broken
ledger fixture the acceptance criteria call for: a violation must surface
a named who-owes-whom delta, not just a boolean."""

import pytest

from repro.audit import (
    Ledger,
    Reconciler,
    drain_reports,
    pending_report_count,
    record_report,
)
from repro.sim.stats import Counter


def _broken_ledger():
    """NIC handled 100 packets but the architecture only accounted 97 —
    three packets vanished between the handler and the rings."""
    ledger = Ledger()
    handled = Counter("handled")
    handled.add(100)
    accepted = Counter("accepted")
    accepted.add(90)
    dropped = Counter("dropped")
    dropped.add(7)
    (ledger.account("nic.handler", "packets", barrier_safe=True)
     .debit("handled", handled)
     .credit("accepted", accepted)
     .credit("dropped", dropped))
    (ledger.account("net.wire", "packets")
     .debit("transmitted", lambda: 100)
     .credit("received", lambda: 100))
    return ledger


def test_broken_ledger_reports_named_delta():
    report = Reconciler(_broken_ledger()).check(now=123.0)
    assert not report.ok
    assert report.checked == 2
    assert len(report.violations) == 1
    violation = report.violations[0]
    assert violation["account"] == "nic.handler"
    assert violation["unit"] == "packets"
    assert violation["delta"] == 3
    # The who-owes-whom sentence names both sides, the amount, the unit,
    # and the per-source breakdown.
    message = violation["message"]
    assert "nic.handler" in message
    assert "handled owes accepted+dropped 3 packets" in message
    assert "handled=100" in message and "accepted=90" in message


def test_deficit_on_the_debit_side_swaps_owing_direction():
    ledger = Ledger()
    (ledger.account("dma.engine", "packets")
     .debit("requests", lambda: 5)
     .credit("issued", lambda: 9))
    report = Reconciler(ledger).check()
    assert "issued owes requests 4 packets" in report.violations[0]["message"]


def test_barrier_only_skips_unsafe_accounts():
    ledger = _broken_ledger()
    # Make the barrier-unsafe account the broken one.
    ledger.accounts["net.wire"].credit("ghost", lambda: 5)
    full = Reconciler(ledger).check()
    assert {v["account"] for v in full.violations} == {"nic.handler",
                                                       "net.wire"}
    barrier = Reconciler(ledger).check(barrier_only=True)
    assert barrier.checked == 1
    assert {v["account"] for v in barrier.violations} == {"nic.handler"}
    assert barrier.to_dict()["barrier_only"] is True


def test_assert_balanced_raises_with_message():
    reconciler = Reconciler(_broken_ledger())
    with pytest.raises(AssertionError, match="nic.handler"):
        reconciler.assert_balanced(now=7.0)


def test_report_to_dict_shapes():
    ok_report = Reconciler(Ledger()).check(now=1.0)
    data = ok_report.to_dict()
    assert data == {"ok": True, "now": 1.0, "checked": 0, "violations": []}
    bad = Reconciler(_broken_ledger()).check(now=2.0)
    with_balances = bad.to_dict(include_balances=True)
    assert len(with_balances["accounts"]) == 2
    assert not with_balances["ok"]


def test_collector_mailbox_drains_and_summarises():
    drain_reports()  # isolate from any earlier state
    assert drain_reports() is None
    record_report(Reconciler(_broken_ledger()).check(now=1.0))
    record_report(Reconciler(Ledger()).check(now=2.0))
    assert pending_report_count() == 2
    summary = drain_reports()
    assert summary["reports"] == 2
    assert summary["checked"] == 2
    assert summary["violations"] == 1
    assert any("nic.handler" in d for d in summary["details"])
    assert drain_reports() is None  # drained


def test_collector_caps_detail_messages():
    drain_reports()
    for _ in range(12):
        record_report(Reconciler(_broken_ledger()).check())
    summary = drain_reports()
    assert summary["violations"] == 12
    assert len(summary["details"]) == 8
