"""Unit tests for the conservation ledger primitive (repro.audit.ledger)."""

import pytest

from repro.audit.ledger import Account, Ledger, read_source
from repro.sim.stats import Counter


class Box:
    def __init__(self, n):
        self.n = n


def test_read_source_kinds():
    counter = Counter("c")
    counter.add(3)
    assert read_source(counter) == 3
    assert read_source((Box(7), "n")) == 7
    assert read_source(lambda: 11.5) == 11.5


def test_exact_account_balances():
    inflow = Counter("in")
    outflow = Counter("out")
    resident = Box(0)
    acct = (Account("layer", "packets")
            .debit("inflow", inflow)
            .credit("outflow", outflow)
            .credit("resident", (resident, "n")))
    inflow.add(10)
    outflow.add(6)
    resident.n = 4
    snap = acct.snapshot()
    assert snap["ok"]
    assert snap["delta"] == 0
    assert snap["debits"] == {"inflow": 10}
    assert snap["credits"] == {"outflow": 6, "resident": 4}


def test_exact_account_detects_leak_in_both_directions():
    inflow = Counter("in")
    outflow = Counter("out")
    acct = Account("layer", "packets").debit("in", inflow).credit(
        "out", outflow)
    inflow.add(5)
    outflow.add(3)
    snap = acct.snapshot()
    assert not snap["ok"] and snap["delta"] == 2
    outflow.add(4)
    snap = acct.snapshot()
    assert not snap["ok"] and snap["delta"] == -2


def test_tolerance_absorbs_float_dust():
    acct = Account("credits", "credits", tolerance=1e-6)
    acct.debit("total", lambda: 96.0)
    acct.credit("held", lambda: 96.0 + 1e-9)
    assert acct.snapshot()["ok"]


def test_bounded_account_allows_slack_but_not_negative_delta():
    inflow = Counter("in")
    outflow = Counter("out")
    window = Box(1)
    acct = (Account("handler", "packets", bounded=True)
            .debit("in", inflow).credit("out", outflow)
            .slack("window", (window, "n")))
    inflow.add(4)
    outflow.add(3)
    assert acct.snapshot()["ok"]          # delta 1 <= slack 1
    inflow.add(1)
    assert not acct.snapshot()["ok"]      # delta 2 > slack 1
    window.n = 2
    assert acct.snapshot()["ok"]
    outflow.add(5)
    assert not acct.snapshot()["ok"]      # delta -3 < 0: bounded is one-sided


def test_capacity_invariant_shape():
    occupancy = Box(90)
    acct = (Account("cap", "bytes", bounded=True)
            .debit("resident", (occupancy, "n"))
            .slack("capacity", lambda: 100))
    assert acct.snapshot()["ok"]
    occupancy.n = 101
    assert not acct.snapshot()["ok"]


def test_unknown_unit_rejected():
    with pytest.raises(ValueError, match="unknown unit"):
        Account("x", "florins")


def test_ledger_create_or_fetch_and_order():
    ledger = Ledger()
    a = ledger.account("one", "packets")
    b = ledger.account("two", "bytes")
    assert ledger.account("one", "bytes") is a  # fetch ignores new params
    assert a.unit == "packets"
    assert [acct.name for acct in ledger] == ["one", "two"]
    assert len(ledger) == 2
    assert b.unit == "bytes"
