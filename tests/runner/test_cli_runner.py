"""Orchestration layer: dedupe, cache integration, sweep determinism."""

import pytest

from repro.experiments import fig09
from repro.experiments.report import ExperimentResult
from repro.runner import Point, Progress, RunnerOptions, execute_points

W = "tests.runner.workers:"


def _counted(tmp_path, name, label, extra=None):
    params = {"dir": str(tmp_path), "name": name, "fail_times": 0}
    params.update(extra or {})
    return Point("exp", W + "fail_then_ok", params, seed=0, label=label)


def _attempts(tmp_path, name):
    return len(list(tmp_path.glob(f"{name}.attempt-*")))


def test_execute_points_dedupes_structurally_identical_points(tmp_path):
    cache_dir = tmp_path / "cache"
    # Same (fn, params, seed) requested under two experiment ids/labels.
    a = _counted(tmp_path, "shared", "a")
    b = Point("other", a.fn, dict(a.params), seed=0, label="b")
    results, failures = execute_points(
        [a, b], RunnerOptions(cache_dir=str(cache_dir), quiet=True))
    assert not failures
    assert results["exp/a"] == results["other/b"] == {"attempt": 0}
    assert _attempts(tmp_path, "shared") == 1  # simulated once, served twice


def test_second_invocation_executes_zero_points(tmp_path):
    cache_dir = tmp_path / "cache"
    options = RunnerOptions(cache_dir=str(cache_dir), quiet=True)
    points = [_counted(tmp_path, f"n{i}", f"n{i}", {"i": i})
              for i in range(3)]
    execute_points(points, options)
    assert _attempts(tmp_path, "n0") == 1

    progress = Progress(total=len(points), quiet=True)
    results, failures = execute_points(points, options, progress)
    assert not failures and len(results) == 3
    assert sum(_attempts(tmp_path, f"n{i}") for i in range(3)) == 3  # no new
    assert progress.cached == 3 and progress.executed == 0


def test_rerun_ignores_but_refreshes_cache(tmp_path):
    options = RunnerOptions(cache_dir=str(tmp_path / "cache"), quiet=True)
    point = _counted(tmp_path, "r", "r")
    execute_points([point], options)
    execute_points([point], RunnerOptions(cache_dir=options.cache_dir,
                                          rerun=True, quiet=True))
    assert _attempts(tmp_path, "r") == 2
    execute_points([point], options)  # rerun refreshed the entry
    assert _attempts(tmp_path, "r") == 2


def test_no_cache_mode_never_touches_disk(tmp_path):
    options = RunnerOptions(use_cache=False, quiet=True,
                            cache_dir=str(tmp_path / "cache"))
    point = _counted(tmp_path, "u", "u")
    execute_points([point], options)
    execute_points([point], options)
    assert _attempts(tmp_path, "u") == 2
    assert not (tmp_path / "cache").exists()


def test_failures_are_reported_not_raised(tmp_path):
    options = RunnerOptions(use_cache=False, retries=0, quiet=True,
                            backoff=0.01)
    good = Point("exp", W + "ok", {"a": 1}, seed=0, label="good")
    bad = Point("exp", W + "boom", {"name": "b"}, seed=0, label="bad")
    results, failures = execute_points([good, bad], options)
    assert results == {"exp/good": {"doubled": 2, "seed": 0}}
    assert len(failures) == 1
    assert failures[0].point.point_id == "exp/bad"
    assert "boom on b" in failures[0].error


def test_experiment_result_json_roundtrip():
    result = ExperimentResult(exp_id="x", title="t", paper_claim="c")
    result.headers = ["a", "b"]
    result.rows = [["r", 1.5]]
    result.check("passes", True, "fine")
    result.check("fails", False, "nope")
    result.notes.append("a note")
    clone = ExperimentResult.from_dict(result.to_dict())
    assert clone.render() == result.render()
    assert clone.all_passed == result.all_passed


@pytest.mark.slow
def test_fig09_rows_identical_for_jobs_1_and_jobs_4(tmp_path, monkeypatch):
    """ISSUE acceptance: --jobs must not change results, bit for bit.

    Reduced to one panel and one size (4 points, ~20 s total) — run_point
    reads only (params, seed), so shrinking the sweep in the parent does
    not change what each point simulates.
    """
    monkeypatch.setattr(fig09, "PANELS", [("erpc-dpdk", "dpdk", False)])
    monkeypatch.setattr(fig09, "SIZES_QUICK", [144])

    def run_with(jobs):
        options = RunnerOptions(jobs=jobs, quiet=True,
                                cache_dir=str(tmp_path / f"cache-{jobs}"))
        points = fig09.points(quick=True)
        results, failures = execute_points(points, options)
        assert not failures
        return fig09.collect(results, quick=True)

    serial = run_with(1)
    pooled = run_with(4)
    assert pooled.rows == serial.rows
    assert ([(c.name, c.passed) for c in pooled.checks]
            == [(c.name, c.passed) for c in serial.checks])
