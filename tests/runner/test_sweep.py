"""Unit tests for the sweep layer: grids, point identity, seeds."""

import pytest

from repro.runner import (
    Point,
    canonical_params,
    content_id,
    derive_seed,
    grid,
    make_point,
    run_points_serial,
)


def test_grid_cartesian_product_order():
    cells = grid(arch=["a", "b"], size=[1, 2])
    assert cells == [{"arch": "a", "size": 1}, {"arch": "a", "size": 2},
                     {"arch": "b", "size": 1}, {"arch": "b", "size": 2}]


def test_canonical_params_is_key_order_independent():
    assert (canonical_params({"a": 1, "b": [2, 3]})
            == canonical_params({"b": [2, 3], "a": 1}))


def test_content_id_stable_and_sensitive():
    a = content_id("m:f", {"x": 1})
    assert a == content_id("m:f", {"x": 1})
    assert a != content_id("m:f", {"x": 2})
    assert a != content_id("m:g", {"x": 1})


def test_point_id_uses_label_and_content_key_ignores_it():
    p1 = Point("exp", "m:f", {"x": 1}, seed=5, label="nice")
    p2 = Point("exp", "m:f", {"x": 1}, seed=5, label="other")
    assert p1.point_id == "exp/nice"
    assert p1.content_key == p2.content_key


def test_default_seed_used_without_root_seed():
    p = make_point("exp", "m:f", {"x": 1}, root_seed=None, default_seed=7)
    assert p.seed == 7


def test_explicit_root_seed_derives_per_point_substreams():
    p1 = make_point("exp", "m:f", {"x": 1}, root_seed=42, default_seed=7)
    p2 = make_point("exp", "m:f", {"x": 2}, root_seed=42, default_seed=7)
    p1_again = make_point("other-exp", "m:f", {"x": 1}, root_seed=42,
                          default_seed=99)
    assert p1.seed != 7
    assert p1.seed != p2.seed                  # independent substreams
    assert p1.seed == p1_again.seed            # identity is structural,
    assert p1.seed == derive_seed(42, "m:f", {"x": 1})  # not per-experiment


def test_run_points_serial_dedupes_by_content_key():
    pts = [Point("e1", "tests.runner.workers:ok", {"a": 3}, seed=1,
                 label="first"),
           Point("e2", "tests.runner.workers:ok", {"a": 3}, seed=1,
                 label="second"),
           Point("e1", "tests.runner.workers:ok", {"a": 4}, seed=1,
                 label="third")]
    results = run_points_serial(pts)
    assert results["e1/first"] == {"doubled": 6, "seed": 1}
    assert results["e2/second"] == {"doubled": 6, "seed": 1}
    assert results["e1/third"] == {"doubled": 8, "seed": 1}


def test_bad_worker_references():
    with pytest.raises(ValueError):
        run_points_serial([Point("e", "no-colon", {}, seed=0)])
    with pytest.raises(AttributeError):
        run_points_serial([Point("e", "tests.runner.workers:nope", {},
                                 seed=0)])
