"""Satellite: a point's declarative scenario is part of its identity —
like ``faults``, the ``scenario`` tag must split cache keys, while
hand-built points keep their historical keys byte for byte."""

import hashlib

from repro.runner import ResultCache, cache_key, make_point
from repro.runner.sweep import canonical_params
from repro.scenario import canonical, template

SCN = canonical(template("incast-32"))


def _point(scenario=""):
    return make_point("exp", "mod:fn", {"a": 1}, None, 3,
                      label="p", scenario=scenario)


def test_hand_built_content_key_keeps_historical_format():
    point = _point()
    assert point.content_key == f"mod:fn|{canonical_params({'a': 1})}|3"


def test_scenario_point_gets_distinct_identity():
    plain = _point()
    declarative = _point(scenario=SCN)
    assert declarative.content_key == (
        plain.content_key + f"|scenario={SCN}")
    assert cache_key(plain, "fp") != cache_key(declarative, "fp")


def test_scenario_key_is_sha256_of_full_content_key():
    point = _point(scenario=SCN)
    assert cache_key(point, "fp") == hashlib.sha256(
        f"{point.content_key}|fp".encode()).hexdigest()


def test_cache_roundtrips_scenario_tag(tmp_path):
    cache = ResultCache(root=str(tmp_path), fingerprint="fp")
    point = _point(scenario=SCN)
    cache.put(point, {"v": 1})
    assert cache.get(point) == (True, {"v": 1})
    # A hand-built point with identical fn/params/seed misses.
    assert cache.get(_point()) == (False, None)
    assert cache.get_entry(point)["scenario"] == SCN


def test_different_scenarios_never_share_results(tmp_path):
    cache = ResultCache(root=str(tmp_path), fingerprint="fp")
    a = _point(scenario=canonical(template("incast-32")))
    b = _point(scenario=canonical(template("paper-baseline")))
    cache.put(a, {"v": "a"})
    assert cache.get(b) == (False, None)
