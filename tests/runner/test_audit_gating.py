"""Audit plumbing through the runner: outcomes, runlog, cache, strict
gating, and the cache-key compatibility guarantee."""

import hashlib
import json

from repro.experiments import ExperimentSpec
from repro.experiments.report import ExperimentResult
from repro.runner import (
    Point,
    Progress,
    ResultCache,
    RunnerOptions,
    cache_key,
    execute_points,
)

W = "tests.runner.workers:"


def _audited_point(leak=0, label="p", tmp_path=None, name=None):
    params = {"leak": leak}
    if tmp_path is not None:
        params.update({"dir": str(tmp_path), "name": name or label})
    return Point("exp", W + "audited", params, seed=0, label=label)


def _attempts(tmp_path, name):
    return len(list(tmp_path.glob(f"{name}.attempt-*")))


def test_outcome_and_progress_carry_audit_summary(tmp_path):
    progress = Progress(total=2, quiet=True)
    options = RunnerOptions(use_cache=False, quiet=True)
    execute_points([_audited_point(0, "good"), _audited_point(3, "bad")],
                   options, progress)
    assert progress.audit_reports == 2
    assert progress.audit_checked == 2
    assert progress.audit_violations == 1
    assert progress.audit_failed_points == {"exp/bad": 1}


def test_runlog_gets_audit_fields_and_summary_event(tmp_path):
    runlog = tmp_path / "runlog.jsonl"
    progress = Progress(total=1, quiet=True, jsonl_path=str(runlog))
    execute_points([_audited_point(2, "bad")],
                   RunnerOptions(use_cache=False, quiet=True), progress)
    progress.summary()
    events = [json.loads(line) for line in runlog.read_text().splitlines()]
    done = next(e for e in events if e["event"] == "point_done")
    assert done["audit"]["violations"] == 1
    assert "test.flow" in done["audit"]["details"][0]
    summary = next(e for e in events if e["event"] == "audit_summary")
    assert summary["checked"] == 1
    assert summary["violations"] == 1
    assert summary["failed_points"] == {"exp/bad": 1}


def test_cache_roundtrips_audit_summary(tmp_path):
    options = RunnerOptions(cache_dir=str(tmp_path / "cache"), quiet=True)
    point = _audited_point(0, "a", tmp_path, "a")
    execute_points([point], options)
    assert _attempts(tmp_path, "a") == 1

    cache = ResultCache(str(tmp_path / "cache"))
    entry = cache.get_entry(point)
    assert entry["audit"] == {"reports": 1, "checked": 1, "violations": 0}

    progress = Progress(total=1, quiet=True)
    execute_points([point], options, progress)
    assert _attempts(tmp_path, "a") == 1          # served from cache
    assert progress.cached == 1
    assert progress.audit_checked == 1            # audit recalled with it


def test_healthy_cache_key_is_byte_identical_to_historical(tmp_path):
    point = Point("exp", W + "ok", {"a": 1}, seed=7, label="x")
    fingerprint = "deadbeefdeadbeef"
    historical = hashlib.sha256(
        f"{point.content_key}|{fingerprint}".encode()).hexdigest()
    assert cache_key(point, fingerprint) == historical
    assert cache_key(point, fingerprint, audit_tag="") == historical
    assert cache_key(point, fingerprint, audit_tag="v1") != historical


def test_strict_audit_never_trusts_untagged_entries(tmp_path):
    cache_dir = str(tmp_path / "cache")
    point = _audited_point(0, "s", tmp_path, "s")
    execute_points([point], RunnerOptions(cache_dir=cache_dir, quiet=True))
    assert _attempts(tmp_path, "s") == 1

    strict = RunnerOptions(cache_dir=cache_dir, quiet=True,
                           strict_audit=True)
    execute_points([point], strict)
    assert _attempts(tmp_path, "s") == 2          # tagged key: re-executed
    execute_points([point], strict)
    assert _attempts(tmp_path, "s") == 2          # tagged entry now hits


def _fake_spec(leak):
    def points(quick=True, seed=None):
        return [_audited_point(leak, "p0")]

    def collect(results, quick=True, seed=None):
        return ExperimentResult(exp_id="fake", title="fake",
                                paper_claim="none")

    def run(quick=True, seed=None):
        return collect({})

    return ExperimentSpec(exp_id="fake", description="fake", run=run,
                          points=points, collect=collect)


def test_strict_audit_cli_gates_exit_code(tmp_path, monkeypatch, capsys):
    from repro.experiments import EXPERIMENTS
    from repro.experiments.__main__ import main

    monkeypatch.setitem(EXPERIMENTS, "fake", _fake_spec(leak=3))
    base = ["fake", "--cache-dir", str(tmp_path / "c"), "--quiet"]
    assert main(base) == 0                        # violations don't gate...
    assert main(base + ["--strict-audit"]) == 1   # ...unless asked to
    err = capsys.readouterr().err
    assert "strict audit" in err
    assert "exp/p0" in err

    monkeypatch.setitem(EXPERIMENTS, "fake", _fake_spec(leak=0))
    assert main(["fake", "--cache-dir", str(tmp_path / "c2"), "--quiet",
                 "--strict-audit"]) == 0
