"""Module-level worker functions for pool tests.

Workers are referenced as ``"tests.runner.workers:<name>"`` so both the
parent process and forked/spawned pool workers can resolve them.
"""

import os
import time
from pathlib import Path


def ok(params, seed):
    return {"doubled": params["a"] * 2, "seed": seed}


def sleepy(params, seed):
    time.sleep(params["sleep"])
    return {"slept": params["sleep"]}


def boom(params, seed):
    raise ValueError(f"boom on {params.get('name', '?')}")


def _attempt_count(params) -> int:
    """Count (and record) attempts via marker files — survives the worker
    process dying, which in-memory counters would not."""
    root = Path(params["dir"])
    name = params["name"]
    n = len(list(root.glob(f"{name}.attempt-*")))
    (root / f"{name}.attempt-{n}").touch()
    return n  # 0-based index of this attempt


def hard_crash(params, seed):
    _attempt_count(params)
    os._exit(3)  # no exception, no result: simulates a segfault/OOM kill


def crash_then_ok(params, seed):
    attempt = _attempt_count(params)
    if attempt < params["fail_times"]:
        os._exit(3)
    return {"attempt": attempt}


def fail_then_ok(params, seed):
    attempt = _attempt_count(params)
    if attempt < params["fail_times"]:
        raise RuntimeError(f"transient failure #{attempt}")
    return {"attempt": attempt}


def audited(params, seed):
    """Record one conservation-audit report; ``params["leak"]`` packets go
    missing (0 = balanced)."""
    from repro.audit import Ledger, Reconciler, record_report
    leak = params.get("leak", 0)
    ledger = Ledger()
    (ledger.account("test.flow", "packets")
     .debit("offered", lambda: 10)
     .credit("delivered", lambda: 10 - leak))
    record_report(Reconciler(ledger).check(now=1.0))
    if params.get("dir"):
        _attempt_count(params)
    return {"leak": leak}
