"""Content-addressed result cache: hits, misses, invalidation, pruning."""

from repro.runner import Point, ResultCache, cache_key, code_fingerprint
from repro.runner import cache as cache_mod


def _point(params=None, seed=1, label="p"):
    return Point("exp", "tests.runner.workers:ok", params or {"a": 1},
                 seed=seed, label=label)


def test_miss_then_hit_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="fp0")
    point = _point()
    hit, value = cache.get(point)
    assert not hit and value is None
    cache.put(point, {"doubled": 2}, elapsed=0.1)
    hit, value = cache.get(point)
    assert hit and value == {"doubled": 2}
    assert (cache.hits, cache.misses) == (1, 1)


def test_params_and_seed_changes_are_misses(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="fp0")
    cache.put(_point({"a": 1}, seed=1), "v")
    assert not cache.get(_point({"a": 2}, seed=1))[0]
    assert not cache.get(_point({"a": 1}, seed=2))[0]
    assert cache.get(_point({"a": 1}, seed=1))[0]


def test_label_and_exp_id_do_not_affect_the_key(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="fp0")
    cache.put(_point(label="first"), "v")
    other = Point("other-exp", "tests.runner.workers:ok", {"a": 1},
                  seed=1, label="second")
    hit, value = cache.get(other)
    assert hit and value == "v"


def test_fingerprint_change_invalidates(tmp_path):
    point = _point()
    ResultCache(str(tmp_path), fingerprint="fp0").put(point, "old")
    cache = ResultCache(str(tmp_path), fingerprint="fp1")
    assert not cache.get(point)[0]
    assert cache_key(point, "fp0") != cache_key(point, "fp1")


def test_code_fingerprint_tracks_source_edits(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text("X = 1\n")
    before = code_fingerprint(str(pkg))
    assert before == code_fingerprint(str(pkg))  # memoised + stable
    (pkg / "mod.py").write_text("X = 2\n")
    cache_mod._FINGERPRINT_CACHE.pop(str(pkg))  # drop the memo
    assert code_fingerprint(str(pkg)) != before


def test_corrupt_entry_is_a_miss_not_an_error(tmp_path):
    cache = ResultCache(str(tmp_path), fingerprint="fp0")
    point = _point()
    cache.put(point, "v")
    path = cache._path(cache.key(point))
    path.write_text("{ not json")
    hit, value = cache.get(point)
    assert not hit and value is None
    cache.put(point, "v2")  # and it can be repaired in place
    assert cache.get(point) == (True, "v2")


def test_prune_removes_stale_fingerprints_only(tmp_path):
    old = ResultCache(str(tmp_path), fingerprint="fp-old")
    old.put(_point({"a": 1}), "v1")
    new = ResultCache(str(tmp_path), fingerprint="fp-new")
    new.put(_point({"a": 2}), "v2")
    removed = new.prune()
    assert removed == 1
    assert not new.get(_point({"a": 1}))[0]
    assert new.get(_point({"a": 2})) == (True, "v2")
