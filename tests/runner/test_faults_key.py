"""Satellite: a point's fault plan is part of its identity — cache keys
and the runlog must distinguish faulted from healthy runs, while healthy
points keep their historical keys byte for byte."""

import hashlib
import json

from repro.faults import FaultPlan, FaultSpec
from repro.runner import Progress, ResultCache, cache_key, make_point
from repro.runner.sweep import canonical_params


PLAN = FaultPlan((FaultSpec("hw.nic", "descriptor_drop", start=1.0,
                            duration=2.0, magnitude=0.5),))


def _point(faults=""):
    return make_point("exp", "mod:fn", {"a": 1}, None, 3,
                      label="p", faults=faults)


def test_healthy_content_key_matches_historical_format():
    point = _point()
    expected = f"mod:fn|{canonical_params({'a': 1})}|3"
    assert point.content_key == expected
    # And the cache key is the historical sha256 over key|fingerprint.
    assert cache_key(point, "fp") == hashlib.sha256(
        f"{expected}|fp".encode()).hexdigest()


def test_faulted_point_gets_distinct_identity():
    healthy = _point()
    faulted = _point(faults=PLAN.canonical())
    assert faulted.content_key == (
        healthy.content_key + f"|faults={PLAN.canonical()}")
    assert cache_key(healthy, "fp") != cache_key(faulted, "fp")


def test_cache_never_serves_healthy_result_for_faulted_point(tmp_path):
    cache = ResultCache(root=str(tmp_path), fingerprint="fp")
    healthy = _point()
    cache.put(healthy, {"mpps": 1.0})
    hit, _ = cache.get(healthy)
    assert hit
    hit, _ = cache.get(_point(faults=PLAN.canonical()))
    assert not hit


def test_cache_entry_records_fault_plan(tmp_path):
    cache = ResultCache(root=str(tmp_path), fingerprint="fp")
    faulted = _point(faults=PLAN.canonical())
    cache.put(faulted, {"mpps": 1.0})
    path = cache._path(cache.key(faulted))
    record = json.loads(path.read_text())
    assert record["faults"] == PLAN.canonical()
    healthy = _point()
    cache.put(healthy, {"mpps": 2.0})
    record = json.loads(cache._path(cache.key(healthy)).read_text())
    assert record["faults"] is None


def test_runlog_records_per_point_faults(tmp_path):
    from repro.runner.pool import PointOutcome

    log = tmp_path / "runlog.jsonl"
    progress = Progress(total=2, jsonl_path=str(log), quiet=True)
    faulted = _point(faults=PLAN.canonical())
    healthy = _point()
    progress.point_started(faulted, attempt=1)
    progress.point_finished(PointOutcome(point=faulted, ok=True, value={}))
    progress.point_started(healthy, attempt=1)
    progress.point_finished(PointOutcome(point=healthy, ok=True, value={}))
    records = [json.loads(line) for line in log.read_text().splitlines()]
    by_event = {}
    for rec in records:
        by_event.setdefault(rec["event"], []).append(rec)
    assert [r["faults"] for r in by_event["point_start"]] == [
        PLAN.canonical(), None]
    assert [r["faults"] for r in by_event["point_done"]] == [
        PLAN.canonical(), None]
