"""Process-mode shard pool: runlog heartbeats and failure attribution.

Satellite contract: a wedged or dead shard must be attributable in
``runlog.jsonl`` by shard index (heartbeat/stall/failed events), not
surface as an opaque timeout of the whole run.
"""

import json

import pytest

from repro.runner.shardpool import ShardPoolConfig
from repro.scenario.templates import template
from repro.shard import run_sharded


def _events(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh]


def _quick_spec():
    spec = template("all-to-all-storage")
    spec["measure"] = {"warmup_us": 20.0, "duration_us": 30.0}
    return spec


def test_runlog_heartbeats_attribute_each_shard(tmp_path):
    log = tmp_path / "runlog.jsonl"
    cfg = ShardPoolConfig(heartbeat_s=0.0, stall_s=0.0, runlog=str(log))
    run_sharded(_quick_spec(), 2, mode="process", pool_config=cfg)
    records = _events(log)
    kinds = {r["event"] for r in records}
    assert {"shard_pool_start", "shard_ready", "shard_heartbeat",
            "shard_stall", "shard_resume", "shard_done",
            "shard_pool_done"} <= kinds

    start = next(r for r in records if r["event"] == "shard_pool_start")
    assert start["shards"] == 2
    assert start["plan"]["cut_links"]

    beats = [r for r in records if r["event"] == "shard_heartbeat"]
    assert {b["shard"] for b in beats} == {0, 1}
    for beat in beats:
        assert "ts" in beat and "sim_now_ns" in beat
        assert beat["events_executed"] >= 0

    # Heartbeats are cumulative per shard: a flatlining shard is visible.
    last = {}
    for beat in beats:
        previous = last.get(beat["shard"], -1)
        assert beat["events_executed"] >= previous
        last[beat["shard"]] = beat["events_executed"]

    done = next(r for r in records if r["event"] == "shard_pool_done")
    assert len(done["events_executed"]) == 2
    assert all(count > 0 for count in done["events_executed"])


def test_timeout_failure_names_the_shard(tmp_path):
    log = tmp_path / "runlog.jsonl"
    cfg = ShardPoolConfig(timeout_s=0.0, runlog=str(log))
    with pytest.raises(RuntimeError, match=r"shard 0 failed"):
        run_sharded(_quick_spec(), 2, mode="process", pool_config=cfg)
    records = _events(log)
    failed = [r for r in records if r["event"] == "shard_failed"]
    assert failed and failed[0]["shard"] == 0
    assert "timeout" in failed[0]["error"]
