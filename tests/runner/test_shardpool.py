"""Process-mode shard pool: heartbeats, recovery, and teardown.

Contracts: a wedged or dead shard must be attributable in
``runlog.jsonl`` by shard index (heartbeat/stall/failed events); a
killed worker is resurrected by journal replay with byte-identical
results (``shard_restarted`` / ``shard_replay_done``); and no worker
process or pipe fd survives a failed run.
"""

import json

import pytest

from repro.runner.shardpool import ProcessShards, ShardPoolConfig
from repro.scenario import validate
from repro.scenario.schema import build_topology
from repro.scenario.templates import template
from repro.shard import run_sharded
from repro.topo.partition import partition


def _events(path):
    with open(path, encoding="utf-8") as fh:
        return [json.loads(line) for line in fh]


def _quick_spec():
    spec = template("all-to-all-storage")
    spec["measure"] = {"warmup_us": 20.0, "duration_us": 30.0}
    return spec


def test_runlog_heartbeats_attribute_each_shard(tmp_path):
    log = tmp_path / "runlog.jsonl"
    cfg = ShardPoolConfig(heartbeat_s=0.0, stall_s=0.0, runlog=str(log))
    run_sharded(_quick_spec(), 2, mode="process", pool_config=cfg)
    records = _events(log)
    kinds = {r["event"] for r in records}
    assert {"shard_pool_start", "shard_ready", "shard_heartbeat",
            "shard_stall", "shard_resume", "shard_done",
            "shard_pool_done"} <= kinds

    start = next(r for r in records if r["event"] == "shard_pool_start")
    assert start["shards"] == 2
    assert start["plan"]["cut_links"]

    beats = [r for r in records if r["event"] == "shard_heartbeat"]
    assert {b["shard"] for b in beats} == {0, 1}
    for beat in beats:
        assert "ts" in beat and "sim_now_ns" in beat
        assert beat["events_executed"] >= 0

    # Heartbeats are cumulative per shard: a flatlining shard is visible.
    last = {}
    for beat in beats:
        previous = last.get(beat["shard"], -1)
        assert beat["events_executed"] >= previous
        last[beat["shard"]] = beat["events_executed"]

    done = next(r for r in records if r["event"] == "shard_pool_done")
    assert len(done["events_executed"]) == 2
    assert all(count > 0 for count in done["events_executed"])


def test_timeout_failure_names_the_shard(tmp_path):
    log = tmp_path / "runlog.jsonl"
    cfg = ShardPoolConfig(timeout_s=0.0, max_restarts=0,
                          runlog=str(log))
    with pytest.raises(RuntimeError, match=r"shard 0 failed"):
        run_sharded(_quick_spec(), 2, mode="process", pool_config=cfg)
    records = _events(log)
    failed = [r for r in records if r["event"] == "shard_failed"]
    assert failed and failed[0]["shard"] == 0
    assert "timeout" in failed[0]["error"]


def test_worker_kill_recovers_byte_identically(tmp_path):
    log = tmp_path / "runlog.jsonl"
    healthy = run_sharded(_quick_spec(), 2, mode="process")
    cfg = ShardPoolConfig(restart_backoff_s=0.0, runlog=str(log),
                          kill_plan=((2, 1),))
    recovered = run_sharded(_quick_spec(), 2, mode="process",
                            pool_config=cfg)
    assert json.dumps(recovered, sort_keys=True) == \
        json.dumps(healthy, sort_keys=True)
    records = _events(log)
    restarted = [r for r in records if r["event"] == "shard_restarted"]
    assert restarted and restarted[0]["shard"] == 1
    assert restarted[0]["attempt"] == 1
    replayed = [r for r in records if r["event"] == "shard_replay_done"]
    assert replayed and replayed[0]["shard"] == 1
    assert replayed[0]["commands"] >= 2
    assert not any(r["event"] == "shard_failed" for r in records)
    done = next(r for r in records if r["event"] == "shard_pool_done")
    assert done["restarts"] == [0, 1]
    audit = recovered["l0s0"]["audit"]
    assert audit["ok"] is True and audit["violations"] == []


def test_restart_budget_exhaustion_fails_the_run(tmp_path):
    log = tmp_path / "runlog.jsonl"
    cfg = ShardPoolConfig(restart_backoff_s=0.0, max_restarts=1,
                          runlog=str(log),
                          kill_plan=tuple((w, 0) for w in range(64)))
    with pytest.raises(RuntimeError, match=r"shard 0 failed"):
        run_sharded(_quick_spec(), 2, mode="process", pool_config=cfg)
    records = _events(log)
    failed = next(r for r in records if r["event"] == "shard_failed")
    assert "restart budget" in failed["error"]
    restarted = [r for r in records if r["event"] == "shard_restarted"]
    assert len(restarted) == 1


def test_failure_teardown_leaves_no_orphans():
    normal = validate(_quick_spec())
    plan = partition(build_topology(normal), 2)
    pool = ProcessShards(normal, plan,
                         config=ShardPoolConfig(max_restarts=0))
    procs = list(pool._procs)
    # Wedge the pool after a healthy start: zero reply budget.
    pool.config.timeout_s = 0.0
    with pytest.raises(RuntimeError, match="failed"):
        pool.advance(1000.0, False, [[], []])
    assert all(not p.is_alive() for p in procs)
    for conn in pool._conns:
        assert conn.closed
