"""WorkerPool fault tolerance: retries, crashes, timeouts, degradation."""

from repro.runner import Point, PoolConfig, WorkerPool

W = "tests.runner.workers:"


def _pt(fn, params, label):
    return Point("exp", W + fn, params, seed=0, label=label)


def _run(points, **cfg):
    cfg.setdefault("backoff", 0.01)
    pool = WorkerPool(PoolConfig(**cfg))
    outcomes = pool.run(points)
    return pool, outcomes


def test_serial_success_and_order():
    _, outcomes = _run([_pt("ok", {"a": n}, f"p{n}") for n in (1, 2, 3)],
                       jobs=1)
    assert [o.value["doubled"] for o in outcomes] == [2, 4, 6]
    assert all(o.ok and o.attempts == 1 for o in outcomes)


def test_pool_success_preserves_input_order():
    points = [_pt("ok", {"a": n}, f"p{n}") for n in range(6)]
    _, outcomes = _run(points, jobs=3)
    assert [o.point.point_id for o in outcomes] == [p.point_id
                                                   for p in points]
    assert [o.value["doubled"] for o in outcomes] == [0, 2, 4, 6, 8, 10]


def test_serial_retries_transient_exception(tmp_path):
    params = {"dir": str(tmp_path), "name": "t", "fail_times": 1}
    _, outcomes = _run([_pt("fail_then_ok", params, "t")],
                       jobs=1, retries=2)
    (o,) = outcomes
    assert o.ok and o.attempts == 2 and o.value == {"attempt": 1}


def test_serial_gives_up_after_retries():
    _, outcomes = _run([_pt("boom", {"name": "x"}, "x")], jobs=1, retries=1)
    (o,) = outcomes
    assert not o.ok and o.attempts == 2
    assert "boom on x" in o.error


def test_pool_retries_exception_then_succeeds(tmp_path):
    params = {"dir": str(tmp_path), "name": "t", "fail_times": 1}
    _, outcomes = _run([_pt("fail_then_ok", params, "t"),
                        _pt("ok", {"a": 5}, "fine")], jobs=2, retries=2)
    assert outcomes[0].ok and outcomes[0].value == {"attempt": 1}
    assert outcomes[0].attempts == 2
    assert outcomes[1].ok and outcomes[1].attempts == 1


def test_pool_worker_crash_is_retried_then_succeeds(tmp_path):
    params = {"dir": str(tmp_path), "name": "c", "fail_times": 1}
    _, outcomes = _run([_pt("crash_then_ok", params, "c")],
                       jobs=2, retries=2)
    (o,) = outcomes
    assert o.ok and o.value == {"attempt": 1} and o.attempts == 2


def test_pool_persistent_crash_gives_up_without_killing_sweep(tmp_path):
    params = {"dir": str(tmp_path), "name": "h"}
    _, outcomes = _run([_pt("hard_crash", params, "h"),
                        _pt("ok", {"a": 2}, "fine")], jobs=2, retries=1)
    crash, fine = outcomes
    assert not crash.ok and crash.attempts == 2
    assert "worker died" in crash.error
    assert fine.ok and fine.value["doubled"] == 4
    # both attempts really ran (marker files survive the os._exit)
    assert len(list(tmp_path.glob("h.attempt-*"))) == 2


def test_pool_enforces_per_point_timeout():
    _, outcomes = _run([_pt("sleepy", {"sleep": 30}, "slow"),
                        _pt("ok", {"a": 1}, "fast")],
                       jobs=2, retries=0, timeout=0.5)
    slow, fast = outcomes
    assert not slow.ok and "timeout after 0.5s" in slow.error
    assert fast.ok


def test_degrades_to_serial_when_start_method_is_bogus():
    pool = WorkerPool(PoolConfig(jobs=4, start_method="no-such-method"))
    outcomes = pool.run([_pt("ok", {"a": 3}, "p")])
    assert pool.degraded_to_serial
    assert "no-such-method" in pool.degradation_reason
    assert outcomes[0].ok and outcomes[0].value["doubled"] == 6


def test_callbacks_fire_per_attempt_and_per_point(tmp_path):
    params = {"dir": str(tmp_path), "name": "t", "fail_times": 1}
    starts, dones = [], []
    pool = WorkerPool(PoolConfig(jobs=2, retries=1, backoff=0.01))
    pool.run([_pt("fail_then_ok", params, "t")],
             on_start=lambda p, attempt: starts.append((p.point_id, attempt)),
             on_done=lambda o: dones.append(o.point.point_id))
    assert starts == [("exp/t", 1), ("exp/t", 2)]
    assert dones == ["exp/t"]
