"""Suppression, baseline handling, CLI exit codes — and the meta-test
that keeps the repository itself lint-clean."""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import Baseline, lint_source
from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SIM_MODULE = textwrap.dedent("""\
    import random

    CACHE = {}

    def jitter():
        return random.random()
""")


def run_cli(argv):
    """Invoke the CLI in-process; returns (exit_code, stdout_text)."""
    import contextlib
    import io

    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(argv)
    return code, out.getvalue()


def run_cli_capturing_stderr(argv):
    """Like :func:`run_cli` but returns (exit_code, stdout, stderr)."""
    import contextlib
    import io

    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = main(argv)
    return code, out.getvalue(), err.getvalue()


def write_pkg(root: Path, source: str) -> Path:
    """Materialise ``source`` as a file inside a sim-side package tree."""
    pkg = root / "src" / "repro" / "hw"
    pkg.mkdir(parents=True)
    target = pkg / "fixture.py"
    target.write_text(source)
    return target


# ---------------------------------------------------------------------------
# noqa suppression
# ---------------------------------------------------------------------------

def test_noqa_suppresses_named_code():
    src = "CACHE = {}  # repro: noqa=D106\n"
    assert lint_source("x.py", src, package="repro.hw.x") == []


def test_noqa_multiple_codes_and_whitespace():
    src = ("import random\n"
           "RNG = random.Random(0)  # repro: noqa=D101, D106\n")
    assert lint_source("x.py", src, package="repro.hw.x") == []


def test_noqa_bare_suppresses_everything_on_line():
    src = "CACHE = {}  # repro: noqa\n"
    assert lint_source("x.py", src, package="repro.hw.x") == []


def test_noqa_wrong_code_does_not_suppress():
    src = "CACHE = {}  # repro: noqa=D101\n"
    findings = lint_source("x.py", src, package="repro.hw.x")
    assert [f.code for f in findings] == ["D106"]


def test_noqa_only_applies_to_its_own_line():
    src = ("FIRST = {}  # repro: noqa=D106\n"
           "SECOND = {}\n")
    findings = lint_source("x.py", src, package="repro.hw.x")
    assert [(f.code, f.line) for f in findings] == [("D106", 2)]


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

def test_baseline_split_matches_on_message_not_line():
    findings = lint_source("x.py", BAD_SIM_MODULE, package="repro.hw.x")
    assert len(findings) == 2
    base = Baseline(f.key() for f in findings)
    # Shift every line: the same findings at new positions stay accepted.
    shifted = lint_source("x.py", "\n\n" + BAD_SIM_MODULE,
                          package="repro.hw.x")
    new, accepted, stale = base.split(shifted)
    assert new == [] and len(accepted) == 2 and stale == 0


def test_baseline_split_reports_new_and_stale():
    findings = lint_source("x.py", BAD_SIM_MODULE, package="repro.hw.x")
    base = Baseline(f.key() for f in findings)
    # Only the D106 remains; the D101 entry goes stale, nothing is new.
    remaining = lint_source("x.py", "CACHE = {}\n", package="repro.hw.x")
    new, accepted, stale = base.split(remaining)
    assert new == []
    assert [f.code for f in accepted] == ["D106"]
    assert stale == 1


def test_baseline_is_multiset_aware():
    # Two identical violations need two baseline entries.
    src = ("def start(sim):\n"
           "    sim.process(worker(sim))\n"
           "    sim.process(worker(sim))\n")
    findings = lint_source("x.py", src, package="repro.hw.x")
    assert len(findings) == 2
    assert findings[0].key() == findings[1].key()
    base = Baseline([findings[0].key()])  # only ONE entry
    new, accepted, stale = base.split(findings)
    assert len(new) == 1 and len(accepted) == 1 and stale == 0


def test_baseline_roundtrips_through_json(tmp_path):
    findings = lint_source("x.py", BAD_SIM_MODULE, package="repro.hw.x")
    path = tmp_path / "baseline.json"
    Baseline.save(path, findings)
    loaded = Baseline.load(path)
    new, accepted, stale = loaded.split(findings)
    assert new == [] and stale == 0 and len(accepted) == 2


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_exit_zero_on_clean_tree(tmp_path):
    write_pkg(tmp_path, "LIMITS = (1, 2, 3)\n")
    code, _ = run_cli([str(tmp_path / "src")])
    assert code == 0


def test_cli_exit_one_and_renders_findings(tmp_path):
    target = write_pkg(tmp_path, BAD_SIM_MODULE)
    code, out = run_cli([str(tmp_path / "src")])
    assert code == 1
    assert str(target) in out
    assert "D101" in out and "D106" in out


def test_cli_update_baseline_then_clean(tmp_path):
    write_pkg(tmp_path, BAD_SIM_MODULE)
    baseline = tmp_path / "baseline.json"
    code, _ = run_cli([str(tmp_path / "src"), "--baseline", str(baseline),
                       "--update-baseline"])
    assert code == 0
    payload = json.loads(baseline.read_text())
    assert payload["version"] == 1 and len(payload["findings"]) == 2
    # With the baseline in place the same tree is clean...
    code, out = run_cli([str(tmp_path / "src"), "--baseline", str(baseline)])
    assert code == 0 and out.strip() == ""
    # ...but a fresh finding still fails.
    (tmp_path / "src" / "repro" / "hw" / "extra.py").write_text(
        "PENDING = []\n")
    code, out = run_cli([str(tmp_path / "src"), "--baseline", str(baseline)])
    assert code == 1
    assert "extra.py" in out


def test_cli_strict_baseline_fails_on_stale_entries(tmp_path):
    write_pkg(tmp_path, BAD_SIM_MODULE)
    baseline = tmp_path / "baseline.json"
    run_cli([str(tmp_path / "src"), "--baseline", str(baseline),
             "--update-baseline"])
    # Fix the violations: the baseline entries go stale.
    (tmp_path / "src" / "repro" / "hw" / "fixture.py").write_text(
        "LIMITS = (1,)\n")
    code, _ = run_cli([str(tmp_path / "src"), "--baseline", str(baseline)])
    assert code == 0  # stale alone is not an error by default
    code, _ = run_cli([str(tmp_path / "src"), "--baseline", str(baseline),
                       "--strict-baseline"])
    assert code == 1


def test_cli_names_stale_entries_in_normal_runs(tmp_path):
    write_pkg(tmp_path, BAD_SIM_MODULE)
    baseline = tmp_path / "baseline.json"
    run_cli([str(tmp_path / "src"), "--baseline", str(baseline),
             "--update-baseline"])
    (tmp_path / "src" / "repro" / "hw" / "fixture.py").write_text(
        "LIMITS = (1,)\n")
    code, _, err = run_cli_capturing_stderr(
        [str(tmp_path / "src"), "--baseline", str(baseline)])
    assert code == 0
    assert "stale baseline entry" in err
    assert "D101" in err and "D106" in err  # each stale entry is named


def test_cli_prune_baseline_drops_stale_entries(tmp_path):
    write_pkg(tmp_path, BAD_SIM_MODULE)
    baseline = tmp_path / "baseline.json"
    run_cli([str(tmp_path / "src"), "--baseline", str(baseline),
             "--update-baseline"])
    # Fix one of the two violations: its entry goes stale.
    (tmp_path / "src" / "repro" / "hw" / "fixture.py").write_text(
        "CACHE = {}\n")
    code, _ = run_cli([str(tmp_path / "src"), "--baseline", str(baseline),
                       "--prune-baseline"])
    assert code == 0
    payload = json.loads(baseline.read_text())
    assert [e["code"] for e in payload["findings"]] == ["D106"]
    # After pruning, strict mode passes again.
    code, _ = run_cli([str(tmp_path / "src"), "--baseline", str(baseline),
                       "--strict-baseline"])
    assert code == 0


def test_cli_prune_baseline_conflicts_are_usage_errors(tmp_path):
    write_pkg(tmp_path, "LIMITS = (1,)\n")
    code, _ = run_cli([str(tmp_path / "src"), "--prune-baseline",
                       "--no-baseline"])
    assert code == 2
    code, _ = run_cli([str(tmp_path / "src"), "--prune-baseline",
                       "--update-baseline"])
    assert code == 2


def test_cli_jobs_matches_serial_run(tmp_path):
    write_pkg(tmp_path, BAD_SIM_MODULE)
    serial = run_cli([str(tmp_path / "src"), "--no-baseline"])
    parallel = run_cli([str(tmp_path / "src"), "--no-baseline",
                        "--jobs", "2"])
    assert serial == parallel
    code, _ = run_cli([str(tmp_path / "src"), "--jobs", "0"])
    assert code == 2


def test_cli_timing_reports_per_rule_wall_clock(tmp_path):
    write_pkg(tmp_path, "LIMITS = (1,)\n")
    code, _, err = run_cli_capturing_stderr(
        [str(tmp_path / "src"), "--no-baseline", "--timing"])
    assert code == 0
    assert "timing" in err
    assert "project-build" in err  # the whole-program pass is measured


def test_cli_json_format(tmp_path):
    write_pkg(tmp_path, "CACHE = {}\n")
    code, out = run_cli([str(tmp_path / "src"), "--format", "json"])
    assert code == 1
    payload = json.loads(out)
    assert payload["findings"][0]["code"] == "D106"
    assert payload["findings"][0]["line"] == 1


def test_cli_select_unknown_code_is_usage_error(tmp_path):
    write_pkg(tmp_path, "CACHE = {}\n")
    code, _ = run_cli([str(tmp_path / "src"), "--select", "D999"])
    assert code == 2


def test_cli_list_rules():
    code, out = run_cli(["--list-rules"])
    assert code == 0
    for rule_code in ("D101", "D102", "D103", "D104", "D105", "D106",
                      "D107", "D108", "D109", "D110", "D111"):
        assert rule_code in out


def test_module_entry_point(tmp_path):
    """``python -m repro.lint`` works as documented for CI."""
    write_pkg(tmp_path, "CACHE = {}\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", str(tmp_path / "src"),
         "--no-baseline"],
        capture_output=True, text=True,
        cwd=REPO_ROOT, env={"PYTHONPATH": str(REPO_ROOT / "src"),
                            "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "D106" in proc.stdout


# ---------------------------------------------------------------------------
# meta-test: the repository itself must be clean
# ---------------------------------------------------------------------------

def test_repository_is_lint_clean():
    """Running repro.lint over src/ yields zero non-baselined findings."""
    code, out = run_cli([str(REPO_ROOT / "src"),
                         "--baseline",
                         str(REPO_ROOT / ".repro-lint-baseline.json"),
                         "--strict-baseline"])
    assert code == 0, f"repro.lint found new violations:\n{out}"
