"""Per-rule fixtures: snippets that must flag and must not flag."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source

SIM_PKG = "repro.hw.fake"        # sim-side
HOST_PKG = "repro.runner.fake"   # host-side (runner: wall-clock exempt)


def codes(source: str, package: str = SIM_PKG, select=None):
    src = textwrap.dedent(source)
    return [f.code for f in lint_source("fake.py", src, select=select,
                                        package=package)]


# ---------------------------------------------------------------------------
# D101 — RNG discipline
# ---------------------------------------------------------------------------

def test_d101_flags_random_construction():
    assert codes("""
        import random
        RNG = random.Random(7)
    """) == ["D101"]


def test_d101_flags_module_level_random_calls():
    assert codes("""
        import random
        def jitter():
            return random.random() * 2
    """) == ["D101"]


def test_d101_flags_aliased_and_from_imports():
    assert "D101" in codes("""
        import random as rnd
        r = rnd.Random(0)
    """)
    assert "D101" in codes("""
        from random import Random
        r = Random(0)
    """)
    assert "D101" in codes("""
        from random import randint as ri
        x = ri(1, 6)
    """)


def test_d101_flags_numpy_random():
    assert "D101" in codes("""
        import numpy as np
        def noise():
            return np.random.rand()
    """)


def test_d101_allows_registry_streams_and_annotations():
    assert codes("""
        import random
        from repro.sim.rng import RngRegistry

        def draw(rng: random.Random) -> float:
            return rng.random()

        def setup(registry: RngRegistry):
            return registry.stream("fake.noise")
    """) == []


def test_d101_exempts_the_rng_module_itself():
    src = """
        import random
        def make(seed):
            return random.Random(seed)
    """
    assert codes(src, package="repro.sim.rng") == []
    assert codes(src, package="repro.sim.other") == ["D101"]


def test_d101_does_not_apply_outside_repro():
    assert codes("""
        import random
        r = random.Random(0)
    """, package="tests.sim.test_fake") == []


# ---------------------------------------------------------------------------
# D102 — wall clock
# ---------------------------------------------------------------------------

def test_d102_flags_time_and_datetime():
    assert codes("""
        import time
        def stamp(sim):
            return time.time()
    """) == ["D102"]
    assert codes("""
        import datetime
        def stamp():
            return datetime.datetime.now()
    """) == ["D102"]
    assert codes("""
        from time import monotonic
        def stamp():
            return monotonic()
    """) == ["D102"]
    assert codes("""
        from datetime import datetime
        def stamp():
            return datetime.utcnow()
    """) == ["D102"]


def test_d102_allows_sim_now_and_exempts_runner():
    assert codes("""
        def stamp(sim):
            return sim.now
    """) == []
    assert codes("""
        import time
        def stamp():
            return time.time()
    """, package=HOST_PKG) == []


# ---------------------------------------------------------------------------
# D103 — unordered iteration
# ---------------------------------------------------------------------------

def test_d103_flags_set_literal_iteration():
    assert codes("""
        def tick(sim):
            for x in {1, 2, 3}:
                sim.call_later(1.0, print, x)
    """) == ["D103"]


def test_d103_flags_inferred_set_attributes():
    assert codes("""
        class Ctl:
            def __init__(self):
                self._touched = set()

            def tick(self, sim):
                touched, self._touched = self._touched, set()
                for fid in touched:
                    sim.call_later(1.0, print, fid)
    """) == ["D103"]


def test_d103_flags_set_laundered_through_list():
    assert codes("""
        def tick(sim):
            pending = set()
            for x in list(pending):
                sim.call_later(1.0, print, x)
    """) == ["D103"]


def test_d103_flags_id_sort_key():
    assert codes("""
        def tick(sim, events):
            events.sort(key=id)
            sim.call_later(1.0, print)
    """) == ["D103"]


def test_d103_allows_sorted_iteration_and_membership():
    assert codes("""
        def tick(sim):
            pending = set()
            if 3 in pending:
                pass
            for x in sorted(pending):
                sim.call_later(1.0, print, x)
    """) == []


def test_d103_requires_scheduling_module():
    # Same set iteration, but the module never schedules: not flagged.
    assert codes("""
        def summarise(items):
            out = []
            for x in {1, 2, 3}:
                out.append(x)
            return out
    """) == []


def test_d103_name_demoted_when_rebound_ordered():
    assert codes("""
        def tick(sim):
            batch = set()
            batch = sorted(batch)
            for x in batch:
                sim.call_later(1.0, print, x)
    """) == []


# ---------------------------------------------------------------------------
# D104 — engine idiom misuse
# ---------------------------------------------------------------------------

# D104 only applies to modules that touch the scheduler; fixtures that do
# not already call a scheduling API carry this helper to opt in.
SCHED = "\n        def _touch(sim):\n            sim.call_later(1.0, print)\n"


def test_d104_flags_bad_yield_values():
    assert codes("""
        def proc(sim):
            yield "not a delay"
    """ + SCHED) == ["D104"]
    assert codes("""
        def proc(sim):
            yield None
    """ + SCHED) == ["D104"]
    assert codes("""
        def proc(sim):
            yield [sim.timeout(1)]
    """) == ["D104"]
    assert codes("""
        def proc(sim):
            yield -5.0
    """ + SCHED) == ["D104"]


def test_d104_allows_kernel_idioms():
    assert codes("""
        def proc(sim, delay):
            yield 10.0
            yield delay
            yield sim.timeout(5.0)
            t = yield sim.event()
            yield from sub(sim)

        def sub(sim):
            yield 1.0
    """) == []


def test_d104_allows_bare_yield_generator_idiom():
    assert codes("""
        def recv(sim):
            return []
            yield  # pragma: no cover - makes this a generator
    """ + SCHED) == []


def test_d104_ignores_non_sim_generators():
    # A data generator yielding tuples is not a process.
    assert codes("""
        def pairs(items):
            for a, b in items:
                yield (b, a)

        def _touch(sim):
            sim.call_later(1.0, print)
    """) == []


def test_d104_flags_lambda_loop_capture():
    assert codes("""
        def arm(sim, flows):
            for fid in flows:
                sim.call_later(10.0, lambda: print(fid))
    """) == ["D104"]


def test_d104_allows_args_binding_and_loop_free_lambdas():
    assert codes("""
        def arm(sim, flows):
            for fid in flows:
                sim.call_later(10.0, print, fid)
            sim.call_later(10.0, lambda: print("done"))
    """) == []


def test_d104_flags_literal_negative_delay_call():
    assert codes("""
        def arm(sim):
            sim.call_later(-1.0, print)
    """) == ["D104"]


# ---------------------------------------------------------------------------
# D105 — dropped handles
# ---------------------------------------------------------------------------

def test_d105_flags_discarded_process():
    assert codes("""
        def start(sim):
            sim.process(worker(sim))
    """) == ["D105"]


def test_d105_allows_kept_process_handle():
    assert codes("""
        class Server:
            def start(self):
                self._proc = self.sim.process(worker(self.sim))
    """) == []


def test_d105_flags_discarded_timeout_and_event():
    assert codes("""
        def proc(sim):
            sim.timeout(5.0)
            yield 1.0
    """) == ["D105"]


def test_d105_flags_never_read_cancel_handle():
    assert codes("""
        def arm(sim):
            handle = sim.call_later(5.0, print)
    """) == ["D105"]


def test_d105_allows_cancelled_handle_and_bare_call_later():
    assert codes("""
        def arm(sim, flag):
            handle = sim.call_later(5.0, print)
            if flag:
                sim.cancel(handle)
            sim.call_later(1.0, print)
    """) == []


def test_d105_sim_side_only():
    assert codes("""
        def start(sim):
            sim.process(worker(sim))
    """, package="repro.experiments.fake") == []


# ---------------------------------------------------------------------------
# D106 — mutable state
# ---------------------------------------------------------------------------

def test_d106_flags_mutable_defaults():
    assert codes("""
        def f(items=[]):
            return items
    """) == ["D106"]
    assert codes("""
        def f(*, table={}):
            return table
    """) == ["D106"]
    assert codes("""
        def f(seen=set()):
            return seen
    """) == ["D106"]


def test_d106_flags_module_level_mutable_state():
    assert codes("""
        CACHE = {}
    """) == ["D106"]
    assert codes("""
        from collections import deque
        PENDING = deque()
    """) == ["D106"]


def test_d106_allows_immutable_and_dunder_and_class_state():
    assert codes("""
        __all__ = ["f"]
        LIMITS = (1, 2, 3)
        NAMES = frozenset({"a"})

        class C:
            def __init__(self):
                self.items = []

        def f(items=None):
            return items or ()
    """) == []


def test_d106_sim_side_only():
    assert codes("CACHE = {}", package=HOST_PKG) == []


# ---------------------------------------------------------------------------
# cross-cutting: select + syntax errors
# ---------------------------------------------------------------------------

def test_select_restricts_rules():
    src = """
        import random
        RNG = random.Random(7)
        CACHE = {}
    """
    assert codes(src) == ["D101", "D106"]
    assert codes(src, select=["D106"]) == ["D106"]


def test_syntax_error_reported_as_finding():
    assert codes("def broken(:\n    pass") == ["E999"]
