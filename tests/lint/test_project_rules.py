"""The whole-program rule family (D107-D111).

Every fixture here is a *multi-module* package tree: the violation lives
in the interaction between files, so each test also proves the per-file
pass (``lint_source``) cannot see it — that is the point of the
project-scope rules.
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List

from repro.lint import lint_paths, lint_source
from repro.lint.core import Finding

REPO_ROOT = Path(__file__).resolve().parents[2]


def build_tree(root: Path, files: Dict[str, str]) -> Path:
    """Materialise ``files`` (relative to ``src/``) as a package tree."""
    src = root / "src"
    for rel, text in files.items():
        target = src / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    return src


def run_rules(src: Path, *codes: str) -> List[Finding]:
    return lint_paths([str(src)], select=list(codes))


def file_pass_misses(src: Path, rel: str, code: str) -> bool:
    """True when the per-file pass on the violating file alone cannot
    produce ``code`` — the cross-module blindness each fixture seeds."""
    path = src / rel
    findings = lint_source(str(path), path.read_text(), select=[code])
    return all(f.code != code for f in findings)


# ---------------------------------------------------------------------------
# D107 — shard-domain discipline
# ---------------------------------------------------------------------------

def test_d107_post_keyed_via_receiver_helper_is_clean(tmp_path):
    src = build_tree(tmp_path, {
        "repro/topo/helpers.py": """\
            def deliver(registry, key, payload):
                registry.post_keyed(key, payload)
        """,
        "repro/topo/chan.py": """\
            from repro.topo.helpers import deliver

            def inject_packet(registry, key, payload):
                deliver(registry, key, payload)
        """,
    })
    assert run_rules(src, "D107") == []


def test_d107_flags_post_keyed_reachable_from_non_receiver(tmp_path):
    # Same helper, but a second module calls it from outside the channel
    # receivers: the helper is no longer "private to the receivers".
    src = build_tree(tmp_path, {
        "repro/topo/helpers.py": """\
            def deliver(registry, key, payload):
                registry.post_keyed(key, payload)
        """,
        "repro/topo/chan.py": """\
            from repro.topo.helpers import deliver

            def inject_packet(registry, key, payload):
                deliver(registry, key, payload)
        """,
        "repro/topo/replay.py": """\
            from repro.topo.helpers import deliver

            def local_replay(registry, key, payload):
                deliver(registry, key, payload)
        """,
    })
    findings = run_rules(src, "D107")
    assert [f.code for f in findings] == ["D107"]
    assert findings[0].path.endswith("helpers.py")
    assert "post_keyed" in findings[0].message
    # The caller that breaks the contract is two files away: the per-file
    # pass over helpers.py alone cannot know it.
    assert file_pass_misses(src, "repro/topo/helpers.py", "D107")


def test_d107_reserve_key_requires_an_emit(tmp_path):
    src = build_tree(tmp_path, {
        "repro/shard/keys.py": """\
            def forward_cut(registry, emitter):
                key = registry.reserve_key()
                emitter.emit_boundary(key)

            def burn(registry):
                return registry.reserve_key()
        """,
    })
    findings = run_rules(src, "D107")
    assert len(findings) == 1
    assert "reserve_key" in findings[0].message
    assert "burn" in findings[0].message


def test_d107_wire_send_only_from_attach_channels(tmp_path):
    src = build_tree(tmp_path, {
        "repro/topo/install.py": """\
            def attach_channels(port, send):
                _install(port, send)

            def _install(port, send):
                port._wire_send = send
        """,
        "repro/topo/hijack.py": """\
            def hijack(port, send):
                port._wire_send = send
        """,
    })
    findings = run_rules(src, "D107")
    assert len(findings) == 1
    assert findings[0].path.endswith("hijack.py")
    assert "_wire_send" in findings[0].message


# ---------------------------------------------------------------------------
# D108 — audit-wiring drift
# ---------------------------------------------------------------------------

_NIC_MODULE = """\
    class Nic:
        def __init__(self):
            self.rx_packets = 0
            self.dropped_packets = 0
"""


def test_d108_resolves_sources_against_cross_module_class(tmp_path):
    src = build_tree(tmp_path, {
        "repro/hw/nic.py": _NIC_MODULE,
        "repro/audit/wiring.py": """\
            from repro.hw.nic import Nic

            def wire(ledger, nic: Nic):
                acct = ledger.account("nic", "packets")
                acct.debit("rx", nic.rx_packets)
                acct.credit("buffered", (nic, "buffered_pkts"))
        """,
    })
    findings = run_rules(src, "D108")
    assert len(findings) == 1
    assert "buffered_pkts" in findings[0].message
    # Nic's attribute set lives in another module: per-file blindness.
    assert file_pass_misses(src, "repro/audit/wiring.py", "D108")


def test_d108_clean_when_every_source_resolves(tmp_path):
    src = build_tree(tmp_path, {
        "repro/hw/nic.py": _NIC_MODULE,
        "repro/audit/wiring.py": """\
            from repro.hw.nic import Nic

            def wire(ledger, nic: Nic):
                acct = ledger.account("nic", "packets")
                acct.debit("rx", nic.rx_packets)
                acct.credit("dropped", (nic, "dropped_packets"))
        """,
    })
    assert run_rules(src, "D108") == []


_ARCH_BASE = """\
    class IOArchitecture:
        def audit_register(self, ledger):
            ledger.account("arch.delivery", "packets")
            ledger.account("arch.app_rings", "slots")
            ledger.account("arch.descriptors", "slots")
"""


def test_d108_flags_override_without_super_or_standard_trio(tmp_path):
    src = build_tree(tmp_path, {
        "repro/io_arch/base.py": _ARCH_BASE,
        "repro/io_arch/custom.py": """\
            from repro.io_arch.base import IOArchitecture

            class GoodArch(IOArchitecture):
                def audit_register(self, ledger):
                    super().audit_register(ledger)
                    ledger.account("arch.extra", "slots")

            class BadArch(IOArchitecture):
                def audit_register(self, ledger):
                    ledger.account("arch.extra", "slots")
        """,
    })
    findings = run_rules(src, "D108")
    assert len(findings) == 1
    assert "BadArch" in findings[0].message
    assert "arch.delivery" in findings[0].message
    # The standard-trio contract comes from the base class's module.
    assert file_pass_misses(src, "repro/io_arch/custom.py", "D108")


def test_d108_flags_subclass_without_the_hook(tmp_path):
    src = build_tree(tmp_path, {
        "repro/io_arch/base.py": """\
            class IOArchitecture:
                pass
        """,
        "repro/io_arch/naked.py": """\
            from repro.io_arch.base import IOArchitecture

            class NakedArch(IOArchitecture):
                pass
        """,
    })
    findings = run_rules(src, "D108")
    assert any("NakedArch" in f.message
               and "audit_register" in f.message for f in findings)


# ---------------------------------------------------------------------------
# D109 — RNG stream-name registry
# ---------------------------------------------------------------------------

def test_d109_flags_cross_module_literal_collision(tmp_path):
    src = build_tree(tmp_path, {
        "repro/hw/alpha.py": """\
            class Alpha:
                def setup(self, rng):
                    self.r = rng.stream("shared.seq")
        """,
        "repro/net/beta.py": """\
            class Beta:
                def setup(self, rng):
                    self.r = rng.stream("shared.seq")
        """,
    })
    findings = run_rules(src, "D109")
    assert len(findings) == 2  # both colliding sites are named
    assert all("shared.seq" in f.message for f in findings)
    # Each file is clean in isolation — the collision IS the violation.
    assert file_pass_misses(src, "repro/hw/alpha.py", "D109")
    assert file_pass_misses(src, "repro/net/beta.py", "D109")


def test_d109_distinct_literals_are_clean(tmp_path):
    src = build_tree(tmp_path, {
        "repro/hw/alpha.py": """\
            class Alpha:
                def setup(self, rng):
                    self.r = rng.stream("alpha.seq")
        """,
        "repro/net/beta.py": """\
            class Beta:
                def setup(self, rng):
                    self.r = rng.stream("beta.seq")
        """,
    })
    assert run_rules(src, "D109") == []


def test_d109_flags_dynamic_name_outside_approved_helper(tmp_path):
    src = build_tree(tmp_path, {
        "repro/hw/dyn.py": """\
            def make(rng, i):
                return rng.stream(f"dyn.{i}")
        """,
    })
    findings = run_rules(src, "D109")
    assert len(findings) == 1
    assert "dynamic" in findings[0].message


def test_d109_approved_helper_may_build_dynamic_names(tmp_path):
    # config.stream_helpers approves HostRng.stream in repro.topo.fabric.
    src = build_tree(tmp_path, {
        "repro/topo/fabric.py": """\
            class HostRng:
                def stream(self, name):
                    return self.registry.stream(self.host + "." + name)
        """,
    })
    assert run_rules(src, "D109") == []


def test_d109_flags_raw_registry_draw_in_topo(tmp_path):
    src = build_tree(tmp_path, {
        "repro/sim/rng.py": """\
            class RngRegistry:
                def stream(self, name):
                    return name
        """,
        "repro/topo/wiring.py": """\
            from repro.sim.rng import RngRegistry

            def draw(registry: RngRegistry):
                return registry.stream("topo.local")
        """,
    })
    findings = run_rules(src, "D109")
    assert len(findings) == 1
    assert "HostRng" in findings[0].message
    # RngRegistry is defined in another module; a per-file pass cannot
    # type the receiver.
    assert file_pass_misses(src, "repro/topo/wiring.py", "D109")


# ---------------------------------------------------------------------------
# D110 — fault-site registry drift
# ---------------------------------------------------------------------------

_INJECTORS = textwrap.dedent("""\
    def _handler(site, kind):
        def deco(fn):
            return fn
        return deco

    @_handler("wire", "drop")
    def _wire_drop(controller, spec, index):
        return None
""")


def test_d110_declared_site_without_handler_and_vice_versa(tmp_path):
    src = build_tree(tmp_path, {
        "repro/faults/plan.py": """\
            FAULT_SITES = {
                "wire": ("drop",),
                "nic": ("stall",),
            }
        """,
        "repro/faults/injectors.py": _INJECTORS + textwrap.dedent("""\

            @_handler("ghost", "boom")
            def _ghost(controller, spec, index):
                return None
        """),
    })
    findings = run_rules(src, "D110")
    messages = [f.message for f in findings]
    assert any("'nic'" in m for m in messages)
    assert any("'ghost'" in m for m in messages)
    assert len(findings) == 2
    # The handlers live in injectors.py, the registry in plan.py.
    assert file_pass_misses(src, "repro/faults/plan.py", "D110")
    assert file_pass_misses(src, "repro/faults/injectors.py", "D110")


def test_d110_matching_registry_and_handlers_is_clean(tmp_path):
    src = build_tree(tmp_path, {
        "repro/faults/plan.py": """\
            FAULT_SITES = {
                "wire": ("drop",),
            }
        """,
        "repro/faults/injectors.py": _INJECTORS,
    })
    assert run_rules(src, "D110") == []


def test_d110_docs_table_drift(tmp_path):
    build_tree(tmp_path, {
        "repro/faults/plan.py": """\
            FAULT_SITES = {
                "wire": ("drop", "dup"),
                "nic": ("stall",),
            }
        """,
        "repro/faults/injectors.py": _INJECTORS + textwrap.dedent("""\

            @_handler("wire", "dup")
            def _wire_dup(controller, spec, index):
                return None

            @_handler("nic", "stall")
            def _nic_stall(controller, spec, index):
                return None
        """),
    })
    docs = tmp_path / "docs" / "FAULTS.md"
    docs.parent.mkdir()
    docs.write_text(textwrap.dedent("""\
        | site | kinds | notes |
        |------|-------|-------|
        | `wire` | `drop` | missing dup |
        | `legacy` | `boom` | undeclared |
    """))
    findings = run_rules(tmp_path / "src", "D110")
    messages = " / ".join(f.message for f in findings)
    assert "'nic'" in messages          # declared, undocumented
    assert "'legacy'" in messages       # documented, undeclared
    assert "'wire'" in messages         # kind sets disagree
    assert len(findings) == 3


# ---------------------------------------------------------------------------
# D111 — interprocedural nondeterminism taint
# ---------------------------------------------------------------------------

def test_d111_flags_wallclock_reached_through_host_side_helper(tmp_path):
    src = build_tree(tmp_path, {
        "repro/runner/util.py": """\
            import time

            def now_ms():
                return time.monotonic() * 1000.0
        """,
        "repro/hw/engine.py": """\
            from repro.runner.util import now_ms

            def step(sim):
                return now_ms()
        """,
    })
    findings = run_rules(src, "D111")
    assert len(findings) == 1
    assert findings[0].path.endswith("engine.py")
    assert "wall-clock" in findings[0].message
    assert "now_ms()" in findings[0].message
    # engine.py never touches a clock itself: D102 and a per-file D111
    # pass are both blind to it (runner is wall-clock-exempt).
    assert file_pass_misses(src, "repro/hw/engine.py", "D111")
    assert lint_source(str(src / "repro/hw/engine.py"),
                       (src / "repro/hw/engine.py").read_text(),
                       select=["D102"]) == []


def test_d111_does_not_duplicate_per_file_findings(tmp_path):
    # The clock read sits in a sim-side module: that occurrence is
    # D102's finding, and callers of it are not re-flagged by D111.
    src = build_tree(tmp_path, {
        "repro/hw/clock.py": """\
            import time

            def read():
                return time.monotonic()
        """,
        "repro/hw/engine.py": """\
            from repro.hw.clock import read

            def step(sim):
                return read()
        """,
    })
    findings = lint_paths([str(src)], select=["D102", "D111"])
    assert [f.code for f in findings] == ["D102"]
    assert findings[0].path.endswith("clock.py")


def test_d111_flags_direct_os_entropy_in_sim_side_code(tmp_path):
    src = build_tree(tmp_path, {
        "repro/hw/ids.py": """\
            import uuid

            def fresh():
                return uuid.uuid4().hex
        """,
    })
    findings = run_rules(src, "D111")
    assert len(findings) == 1
    assert "OS-entropy" in findings[0].message


def test_d111_host_side_callers_are_not_flagged(tmp_path):
    src = build_tree(tmp_path, {
        "repro/runner/util.py": """\
            import time

            def now_ms():
                return time.monotonic() * 1000.0

            def progress():
                return now_ms()
        """,
    })
    assert run_rules(src, "D111") == []


# ---------------------------------------------------------------------------
# interplay: suppression, baseline, --select, --jobs
# ---------------------------------------------------------------------------

def test_project_findings_respect_noqa(tmp_path):
    src = build_tree(tmp_path, {
        "repro/hw/ids.py": """\
            import uuid

            def fresh():
                return uuid.uuid4().hex  # repro: noqa=D111 -- test fixture
        """,
    })
    assert run_rules(src, "D111") == []


def test_select_isolates_project_rules_from_file_rules(tmp_path):
    src = build_tree(tmp_path, {
        "repro/hw/mixed.py": """\
            import uuid

            CACHE = {}

            def fresh():
                return uuid.uuid4().hex
        """,
    })
    assert {f.code for f in run_rules(src, "D106")} == {"D106"}
    assert {f.code for f in run_rules(src, "D111")} == {"D111"}
    both = run_rules(src, "D106", "D111")
    assert sorted(f.code for f in both) == ["D106", "D111"]


def test_jobs_parallel_pass_matches_serial(tmp_path):
    src = build_tree(tmp_path, {
        "repro/hw/mixed.py": """\
            import uuid

            CACHE = {}

            def fresh():
                return uuid.uuid4().hex
        """,
        "repro/runner/util.py": """\
            import time

            def now_ms():
                return time.monotonic()
        """,
        "repro/hw/engine.py": """\
            from repro.runner.util import now_ms

            def step(sim):
                return now_ms()
        """,
    })
    serial = lint_paths([str(src)], jobs=1)
    parallel = lint_paths([str(src)], jobs=2)
    assert serial == parallel
    assert any(f.code == "D111" for f in serial)


def test_repository_is_clean_under_whole_program_rules():
    """The real tree passes D107-D111 with no baseline at all: every
    accepted exception is an inline, justified noqa."""
    from tests.lint.test_cli import run_cli
    code, out = run_cli([
        str(REPO_ROOT / "src"),
        "--no-baseline", "--select", "D107,D108,D109,D110,D111",
    ])
    assert code == 0, f"whole-program rules found violations:\n{out}"
