"""``python -m repro.scenario`` CLI: validate / show / list-templates."""

import json

from repro.scenario import TEMPLATE_NAMES, canonical, template
from repro.scenario.cli import main


def test_list_templates(capsys):
    assert main(["list-templates"]) == 0
    out = capsys.readouterr().out
    for name in TEMPLATE_NAMES:
        assert name in out


def test_validate_all_templates(capsys):
    assert main(["validate", *TEMPLATE_NAMES]) == 0
    out = capsys.readouterr().out
    assert out.count("ok ") == len(TEMPLATE_NAMES)


def test_validate_file_and_bad_file(tmp_path, capsys):
    good = tmp_path / "good.json"
    good.write_text(json.dumps(template("paper-baseline")))
    bad = tmp_path / "bad.json"
    spec = template("paper-baseline")
    spec["hosts"] = {"*": {"arch": "tcp"}}
    bad.write_text(json.dumps(spec))
    assert main(["validate", str(good)]) == 0
    capsys.readouterr()
    assert main(["validate", str(good), str(bad)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "hosts.*.arch" in out


def test_validate_missing_file(capsys):
    assert main(["validate", "no-such-scenario"]) == 1
    assert "neither a shipped template" in capsys.readouterr().out


def test_validate_non_json_file(tmp_path, capsys):
    junk = tmp_path / "junk.json"
    junk.write_text("{not json")
    assert main(["validate", str(junk)]) == 1
    assert "not valid JSON" in capsys.readouterr().out


def test_show_canonical_matches_library(capsys):
    assert main(["show", "incast-32", "--canonical"]) == 0
    out = capsys.readouterr().out.strip()
    assert out == canonical(template("incast-32"))


def test_show_pretty_is_valid_json(capsys):
    assert main(["show", "paper-baseline"]) == 0
    normal = json.loads(capsys.readouterr().out)
    assert normal["name"] == "paper-baseline"
