"""Shipped templates: all validate, are fresh copies, and are described."""

import pytest

from repro.scenario import (TEMPLATE_NAMES, describe, incast_template,
                            template, validate)


def test_catalog_names_and_order():
    assert TEMPLATE_NAMES == ("paper-baseline", "incast-32",
                              "multi-tenant-ddio", "all-to-all-storage",
                              "flash-crowd")


@pytest.mark.parametrize("name", TEMPLATE_NAMES)
def test_every_template_validates(name):
    normal = validate(template(name))
    assert normal["name"] == name


@pytest.mark.parametrize("name", TEMPLATE_NAMES)
def test_describe_is_nonempty(name):
    assert describe(name)


def test_template_returns_fresh_copies():
    a = template("paper-baseline")
    a["seed"] = 999
    a["hosts"]["*"]["arch"] = "baseline"
    b = template("paper-baseline")
    assert b["seed"] == 0 and b["hosts"]["*"]["arch"] == "ceio"


def test_unknown_template_rejected():
    with pytest.raises(KeyError, match="unknown scenario template"):
        template("nope")
    with pytest.raises(KeyError, match="unknown scenario template"):
        describe("nope")


def test_incast_family_is_parameterised_fan_in():
    assert incast_template(32) == template("incast-32")
    eight = validate(incast_template(8))
    assert eight["topology"]["params"]["n_clients"] == 8
    assert eight["tenants"][0]["flows"] == 8
    # Wide fan-ins widen the receiver's core pool (one eRPC core/flow).
    assert validate(incast_template(32))["hosts"]["*"]["cores"] == 34
    assert validate(incast_template(8))["hosts"]["*"]["cores"] == 16
