"""Schema round-trip and rejection suite: every invalid field yields a
path-addressed ``ScenarioError``; validation is normalisation; canonical
serialisation is a fixed point."""

import json

import pytest

from repro.scenario import (ScenarioError, TEMPLATE_NAMES, canonical,
                            template, validate)


def _base(**overrides):
    spec = {
        "version": 1,
        "topology": {"kind": "star", "params": {"n_clients": 2}},
        "tenants": [{"name": "t", "workload": "kvstore"}],
    }
    spec.update(overrides)
    return spec


# ----------------------------------------------------------------------
# Round-trip / normalisation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", TEMPLATE_NAMES)
def test_canonical_is_a_fixed_point_for_every_template(name):
    c = canonical(template(name))
    assert canonical(json.loads(c)) == c


def test_validate_fills_all_defaults():
    normal = validate(_base())
    assert normal["seed"] == 0 and normal["name"] == ""
    assert normal["topology"]["params"] == {"n_clients": 2, "n_servers": 1}
    assert normal["topology"]["links"]["rate_gbps"] == 200.0
    assert normal["topology"]["links"]["ack_delay_us"] is None
    assert normal["hosts"]["*"]["arch"] == "ceio"
    assert normal["hosts"]["*"]["cores"] is None
    tenant = normal["tenants"][0]
    assert tenant["host"] == "s0"  # first server
    assert tenant["flows"] == 1 and tenant["outstanding"] == 96
    assert normal["fault_plan"] == []
    assert normal["measure"] == {"warmup_us": 400.0, "duration_us": 600.0}


def test_validate_is_idempotent():
    once = validate(_base())
    assert validate(once) == once


def test_explicit_values_survive_round_trip():
    spec = _base(seed=11, name="x",
                 hosts={"s0": {"arch": "shring", "scale": 2}},
                 fault_plan=[{"site": "net.link", "kind": "loss",
                              "start": 1.0, "duration": 2.0,
                              "host": "s0"}])
    spec["topology"]["links"] = {"ack_delay_us": 0.2}
    normal = validate(spec)
    assert normal["seed"] == 11
    assert normal["topology"]["links"]["ack_delay_us"] == 0.2
    assert normal["hosts"]["s0"]["arch"] == "shring"
    assert normal["hosts"]["s0"]["scale"] == 2
    assert normal["fault_plan"][0]["host"] == "s0"


# ----------------------------------------------------------------------
# Rejection suite: (mutation, expected error path)
# ----------------------------------------------------------------------
def _no_topology():
    spec = _base()
    del spec["topology"]
    return spec


def _no_tenants():
    spec = _base()
    del spec["tenants"]
    return spec


REJECTIONS = [
    (lambda: "not a dict", ""),
    (lambda: _base(bogus=1), "bogus"),
    (lambda: _base(version=2), "version"),
    (lambda: _base(version=None), "version"),
    (lambda: _base(seed=True), "seed"),
    (lambda: _base(seed="0"), "seed"),
    (lambda: _base(name=7), "name"),
    (lambda: _no_topology(), "topology"),
    (lambda: _base(topology=[]), "topology"),
    (lambda: _base(topology={}), "topology.kind"),
    (lambda: _base(topology={"kind": "ring"}), "topology.kind"),
    (lambda: _base(topology={"kind": "star"}), "topology.params.n_clients"),
    (lambda: _base(topology={"kind": "star",
                             "params": {"n_clients": 0}}),
     "topology.params.n_clients"),
    (lambda: _base(topology={"kind": "two_host",
                             "params": {"n_clients": 2}}),
     "topology.params.n_clients"),
    (lambda: _base(topology={"kind": "star",
                             "params": {"n_clients": 2},
                             "links": {"rate_gbps": -1}}),
     "topology.links.rate_gbps"),
    (lambda: _base(topology={"kind": "star",
                             "params": {"n_clients": 2},
                             "links": {"mtu": 9000}}),
     "topology.links.mtu"),
    (lambda: _base(hosts={"nope": {}}), "hosts.nope"),
    (lambda: _base(hosts={"c0": {}}), "hosts.c0"),  # client, not server
    (lambda: _base(hosts={"*": {"arch": "tcp"}}), "hosts.*.arch"),
    (lambda: _base(hosts={"*": {"cores": 0}}), "hosts.*.cores"),
    (lambda: _base(hosts={"*": {"scale": -2}}), "hosts.*.scale"),
    (lambda: _base(hosts={"*": {"set_associative_cache": 1}}),
     "hosts.*.set_associative_cache"),
    (lambda: _base(hosts={"*": {"ways": 8}}), "hosts.*.ways"),
    (lambda: _no_tenants(), "tenants"),
    (lambda: _base(tenants=[]), "tenants"),
    (lambda: _base(tenants=[{"workload": "kvstore"}]), "tenants[0].name"),
    (lambda: _base(tenants=[{"name": "t"}]), "tenants[0].workload"),
    (lambda: _base(tenants=[{"name": "t", "workload": "memcached"}]),
     "tenants[0].workload"),
    (lambda: _base(tenants=[{"name": "t", "workload": "kvstore"},
                            {"name": "t", "workload": "erpc"}]),
     "tenants[1].name"),
    (lambda: _base(tenants=[{"name": "t", "workload": "kvstore",
                             "host": "c0"}]), "tenants[0].host"),
    (lambda: _base(tenants=[{"name": "t", "workload": "kvstore",
                             "flows": 0}]), "tenants[0].flows"),
    (lambda: _base(tenants=[{"name": "t", "workload": "kvstore",
                             "transport": "tcp"}]),
     "tenants[0].transport"),
    (lambda: _base(tenants=[{"name": "t", "workload": "kvstore",
                             "sources": ["ghost"]}]),
     "tenants[0].sources[0]"),
    (lambda: _base(tenants=[{"name": "t", "workload": "kvstore",
                             "priority": 3}]), "tenants[0].priority"),
    (lambda: _base(fault_plan={}), "fault_plan"),
    (lambda: _base(fault_plan=[{"kind": "loss"}]), "fault_plan[0]"),
    (lambda: _base(fault_plan=[{"site": "net.link", "kind": "loss",
                                "host": "c0"}]), "fault_plan[0].host"),
    (lambda: _base(measure={"duration_us": 0}), "measure.duration_us"),
    (lambda: _base(measure={"cooldown_us": 5.0}), "measure.cooldown_us"),
]


@pytest.mark.parametrize("build,path",
                         REJECTIONS,
                         ids=[path or "not-a-mapping"
                              for _, path in REJECTIONS])
def test_invalid_field_is_rejected_with_path(build, path):
    with pytest.raises(ScenarioError) as err:
        validate(build())
    assert err.value.path == path
    # The rendered message leads with the path, so CLI users can find
    # the offending field without a stack trace.
    if path:
        assert str(err.value).startswith(path)


# ----------------------------------------------------------------------
# Open-loop demand block (see docs/WORKLOADS.md)
# ----------------------------------------------------------------------
def _demand(profile=None, tenant=None, **block):
    """A valid two-tenant spec with a demand block, then mutated."""
    spec = _base(tenants=[{"name": "kv", "workload": "kvstore"},
                          {"name": "bg", "workload": "kvstore"}])
    spec["demand"] = {
        "profiles": {"p0": profile if profile is not None
                     else {"kind": "steady", "rate_mpps": 4.0}},
        "tenants": {"kv": tenant if tenant is not None
                    else {"profile": "p0"}},
    }
    spec["demand"].update(block)
    return spec


def test_demand_block_normalises_and_round_trips():
    normal = validate(_demand())
    assert normal["demand"]["window_us"] == 50.0
    entry = normal["demand"]["tenants"]["kv"]
    assert entry["arrivals"] == "poisson"
    assert entry["slo"] == {}
    c = canonical(_demand())
    assert canonical(json.loads(c)) == c
    assert validate(normal) == normal


def test_absent_demand_block_is_omitted_from_normal_form():
    """Closed-loop scenarios keep their canonical bytes: no ``demand``
    key appears unless the input declared one."""
    assert "demand" not in validate(_base())
    assert '"demand"' not in canonical(_base())


def test_ceio_override_normalises():
    spec = _base(hosts={"s0": {"ceio": {"admission_control": True}}})
    normal = validate(spec)
    assert normal["hosts"]["s0"]["ceio"] == {
        "admission_control": True,
        "admission_ring_limit": 256,
        "admission_slow_bytes_limit": 96 * 1024,
    }
    assert "ceio" not in validate(_base()).get("hosts", {}).get("*", {})


DEMAND_REJECTIONS = [
    (lambda: _demand(bogus=1), "demand.bogus"),
    (lambda: _demand(window_us=0), "demand.window_us"),
    (lambda: _demand(profiles={}), "demand.profiles"),
    (lambda: _demand(tenants={}), "demand.tenants"),
    (lambda: _demand(tenants={"ghost": {"profile": "p0"}}),
     "demand.tenants.ghost"),
    (lambda: _demand(tenant={"profile": "nope"}),
     "demand.tenants.kv.profile"),
    (lambda: _demand(tenant={"profile": "p0", "bogus": 1}),
     "demand.tenants.kv.bogus"),
    (lambda: _demand(tenant={"profile": "p0", "arrivals": "uniform"}),
     "demand.tenants.kv.arrivals"),
    (lambda: _demand(tenant={"profile": "p0", "shape": 1.0}),
     "demand.tenants.kv.shape"),
    (lambda: _demand(tenant={"profile": "p0",
                             "slo": {"p999_ms": 1.0}}),
     "demand.tenants.kv.slo.p999_ms"),
    (lambda: _demand(tenant={"profile": "p0",
                             "slo": {"p999_us": -5.0}}),
     "demand.tenants.kv.slo.p999_us"),
    (lambda: _demand(profile={"kind": "trapezoid"}),
     "demand.profiles.p0.kind"),
    (lambda: _demand(profile={"kind": "steady"}),
     "demand.profiles.p0.rate_mpps"),
    (lambda: _demand(profile={"kind": "steady", "rate_mpps": -4.0}),
     "demand.profiles.p0.rate_mpps"),
    (lambda: _demand(profile={"kind": "steady", "rate_mpps": 4.0,
                              "peak_mpps": 8.0}),
     "demand.profiles.p0.peak_mpps"),
    (lambda: _demand(profile={"kind": "diurnal", "base_mpps": 4.0,
                              "amplitude": 1.5, "period_us": 100.0}),
     "demand.profiles.p0.amplitude"),
    (lambda: _demand(profile={"kind": "flash_crowd", "base_mpps": 8.0,
                              "peak_mpps": 4.0, "start_us": 0.0,
                              "ramp_us": 1.0, "hold_us": 1.0,
                              "decay_us": 1.0}),
     "demand.profiles.p0.peak_mpps"),
    (lambda: _demand(profile={"kind": "windows", "windows": []}),
     "demand.profiles.p0.windows"),
    (lambda: _demand(profile={"kind": "windows", "windows": [
        {"start_us": 0.0, "end_us": 10.0, "rate_mpps": 0.0}]}),
     "demand.profiles.p0.windows"),
    (lambda: _demand(profile={"kind": "windows", "windows": [
        {"start_us": 0.0, "end_us": 10.0, "rate_mpps": 4.0},
        {"start_us": 5.0, "end_us": 15.0, "rate_mpps": 2.0}]}),
     "demand.profiles.p0.windows[1]"),
    (lambda: _demand(profile={"kind": "windows", "windows": [
        {"start_us": 10.0, "end_us": 5.0, "rate_mpps": 4.0}]}),
     "demand.profiles.p0.windows[0].end_us"),
    (lambda: _base(hosts={"s0": {"ceio": {"bogus": 1}}}),
     "hosts.s0.ceio.bogus"),
    (lambda: _base(hosts={"s0": {"ceio": {"admission_control": 1}}}),
     "hosts.s0.ceio.admission_control"),
    (lambda: _base(hosts={"s0": {"ceio": {"admission_ring_limit": 0}}}),
     "hosts.s0.ceio.admission_ring_limit"),
]


@pytest.mark.parametrize("build,path",
                         DEMAND_REJECTIONS,
                         ids=[path for _, path in DEMAND_REJECTIONS])
def test_invalid_demand_field_is_rejected_with_path(build, path):
    with pytest.raises(ScenarioError) as err:
        validate(build())
    assert err.value.path == path
    assert str(err.value).startswith(path)
