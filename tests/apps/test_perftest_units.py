"""Unit tests for perftest helpers (fast, no simulation)."""

from repro.apps.perftest import _bw_batch, _packets_for


def test_packets_for_small_message_single_packet():
    assert _packets_for(64) == (64, 1)
    assert _packets_for(1024) == (1024, 1)


def test_packets_for_large_message_mtu_split():
    payload, count = _packets_for(4096)
    assert payload == 1024
    assert count == 4
    payload, count = _packets_for(4097)
    assert count == 5


def test_bw_batch_groups_small_messages():
    """ib_write_bw batches small writes under one completion (>=8KB)."""
    payload, batch = _bw_batch(512, 1)
    assert payload == 512
    assert batch == 16  # 8 KB / 512 B
    assert payload * batch >= 8192


def test_bw_batch_leaves_large_messages_alone():
    payload, batch = _bw_batch(1024, 64)  # a 64 KB message
    assert (payload, batch) == (1024, 64)


def test_bw_batch_64b_messages():
    payload, batch = _bw_batch(64, 1)
    assert batch == 128
    assert payload * batch == 8192
