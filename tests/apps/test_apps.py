"""Tests for the benchmark applications: KV store, eRPC, echo, LineFS,
dperf, perftest."""

import pytest

from repro.apps import (
    DperfClient,
    EchoServer,
    ErpcConfig,
    ErpcServer,
    KvStore,
    LineFsConfig,
    LineFsServer,
    SharedEchoServer,
    ib_write_bw,
    ib_write_lat,
)
from repro.apps.kvstore import kv_request_payload
from repro.hw import CacheConfig, HostConfig
from repro.io_arch import build_arch
from repro.net import Flow, FlowKind, SaturatingSource
from repro.net import Testbed as TB
from repro.sim.units import US


def build_bed(arch_name="baseline", llc=512 * 1024):
    bed = TB(host_config=HostConfig(cache=CacheConfig(size=llc)), seed=9)
    arch = build_arch(arch_name, bed.host)
    bed.install_io_arch(arch)
    return bed, arch


def saturate(bed, flow, outstanding=16):
    src = SaturatingSource(bed.sim, bed.senders[flow.flow_id],
                           outstanding=outstanding)
    src.start()
    return src


# ---------------------------------------------------------------------------
# KvStore
# ---------------------------------------------------------------------------

def test_kvstore_populated_and_real_ops():
    kv = KvStore(entries=100)
    assert len(kv) == 100
    key = KvStore._key(5)
    assert kv.get(key) is not None
    kv.put(key, b"x" * 64)
    assert kv.get(key) == b"x" * 64
    assert kv.hits.value == 2


def test_kvstore_get_miss_counted():
    kv = KvStore(entries=1)
    assert kv.get(b"missing-key-....") is None
    assert kv.misses.value == 1


def test_kvstore_handler_charges_cycles():
    kv = KvStore(entries=10)

    class Ctx:
        payload = 144
        record = None

    cycles = kv.handle(Ctx())
    assert cycles > KvStore.LOOKUP_CYCLES - 1
    assert kv.gets.value + kv.puts.value == 1


def test_kv_request_payload_matches_paper():
    # 16B key + 64B value + header = 144B (§6.1).
    assert kv_request_payload() == 144


# ---------------------------------------------------------------------------
# ErpcServer
# ---------------------------------------------------------------------------

def test_erpc_server_processes_and_accounts():
    bed, arch = build_bed()
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=144)
    bed.add_flow(flow)
    core = bed.host.cpu.allocate()
    kv = KvStore()
    server = ErpcServer(arch, flow, core, kv.handle)
    server.start()
    saturate(bed, flow)
    bed.run(until=200 * US)
    rx = arch.flows[flow.flow_id]
    assert server.requests.value > 100
    assert rx.processed.value == server.requests.value
    assert rx.latency.count > 0
    assert core.busy_ns > 0


def test_erpc_rdma_transport_costs_more_cpu():
    results = {}
    for transport in ("dpdk", "rdma"):
        bed, arch = build_bed()
        flow = Flow(FlowKind.CPU_INVOLVED, message_payload=144)
        bed.add_flow(flow)
        core = bed.host.cpu.allocate()
        server = ErpcServer(arch, flow, core, lambda ctx: 100.0,
                            config=ErpcConfig(transport=transport))
        server.start()
        saturate(bed, flow, outstanding=64)
        bed.run(until=300 * US)
        results[transport] = server.requests.value
    assert results["dpdk"] > results["rdma"]


def test_erpc_rejects_unknown_transport():
    bed, arch = build_bed()
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=144)
    bed.add_flow(flow)
    core = bed.host.cpu.allocate()
    with pytest.raises(ValueError):
        ErpcServer(arch, flow, core, lambda ctx: 0,
                   config=ErpcConfig(transport="smoke-signals"))


def test_erpc_stop_halts_processing():
    bed, arch = build_bed()
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=144)
    bed.add_flow(flow)
    server = ErpcServer(arch, flow, bed.host.cpu.allocate(),
                        lambda ctx: 50.0)
    server.start()
    saturate(bed, flow)
    bed.run(until=100 * US)
    server.stop()
    bed.run(until=150 * US)
    count = server.requests.value
    bed.run(until=250 * US)
    assert server.requests.value == count


# ---------------------------------------------------------------------------
# Echo
# ---------------------------------------------------------------------------

def test_echo_server_echoes():
    bed, arch = build_bed()
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=512)
    bed.add_flow(flow)
    server = EchoServer(arch, flow, bed.host.cpu.allocate())
    server.start()
    saturate(bed, flow)
    bed.run(until=200 * US)
    assert server.echoed.value > 100


def test_shared_echo_server_serves_multiple_flows():
    bed, arch = build_bed()
    flows = []
    for i in range(3):
        flow = Flow(FlowKind.CPU_INVOLVED, message_payload=512)
        bed.add_flow(flow)
        saturate(bed, flow, outstanding=8)
        flows.append(flow)
    worker = SharedEchoServer(arch, bed.host.cpu.allocate())
    worker.start()
    bed.run(until=300 * US)
    assert worker.echoed.value > 100
    processed = {f.flow_id: arch.flows[f.flow_id].processed.value
                 for f in flows}
    assert all(v > 0 for v in processed.values()), processed


# ---------------------------------------------------------------------------
# LineFS
# ---------------------------------------------------------------------------

def test_linefs_writes_chunks_and_releases():
    bed, arch = build_bed()
    server = LineFsServer(arch, bed.host.cpu.allocate(),
                          LineFsConfig(replication=1))
    flow = Flow(FlowKind.CPU_BYPASS, message_payload=1000,
                packets_per_message=8)
    bed.add_flow(flow)
    server.attach_flow(flow)
    server.start()
    saturate(bed, flow, outstanding=4)
    bed.run(until=300 * US)
    assert server.chunks_written.value > 5
    assert server.bytes_written.value == server.chunks_written.value * 8000
    rx = arch.flows[flow.flow_id]
    # Buffers recycled after replication+logging (the server is slower than
    # the line, so a backlog remains — but processed chunks must have been
    # released).
    assert rx.in_use <= rx.delivered.value - server.chunks_written.value * 8


def test_linefs_detach_flow():
    bed, arch = build_bed()
    server = LineFsServer(arch, bed.host.cpu.allocate())
    flow = Flow(FlowKind.CPU_BYPASS, message_payload=1000,
                packets_per_message=4)
    bed.add_flow(flow)
    server.attach_flow(flow)
    assert flow in server.flows
    server.detach_flow(flow)
    assert flow not in server.flows


# ---------------------------------------------------------------------------
# dperf
# ---------------------------------------------------------------------------

def test_dperf_client_drives_flows():
    bed, arch = build_bed()
    client = DperfClient(bed, message_payload=512, outstanding=8)
    f1 = client.add_flow("a")
    f2 = client.add_flow("b")
    server = SharedEchoServer(arch, bed.host.cpu.allocate())
    server.start()
    client.start()
    bed.run(until=200 * US)
    assert client.messages_completed > 50
    client.stop()


# ---------------------------------------------------------------------------
# perftest
# ---------------------------------------------------------------------------

def test_ib_write_bw_reports_positive_goodput():
    result = ib_write_bw("baseline", msg_size=4096, duration=100 * US)
    assert result.gbps > 10
    assert result.path == "raw"


def test_ib_write_bw_force_slow_requires_ceio():
    with pytest.raises(ValueError):
        ib_write_bw("baseline", force_slow=True, duration=50 * US)


def test_ib_write_lat_ordering():
    raw = ib_write_lat("baseline", 64, iters=20)
    slow = ib_write_lat("ceio", 64, iters=20, force_slow=True)
    assert 0 < raw.avg_us < slow.avg_us
    assert slow.path == "slow"
