"""Cross-cutting integration tests: determinism, CLI, examples."""

import subprocess
import sys

import pytest

from repro.sim.units import US
from repro.workloads import Scenario, ScenarioConfig


def _run_once(seed):
    config = ScenarioConfig(arch="ceio", scale=16, n_involved=2,
                            outstanding=8, warmup=50 * US,
                            duration=100 * US, seed=seed)
    m = Scenario(config).build().run_measure()
    return (m.involved_mpps, m.llc_miss_rate, m.p99_us, m.dropped)


def test_simulation_is_deterministic_given_seed():
    """Two runs with the same seed must agree bit-for-bit on every metric
    — the foundation for debugging and for comparing architectures."""
    assert _run_once(5) == _run_once(5)


def test_different_seeds_differ():
    a, b = _run_once(5), _run_once(6)
    assert a != b


def test_architectures_share_identical_workload():
    """Same seed => clients offer the same message sequence regardless of
    the receive-side architecture (the comparison is apples-to-apples)."""
    sent = {}
    for arch in ("baseline", "ceio"):
        config = ScenarioConfig(arch=arch, scale=16, n_involved=2,
                                outstanding=8, warmup=50 * US,
                                duration=50 * US, seed=9)
        scenario = Scenario(config).build()
        scenario.run_measure()
        sent[arch] = {
            f.name: scenario.testbed.senders[f.flow_id].packets_sent.value
            for f, _s, _src in scenario.involved}
    # Not identical packet counts (feedback differs), but the same flows
    # exist and all sent traffic.
    assert sent["baseline"].keys() == sent["ceio"].keys()
    assert all(v > 0 for v in sent["baseline"].values())


@pytest.mark.slow
def test_cli_runs_cheapest_experiment():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "table3"],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "table3" in proc.stdout
    assert "[PASS]" in proc.stdout


def test_quickstart_example_importable_and_structured():
    """The quickstart must at least import and expose main()."""
    sys.path.insert(0, "examples")
    try:
        import quickstart
        assert callable(quickstart.main)
    finally:
        sys.path.pop(0)
