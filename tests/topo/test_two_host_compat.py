"""The acceptance pin for ``repro.topo``: a ``two_host()`` fabric run of
the ``paper-baseline`` scenario is byte-identical to the legacy
hand-built ``Scenario`` on the single-pair ``Testbed`` — same RNG draws,
same event order, same measurements, same 18-account conservation audit.

The digest below is the sha256 of the legacy measurement's sorted-JSON
form at (warmup=150us, duration=250us, seed=0). If it moves, the legacy
testbed's behaviour changed (see ``tests/sim/test_golden.py``); if the
equality assertion fails while the digest holds, the topo compilation
drifted from the legacy construction order. Recapture:

    PYTHONPATH=src python tests/topo/test_two_host_compat.py
"""

import hashlib
import json
from dataclasses import asdict

from repro.scenario import template
from repro.sim.units import US
from repro.workloads import Scenario, ScenarioConfig
from repro.workloads.topo_scenario import compile_scenario

# Recaptured when the overload-guardrail work added the ``arch.admission``
# conservation account: the measurement's embedded audit report grew from
# 18 to 19 checked accounts (simulation draws and event order unchanged —
# only the report schema moved).
GOLDEN_TWO_HOST = \
    "049aaa96b1eb4e9c624cd26c5165b8b5b1a2c6fa5e01a5f31b4189113b7a57c3"

WARMUP_US, DURATION_US = 150.0, 250.0


def _legacy_json() -> str:
    config = ScenarioConfig(warmup=WARMUP_US * US,
                            duration=DURATION_US * US)
    measurement = Scenario(config).build().run_measure()
    return json.dumps(asdict(measurement), sort_keys=True)


def _topo_json() -> str:
    spec = template("paper-baseline")
    spec["measure"] = {"warmup_us": WARMUP_US, "duration_us": DURATION_US}
    measurement = compile_scenario(spec).run_measure()["host"]
    return json.dumps(asdict(measurement), sort_keys=True)


def test_two_host_fabric_reproduces_legacy_testbed_byte_for_byte():
    legacy = _legacy_json()
    topo = _topo_json()
    assert hashlib.sha256(legacy.encode()).hexdigest() == GOLDEN_TWO_HOST, \
        "legacy Testbed behaviour moved — recapture (see module docstring)"
    assert topo == legacy


def test_two_host_fabric_uses_legacy_names():
    spec = template("paper-baseline")
    scenario = compile_scenario(spec)
    # Single-server two_host topologies keep unprefixed RNG streams and
    # audit account names; the audit is the legacy 19-account ledger
    # (18 + arch.admission) and there are no interior switch ports.
    endpoint = scenario.fabric.endpoints["host"]
    assert endpoint.port.name == "tor"
    assert scenario.fabric.legacy
    assert scenario.fabric.interior_ports() == []
    assert len(scenario.reconciler.ledger.accounts) == 19


if __name__ == "__main__":
    digest = hashlib.sha256(_legacy_json().encode()).hexdigest()
    print(f'GOLDEN_TWO_HOST = \\\n    "{digest}"')
