"""Topology graph validation: structure rules, routing, reverse delays."""

import pytest

from repro.sim.units import US
from repro.topo import HostSpec, LinkSpec, Topology, leaf_spine, star


def _tiny(links):
    return Topology(
        hosts=[HostSpec("c"), HostSpec("s", server=True)],
        switches=["sw"], links=links)


def test_minimal_two_node_graph():
    topo = _tiny([LinkSpec("c", "sw"), LinkSpec("sw", "s")])
    assert [h.name for h in topo.server_hosts] == ["s"]
    assert [h.name for h in topo.client_hosts] == ["c"]
    switch, link = topo.attachment("s")
    assert switch == "sw" and link.other("sw") == "s"


def test_link_auto_name_and_explicit_name():
    topo = _tiny([LinkSpec("c", "sw"), LinkSpec("sw", "s", name="down")])
    names = sorted(link.name for link in topo.links)
    assert names == ["c-sw", "down"]


def test_host_name_with_dot_rejected():
    with pytest.raises(ValueError, match="must not contain"):
        HostSpec("bad.name")


def test_duplicate_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        Topology(hosts=[HostSpec("x"), HostSpec("x", server=True)],
                 switches=["sw"],
                 links=[LinkSpec("x", "sw")])


def test_host_to_host_link_rejected():
    with pytest.raises(ValueError, match="host-host"):
        Topology(hosts=[HostSpec("a"), HostSpec("b", server=True)],
                 switches=["sw"],
                 links=[LinkSpec("a", "b"), LinkSpec("a", "sw"),
                        LinkSpec("b", "sw")])


def test_host_degree_must_be_exactly_one():
    with pytest.raises(ValueError, match="exactly one switch"):
        _tiny([LinkSpec("c", "sw")])  # server s unattached
    with pytest.raises(ValueError, match="exactly one switch"):
        Topology(hosts=[HostSpec("c"), HostSpec("s", server=True)],
                 switches=["sw", "sw2"],
                 links=[LinkSpec("c", "sw"), LinkSpec("c", "sw2"),
                        LinkSpec("sw", "s"), LinkSpec("sw", "sw2")])


def test_parallel_links_rejected():
    with pytest.raises(ValueError, match="parallel"):
        Topology(hosts=[HostSpec("c"), HostSpec("s", server=True)],
                 switches=["sw", "sw2"],
                 links=[LinkSpec("c", "sw"), LinkSpec("sw", "s"),
                        LinkSpec("sw", "sw2"), LinkSpec("sw", "sw2")])


def test_self_loop_rejected():
    with pytest.raises(ValueError, match="self-loop"):
        _tiny([LinkSpec("c", "sw"), LinkSpec("sw", "s"),
               LinkSpec("sw", "sw")])


def test_disconnected_switch_rejected():
    with pytest.raises(ValueError, match="disconnected"):
        Topology(hosts=[HostSpec("c"), HostSpec("s", server=True)],
                 switches=["sw", "island"],
                 links=[LinkSpec("c", "sw"), LinkSpec("sw", "s")])


def test_reverse_delay_defaults_to_forward_delay():
    link = LinkSpec("a", "b", delay=0.6 * US)
    assert link.reverse_delay == link.delay
    asym = LinkSpec("a", "b", delay=0.6 * US, ack_delay=0.1 * US)
    assert asym.reverse_delay == pytest.approx(0.1 * US)


def test_next_hops_on_star_are_direct():
    topo = star(n_clients=3, n_servers=1)
    hops = topo.next_hops_toward("s0")
    # Every path ends at the attachment switch; the ToR itself delivers.
    assert hops["tor"] == ()


def test_leaf_spine_equal_cost_candidates_sorted():
    topo = leaf_spine(leaves=2, spines=2, hosts_per_leaf=2,
                      servers_per_leaf=1)
    hops = topo.next_hops_toward("l1s0")
    # From the remote leaf, both spines are equal-cost, in sorted order.
    assert hops["leaf0"] == ("spine0", "spine1")
    # From a spine there is exactly one way down.
    assert hops["spine0"] == ("leaf1",)
    assert hops["leaf1"] == ()


def test_path_links_crosses_fabric():
    topo = leaf_spine(leaves=2, spines=2, hosts_per_leaf=2,
                      servers_per_leaf=1)
    path = topo.path_links("l0c1", "l1s0",
                           choose=lambda candidates: candidates[0])
    assert [link.name for link in path] == [
        "l0c1-leaf0", "leaf0-spine0", "leaf1-spine0", "leaf1-l1s0"]
    # Reverse (ACK) delay is the sum of per-link reverse delays: the
    # zero-delay uplink contributes nothing, the other hops 0.6 us each.
    assert sum(link.reverse_delay for link in path) == pytest.approx(
        3 * 0.6 * US)
