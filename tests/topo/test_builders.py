"""Builder shapes and determinism: the same call always yields the same
graph, byte for byte (names, link order, attribute values)."""

import pytest

from repro.topo import fat_tree, leaf_spine, star, two_host


def _fingerprint(topo):
    return (
        tuple(sorted(topo.hosts)),
        tuple(spec.name for spec in topo.server_hosts),
        topo.switches,
        tuple((link.name, link.a, link.b, link.rate, link.delay,
               link.ack_delay, link.buffer, link.ecn_threshold)
              for link in topo.links),
        topo.legacy_names,
    )


def test_two_host_shape_matches_legacy_testbed():
    topo = two_host()
    assert sorted(topo.hosts) == ["client", "host"]
    assert [h.name for h in topo.server_hosts] == ["host"]
    assert topo.switches == ("tor",)
    assert topo.legacy_names is True
    uplink = topo.link_between("client", "tor")
    down = topo.link_between("tor", "host")
    # The server-facing egress keeps the legacy port name "tor"; the
    # client uplink is a zero-delay injection point.
    assert down.name == "tor" and uplink.name == "uplink"
    assert uplink.delay == 0.0 and uplink.reverse_delay == 0.0
    assert down.delay == pytest.approx(600.0)  # 0.6 us in ns


def test_star_shape():
    topo = star(n_clients=4, n_servers=2)
    assert [h.name for h in topo.client_hosts] == ["c0", "c1", "c2", "c3"]
    assert [h.name for h in topo.server_hosts] == ["s0", "s1"]
    assert topo.switches == ("tor",)
    assert len(topo.links) == 6


def test_leaf_spine_shape():
    topo = leaf_spine(leaves=2, spines=2, hosts_per_leaf=4,
                      servers_per_leaf=1)
    assert len(topo.hosts) == 8
    assert [h.name for h in topo.server_hosts] == ["l0s0", "l1s0"]
    assert set(topo.switches) == {"leaf0", "leaf1", "spine0", "spine1"}
    # 8 host links + full 2x2 leaf-spine mesh.
    assert len(topo.links) == 8 + 4


def test_fat_tree_shape():
    k = 4
    topo = fat_tree(k, hosts_per_edge=1, servers_per_pod=1)
    half = k // 2
    assert len([s for s in topo.switches if s.startswith("core")]) \
        == half * half
    assert len(topo.hosts) == k * half  # hosts_per_edge per edge switch
    assert len(topo.server_hosts) == k  # one per pod
    # Host links + edge-agg links + agg-core links.
    assert len(topo.links) == k * half + k * half * half + k * half * half


def test_fat_tree_odd_k_rejected():
    with pytest.raises(ValueError, match="even k"):
        fat_tree(3)


@pytest.mark.parametrize("build", [
    lambda: two_host(),
    lambda: star(n_clients=8, n_servers=2),
    lambda: leaf_spine(leaves=2, spines=2, hosts_per_leaf=4),
    lambda: fat_tree(4, hosts_per_edge=2, servers_per_pod=2),
])
def test_builders_are_deterministic(build):
    assert _fingerprint(build()) == _fingerprint(build())
