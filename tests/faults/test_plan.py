"""Unit tests for the declarative fault-plan data model."""

import math

import pytest

from repro.faults import FAULT_SITES, FaultPlan, FaultSpec


def test_defaults_and_finite():
    spec = FaultSpec("net.link", "loss")
    assert spec.start == 0.0
    assert spec.duration == math.inf
    assert not spec.finite
    assert spec.magnitude == 1.0
    assert FaultSpec("net.link", "loss", duration=10.0).finite


def test_every_registered_site_kind_validates():
    for site, kinds in FAULT_SITES.items():
        for kind in kinds:
            # net.channel is the one site that insists on a finite
            # window (there is no "rest of the run" to restore into).
            kwargs = {"duration": 10.0} if site == "net.channel" else {}
            assert FaultSpec(site, kind, **kwargs).site == site


def test_unknown_site_rejected():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultSpec("hw.gpu", "loss")


def test_wrong_kind_for_site_rejected():
    with pytest.raises(ValueError, match="supports"):
        FaultSpec("net.link", "dma_stall")


@pytest.mark.parametrize("kwargs", [
    {"start": -1.0},
    {"duration": 0.0},
    {"duration": -5.0},
    {"magnitude": -0.1},
])
def test_bad_window_values_rejected(kwargs):
    with pytest.raises(ValueError):
        FaultSpec("net.link", "loss", **kwargs)


def test_params_normalised_and_looked_up():
    spec = FaultSpec("net.link", "burst_loss",
                     params={"p_bad_good": 0.5, "good_loss": 0.01})
    # Mapping input becomes a sorted tuple (hashable, canonical).
    assert spec.params == (("good_loss", 0.01), ("p_bad_good", 0.5))
    assert spec.param("p_bad_good") == 0.5
    assert spec.param("missing", 7) == 7
    assert hash(spec) == hash(FaultSpec(
        "net.link", "burst_loss",
        params=(("p_bad_good", 0.5), ("good_loss", 0.01))))


def test_non_scalar_param_rejected():
    with pytest.raises(TypeError, match="scalars"):
        FaultSpec("net.link", "loss", params={"bad": [1, 2]})


def test_spec_dict_roundtrip_including_infinite_duration():
    for spec in (FaultSpec("hw.nic", "descriptor_drop", start=5.0,
                           duration=10.0, magnitude=0.25, flow="kv0",
                           stream="s", params={"a": 1}),
                 FaultSpec("hw.cpu", "slowdown", magnitude=4.0)):
        data = spec.to_dict()
        assert FaultSpec.from_dict(data) == spec
    # inf duration serialises as None (JSON-safe) and comes back as inf.
    assert FaultSpec("net.link", "loss").to_dict()["duration"] is None


def test_plan_container_semantics():
    empty = FaultPlan()
    assert not empty
    assert len(empty) == 0
    plan = FaultPlan((FaultSpec("net.link", "loss", duration=1.0),))
    assert plan
    assert list(plan) == [FaultSpec("net.link", "loss", duration=1.0)]
    assert plan == FaultPlan((FaultSpec("net.link", "loss", duration=1.0),))
    assert plan != empty


def test_plan_json_roundtrip_and_canonical_stability():
    plan = FaultPlan((
        FaultSpec("hw.nic", "descriptor_drop", start=500.0, duration=200.0,
                  magnitude=1.0),
        FaultSpec("net.link", "burst_loss", magnitude=0.5,
                  params={"p_good_bad": 0.1}),
    ))
    text = plan.canonical()
    assert FaultPlan.from_json(text) == plan
    assert FaultPlan.from_json(text).canonical() == text
    assert FaultPlan.from_dicts(plan.to_dicts()) == plan
    # Canonical form is compact and key-sorted: safe as a cache-key part.
    assert " " not in text


# ----------------------------------------------------------------------
# Multi-host qualifier (repro.topo fabrics)
# ----------------------------------------------------------------------
def test_host_qualifier_defaults_to_none_and_is_not_serialised():
    spec = FaultSpec("net.link", "loss")
    assert spec.host is None
    assert "host" not in spec.to_dict()
    # Pre-multi-host canonical form, byte for byte: cache keys derived
    # from FaultPlan.canonical() must never move for single-host plans.
    assert FaultPlan((spec,)).canonical() == (
        '[{"duration":null,"flow":null,"kind":"loss","magnitude":1.0,'
        '"params":{},"site":"net.link","start":0.0,"stream":""}]')


def test_host_qualifier_round_trips():
    spec = FaultSpec("hw.nic", "descriptor_drop", host="s1")
    data = spec.to_dict()
    assert data["host"] == "s1"
    assert FaultSpec.from_dict(data) == spec
    plan = FaultPlan((spec,))
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_split_by_host_partitions_and_defaults_to_primary():
    plan = FaultPlan((
        FaultSpec("net.link", "loss"),
        FaultSpec("hw.nic", "descriptor_drop", host="s1"),
        FaultSpec("net.link", "burst_loss", host="s0"),
        FaultSpec("hw.cache", "ddio_reconfig"),
    ))
    parts = plan.split_by_host("s0")
    assert set(parts) == {"s0", "s1"}
    assert [s.kind for s in parts["s0"].specs] == [
        "loss", "burst_loss", "ddio_reconfig"]
    assert [s.kind for s in parts["s1"].specs] == ["descriptor_drop"]
