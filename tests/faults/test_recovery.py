"""Graceful-degradation tests: the §5 recovery mechanisms, unit-level and
end-to-end through the chaos credit-loss scenario.

The end-to-end pair is the tentpole acceptance test: under a
full-magnitude descriptor-drop fault, CEIO with its watchdogs sustains
goodput and recovers to pre-fault levels, while the watchdog-disabled
ablation deadlocks — and both outcomes are bit-identical whether the
points run serially or across a process pool.
"""

import pytest

from repro.core import CreditController, SwRing
from repro.experiments import chaos


# ---------------------------------------------------------------------------
# Credit reclaim (unit)
# ---------------------------------------------------------------------------

def test_reclaim_inflight_conserves_credits():
    ctl = CreditController(1000)
    ctl.add_flows([1])
    for _ in range(400):
        assert ctl.consume(1)
    acct = ctl.account(1)
    assert acct.inflight == pytest.approx(400)
    lost = ctl.reclaim_inflight(1, now=123.0)
    assert lost == 400
    assert acct.inflight == 0
    assert acct.available == pytest.approx(1000)
    assert acct.last_activity == 123.0
    assert ctl.audit() == pytest.approx(1000)


def test_reclaim_inflight_noop_cases():
    ctl = CreditController(1000)
    ctl.add_flows([1])
    assert ctl.reclaim_inflight(1) == 0        # nothing in flight
    assert ctl.reclaim_inflight(99) == 0       # unknown flow


def test_release_after_reclaim_cannot_mint_credits():
    """A mistakenly-reclaimed write that later completes must not create
    credits: release clamps to what is actually in flight."""
    ctl = CreditController(1000)
    ctl.add_flows([1])
    for _ in range(10):
        ctl.consume(1)
    ctl.reclaim_inflight(1)
    ctl.release(1, 10)                         # late completions arrive
    assert ctl.account(1).available <= 1000
    assert ctl.audit() == pytest.approx(1000)


# ---------------------------------------------------------------------------
# SW-ring stuck-slot release (unit)
# ---------------------------------------------------------------------------

class _Rec:
    class packet:
        seq = 0
        retransmitted = False

    def __init__(self, seq):
        self.packet = type("P", (), {"seq": seq, "retransmitted": False})()


def test_release_barrier_holes_flushes_and_forgives():
    ring = SwRing(flow_id=1)
    for _ in range(5):
        ring.note_fast_issued()
    for seq in range(3):                       # two writes lost in flight
        ring.push_fast(_Rec(seq))
    ring.set_barrier()
    ring.push_slow(_Rec(10))
    assert ring.barrier_unmet()
    assert ring.ready_count == 3               # slow entry held back
    released = ring.release_barrier_holes()
    assert released == 2
    assert ring.holes_released == 2
    assert not ring.barrier_unmet()
    assert len(ring) == 4                      # slow entry joined the ring
    # fast_issued realigned: a re-degrade cannot recreate the dead barrier.
    assert ring.fast_issued == ring.fast_delivered
    ring.set_barrier()
    assert not ring.barrier_unmet()


def test_release_barrier_holes_noop_when_barrier_met():
    ring = SwRing(flow_id=1)
    ring.note_fast_issued()
    ring.push_fast(_Rec(0))
    ring.set_barrier()
    assert ring.release_barrier_holes() == 0
    assert ring.holes_released == 0


# ---------------------------------------------------------------------------
# End-to-end: the chaos credit-loss scenario (tentpole acceptance)
# ---------------------------------------------------------------------------

def _point(variant, magnitude=1.0):
    pts = [p for p in chaos.points(quick=True)
           if p.params["variant"] == variant
           and p.params["magnitude"] == magnitude]
    assert len(pts) == 1
    return pts[0]


@pytest.fixture(scope="module")
def chaos_pair():
    """Run the ceio and ablation points once for the whole module."""
    out = {}
    for variant in ("ceio", "ceio-norecovery"):
        point = _point(variant)
        out[variant] = chaos.run_point(dict(point.params), point.seed)
    return out


def test_ceio_sustains_goodput_through_full_drop_fault(chaos_pair):
    ceio = chaos_pair["ceio"]
    assert ceio["during"] > 0
    assert ceio["dropped_writes"] > 0          # the fault actually bit


def test_ceio_recovers_after_fault(chaos_pair):
    ceio = chaos_pair["ceio"]
    assert ceio["post"][-1] >= 0.5 * ceio["pre"]
    # Recovery came from the watchdogs, not luck: every lost credit was
    # reclaimed and every ordering hole forgiven.
    assert ceio["credit_reclaimed"] == ceio["dropped_writes"]
    assert ceio["swring_holes"] == ceio["dropped_writes"]


def test_watchdog_disabled_ablation_deadlocks(chaos_pair):
    ablation = chaos_pair["ceio-norecovery"]
    assert ablation["dropped_writes"] > 0
    assert ablation["credit_reclaimed"] == 0
    assert ablation["post"][-1] < 0.1 * ablation["pre"]


def test_chaos_points_reproducible_across_pool(chaos_pair):
    """jobs-1 vs jobs-4 parity for the two acceptance points: pool
    execution returns bit-identical results to in-process execution."""
    from repro.runner import RunnerOptions, execute_points

    points = [_point("ceio"), _point("ceio-norecovery")]
    pooled, failures = execute_points(
        points, RunnerOptions(jobs=4, use_cache=False))
    assert not failures
    assert pooled["chaos/ceio.m1"] == chaos_pair["ceio"]
    assert pooled["chaos/ceio-norecovery.m1"] == chaos_pair["ceio-norecovery"]
