"""Injector tests: each fault site switches on at onset, perturbs the
layer through its seam, and restores the nominal configuration exactly
when the window closes."""

import pytest

from repro.faults import FaultController, FaultPlan, FaultSpec, install_plan
from repro.hw import CacheConfig, HostConfig
from repro.io_arch import build_arch
from repro.net import Flow, FlowKind, Message, Testbed
from repro.sim.units import US


def small_testbed(seed=1, n_flows=1):
    testbed = Testbed(host_config=HostConfig(
        cache=CacheConfig(size=512 * 1024)), seed=seed)
    testbed.install_io_arch(build_arch("baseline", testbed.host))
    senders = [testbed.add_flow(Flow(FlowKind.CPU_INVOLVED, name=f"f{i}",
                                     message_payload=512))
               for i in range(n_flows)]
    return testbed, senders


def pump(testbed, sender, n=50, gap=1000.0):
    def proc(sim):
        for _ in range(n):
            sender.submit_message(Message(512, 1))
            yield gap
    testbed.sim.process(proc(testbed.sim))


def test_install_plan_empty_is_noop():
    testbed, _ = small_testbed()
    assert install_plan(testbed, FaultPlan()) is None
    assert testbed.port.fault is None


def test_double_arm_rejected():
    testbed, _ = small_testbed()
    controller = FaultController(testbed, FaultPlan(
        (FaultSpec("net.link", "loss", duration=1.0),)))
    controller.arm()
    with pytest.raises(RuntimeError, match="already armed"):
        controller.arm()


def test_link_loss_window_drops_then_restores():
    testbed, (sender,) = small_testbed()
    controller = install_plan(testbed, FaultPlan((
        FaultSpec("net.link", "loss", start=10 * US, duration=20 * US,
                  magnitude=1.0),)))
    pump(testbed, sender, n=60)
    testbed.run(until=5 * US)
    assert testbed.port.fault is None          # before onset
    testbed.run(until=20 * US)
    assert testbed.port.fault is not None      # window open
    testbed.run(until=100 * US)
    assert testbed.port.fault is None          # restored exactly
    assert controller.windows_opened.value == 1
    dropped = testbed.port.fault_dropped.value
    assert dropped > 0
    # Retransmissions recover every loss: all 60 messages complete.
    assert sender.packets_acked.value >= 60
    assert sender.retransmits.value > 0


def test_link_loss_is_deterministic_across_runs():
    def run_once():
        testbed, (sender,) = small_testbed(seed=7)
        install_plan(testbed, FaultPlan((
            FaultSpec("net.link", "loss", start=10 * US, duration=30 * US,
                      magnitude=0.5),)))
        pump(testbed, sender, n=40)
        testbed.run(until=200 * US)
        return (testbed.port.fault_dropped.value,
                sender.retransmits.value, sender.packets_acked.value)

    assert run_once() == run_once()


def test_link_loss_flow_filter_spares_other_flows():
    testbed, senders = small_testbed(n_flows=2)
    install_plan(testbed, FaultPlan((
        FaultSpec("net.link", "loss", duration=500 * US, magnitude=1.0,
                  flow="f0"),)))
    for sender in senders:
        pump(testbed, sender, n=20)
    testbed.run(until=100 * US)
    f1 = senders[1]
    assert testbed.port.fault_dropped.value > 0
    assert f1.retransmits.value == 0
    assert f1.packets_acked.value >= 20


def test_burst_loss_drops_in_bursts():
    testbed, (sender,) = small_testbed(seed=3)
    install_plan(testbed, FaultPlan((
        FaultSpec("net.link", "burst_loss", duration=500 * US,
                  magnitude=1.0,
                  params={"p_good_bad": 0.2, "p_bad_good": 0.2}),)))
    pump(testbed, sender, n=80, gap=500.0)
    testbed.run(until=300 * US)
    # Bad-state loss probability 1.0: every drop is part of a burst.
    assert testbed.port.fault_dropped.value > 1


def test_pcie_latency_adds_and_restores_exactly():
    testbed, _ = small_testbed()
    pcie = testbed.host.pcie
    install_plan(testbed, FaultPlan((
        FaultSpec("hw.pcie", "latency", start=0.0, duration=10 * US,
                  magnitude=300.0),
        FaultSpec("hw.pcie", "latency", start=5 * US, duration=10 * US,
                  magnitude=200.0),)))
    testbed.run(until=1 * US)
    assert pcie.extra_latency == 300.0
    testbed.run(until=7 * US)
    assert pcie.extra_latency == 500.0         # overlapping windows compose
    testbed.run(until=12 * US)
    assert pcie.extra_latency == 200.0
    testbed.run(until=20 * US)
    assert pcie.extra_latency == 0.0


def test_pcie_stall_collapses_and_restores_wire_rate():
    testbed, _ = small_testbed()
    pcie = testbed.host.pcie
    nominal = pcie.config.bandwidth
    install_plan(testbed, FaultPlan((
        FaultSpec("hw.pcie", "stall", start=1 * US, duration=5 * US,
                  magnitude=0.0),)))
    testbed.run(until=2 * US)
    assert pcie._wire.rate == pytest.approx(nominal * 1e-6)
    testbed.run(until=10 * US)
    assert pcie._wire.rate == pytest.approx(nominal)


def test_nic_dma_stall_sets_window_and_requires_finite():
    testbed, _ = small_testbed()
    install_plan(testbed, FaultPlan((
        FaultSpec("hw.nic", "dma_stall", start=2 * US, duration=8 * US),)))
    testbed.run(until=3 * US)
    assert testbed.host.nic.dma.stall_until == pytest.approx(10 * US)
    with pytest.raises(ValueError, match="finite"):
        install_plan(testbed, FaultPlan((
            FaultSpec("hw.nic", "dma_stall"),)))
        testbed.run(until=4 * US)


def test_descriptor_drop_loses_deliveries_silently():
    testbed, (sender,) = small_testbed()
    install_plan(testbed, FaultPlan((
        FaultSpec("hw.nic", "descriptor_drop", start=10 * US,
                  duration=30 * US, magnitude=1.0),)))
    pump(testbed, sender, n=40)
    testbed.run(until=200 * US)
    dma = testbed.host.nic.dma
    rx = testbed.io_arch.flows[testbed.flows[0].flow_id]
    assert dma.dropped_writes.value > 0
    assert dma.drop_filter is None             # restored
    # The silent part: packets were ACKed (accepted) but never delivered.
    assert rx.delivered.value < sender.packets_acked.value


def test_cpu_slowdown_scales_targeted_core_and_restores():
    testbed, _ = small_testbed()
    cores = testbed.host.cpu.cores
    install_plan(testbed, FaultPlan((
        FaultSpec("hw.cpu", "slowdown", start=0.0, duration=5 * US,
                  magnitude=4.0, params={"core": 0}),)))
    testbed.run(until=1 * US)
    assert cores[0].slowdown == 4.0
    assert all(core.slowdown == 1.0 for core in cores[1:])
    testbed.run(until=10 * US)
    assert all(core.slowdown == 1.0 for core in cores)


def test_ddio_reconfig_shrinks_partition_and_restores():
    testbed, _ = small_testbed()
    llc = testbed.host.llc
    nominal = llc.capacity
    install_plan(testbed, FaultPlan((
        FaultSpec("hw.cache", "ddio_reconfig", start=0.0, duration=5 * US,
                  magnitude=0.5),)))
    testbed.run(until=1 * US)
    assert llc.capacity == nominal // 2
    testbed.run(until=10 * US)
    assert llc.capacity == nominal


def test_unknown_flow_filter_raises_at_onset():
    testbed, _ = small_testbed()
    install_plan(testbed, FaultPlan((
        FaultSpec("hw.nic", "descriptor_drop", start=1 * US,
                  duration=5 * US, flow="nope"),)))
    with pytest.raises(ValueError, match="unknown flow"):
        testbed.run(until=2 * US)
