"""Tests for generators, measurement windows, and scenario builders."""

import random

import pytest

from repro.sim.units import US
from repro.workloads import (
    ChurnConfig,
    FixedSize,
    LognormalSize,
    LongTailSize,
    Scenario,
    ScenarioConfig,
    UdChurnScenario,
    UniformSize,
    add_two_burst_flows,
    pareto_burst_lengths,
    poisson_arrivals,
    replace_two_with_bypass,
    scaled_host_config,
    shring_entries_for,
)


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

def test_fixed_size():
    g = FixedSize(512)
    assert g.sample(random.Random(0)) == 512
    assert g.mean() == 512
    with pytest.raises(ValueError):
        FixedSize(0)


def test_uniform_size_bounds():
    g = UniformSize(100, 200)
    rng = random.Random(1)
    samples = [g.sample(rng) for _ in range(200)]
    assert all(100 <= s <= 200 for s in samples)
    assert g.mean() == 150
    with pytest.raises(ValueError):
        UniformSize(10, 5)


def test_lognormal_clamped():
    g = LognormalSize(median=500, lo=64, hi=9000)
    rng = random.Random(2)
    samples = [g.sample(rng) for _ in range(500)]
    assert all(64 <= s <= 9000 for s in samples)
    assert g.mean() > 500  # lognormal mean exceeds the median


def test_longtail_mix():
    g = LongTailSize(small=100, large=10_000, p_large=0.2)
    rng = random.Random(3)
    samples = [g.sample(rng) for _ in range(2000)]
    big = sum(1 for s in samples if s == 10_000)
    assert 0.12 < big / len(samples) < 0.28
    assert g.mean() == pytest.approx(0.2 * 10_000 + 0.8 * 100)


def test_poisson_arrivals_rate():
    rng = random.Random(4)
    arrivals = poisson_arrivals(rng, rate_per_ns=0.01, horizon=100_000)
    assert len(arrivals) == pytest.approx(1000, rel=0.2)
    assert arrivals == sorted(arrivals)
    with pytest.raises(ValueError):
        poisson_arrivals(rng, 0, 100)


def test_pareto_burst_lengths_mean():
    rng = random.Random(5)
    lengths = pareto_burst_lengths(rng, count=3000, mean_packets=32)
    assert all(l >= 1 for l in lengths)
    assert sum(lengths) / len(lengths) == pytest.approx(32, rel=0.5)
    with pytest.raises(ValueError):
        pareto_burst_lengths(rng, 10, shape=1.0)


# ---------------------------------------------------------------------------
# Scaled config rules
# ---------------------------------------------------------------------------

def test_scaled_host_preserves_capacity_relationships():
    full = scaled_host_config(1)
    quarter = scaled_host_config(4)
    assert quarter.cache.size == full.cache.size // 4
    assert quarter.total_credits == full.total_credits // 4
    # ShRing's ring always stays below LLC-capacity-in-buffers.
    for cfg in (full, quarter):
        entries = shring_entries_for(cfg)
        assert entries * cfg.io_buf_size < cfg.cache.size
    assert shring_entries_for(full) == 4096  # the paper's setting


def test_scaled_host_validates_scale():
    with pytest.raises(ValueError):
        scaled_host_config(0)


# ---------------------------------------------------------------------------
# Scenario lifecycle
# ---------------------------------------------------------------------------

def _tiny(arch="ceio", **kw):
    defaults = dict(arch=arch, scale=16, n_involved=2, outstanding=8,
                    warmup=50 * US, duration=80 * US, seed=1)
    defaults.update(kw)
    return ScenarioConfig(**defaults)


def test_scenario_builds_and_measures():
    m = Scenario(_tiny()).build().run_measure()
    assert m.involved_mpps > 0
    assert m.duration == pytest.approx(80 * US)
    assert len(m.flows) == 2
    assert m.flow("kv0") is not None
    assert m.flow("nope") is None


def test_scenario_measurement_excludes_warmup():
    scenario = Scenario(_tiny()).build()
    m = scenario.run_measure()
    rx = scenario.arch.flows[scenario.involved[0][0].flow_id]
    # The measured count is below the all-time count (warm-up excluded).
    assert m.flows[0].mpps * m.duration / 1e3 < rx.processed.value + 1


def test_scenario_mixed_flows():
    m = Scenario(_tiny(n_involved=1, n_bypass=1,
                       chunk_packets=4)).build().run_measure()
    assert m.involved_mpps > 0
    assert m.bypass_gbps > 0


def test_scenario_phase_actions():
    scenario = Scenario(_tiny(n_involved=4)).build()
    results = scenario.run_phases([replace_two_with_bypass],
                                  phase_warmup=40 * US,
                                  phase_duration=60 * US)
    assert len(results) == 2
    assert len(scenario.involved) == 2
    assert len(scenario.bypass) == 2


def test_scenario_burst_action_allocates_cores():
    scenario = Scenario(_tiny(n_involved=2)).build()
    scenario.run_phases([add_two_burst_flows], phase_warmup=30 * US,
                        phase_duration=40 * US)
    assert len(scenario.involved) == 4


def test_scenario_remove_involved_frees_core():
    scenario = Scenario(_tiny(n_involved=2)).build()
    free_before = len(scenario.testbed.host.cpu._free)
    scenario.remove_involved_flow()
    assert len(scenario.testbed.host.cpu._free) == free_before + 1


def test_scenario_arch_extras_exposed():
    m = Scenario(_tiny("ceio")).build().run_measure()
    assert "fast_fraction" in m.extras
    m2 = Scenario(_tiny("shring")).build().run_measure()
    assert "ring_full_drops" in m2.extras


def test_churn_scenario_small():
    cfg = ChurnConfig(total_flows=8, active_flows=4, time_slot=40 * US,
                      warmup=80 * US, duration=80 * US, scale=16,
                      worker_cores=2, outstanding=8)
    result = UdChurnScenario(cfg).build().run()
    assert result.aggregate_mpps > 0
    assert 0.0 <= result.fast_fraction <= 1.0
