"""Unit tests for the measurement-window machinery."""

import pytest

from repro.io_arch import build_arch
from repro.net import Flow, FlowKind, Message, SaturatingSource
from repro.net import Testbed as TB
from repro.hw import CacheConfig, HostConfig
from repro.sim.units import US
from repro.workloads import MeasurementWindow


def build():
    bed = TB(host_config=HostConfig(cache=CacheConfig(size=256 * 1024)),
             seed=2)
    arch = build_arch("baseline", bed.host)
    bed.install_io_arch(arch)
    return bed, arch


def test_window_zero_duration_rejected():
    bed, arch = build()
    window = MeasurementWindow(bed, arch)
    with pytest.raises(ValueError):
        window.finish()


def test_window_reports_deltas_not_totals():
    bed, arch = build()
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=500)
    bed.add_flow(flow)
    rx = arch.flows[flow.flow_id]
    # Pre-window history that must not count.
    rx.processed.add(1000)
    rx.processed_bytes.add(1000 * 500)
    window = MeasurementWindow(bed, arch)
    bed.run(until=100 * US)
    rx.processed.add(10)
    rx.processed_bytes.add(10 * 500)
    m = window.finish()
    assert m.total_mpps == pytest.approx(10 / (100 * US) * 1e3)


def test_window_latency_histogram_reset():
    bed, arch = build()
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=500)
    bed.add_flow(flow)
    rx = arch.flows[flow.flow_id]
    rx.latency.record(10_000_000)  # huge warm-up outlier
    window = MeasurementWindow(bed, arch)
    bed.run(until=10 * US)
    rx.latency.record(1_000)
    m = window.finish()
    assert m.p999_us < 100  # the outlier is gone


def test_window_separates_involved_and_bypass():
    bed, arch = build()
    inv = Flow(FlowKind.CPU_INVOLVED, message_payload=500)
    byp = Flow(FlowKind.CPU_BYPASS, message_payload=1000)
    bed.add_flow(inv)
    bed.add_flow(byp)
    window = MeasurementWindow(bed, arch)
    bed.run(until=10 * US)
    arch.flows[inv.flow_id].processed.add(100)
    arch.flows[inv.flow_id].processed_bytes.add(100 * 500)
    arch.flows[byp.flow_id].processed.add(50)
    arch.flows[byp.flow_id].processed_bytes.add(50 * 1000)
    m = window.finish()
    assert m.involved_mpps > 0
    assert m.bypass_mpps > 0
    assert m.bypass_gbps > 0
    assert m.total_mpps == pytest.approx(m.involved_mpps + m.bypass_mpps)


def test_window_note_new_flow_midway():
    bed, arch = build()
    window = MeasurementWindow(bed, arch)
    bed.run(until=10 * US)
    late = Flow(FlowKind.CPU_INVOLVED, message_payload=500)
    bed.add_flow(late, late_ok=True)
    window.note_new_flow(late)
    arch.flows[late.flow_id].processed.add(7)
    bed.run(until=20 * US)
    m = window.finish()
    assert m.flow(late.name) is not None
    assert m.flow(late.name).mpps > 0


def test_window_miss_rate_delta():
    bed, arch = build()
    llc = bed.host.llc
    llc.io_insert("warm", 2048)
    llc.cpu_read("cold-warmup", 2048)  # pre-window miss
    window = MeasurementWindow(bed, arch)
    bed.run(until=10 * US)
    llc.cpu_read("warm", 2048)  # in-window hit
    m = window.finish()
    assert m.llc_miss_rate == 0.0
