"""Extreme-tail statistics: ``TailStats`` and histogram merge parity.

The SLO layer asserts p99.99, one order deeper than the closed-loop
reports — these tests pin the properties that make that quantile
trustworthy: merging per-shard histograms is lossless for every
quantile (merged == single-histogram percentiles, bucket for bucket),
out-of-range samples clamp into the last bucket instead of vanishing,
and every reported quantile is bounded by the recorded range's bucket
ceiling.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.sim.stats import Histogram, percentile_from_counts
from repro.sim.units import US
from repro.workloads.measure import TailStats

QS = (50.0, 99.0, 99.9, 99.99)

samples = st.lists(st.floats(1.0, 5e7), min_size=1, max_size=400)


def _hist():
    return Histogram(lo=10.0, hi=1e8)


@given(chunks=st.lists(samples, min_size=2, max_size=6))
@settings(max_examples=80, deadline=None)
def test_merged_histogram_matches_single_at_every_quantile(chunks):
    """Shard merge parity: recording each chunk into its own histogram
    and merging gives byte-identical buckets — hence identical p50
    through p99.99 — to recording everything into one histogram."""
    single = _hist()
    parts = []
    for chunk in chunks:
        part = _hist()
        for value in chunk:
            single.record(value)
            part.record(value)
        parts.append(part)
    merged = _hist()
    for part in parts:
        merged.merge(part)
    assert merged.delta_counts(None) == single.delta_counts(None)
    assert merged.count == single.count
    for q in QS:
        assert merged.percentile(q) == single.percentile(q)


@given(values=samples)
@settings(max_examples=80, deadline=None)
def test_quantiles_monotone_and_bounded(values):
    hist = _hist()
    for value in values:
        hist.record(value)
    ps = [hist.percentile(q) for q in QS]
    assert all(a <= b for a, b in zip(ps, ps[1:]))
    # Quantiles clamp to the recorded max (upper-bound semantics capped
    # by the actual sample range), never to the histogram's range.
    top = hist.percentile(100.0)
    assert ps[-1] <= top <= max(values)


def test_out_of_range_samples_clamp_into_last_bucket():
    hist = Histogram(lo=1.0, hi=1_000.0)
    hist.record(10.0)
    hist.record(1e12)  # far beyond hi: clamped, not dropped
    assert hist.count == 2
    assert hist.percentile(99.99) == hist.bounds[-1]
    assert math.isfinite(hist.percentile(99.99))


def test_tailstats_from_histogram_reports_microseconds():
    hist = Histogram(lo=10.0, hi=1e8)
    for _ in range(4999):
        hist.record(5.0 * US)
    hist.record(400.0 * US)
    stats = TailStats.from_histogram(hist)
    assert stats.p50_us <= stats.p99_us <= stats.p999_us <= stats.p9999_us
    # The single outlier is 1 in 5000: invisible at p99.9 (rank 4996 of
    # 5000), dominant at p99.99 (rank 5000).
    assert stats.p999_us < 50.0
    assert stats.p9999_us >= 400.0
    data = stats.to_dict()
    assert set(data) == {"p50_us", "p99_us", "p999_us", "p9999_us"}


def test_percentile_from_counts_empty_and_validation():
    bounds = [1.0, 2.0, 4.0]
    assert percentile_from_counts(bounds, [0, 0, 0], 99.9) == 0.0
    assert percentile_from_counts(bounds, [1, 0, 1], 100.0) == 4.0
    try:
        percentile_from_counts(bounds, [1, 0, 1], 101.0)
    except ValueError:
        pass
    else:
        raise AssertionError("p > 100 must be rejected")
