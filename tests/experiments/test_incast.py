"""Incast sweep: point identity carries the scenario tag, workers are
deterministic in and across processes (``--jobs`` byte-identity)."""

import json

import pytest

from repro.experiments import incast
from repro.runner import PoolConfig, WorkerPool
from repro.runner.sweep import run_points_serial
from repro.scenario import canonical, incast_template


def test_points_carry_canonical_scenario_identity():
    pts = incast.points(quick=True)
    assert [p.label for p in pts] == [
        "baseline.8", "baseline.32", "ceio.8", "ceio.32"]
    for point in pts:
        assert point.seed == incast.DEFAULT_SEED
        spec = incast_template(point.params["fan_in"])
        spec["seed"] = point.seed
        spec["hosts"]["*"]["arch"] = point.params["arch"]
        spec["measure"] = {"warmup_us": 200.0, "duration_us": 300.0}
        assert point.scenario == canonical(spec)
        assert f"|scenario={point.scenario}" in point.content_key


def test_full_axes_cover_all_archs():
    pts = incast.points(quick=False)
    assert len(pts) == len(incast.ARCHS) * len(incast.FAN_INS_FULL)
    assert len({p.content_key for p in pts}) == len(pts)


def _tiny_points():
    pts = incast.points(quick=True)
    # The two fan-in-8 points only (fast enough for a unit test).
    return [p for p in pts if p.params["fan_in"] == 8]


@pytest.mark.slow
def test_pool_results_match_serial_byte_for_byte():
    pts = _tiny_points()
    serial = run_points_serial(pts)
    pool = WorkerPool(PoolConfig(jobs=2))
    outcomes = pool.run(pts)
    assert all(o.ok for o in outcomes)
    pooled = {o.point.point_id: o.value for o in outcomes}
    assert json.dumps(pooled, sort_keys=True) \
        == json.dumps(serial, sort_keys=True)


@pytest.mark.slow
def test_run_point_is_deterministic_and_audit_clean():
    params = {"arch": "ceio", "fan_in": 8, "quick": True}
    first = incast.run_point(params, seed=7)
    second = incast.run_point(params, seed=7)
    assert first == second
    assert first["audit_ok"] and first["audit_violations"] == 0
    assert first["mpps"] > 0
