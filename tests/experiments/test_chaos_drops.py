"""Regression pins for the chaos descriptor_drop sweep's drop accounting.

These exact totals changed when silent-drop accounting was fixed: before,
``baseline``/``shring``/``hostcc`` lost DMA writes without routing them
into per-flow ``rx.dropped`` (and so ``Measurement.dropped``). The pins
below are the post-fix deterministic values at the chaos experiment's
default seed — any accounting regression (drops double-counted, dropped
again, or lost) moves them.
"""

import pytest

from repro.experiments import chaos


def _point(variant, magnitude):
    for point in chaos.points(quick=True):
        if (point.params["variant"] == variant
                and point.params["magnitude"] == magnitude):
            return point
    raise AssertionError(f"no chaos point {variant} m{magnitude}")


@pytest.mark.parametrize("variant,dropped_writes,dropped_total", [
    # shring: 512 DMA writes silently dropped, plus ring-full drops the
    # flows already saw -> 648 flow-visible drops across all windows.
    ("shring", 512, 648),
    # baseline: drops are almost all DMA-write drops; the remainder are
    # ring-full admission drops.
    ("baseline", 3520, 3950),
])
def test_descriptor_drop_totals_pinned(variant, dropped_writes,
                                       dropped_total):
    point = _point(variant, 1.0)
    value = chaos.run_point(dict(point.params), point.seed)
    assert value["dropped_writes"] == dropped_writes
    assert value["dropped_total"] == dropped_total
    # Flow-visible drops now include every silently lost DMA write.
    assert value["dropped_total"] >= value["dropped_writes"]
    assert value["audit_violations"] == 0
