"""Unit tests for the chaos experiment module: registration, point
construction, and collect() verdicts on synthetic results (the expensive
end-to-end points run in tests/faults/test_recovery.py)."""

from repro.experiments import EXPERIMENTS, chaos
from repro.faults import FaultPlan


def test_registered_with_sweep_contract():
    spec = EXPERIMENTS["chaos"]
    assert spec.points is chaos.points
    assert spec.collect is chaos.collect
    assert spec.run is chaos.run


def test_points_carry_their_fault_plan():
    pts = chaos.points(quick=True)
    assert len(pts) == len(chaos.VARIANTS) * len(chaos.MAGS_QUICK)
    for point in pts:
        plan = FaultPlan.from_dicts(point.params["faults"])
        assert plan  # never a healthy point
        assert point.faults == plan.canonical()
        spec = plan.specs[0]
        assert (spec.site, spec.kind) == ("hw.nic", "descriptor_drop")
        assert spec.start == chaos.WARMUP + chaos.PRE
        assert spec.duration == chaos.FAULT
        assert spec.magnitude == point.params["magnitude"]
    # Default seed applies when no root seed is given.
    assert all(p.seed == chaos.DEFAULT_SEED for p in pts)
    # Distinct magnitudes are distinct points even for one variant.
    assert len({p.content_key for p in pts}) == len(pts)


def test_points_full_sweep_is_superset():
    assert len(chaos.points(quick=False)) == (
        len(chaos.VARIANTS) * len(chaos.MAGS_FULL))


def _synthetic(ceio_final=40.0, ablation_final=0.0, reclaimed=90.0):
    results = {}
    for variant in chaos.VARIANTS:
        for mag in chaos.MAGS_QUICK:
            final = {"ceio": ceio_final,
                     "ceio-norecovery": ablation_final}.get(variant, 10.0)
            results[f"chaos/{variant}.m{mag:g}"] = {
                "pre": 40.0, "during": 10.0,
                "post": [5.0, 20.0, final, final, final, final],
                "dropped_writes": 90.0,
                "credit_reclaimed": reclaimed if variant == "ceio" else 0.0,
                "swring_holes": reclaimed if variant == "ceio" else 0.0,
                "spilled": 0.0,
            }
    # shring wedges in the synthetic world too (matches the simulator).
    for mag in chaos.MAGS_QUICK:
        results[f"chaos/shring.m{mag:g}"]["post"] = [0.0] * 6
    return results


def test_collect_passes_on_recovery_and_deadlock():
    result = chaos.collect(_synthetic(), quick=True)
    assert result.all_passed
    assert len(result.rows) == len(chaos.VARIANTS) * len(chaos.MAGS_QUICK)
    assert result.exp_id == "chaos"


def test_collect_fails_when_ablation_survives():
    result = chaos.collect(_synthetic(ablation_final=35.0), quick=True)
    failed = [c.name for c in result.checks if not c.passed]
    assert any("ablation deadlocks" in name for name in failed)


def test_collect_fails_when_ceio_does_not_recover():
    result = chaos.collect(_synthetic(ceio_final=1.0), quick=True)
    failed = [c.name for c in result.checks if not c.passed]
    assert any("recovers after" in name for name in failed)
