"""Unit tests for the dynamic-experiment helpers (no heavy simulation)."""

from repro.experiments.dynamic import _involved_counts


def test_involved_counts_dynamic_replacement():
    assert _involved_counts("dynamic", 3) == [8, 6, 4, 2]


def test_involved_counts_burst_additions():
    assert _involved_counts("burst", 3) == [8, 10, 12, 14]


def test_involved_counts_zero_phases():
    assert _involved_counts("dynamic", 0) == [8]
    assert _involved_counts("burst", 0) == [8]
