"""Tests for the experiment report containers and registry plumbing."""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.report import ExperimentResult, fmt, render_table


def make_result():
    return ExperimentResult(exp_id="x", title="T", paper_claim="C")


def test_fmt_scales():
    assert fmt(0.0) == "0"
    assert fmt(1234.5) == "1234"
    assert fmt(3.14159) == "3.14"
    assert fmt(0.01234) == "0.012"
    assert fmt("abc") == "abc"


def test_render_table_alignment():
    out = render_table(["a", "bbbb"], [[1, 2], [333, 4]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert all(len(l) >= len("a    bbbb") - 2 for l in lines)


def test_check_records_pass_fail():
    r = make_result()
    assert r.check("ok", True)
    assert not r.check("bad", False, "detail")
    assert not r.all_passed
    assert "PASS" in str(r.checks[0])
    assert "FAIL" in str(r.checks[1])
    assert "detail" in str(r.checks[1])


def test_check_order():
    r = make_result()
    assert r.check_order("desc", {"a": 3, "b": 2, "c": 2}, ["a", "b", "c"])
    assert not r.check_order("bad", {"a": 1, "b": 2}, ["a", "b"])


def test_check_ratio_bounds():
    r = make_result()
    assert r.check_ratio("r", 10, 5, lo=1.5, hi=3.0)
    assert not r.check_ratio("r2", 10, 5, lo=2.5)
    assert not r.check_ratio("r3", 10, 5, lo=1.0, hi=1.5)


def test_render_includes_rows_and_checks():
    r = make_result()
    r.headers = ["col"]
    r.rows = [[42]]
    r.check("fine", True)
    r.notes.append("hello")
    text = r.render()
    assert "42" in text
    assert "[PASS] fine" in text
    assert "note: hello" in text
    assert "paper: C" in text


def test_registry_lists_all_paper_artifacts():
    expected = {"fig04a", "fig04b", "fig09", "fig10a", "fig10b",
                "fig11", "fig12", "table2", "table3", "table4",
                "limits", "ablations", "lessons", "chaos", "soak",
                "incast", "shard_chaos", "capacity"}
    assert expected == set(EXPERIMENTS)


def test_run_experiment_unknown_id():
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("fig99")


def test_run_experiment_smoke_table3():
    """The cheapest real experiment end-to-end through the registry."""
    result = run_experiment("table3", quick=True)
    assert result.exp_id == "table3"
    assert result.rows
    assert result.all_passed, result.render()
