"""Soak harness: sampling determinism, gating, and a sampled-point run."""

from repro.experiments import soak
from repro.faults import FAULT_SITES, FaultPlan


def test_sample_is_a_pure_function_of_the_seed():
    a = soak.points(quick=True)
    b = soak.points(quick=True)
    assert [(p.point_id, p.seed, p.faults) for p in a] \
        == [(p.point_id, p.seed, p.faults) for p in b]
    c = soak.points(quick=True, seed=99)
    assert [(p.point_id, p.seed, p.faults) for p in a] \
        != [(p.point_id, p.seed, p.faults) for p in c]


def test_sample_size_and_shape():
    pts = soak.points(quick=True)
    assert len(pts) >= 50
    assert len({p.point_id for p in pts}) == len(pts)
    archs = {p.params["arch"] for p in pts}
    assert archs == set(soak.ARCHES)
    assert any(p.params.get("faults") for p in pts)
    assert any(p.params.get("mode") != "demand" and not p.params["faults"]
               for p in pts)
    for p in pts:
        if "faults" not in p.params:
            assert not p.faults
            continue
        plan = FaultPlan.from_dicts(p.params["faults"])
        assert p.faults == plan.canonical()
        for spec in plan:
            assert spec.kind in FAULT_SITES[spec.site]
            assert spec.finite
    assert len(soak.points(quick=False)) > len(pts)


def test_sample_includes_demand_points():
    pts = soak.points(quick=True)
    demand = [p for p in pts if p.params.get("mode") == "demand"]
    assert len(demand) == soak.N_DEMAND_QUICK
    # Index 0 is pinned to guarded ceio so every sample soaks the
    # admission/shedding reconciliation path.
    assert demand[0].params["arch"] == "ceio"
    assert demand[0].params["guarded"] is True
    for p in demand:
        assert p.params["profile"]["kind"] in soak._DEMAND_PROFILES
        assert p.params["arrivals"] in soak._DEMAND_ARRIVALS
        assert "faults" not in p.params


def test_at_most_one_crash_per_plan():
    for p in soak.points(quick=False):
        crashes = sum(1 for f in p.params.get("faults", [])
                      if f["kind"] == "crash_restart")
        assert crashes <= 1


def test_faulted_sample_point_runs_clean():
    point = next(p for p in soak.points(quick=True)
                 if p.params.get("faults"))
    value = soak.run_point(dict(point.params), point.seed)
    assert value["checked"] > 0
    assert value["violations"] == []


def test_collect_gates_on_violations():
    pts = soak.points(quick=True)
    healthy = {p.point_id: {"mpps": 1.0, "dropped": 0.0, "checked": 15,
                            "violations": []} for p in pts}
    result = soak.collect(healthy, quick=True)
    assert result.all_passed

    broken = dict(healthy)
    broken[pts[3].point_id] = {
        "mpps": 1.0, "dropped": 0.0, "checked": 15,
        "violations": ["hw.llc: inserted owes evicted 64 bytes"]}
    result = soak.collect(broken, quick=True)
    assert not result.all_passed
    rendered = result.render()
    assert "sampled points balance" in rendered
    assert "hw.llc" in rendered
