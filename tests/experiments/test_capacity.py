"""Capacity experiment: point identity, worker determinism (``--jobs``
byte-identity through the pool), and flash-crowd guardrail behaviour."""

import json

import pytest

from repro.experiments import capacity
from repro.runner import PoolConfig, WorkerPool
from repro.runner.sweep import run_points_serial
from repro.scenario import canonical, template


def test_points_cover_searches_and_flash_pair():
    pts = capacity.points(quick=True)
    assert [p.label for p in pts] == [
        "search.baseline", "search.ceio", "flash.guarded",
        "flash.unguarded"]
    assert len({p.content_key for p in pts}) == len(pts)
    for point in pts:
        assert point.seed == capacity.DEFAULT_SEED


def test_flash_points_carry_canonical_scenario_identity():
    pts = {p.label: p for p in capacity.points(quick=True)}
    guarded = template("flash-crowd")
    guarded["seed"] = capacity.DEFAULT_SEED
    assert pts["flash.guarded"].scenario == canonical(guarded)
    unguarded = template("flash-crowd")
    unguarded["seed"] = capacity.DEFAULT_SEED
    del unguarded["hosts"]["*"]["ceio"]
    assert pts["flash.unguarded"].scenario == canonical(unguarded)
    assert pts["flash.guarded"].scenario != pts["flash.unguarded"].scenario


@pytest.mark.slow
def test_flash_pair_through_pool_matches_serial_byte_for_byte():
    pts = [p for p in capacity.points(quick=True)
           if p.params["mode"] == "flash"]
    serial = run_points_serial(pts)
    pool = WorkerPool(PoolConfig(jobs=2))
    outcomes = pool.run(pts)
    assert all(o.ok for o in outcomes)
    pooled = {o.point.point_id: o.value for o in outcomes}
    assert json.dumps(pooled, sort_keys=True) \
        == json.dumps(serial, sort_keys=True)


@pytest.mark.slow
def test_flash_guardrails_bound_the_tail():
    guarded = capacity.run_point({"mode": "flash", "guarded": True},
                                 seed=capacity.DEFAULT_SEED)
    again = capacity.run_point({"mode": "flash", "guarded": True},
                               seed=capacity.DEFAULT_SEED)
    assert guarded == again
    unguarded = capacity.run_point({"mode": "flash", "guarded": False},
                                   seed=capacity.DEFAULT_SEED)
    assert guarded["audit_ok"] and unguarded["audit_ok"]
    # Guardrails: shed > 0, SLO met, every overload window's p99.9 under
    # the target. Ablation: nothing shed, tail diverges past the target.
    assert guarded["shed"] > 0 and guarded["ok"]
    assert guarded["worst_p999_us"] <= capacity.SLO_P999_US
    assert unguarded["shed"] == 0 and not unguarded["ok"]
    assert unguarded["worst_p999_us"] > capacity.SLO_P999_US
    assert unguarded["trail_p999_us"][-1] > guarded["trail_p999_us"][-1]
    # Shedding never costs goodput: both deliver the same service rate.
    assert guarded["goodput_mpps"] == pytest.approx(
        unguarded["goodput_mpps"], rel=0.01)
