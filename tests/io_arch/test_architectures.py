"""Integration tests for the receive-side I/O architectures, driven
through the real testbed (senders, switch, NIC, DMA, memory controller)."""

import pytest

from repro.hw import CacheConfig, HostConfig, NicConfig
from repro.io_arch import ARCHITECTURES, build_arch
from repro.io_arch.hostcc import HostccArch, HostccConfig
from repro.io_arch.shring import ShringArch, ShringConfig
from repro.net import Flow, FlowKind, SaturatingSource
from repro.net import Testbed as TB  # aliased: pytest collects Test* names
from repro.sim.units import US


def small_host():
    return HostConfig(cache=CacheConfig(size=256 * 1024))


def drive(arch_name, n_flows=2, payload=1000, until=200 * US,
          outstanding=16, host_config=None, **arch_kwargs):
    bed = TB(host_config=host_config or small_host(), seed=3)
    arch = build_arch(arch_name, bed.host, **arch_kwargs)
    bed.install_io_arch(arch)
    flows = []
    for i in range(n_flows):
        flow = Flow(FlowKind.CPU_INVOLVED, name=f"f{i}",
                    message_payload=payload)
        bed.add_flow(flow)
        flows.append(flow)
        SaturatingSource(bed.sim, bed.senders[flow.flow_id],
                         outstanding=outstanding).start()
    bed.run(until=until)
    return bed, arch, flows


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

def test_registry_contains_all_four():
    build_arch("ceio", TB().host)  # force lazy registration
    assert set(ARCHITECTURES) >= {"baseline", "hostcc", "shring", "ceio"}


def test_build_arch_unknown_name():
    bed = TB()
    with pytest.raises(ValueError, match="unknown I/O architecture"):
        build_arch("nope", bed.host)


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def test_baseline_delivers_packets_to_flow_rings():
    bed, arch, flows = drive("baseline")
    rx = arch.flows[flows[0].flow_id]
    assert rx.delivered.value > 0
    assert len(rx.ring) > 0


def test_baseline_rx_burst_and_release_recycle_descriptors():
    bed, arch, flows = drive("baseline")
    rx = arch.flows[flows[0].flow_id]
    in_use_before = rx.in_use
    records = arch.rx_burst(flows[0], 8)
    assert 0 < len(records) <= 8
    arch.release(records)
    assert rx.in_use == in_use_before - len(records)


def test_baseline_unregistered_flow_dropped():
    bed = TB(host_config=small_host())
    arch = build_arch("baseline", bed.host)
    bed.install_io_arch(arch)
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=500)
    # Bypass add_flow: deliver a packet for an unknown flow.
    pkt = flow.make_message().packets(flow, 0)[0]
    bed.host.nic.receive(pkt)
    bed.sim.run(until=10 * US)
    assert arch.rx_dropped.value == 1


def test_baseline_descriptor_exhaustion_drops():
    cfg = HostConfig(cache=CacheConfig(size=256 * 1024),
                     nic=NicConfig(rx_ring_entries=4))
    bed, arch, flows = drive("baseline", n_flows=1, host_config=cfg,
                             outstanding=32)
    rx = arch.flows[flows[0].flow_id]
    assert rx.in_use <= 4
    assert rx.dropped.value > 0


def test_baseline_ddio_thrash_produces_misses():
    """Tiny LLC + nobody consuming => inserts evict unread buffers."""
    cfg = HostConfig(cache=CacheConfig(size=64 * 1024))
    bed, arch, flows = drive("baseline", n_flows=2, host_config=cfg,
                             outstanding=64, until=300 * US)
    # Consume everything now: most buffers were evicted before reading.
    missed = 0
    total = 0
    core = bed.host.cpu.allocate()
    for flow in flows:
        for record in arch.rx_burst(flow, 10_000):
            total += 1
            _lat, miss = core.read_latency(record.key, record.packet.payload)
            missed += miss
    assert total > 50
    assert missed / total > 0.5


# ---------------------------------------------------------------------------
# HostCC
# ---------------------------------------------------------------------------

def test_hostcc_throttles_under_congestion():
    bed, arch, flows = drive("hostcc", n_flows=4, outstanding=64,
                             until=400 * US)
    assert isinstance(arch, HostccArch)
    # Nobody consumes: memory-side congestion must have been detected and
    # the DMA pacing rate reduced below line rate.
    assert arch.congestion_events.value >= 1
    assert arch.dma_rate < bed.host.config.link_rate


def test_hostcc_config_thresholds_respected():
    bed = TB(host_config=small_host())
    arch = HostccArch(bed.host, HostccConfig(control_interval=5 * US))
    assert arch.config.control_interval == 5 * US


# ---------------------------------------------------------------------------
# ShRing
# ---------------------------------------------------------------------------

def test_shring_shared_ring_bounds_admission():
    bed, arch, flows = drive("shring", n_flows=2, outstanding=64,
                             until=400 * US,
                             config=ShringConfig(ring_entries=64))
    assert isinstance(arch, ShringArch)
    assert arch.shared_in_use <= 64
    assert arch.ring_full_drops.value > 0


def test_shring_any_flow_served_from_shared_ring():
    bed, arch, flows = drive("shring", n_flows=2)
    records = arch.rx_burst(flows[0], 16)
    assert records
    # The shared ring hands out whatever arrived first, regardless of the
    # flow passed to rx_burst.
    fids = {r.flow.flow_id for r in records}
    assert fids <= {f.flow_id for f in flows}
    arch.release(records)


def test_shring_release_frees_shared_slots():
    bed, arch, flows = drive("shring", n_flows=1)
    before = arch.shared_in_use
    records = arch.rx_burst(flows[0], 8)
    arch.release(records)
    assert arch.shared_in_use == before - len(records)


def test_shring_dispatch_overhead_exposed():
    bed = TB(host_config=small_host())
    arch = ShringArch(bed.host, ShringConfig(dispatch_cycles=55.0))
    assert arch.app_overhead_cycles() == 55.0


def test_shring_ecn_guard_marks_probabilistically():
    bed, arch, flows = drive("shring", n_flows=2, outstanding=64,
                             until=400 * US,
                             config=ShringConfig(ring_entries=128,
                                                 ecn_guard=0.25))
    assert arch.guard_marks.value > 0


# ---------------------------------------------------------------------------
# poll_any / wait_ready (NAPI interface)
# ---------------------------------------------------------------------------

def test_poll_any_round_robins_ready_flows():
    bed, arch, flows = drive("baseline", n_flows=2)
    seen_fids = set()
    for _ in range(20):
        records = arch.poll_any(4)
        if not records:
            break
        seen_fids.update(r.flow.flow_id for r in records)
        arch.release(records)
    assert len(seen_fids) == 2


def test_wait_ready_fires_on_delivery():
    bed = TB(host_config=small_host())
    arch = build_arch("baseline", bed.host)
    bed.install_io_arch(arch)
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=500)
    bed.add_flow(flow)

    woke = []

    def waiter(sim):
        yield arch.wait_ready()
        woke.append(sim.now)

    bed.sim.process(waiter(bed.sim))
    bed.sim.run(until=5 * US)
    assert not woke
    SaturatingSource(bed.sim, bed.senders[flow.flow_id], outstanding=1).start()
    bed.run(until=50 * US)
    assert woke
