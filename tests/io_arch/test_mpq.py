"""Tests for the MPQ comparator — the §4.1 design alternative."""

from repro.hw import CacheConfig, HostConfig
from repro.io_arch import build_arch
from repro.io_arch.mpq import MpqArch, MpqConfig
from repro.net import Flow, FlowKind, SaturatingSource
from repro.net import Testbed as TB
from repro.sim.units import US


def build_bed(config=None):
    bed = TB(host_config=HostConfig(cache=CacheConfig(size=256 * 1024)),
             seed=7)
    arch = MpqArch(bed.host, config)
    bed.install_io_arch(arch)
    return bed, arch


def test_priority_decays_with_bytes():
    bed, arch = build_bed(MpqConfig(thresholds=[1000, 2000]))
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=400)
    bed.add_flow(flow)
    assert arch.priority(flow.flow_id) == 0
    arch._bytes_sent[flow.flow_id] = 1500
    assert arch.priority(flow.flow_id) == 1
    arch._bytes_sent[flow.flow_id] = 99_999
    assert arch.priority(flow.flow_id) == 2


def test_continuous_flow_gets_demoted_like_paper_says():
    """The paper's objection: an RPC stream that never stops sending decays
    to low priority even though it is CPU-involved."""
    bed, arch = build_bed(MpqConfig(thresholds=[10_000],
                                    aging_period=100 * 1000 * US))
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=1000)
    bed.add_flow(flow)
    SaturatingSource(bed.sim, bed.senders[flow.flow_id],
                     outstanding=16).start()
    bed.run(until=200 * US)
    assert arch.demotions.value >= 1
    assert arch.low_packets.value > 0
    assert arch.priority(flow.flow_id) > 0


def test_aging_resets_priorities():
    bed, arch = build_bed(MpqConfig(thresholds=[1000], aging_period=50_000))
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=400)
    bed.add_flow(flow)
    arch._bytes_sent[flow.flow_id] = 5000
    assert arch.priority(flow.flow_id) == 1
    bed.run(until=60_000)
    assert arch.priority(flow.flow_id) == 0


def test_high_class_uses_ddio_low_class_uses_dram():
    bed, arch = build_bed(MpqConfig(thresholds=[5_000]))
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=1000)
    bed.add_flow(flow)
    SaturatingSource(bed.sim, bed.senders[flow.flow_id],
                     outstanding=8).start()
    bed.run(until=200 * US)
    assert arch.high_packets.value > 0
    assert arch.low_packets.value > 0
    assert bed.host.dram.bytes_written.value > 0  # low class goes to DRAM
    assert 0.0 < arch.high_fraction() < 1.0


def test_mpq_registered():
    bed = TB()
    arch = build_arch("mpq", bed.host)
    assert isinstance(arch, MpqArch)
