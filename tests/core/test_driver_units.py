"""Unit tests for CEIO driver helpers that need no full testbed."""

import pytest

from repro.core import CeioConfig
from repro.hw import CacheConfig, HostConfig
from repro.io_arch import build_arch
from repro.net import Flow, FlowKind
from repro.net import Testbed as TB


def build(config=None):
    bed = TB(host_config=HostConfig(cache=CacheConfig(size=256 * 1024)))
    arch = build_arch("ceio", bed.host,
                      **({"config": config} if config else {}))
    bed.install_io_arch(arch)
    return bed, arch


def test_batch_size_latency_class_for_involved():
    bed, arch = build(CeioConfig(drain_batch=32))
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=512)
    bed.add_flow(flow)
    assert arch.driver._batch_size(flow) == 32


def test_batch_size_byte_budget_for_bypass():
    bed, arch = build(CeioConfig(drain_batch=32,
                                 drain_batch_bytes=64 * 1024))
    flow = Flow(FlowKind.CPU_BYPASS, message_payload=1024,
                packets_per_message=64)
    bed.add_flow(flow)
    batch = arch.driver._batch_size(flow)
    assert batch > 32
    assert batch * (1024 + 42) <= 96 * 1024  # PCIe burst safety cap


def test_batch_size_capped_for_jumbo_frames():
    bed, arch = build()
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=9000)
    bed.add_flow(flow)
    batch = arch.driver._batch_size(flow)
    assert batch * (9000 + 42) <= 96 * 1024
    assert batch >= 1


def test_post_recv_grows_descriptor_budget():
    bed, arch = build()
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=512)
    bed.add_flow(flow)
    rx = arch.flows[flow.flow_id]
    before = rx.ring_entries
    arch.driver.post_recv(flow, 256)
    assert rx.ring_entries == before + 256


def test_release_of_slow_records_never_credits():
    bed, arch = build()
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=512)
    bed.add_flow(flow)
    from repro.io_arch.base import RxRecord
    pkt = flow.make_message().packets(flow, 0)[0]
    record = RxRecord(pkt, key=12345, path="slow")
    arch.flows[flow.flow_id].in_use += 1
    acct = arch.credits.account(flow.flow_id)
    inflight_before = acct.inflight
    arch.release([record])
    assert acct.inflight == inflight_before  # slow buffers hold no credits


def test_active_share_scales_with_inactive_count():
    bed, arch = build()
    flows = []
    for i in range(4):
        f = Flow(FlowKind.CPU_INVOLVED, message_payload=512)
        bed.add_flow(f)
        flows.append(f)
    full_share = arch._active_share()
    for f in flows[:2]:
        arch.states[f.flow_id].inactive = True
    assert arch._active_share() == pytest.approx(2 * full_share)
