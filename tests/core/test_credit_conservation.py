"""Credit-flux conservation: every credit consumed is eventually released,
reclaimed by the watchdog, or still in flight — across arbitrary operation
interleavings (hypothesis), the over-release clamp, and real crash_restart
/ watchdog-backoff scenarios."""

from hypothesis import given, settings, strategies as st

from repro.core import CreditController
from repro.faults import FaultPlan, FaultSpec
from repro.sim.units import US
from repro.workloads import Scenario, ScenarioConfig


def _flux_balanced(ctl: CreditController) -> bool:
    inflight = sum(a.inflight for a in ctl.accounts.values())
    flux = (ctl.released_total + ctl.reclaimed_total + inflight
            + ctl._departed_inflight)
    return (abs(ctl.consumed_total - flux) < 1e-9
            and abs(ctl.audit() - ctl.total) < 1e-6)


# ---------------------------------------------------------------------------
# Unit: the over-release clamp
# ---------------------------------------------------------------------------

def test_over_release_clamps_and_stays_balanced():
    ctl = CreditController(32)
    ctl.add_flows([1])
    for _ in range(3):
        assert ctl.consume(1)
    # Watchdog presumed all three lost; a late delivery then releases the
    # same buffers anyway — the clamp must not mint credits.
    assert ctl.reclaim_inflight(1) == 3
    ctl.release(1, 3)
    assert ctl.released_total == 0          # nothing in flight: clamped
    assert ctl.reclaimed_total == 3
    assert _flux_balanced(ctl)


def test_release_beyond_inflight_clamps():
    ctl = CreditController(16)
    ctl.add_flows([1])
    assert ctl.consume(1)
    ctl.release(1, 10)                      # caller bug: 10 > 1 in flight
    assert ctl.released_total == 1
    assert ctl.account(1).inflight == 0
    assert _flux_balanced(ctl)


def test_departed_flow_releases_return_to_reserve():
    ctl = CreditController(16)
    ctl.add_flows([1])
    for _ in range(4):
        assert ctl.consume(1)
    ctl.remove_flow(1)                      # crash teardown: 4 in flight
    assert ctl._departed_inflight == 4
    assert _flux_balanced(ctl)
    ctl.release(1, 6)                       # late frees, over-counted
    assert ctl._departed_inflight == 0
    assert ctl.released_total == 4          # clamped to what departed held
    assert _flux_balanced(ctl)


# ---------------------------------------------------------------------------
# Property: arbitrary interleavings
# ---------------------------------------------------------------------------

flux_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 5)),
        st.tuples(st.just("remove"), st.integers(0, 5)),
        st.tuples(st.just("consume"), st.integers(0, 5)),
        st.tuples(st.just("overdraft"), st.integers(0, 5)),
        st.tuples(st.just("release"), st.integers(0, 5), st.integers(1, 12)),
        st.tuples(st.just("reclaim_inflight"), st.integers(0, 5)),
        st.tuples(st.just("donate"), st.integers(0, 5), st.booleans()),
    ),
    max_size=60)


@given(total=st.integers(1, 256), ops=flux_ops)
@settings(max_examples=200, deadline=None)
def test_flux_conserved_under_arbitrary_ops(total, ops):
    ctl = CreditController(total)
    for op in ops:
        kind, fid = op[0], op[1]
        if kind == "add":
            ctl.add_flows([fid])
        elif kind == "remove":
            ctl.remove_flow(fid)
        elif kind == "consume":
            ctl.consume(fid)
        elif kind == "overdraft":
            if fid in ctl.accounts:
                ctl.consume_overdraft(fid)
        elif kind == "release":
            ctl.release(fid, op[2])
        elif kind == "reclaim_inflight":
            ctl.reclaim_inflight(fid)
        elif kind == "donate":
            ctl.set_donating(fid, op[2])
        assert _flux_balanced(ctl), (op, ctl.consumed_total,
                                     ctl.released_total, ctl.reclaimed_total)


# ---------------------------------------------------------------------------
# Scenario: crash_restart and watchdog reclaim under descriptor loss
# ---------------------------------------------------------------------------

def _run(faults, **ceio_kwargs):
    from repro.core import CeioConfig
    config = ScenarioConfig(
        arch="ceio", scale=8, n_involved=3, n_bypass=0, outstanding=32,
        seed=5, warmup=150 * US, duration=300 * US, faults=faults,
        ceio=CeioConfig(**ceio_kwargs) if ceio_kwargs else None)
    scenario = Scenario(config).build()
    measurement = scenario.run_measure()
    return scenario, measurement


def test_crash_restart_conserves_credits():
    plan = FaultPlan((FaultSpec("apps", "crash_restart",
                                start=200 * US, duration=80 * US),))
    scenario, measurement = _run(plan)
    assert measurement.audit["ok"], measurement.audit["violations"]
    ctl = scenario.arch.credits
    assert _flux_balanced(ctl)
    assert ctl.consumed_total > 0


def test_watchdog_reclaim_cycles_conserve_credits():
    # Full-magnitude descriptor loss wedges every involved flow's credits;
    # the watchdog's reclaim_inflight backoff cycles bring them back.
    plan = FaultPlan((FaultSpec("hw.nic", "descriptor_drop",
                                start=200 * US, duration=150 * US,
                                magnitude=1.0),))
    scenario, measurement = _run(plan)
    assert measurement.audit["ok"], measurement.audit["violations"]
    ctl = scenario.arch.credits
    assert ctl.reclaimed_total > 0          # the watchdog actually fired
    assert _flux_balanced(ctl)


def test_crash_during_descriptor_loss_conserves_credits():
    plan = FaultPlan((
        FaultSpec("hw.nic", "descriptor_drop", start=180 * US,
                  duration=120 * US, magnitude=0.8),
        FaultSpec("apps", "crash_restart", start=220 * US,
                  duration=100 * US),
    ))
    scenario, measurement = _run(plan)
    assert measurement.audit["ok"], measurement.audit["violations"]
    assert _flux_balanced(scenario.arch.credits)
