"""Unit tests for the credit-based flow controller (Algorithm 1)."""

import pytest

from repro.core import CreditController


def test_total_credits_positive_required():
    with pytest.raises(ValueError):
        CreditController(0)


def test_first_flows_funded_from_reserve():
    ctl = CreditController(3000)
    ctl.add_flows([1, 2, 3])
    for fid in (1, 2, 3):
        assert ctl.account(fid).available == pytest.approx(1000)
    assert ctl.reserve == pytest.approx(0)
    assert ctl.audit() == pytest.approx(3000)


def test_single_flow_gets_everything():
    ctl = CreditController(3000)
    ctl.add_flows([1])
    assert ctl.account(1).available == pytest.approx(3000)


def test_fair_share_updates_with_flow_count():
    ctl = CreditController(3000)
    ctl.add_flows([1, 2])
    assert ctl.fair_share == pytest.approx(1500)
    ctl.add_flows([3])
    assert ctl.fair_share == pytest.approx(1000)


def test_new_flow_taxed_from_existing_when_free():
    """Scenario (a) of Q1: existing flows have free credits to give."""
    ctl = CreditController(3000)
    ctl.add_flows([1, 2])
    ctl.add_flows([3])
    # C_flow = 1000; each existing gives 500.
    assert ctl.account(1).available == pytest.approx(1000)
    assert ctl.account(2).available == pytest.approx(1000)
    assert ctl.account(3).available == pytest.approx(1000)
    assert not ctl.account(1).owes
    assert ctl.audit() == pytest.approx(3000)


def test_new_flow_owed_when_existing_credits_in_flight():
    """Scenario (b) of Q1: an existing flow's credits are tied up in
    unprocessed packets; it gives what it can and owes the rest."""
    ctl = CreditController(3000)
    ctl.add_flows([1, 2])
    # Flow 1 consumes everything (all credits in flight).
    for _ in range(1500):
        assert ctl.consume(1)
    ctl.add_flows([3])
    acct1 = ctl.account(1)
    assert acct1.available == pytest.approx(0)
    assert acct1.owes
    assert acct1.owed[3] == pytest.approx(500)
    # Flow 2 paid its full quota immediately.
    assert ctl.account(2).available == pytest.approx(1000)
    # Flow 3 got flow 2's contribution only, so far.
    assert ctl.account(3).available == pytest.approx(500)
    assert ctl.audit() == pytest.approx(3000)


def test_release_repays_creditors_first():
    ctl = CreditController(3000)
    ctl.add_flows([1, 2])
    for _ in range(1500):
        ctl.consume(1)
    ctl.add_flows([3])
    # Flow 1 owes flow 3 500 credits. Release 600: 500 go to flow 3.
    ctl.release(1, 600)
    assert ctl.account(3).available == pytest.approx(1000)
    assert ctl.account(1).available == pytest.approx(100)
    assert not ctl.account(1).owes
    assert ctl.audit() == pytest.approx(3000)


def test_release_partial_repayment_keeps_debt():
    ctl = CreditController(3000)
    ctl.add_flows([1, 2])
    for _ in range(1500):
        ctl.consume(1)
    ctl.add_flows([3])
    ctl.release(1, 200)
    assert ctl.account(1).owed[3] == pytest.approx(300)
    assert ctl.account(1).available == pytest.approx(0)
    assert ctl.account(3).available == pytest.approx(700)


def test_debt_split_across_multiple_creditors():
    ctl = CreditController(4000)
    ctl.add_flows([1])
    for _ in range(4000):
        ctl.consume(1)
    ctl.add_flows([2, 3])
    acct = ctl.account(1)
    # Owes each newcomer its full share (C_flow = 4000/3).
    share = 4000 / 3
    assert acct.owed[2] == pytest.approx(share)
    assert acct.owed[3] == pytest.approx(share)
    ctl.release(1, 1000)
    assert ctl.account(2).available == pytest.approx(500)
    assert ctl.account(3).available == pytest.approx(500)
    assert ctl.audit() == pytest.approx(4000)


def test_consume_fails_when_exhausted():
    ctl = CreditController(10)
    ctl.add_flows([1])
    for _ in range(10):
        assert ctl.consume(1)
    assert not ctl.consume(1)
    assert ctl.credits_exhausted(1)


def test_consume_unknown_flow_fails():
    ctl = CreditController(10)
    assert not ctl.consume(99)
    assert ctl.credits_exhausted(99)


def test_release_clamps_to_inflight():
    ctl = CreditController(100)
    ctl.add_flows([1])
    ctl.consume(1)
    ctl.release(1, 50)  # only 1 in flight
    assert ctl.account(1).available == pytest.approx(100)
    assert ctl.audit() == pytest.approx(100)


def test_remove_flow_returns_credits_to_reserve():
    ctl = CreditController(3000)
    ctl.add_flows([1, 2])
    ctl.remove_flow(1)
    assert ctl.reserve == pytest.approx(1500)
    assert ctl.audit() == pytest.approx(3000)


def test_remove_flow_with_inflight_recovers_on_release():
    ctl = CreditController(100)
    ctl.add_flows([1])
    for _ in range(40):
        ctl.consume(1)
    ctl.remove_flow(1)
    assert ctl.reserve == pytest.approx(60)
    assert ctl.audit() == pytest.approx(100)
    ctl.release(1, 40)  # late buffer releases from the departed flow
    assert ctl.reserve == pytest.approx(100)
    assert ctl.audit() == pytest.approx(100)


def test_remove_flow_forgives_debts_to_it():
    ctl = CreditController(3000)
    ctl.add_flows([1, 2])
    for _ in range(1500):
        ctl.consume(1)
    ctl.add_flows([3])
    assert ctl.account(1).owes
    ctl.remove_flow(3)
    assert not ctl.account(1).owes


def test_repayment_to_departed_creditor_goes_to_reserve():
    ctl = CreditController(3000)
    ctl.add_flows([1, 2])
    for _ in range(1500):
        ctl.consume(1)
    ctl.add_flows([3])
    # Keep debt but remove creditor AFTER recording — debts are forgiven on
    # removal, so this must not leak credits anywhere.
    ctl.remove_flow(3)
    ctl.release(1, 500)
    assert ctl.audit() == pytest.approx(3000)


def test_donation_redirects_released_credits():
    ctl = CreditController(3000)
    ctl.add_flows([1, 2, 3])
    for _ in range(1000):
        ctl.consume(3)
    ctl.set_donating(3, True)
    ctl.release(3, 600)
    assert ctl.account(3).available == pytest.approx(0)
    assert ctl.account(1).available == pytest.approx(1300)
    assert ctl.account(2).available == pytest.approx(1300)
    assert ctl.audit() == pytest.approx(3000)


def test_donation_without_recipients_goes_to_reserve():
    ctl = CreditController(100)
    ctl.add_flows([1])
    for _ in range(50):
        ctl.consume(1)
    ctl.set_donating(1, True)
    ctl.release(1, 50)
    assert ctl.reserve == pytest.approx(50)
    assert ctl.audit() == pytest.approx(100)


def test_reclaim_moves_available_to_reserve():
    ctl = CreditController(3000)
    ctl.add_flows([1, 2])
    taken = ctl.reclaim(1)
    assert taken == pytest.approx(1500)
    assert ctl.account(1).available == 0
    assert ctl.reserve == pytest.approx(1500)


def test_grant_share_from_reserve():
    ctl = CreditController(3000)
    ctl.add_flows([1, 2])
    ctl.reclaim(1)
    granted = ctl.grant_share(1)
    assert granted == pytest.approx(1500)
    assert ctl.account(1).available == pytest.approx(1500)
    assert ctl.audit() == pytest.approx(3000)


def test_grant_share_taps_other_flows_when_reserve_short():
    ctl = CreditController(3000)
    ctl.add_flows([1, 2])
    ctl.reclaim(1)                  # reserve = 1500
    ctl.add_flows([3])              # newcomer takes 1000 from the reserve
    assert ctl.reserve == pytest.approx(500)
    granted = ctl.grant_share(1)    # share = 1000; reserve covers only 500
    assert granted == pytest.approx(1000)
    assert ctl.account(1).available == pytest.approx(1000)
    assert ctl.reserve == pytest.approx(0)
    # Flows 2 (still holding its original 1500) and 3 chipped in 250 each.
    assert ctl.account(2).available == pytest.approx(1250)
    assert ctl.account(3).available == pytest.approx(750)
    assert ctl.audit() == pytest.approx(3000)


def test_grant_share_no_op_when_flow_already_at_share():
    ctl = CreditController(3000)
    ctl.add_flows([1, 2])
    assert ctl.grant_share(1) == pytest.approx(0)


def test_grant_share_counts_inflight_toward_share():
    ctl = CreditController(1000)
    ctl.add_flows([1])
    for _ in range(600):
        ctl.consume(1)
    ctl.reclaim(1)  # takes the 400 available
    granted = ctl.grant_share(1)
    # Share is 1000; 600 in flight, so only 400 more.
    assert granted == pytest.approx(400)


def test_add_flows_idempotent_for_existing_ids():
    ctl = CreditController(1000)
    ctl.add_flows([1])
    before = ctl.account(1).available
    assert ctl.add_flows([1]) == []
    assert ctl.account(1).available == before


def test_conservation_through_random_workout():
    """Mixed operations must never create or destroy credits."""
    import random
    rng = random.Random(7)
    ctl = CreditController(5000)
    live = []
    next_fid = 1
    for step in range(2000):
        op = rng.random()
        if op < 0.05 or not live:
            ctl.add_flows([next_fid])
            live.append(next_fid)
            next_fid += 1
        elif op < 0.08 and len(live) > 1:
            fid = live.pop(rng.randrange(len(live)))
            ctl.remove_flow(fid)
        elif op < 0.55:
            ctl.consume(rng.choice(live))
        elif op < 0.9:
            fid = rng.choice(live)
            ctl.release(fid, rng.randint(1, 5))
        elif op < 0.95:
            ctl.set_donating(rng.choice(live), rng.random() < 0.5)
        else:
            fid = rng.choice(live)
            ctl.reclaim(fid)
            ctl.grant_share(fid)
        assert ctl.audit() == pytest.approx(5000), f"leak at step {step}"
