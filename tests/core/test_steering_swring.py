"""Unit tests for the steering table and the order-preserving SW ring."""

import pytest

from repro.core import SteeringAction, SteeringTable, SwRing


# ---------------------------------------------------------------------------
# Steering table
# ---------------------------------------------------------------------------

def test_install_and_match():
    table = SteeringTable()
    table.install(1)
    assert table.match(1, 1024, now=5.0) is SteeringAction.FAST_PATH
    rule = table.get(1)
    assert rule.hit_count == 1
    assert rule.hit_bytes == 1024
    assert rule.last_hit_time == 5.0


def test_match_unknown_flow_uses_default():
    table = SteeringTable()
    assert table.match(42, 100, 0.0) is SteeringAction.DROP


def test_set_action_redirects():
    table = SteeringTable()
    table.install(1)
    table.set_action(1, SteeringAction.SLOW_PATH)
    assert table.match(1, 100, 0.0) is SteeringAction.SLOW_PATH


def test_set_action_missing_rule_raises():
    table = SteeringTable()
    with pytest.raises(KeyError):
        table.set_action(9, SteeringAction.SLOW_PATH)


def test_remove_rule():
    table = SteeringTable()
    table.install(1)
    table.remove(1)
    assert table.get(1) is None
    assert len(table) == 0
    table.remove(1)  # idempotent


def test_counters_accumulate_across_hits():
    table = SteeringTable()
    table.install(7)
    for t in range(10):
        table.match(7, 64, float(t))
    rule = table.get(7)
    assert rule.hit_count == 10
    assert rule.hit_bytes == 640
    assert rule.last_hit_time == 9.0


# ---------------------------------------------------------------------------
# SW ring
# ---------------------------------------------------------------------------

class _FakePacket:
    def __init__(self, seq):
        self.seq = seq
        self.retransmitted = False


class _FakeRecord:
    def __init__(self, seq):
        self.packet = _FakePacket(seq)


def test_fast_records_pop_in_order():
    ring = SwRing(1)
    for seq in range(3):
        ring.note_fast_issued()
        ring.push_fast(_FakeRecord(seq))
    records = ring.pop_ready(10)
    assert [r.packet.seq for r in records] == [0, 1, 2]
    assert len(ring) == 0


def test_pop_ready_respects_max():
    ring = SwRing(1)
    for seq in range(5):
        ring.push_fast(_FakeRecord(seq))
    assert len(ring.pop_ready(2)) == 2
    assert len(ring) == 3


def test_slow_records_not_ready_until_resident():
    ring = SwRing(1)
    ring.push_slow(_FakeRecord(0))
    assert ring.pop_ready(10) == []
    assert ring.has_nonresident
    entries = ring.nonresident_head(10)
    assert len(entries) == 1
    entries[0].resident = True
    assert [r.packet.seq for r in ring.pop_ready(10)] == [0]


def test_barrier_holds_slow_behind_inflight_fast():
    """Fast packets issued before the degrade must pop before slow ones,
    even if the slow ones arrive (are buffered) first."""
    ring = SwRing(1)
    ring.note_fast_issued()   # fast pkt 0 in DMA pipeline
    ring.note_fast_issued()   # fast pkt 1 in DMA pipeline
    ring.set_barrier()        # flow degrades
    ring.push_slow(_FakeRecord(2))  # slow pkt arrives immediately
    # Slow entry must be invisible until the fast pipeline flushes.
    assert ring.nonresident_head(10) == []
    ring.push_fast(_FakeRecord(0))
    assert ring.nonresident_head(10) == []
    ring.push_fast(_FakeRecord(1))
    # Barrier satisfied: the slow entry enters the ring.
    entries = ring.nonresident_head(10)
    assert len(entries) == 1
    entries[0].resident = True
    assert [r.packet.seq for r in ring.pop_ready(10)] == [0, 1, 2]
    assert ring.out_of_order == 0


def test_clear_barrier_flushes_pending():
    ring = SwRing(1)
    ring.note_fast_issued()
    ring.set_barrier()
    ring.push_slow(_FakeRecord(5))
    assert not ring.nonresident_head(10)
    ring.clear_barrier()
    assert len(ring.nonresident_head(10)) == 1


def test_head_of_line_blocking_on_nonresident_entry():
    """Resident entries behind a non-resident head must not pop (ordering)."""
    ring = SwRing(1)
    ring.push_slow(_FakeRecord(0))
    ring.push_slow(_FakeRecord(1))
    entries = ring.nonresident_head(10)
    entries[1].resident = True  # second fetched first (out-of-order DMA)
    assert ring.pop_ready(10) == []
    entries[0].resident = True
    assert [r.packet.seq for r in ring.pop_ready(10)] == [0, 1]


def test_nonresident_head_skips_fetching_entries():
    ring = SwRing(1)
    ring.push_slow(_FakeRecord(0))
    ring.push_slow(_FakeRecord(1))
    first = ring.nonresident_head(1)
    assert len(first) == 1
    first[0].fetching = True
    second = ring.nonresident_head(1)
    assert len(second) == 1
    assert second[0] is not first[0]


def test_unordered_push_detects_out_of_order():
    """Ablation: without phase exclusivity the consumer sees reordering."""
    ring = SwRing(1)
    ring.push_slow_unordered(_FakeRecord(5))
    ring.push_fast(_FakeRecord(3))  # arrives later, lower seq
    for entry in ring.nonresident_head(10):
        entry.resident = True
    records = ring.pop_ready(10)
    assert [r.packet.seq for r in records] == [5, 3]
    assert ring.out_of_order == 1


def test_ready_count():
    ring = SwRing(1)
    ring.push_fast(_FakeRecord(0))
    ring.push_fast(_FakeRecord(1))
    ring.push_slow(_FakeRecord(2))
    assert ring.ready_count == 2
