"""Unit tests for elastic-buffer accounting and the RED guard bands."""

import pytest

from repro.core import CeioConfig, ElasticBufferManager
from repro.hw import CacheConfig, Host, HostConfig
from repro.net import Flow, FlowKind
from repro.sim import Simulator


def build(config=None):
    sim = Simulator()
    host = Host(sim, HostConfig(cache=CacheConfig(size=256 * 1024)))
    manager = ElasticBufferManager(host, config or CeioConfig())
    return sim, host, manager


def _buffer(sim, manager, flow, seqs):
    from repro.io_arch.base import RxRecord

    def proc(sim):
        for seq in seqs:
            pkt = flow.make_message().packets(flow, seq)[0]
            record = RxRecord(pkt, key=seq, path="slow")
            ok = yield from manager.buffer_packet(pkt, record)
            assert ok

    sim.process(proc(sim))
    sim.run()


def test_buffering_accounts_bytes_and_memory():
    sim, host, manager = build()
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=1000)
    _buffer(sim, manager, flow, range(4))
    assert manager.slow_bytes(flow.flow_id) == 4 * 1042
    assert host.nic.memory.used == 4 * 1042
    assert manager.buffered_packets.value == 4


def test_mark_probability_zero_below_band():
    sim, host, manager = build(CeioConfig(cca_mark_min_bytes=8 * 1024))
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=1000)
    _buffer(sim, manager, flow, range(2))
    assert manager.mark_probability(flow.flow_id) == 0.0


def test_mark_probability_one_above_band():
    sim, host, manager = build(CeioConfig(cca_mark_min_bytes=1024,
                                          cca_mark_max_bytes=2048))
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=1000)
    _buffer(sim, manager, flow, range(4))
    assert manager.mark_probability(flow.flow_id) == 1.0


def test_bypass_band_is_deeper():
    config = CeioConfig()
    sim, host, manager = build(config)
    flow = Flow(FlowKind.CPU_BYPASS, message_payload=1024,
                packets_per_message=64)  # 64 KB messages: bulk class
    _buffer(sim, manager, flow, range(32))  # ~34 KB buffered
    # Above the latency-class band but below the bypass band: unmarked.
    assert manager.slow_bytes(flow.flow_id) > config.cca_mark_max_bytes
    assert manager.mark_probability(flow.flow_id) == 0.0


def test_small_message_bypass_gets_latency_band():
    config = CeioConfig()
    sim, host, manager = build(config)
    flow = Flow(FlowKind.CPU_BYPASS, message_payload=512,
                packets_per_message=2)  # 1 KB messages: latency class
    _buffer(sim, manager, flow, range(70))  # ~38 KB
    assert manager.mark_probability(flow.flow_id) == 1.0


def test_unknown_flow_mark_probability_zero():
    sim, host, manager = build()
    assert manager.mark_probability(12345) == 0.0


def test_on_nic_memory_exhaustion_counts_overflow():
    sim = Simulator()
    from repro.hw import NicConfig
    host = Host(sim, HostConfig(cache=CacheConfig(size=256 * 1024),
                                nic=NicConfig(memory_size=2048)))
    manager = ElasticBufferManager(host, CeioConfig())
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=1500)

    results = []

    def proc(sim):
        from repro.io_arch.base import RxRecord
        for seq in range(3):
            pkt = flow.make_message().packets(flow, seq)[0]
            ok = yield from manager.buffer_packet(
                pkt, RxRecord(pkt, key=seq, path="slow"))
            results.append(ok)

    sim.process(proc(sim))
    sim.run()
    assert results == [True, False, False]
    # The manager reports overflow; the caller decides spill-vs-drop and
    # owns slow_drops.
    assert manager.overflow_events.value == 2
    assert manager.slow_drops.value == 0


def test_chaos_tracks_concurrently_buffered_flows():
    sim, host, manager = build()
    assert manager._chaos() == 0.0
    flows = [Flow(FlowKind.CPU_INVOLVED, message_payload=500)
             for _ in range(4)]
    for flow in flows:
        _buffer(sim, manager, flow, range(1))
    assert manager._active_buffered == 4
    assert manager._chaos() == pytest.approx(4 / manager.CHAOS_FLOWS)
    # Effective on-NIC bandwidth reduced accordingly.
    nominal = host.nic.memory.config.memory_bandwidth
    assert host.nic.memory._bandwidth.rate < nominal
