"""Integration tests for the CEIO runtime: steering flips, elastic
buffering, drains, ordering, lazy release, reallocation, pinning."""

import pytest

from repro.core import CeioConfig
from repro.core.steering import SteeringAction
from repro.hw import CacheConfig, HostConfig
from repro.io_arch import build_arch
from repro.net import Flow, FlowKind, SaturatingSource
from repro.net import Testbed as TB
from repro.sim.units import US


def small_host(llc=256 * 1024):
    return HostConfig(cache=CacheConfig(size=llc))


def build(ceio_config=None, llc=256 * 1024, seed=3):
    bed = TB(host_config=small_host(llc), seed=seed)
    arch = build_arch("ceio", bed.host,
                      **({"config": ceio_config} if ceio_config else {}))
    bed.install_io_arch(arch)
    return bed, arch


def add_flow(bed, arch, name="f", payload=1000, kind=FlowKind.CPU_INVOLVED,
             packets_per_message=1, outstanding=16, start=True):
    flow = Flow(kind, name=name, message_payload=payload,
                packets_per_message=packets_per_message)
    bed.add_flow(flow)
    src = SaturatingSource(bed.sim, bed.senders[flow.flow_id],
                           outstanding=outstanding)
    if start:
        src.start()
    return flow, src


def test_register_flow_installs_rule_and_credits():
    bed, arch = build()
    flow, _src = add_flow(bed, arch, start=False)
    rule = arch.steering.get(flow.flow_id)
    assert rule is not None
    assert rule.action is SteeringAction.FAST_PATH
    acct = arch.credits.account(flow.flow_id)
    assert acct.available == pytest.approx(arch.credits.total)


def test_unregister_flow_cleans_up():
    bed, arch = build()
    flow, _src = add_flow(bed, arch, start=False)
    arch.unregister_flow(flow)
    assert arch.steering.get(flow.flow_id) is None
    assert flow.flow_id not in arch.states
    assert arch.credits.audit() == pytest.approx(arch.credits.total)


def test_fast_path_consumes_credits_and_delivers():
    bed, arch = build()
    flow, _src = add_flow(bed, arch)
    bed.run(until=100 * US)
    state = arch.states[flow.flow_id]
    assert arch.fast_packets.value > 0
    # Packets delivered through the SW ring in order.
    records = arch.rx_burst(flow, 64)
    seqs = [r.packet.seq for r in records]
    assert seqs == sorted(seqs)


def test_credit_exhaustion_degrades_to_slow_path():
    bed, arch = build(llc=64 * 1024)  # tiny budget: 16 credits
    flow, _src = add_flow(bed, arch, outstanding=64)
    bed.run(until=200 * US)  # nothing consumes => credits exhaust
    assert arch.degrades.value >= 1
    assert arch.slow_packets.value > 0
    assert arch.steering.get(flow.flow_id).action is SteeringAction.SLOW_PATH
    assert bed.host.nic.memory.used > 0


def test_slow_path_preserves_order_end_to_end():
    bed, arch = build(llc=64 * 1024)
    flow, _src = add_flow(bed, arch, outstanding=64)
    # Alternate run / consume so fast and slow phases interleave.
    seqs = []
    for _ in range(20):
        bed.run(until=bed.sim.now + 20 * US)
        records = arch.rx_burst(flow, 64)
        seqs.extend(r.packet.seq for r in records)
        arch.release(records)
    fresh = [s for s in seqs]
    assert fresh == sorted(fresh), "SW ring must deliver in order"
    assert arch.slow_packets.value > 0, "slow path must have engaged"
    state = arch.states[flow.flow_id]
    assert state.swring.out_of_order == 0


def test_drain_and_upgrade_back_to_fast_path():
    bed, arch = build(llc=64 * 1024)
    flow, src = add_flow(bed, arch, outstanding=64)
    bed.run(until=100 * US)
    assert arch.steering.get(flow.flow_id).action is SteeringAction.SLOW_PATH
    src.stop()
    # Consume everything *before the inactivity timer*: credits replenish,
    # the slow ring drains, and the flow upgrades back to the fast path.
    for _ in range(120):
        bed.run(until=bed.sim.now + 5 * US)
        records = arch.rx_burst(flow, 256)
        arch.release(records)
        if arch.steering.get(flow.flow_id).action is SteeringAction.FAST_PATH:
            break
    assert arch.steering.get(flow.flow_id).action is SteeringAction.FAST_PATH
    assert arch.upgrades.value >= 1


def test_lazy_release_waits_for_message_boundary():
    config = CeioConfig(lazy_release=True, release_batch=1000)
    bed, arch = build(config)
    flow, _src = add_flow(bed, arch, packets_per_message=4, outstanding=4)
    bed.run(until=100 * US)
    acct = arch.credits.account(flow.flow_id)
    records = []
    # Collect exactly 3 records of one message (no boundary yet).
    while len(records) < 3:
        got = arch.rx_burst(flow, 3 - len(records))
        records.extend(got)
        if len(records) < 3:
            bed.run(until=bed.sim.now + 10 * US)
    inflight_before = acct.inflight
    arch.release([r for r in records if not r.packet.last_in_message][:3])
    assert acct.inflight == inflight_before  # no replenish yet


def test_eager_release_replenishes_immediately():
    config = CeioConfig(lazy_release=False)
    bed, arch = build(config)
    flow, _src = add_flow(bed, arch)
    bed.run(until=100 * US)
    acct = arch.credits.account(flow.flow_id)
    records = arch.rx_burst(flow, 4)
    assert records
    inflight_before = acct.inflight
    arch.release(records)
    assert acct.inflight == inflight_before - len(
        [r for r in records if r.path == "fast"])


def test_pin_slow_and_unpin():
    bed, arch = build()
    flow, _src = add_flow(bed, arch)
    arch.pin_slow(flow)
    bed.run(until=100 * US)
    assert arch.steering.get(flow.flow_id).action is SteeringAction.SLOW_PATH
    assert arch.slow_packets.value > 0
    fast_before = arch.fast_packets.value
    arch.unpin(flow)
    for _ in range(50):
        bed.run(until=bed.sim.now + 10 * US)
        arch.release(arch.rx_burst(flow, 256))
        if arch.fast_packets.value > fast_before:
            break
    assert arch.fast_packets.value > fast_before


def test_donation_redirects_bypass_credits():
    config = CeioConfig(donation_threshold=20 * US)
    bed, arch = build(config, llc=64 * 1024)
    involved, _ = add_flow(bed, arch, name="rpc", payload=500)
    bypass, _ = add_flow(bed, arch, name="dfs", payload=1000,
                         kind=FlowKind.CPU_BYPASS,
                         packets_per_message=32, outstanding=8)
    bed.run(until=300 * US)  # bypass exhausts + degrades + donates
    assert arch.credits.account(bypass.flow_id).donating


def test_overdraft_borrowed_not_leaked():
    bed, arch = build(llc=64 * 1024)
    flow, _src = add_flow(bed, arch, outstanding=64)
    bed.run(until=300 * US)
    assert arch.overdraft.value > 0
    assert arch.credits.audit() == pytest.approx(arch.credits.total)


def test_fast_fraction_metric():
    bed, arch = build()
    flow, _src = add_flow(bed, arch)
    bed.run(until=50 * US)
    assert 0.0 <= arch.fast_fraction() <= 1.0


def test_sync_ablation_recv_burst_blocks_on_fetch():
    config = CeioConfig(async_drain=False)
    bed, arch = build(config, llc=64 * 1024)
    flow, _src = add_flow(bed, arch, outstanding=64)
    bed.run(until=200 * US)
    assert arch.slow_packets.value > 0

    def consumer(sim):
        got = []
        for _ in range(30):
            records = yield from arch.recv_burst(flow, 32)
            got.extend(records)
            arch.release(records)
        return got

    # run_process would run forever (the source never stops); step the
    # simulator until just the consumer completes.
    proc = bed.sim.process(consumer(bed.sim))
    while not proc.triggered:
        bed.sim.step()
    got = proc.value
    assert arch.driver.sync_fetches.value > 0
    seqs = [r.packet.seq for r in got]
    assert seqs == sorted(seqs)
