"""Admission control and load shedding at the CEIO runtime level.

The controller itself is conserved by construction (property-tested in
``tests/demand``); these tests pin the *wiring*: the config knobs, the
shed path's ACK-without-spend semantics, and the ``arch.admission``
conservation account under genuine overload.
"""

import pytest

from repro.core import CeioConfig
from repro.core.admission import AdmissionController
from repro.workloads.topo_scenario import compile_scenario


def _spec(rate_mpps, guarded, seed=3):
    host = {"arch": "ceio", "cores": 16}
    if guarded:
        host["ceio"] = {"admission_control": True,
                        "admission_ring_limit": 64}
    return {
        "version": 1,
        "name": "admission-unit",
        "seed": seed,
        "topology": {"kind": "star",
                     "params": {"n_clients": 4, "n_servers": 1}},
        "hosts": {"*": host},
        "tenants": [{"name": "kv", "workload": "kvstore", "host": "s0",
                     "flows": 4, "payload": 144}],
        "demand": {
            "window_us": 50.0,
            "profiles": {"flat": {"kind": "steady",
                                  "rate_mpps": rate_mpps}},
            "tenants": {"kv": {"profile": "flat"}},
        },
        "measure": {"warmup_us": 100.0, "duration_us": 150.0},
    }


def test_controller_rejects_invalid_limits():
    with pytest.raises(ValueError):
        AdmissionController(ring_limit=0, slow_bytes_limit=1024)
    with pytest.raises(ValueError):
        AdmissionController(ring_limit=64, slow_bytes_limit=0)


def test_admission_disabled_by_default():
    assert CeioConfig().admission_control is False
    scenario = compile_scenario(_spec(8.0, guarded=False))
    arch = scenario.fabric.endpoints["s0"].io_arch
    assert arch.admission is None
    scenario.run_measure()
    assert arch.rx_shed.value == 0


def test_overload_sheds_and_the_admission_account_reconciles():
    scenario = compile_scenario(_spec(96.0, guarded=True))
    arch = scenario.fabric.endpoints["s0"].io_arch
    assert arch.admission is not None
    assert arch.admission.ring_limit == 64
    measurement = scenario.run_measure()["s0"]

    # Demand far above the service ceiling: the guard must engage.
    assert arch.rx_shed.value > 0
    assert arch.admission.shed.value == arch.rx_shed.value

    # Offered == accepted + dropped + shed + duplicates, exactly.
    duplicates = sum(rx.duplicates.value for rx in arch._all_rx.values())
    assert arch.rx_offered.value == (arch.rx_accepted.value
                                     + arch.rx_dropped.value
                                     + arch.rx_shed.value + duplicates)

    # Per-flow shed meters sum to the architecture total.
    assert sum(rx.shed.value for rx in arch._all_rx.values()) \
        == arch.rx_shed.value

    # The cross-layer audit (including arch.admission) balances.
    assert measurement.audit["ok"] is True
    assert measurement.audit["violations"] == []
    assert measurement.extras["shed"] == arch.rx_shed.value
    assert measurement.extras["offered"] == arch.rx_offered.value


def test_underload_sheds_nothing():
    scenario = compile_scenario(_spec(4.0, guarded=True))
    arch = scenario.fabric.endpoints["s0"].io_arch
    scenario.run_measure()
    assert arch.rx_shed.value == 0
    assert arch.admission.offered.value == arch.admission.admitted.value


def test_shed_acks_complete_messages_without_delivery():
    """A shed packet is ACKed unmarked: the sender finishes the message
    (no retransmit storm) but the receiver never processes it — goodput
    and shed are disjoint, and their sum tracks offered load."""
    scenario = compile_scenario(_spec(96.0, guarded=True))
    arch = scenario.fabric.endpoints["s0"].io_arch
    scenario.run_measure()
    # The shed ACK is unmarked, so the lossless fabric sees no
    # retransmits: nothing arrives twice.
    assert sum(rx.duplicates.value for rx in arch._all_rx.values()) == 0
    # No flow starved and none exempt: shedding is pressure-driven
    # back-off on every flow, not a blanket drop of one victim.
    for rx in arch._all_rx.values():
        assert rx.processed.value > 0
        assert rx.shed.value > 0
