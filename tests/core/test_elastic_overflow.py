"""On-NIC memory exhaustion must degrade gracefully, never wedge: with
spill-to-DRAM the overflow traffic detours through host memory; without
it the packets drop and the transport retransmits."""

from repro.core import CeioConfig
from repro.hw import CacheConfig, HostConfig, NicConfig
from repro.sim.units import MIB, US
from repro.workloads import Scenario, ScenarioConfig


def run_starved(spill: bool):
    """CEIO with all flows pinned to the slow path and almost no on-NIC
    buffer memory — every burst overflows the elastic buffer."""
    host_config = HostConfig(cache=CacheConfig(size=12 * MIB // 8),
                             nic=NicConfig(memory_size=8 * 1024))
    config = ScenarioConfig(
        arch="ceio", n_involved=4, outstanding=32, seed=11,
        host_config=host_config,
        ceio=CeioConfig(spill_to_dram=spill),
        warmup=100 * US, duration=200 * US)
    scenario = Scenario(config).build()
    for flow, _server, _source in scenario.involved:
        scenario.arch.pin_slow(flow)
    # Several windows: the no-spill path progresses in RTO-paced bursts,
    # so any single window may legitimately read zero.
    windows = [scenario.run_measure()]
    windows += [scenario.run_measure(0.0, 200 * US) for _ in range(5)]
    return scenario, windows


def test_overflow_spills_to_dram_and_keeps_flowing():
    scenario, windows = run_starved(spill=True)
    manager = scenario.arch.buffer_manager
    assert manager.overflow_events.value > 0
    assert scenario.arch.spilled.value > 0
    assert manager.slow_drops.value == 0       # spill, not drop
    assert all(m.involved_mpps > 0 for m in windows)  # continuous service


def test_overflow_without_spill_drops_but_does_not_wedge():
    scenario, windows = run_starved(spill=False)
    manager = scenario.arch.buffer_manager
    assert manager.overflow_events.value > 0
    assert manager.slow_drops.value > 0
    assert scenario.arch.spilled.value == 0
    # Retransmissions keep the flows alive through the drops: progress in
    # both the first and the second half of the horizon, just bursty.
    assert sum(m.involved_mpps for m in windows[:3]) > 0
    assert sum(m.involved_mpps for m in windows[3:]) > 0
