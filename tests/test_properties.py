"""Property-based tests (hypothesis) for the core data structures.

Invariants covered:

- **credit conservation** — no sequence of Algorithm 1 operations creates
  or destroys credits;
- **SW-ring ordering** — any interleaving of fast deliveries, degradation
  barriers, slow arrivals, and fetch completions pops records in seq
  order;
- **LLC capacity** — the DDIO partition never exceeds its byte budget and
  both cache models agree that a buffer inserted and not evicted hits;
- **token bucket** — served amounts never exceed rate x time + burst;
- **histogram percentiles** — monotone in p and within the sample range.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core import CreditController, SwRing
from repro.hw import CacheConfig, FullyAssociativeLLC, SetAssociativeLLC
from repro.sim import Simulator, TokenBucket
from repro.sim.stats import Histogram


# ---------------------------------------------------------------------------
# Credit conservation
# ---------------------------------------------------------------------------

credit_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 7)),
        st.tuples(st.just("remove"), st.integers(0, 7)),
        st.tuples(st.just("consume"), st.integers(0, 7)),
        st.tuples(st.just("overdraft"), st.integers(0, 7)),
        st.tuples(st.just("release"), st.integers(0, 7), st.integers(1, 8)),
        st.tuples(st.just("donate"), st.integers(0, 7), st.booleans()),
        st.tuples(st.just("reclaim"), st.integers(0, 7)),
        st.tuples(st.just("grant"), st.integers(0, 7)),
        st.tuples(st.just("reserve_grant"), st.integers(0, 7),
                  st.floats(0, 50)),
    ),
    min_size=1, max_size=120,
)


@given(total=st.integers(10, 5000), ops=credit_ops)
@settings(max_examples=150, deadline=None)
def test_credit_conservation_under_arbitrary_ops(total, ops):
    ctl = CreditController(total)
    for op in ops:
        kind, fid = op[0], op[1]
        if kind == "add":
            ctl.add_flows([fid])
        elif kind == "remove":
            ctl.remove_flow(fid)
        elif kind == "consume":
            ctl.consume(fid)
        elif kind == "overdraft":
            ctl.consume_overdraft(fid)
        elif kind == "release":
            ctl.release(fid, op[2])
        elif kind == "donate":
            ctl.set_donating(fid, op[2])
        elif kind == "reclaim":
            ctl.reclaim(fid)
        elif kind == "grant":
            ctl.grant_share(fid)
        elif kind == "reserve_grant":
            ctl.grant_from_reserve(fid, op[2])
        assert math.isclose(ctl.audit(), total, rel_tol=1e-9, abs_tol=1e-6)


@given(total=st.integers(100, 3000), n=st.integers(1, 16),
       m=st.integers(1, 16))
@settings(max_examples=100, deadline=None)
def test_algorithm1_assignment_totals(total, n, m):
    """After assignment, newcomers' holdings + owed credits equal the fair
    share, and nothing is lost."""
    ctl = CreditController(total)
    ctl.add_flows(range(n))
    ctl.add_flows(range(100, 100 + m))
    share = total / (n + m)
    for j in range(100, 100 + m):
        acct = ctl.account(j)
        owed_to_j = sum(a.owed.get(j, 0.0) for a in ctl.accounts.values())
        assert acct.available + owed_to_j <= share + 1e-6
    assert math.isclose(ctl.audit(), total, rel_tol=1e-9, abs_tol=1e-6)


# ---------------------------------------------------------------------------
# SW ring ordering
# ---------------------------------------------------------------------------

class _Pkt:
    def __init__(self, seq):
        self.seq = seq
        self.retransmitted = False


class _Rec:
    def __init__(self, seq):
        self.packet = _Pkt(seq)


ring_script = st.lists(
    st.sampled_from(["fast", "degrade", "slow", "upgrade", "fetch", "pop"]),
    min_size=1, max_size=200)


@given(script=ring_script)
@settings(max_examples=200, deadline=None)
def test_swring_pops_in_order_under_any_interleaving(script):
    """Simulates the runtime's contract: while 'fast', packets are issued
    to the fast path (delivered after all earlier fast issues); after a
    degrade, packets go to the slow path until an upgrade (which only
    happens once the slow side is fully fetched & popped - phase
    exclusivity). Pops must always come out in global seq order."""
    ring = SwRing(1)
    seq = 0
    mode = "fast"
    inflight_fast = []  # fast-path packets issued but not yet delivered
    popped = []

    def deliver_one_fast():
        if inflight_fast:
            ring.push_fast(_Rec(inflight_fast.pop(0)))

    for op in script:
        if op == "fast" and mode == "fast":
            ring.note_fast_issued()
            inflight_fast.append(seq)
            seq += 1
        elif op == "degrade" and mode == "fast":
            ring.set_barrier()
            mode = "slow"
        elif op == "slow" and mode == "slow":
            ring.push_slow(_Rec(seq))
            seq += 1
        elif op == "upgrade" and mode == "slow":
            # Phase exclusivity: only upgrade once everything slow is
            # resident and the fast pipeline flushed.
            while inflight_fast:
                deliver_one_fast()
            for entry in ring.nonresident_head(10_000):
                entry.resident = True
            if not ring.has_nonresident:
                ring.clear_barrier()
                mode = "fast"
        elif op == "fetch":
            for entry in ring.nonresident_head(4):
                entry.resident = True
        elif op == "pop":
            deliver_one_fast()
            popped.extend(r.packet.seq for r in ring.pop_ready(8))

    while inflight_fast:
        deliver_one_fast()
    for entry in ring.nonresident_head(10_000):
        entry.resident = True
    # A residual barrier from a still-degraded flow is released here to
    # flush pending entries for the final check.
    ring.clear_barrier()
    for entry in ring.nonresident_head(10_000):
        entry.resident = True
    popped.extend(r.packet.seq for r in ring.pop_ready(10_000))
    assert popped == sorted(popped)
    assert ring.out_of_order == 0


# ---------------------------------------------------------------------------
# LLC capacity + model agreement
# ---------------------------------------------------------------------------

@given(inserts=st.lists(st.integers(64, 4096), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_fa_llc_never_exceeds_capacity(inserts):
    llc = FullyAssociativeLLC(CacheConfig(size=64 * 1024, ways=8,
                                          ddio_ways=4))
    for i, nbytes in enumerate(inserts):
        llc.io_insert(i, min(nbytes, llc.capacity))
        assert llc.occupancy <= llc.capacity


@given(keys=st.lists(st.integers(0, 30), min_size=1, max_size=60))
@settings(max_examples=100, deadline=None)
def test_llc_models_agree_resident_buffers_hit(keys):
    """Any buffer both models still consider resident must hit in both."""
    cfg = CacheConfig(size=64 * 1024, ways=8, ddio_ways=4)
    fa, sa = FullyAssociativeLLC(cfg), SetAssociativeLLC(cfg)
    for key in keys:
        fa.io_insert(key, 2048)
        sa.io_insert(key, 2048)
    for key in set(keys):
        if fa.is_resident(key) and sa.is_resident(key):
            assert fa.cpu_read(key, 2048) == 1.0
            assert sa.cpu_read(key, 2048) > 0.0


# ---------------------------------------------------------------------------
# Token bucket rate bound
# ---------------------------------------------------------------------------

@given(rate=st.floats(0.1, 50.0), burst=st.floats(10.0, 1000.0),
       takes=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_token_bucket_never_exceeds_rate_plus_burst(rate, burst, takes):
    sim = Simulator()
    tb = TokenBucket(sim, rate=rate, burst=burst)
    served = []

    def taker(sim):
        for amount in takes:
            amount = min(amount, burst)
            yield tb.take(amount)
            served.append((sim.now, amount))

    sim.process(taker(sim))
    sim.run()
    for now, _amt in served:
        upto = sum(a for t, a in served if t <= now)
        assert upto <= rate * now + burst + 1e-6


# ---------------------------------------------------------------------------
# Histogram percentiles
# ---------------------------------------------------------------------------

# Values stay <= 1e9: beyond the histogram's last bucket bound (~1e10) a
# sample clamps into the final bucket, whose bound legitimately undershoots
# the sample — the min/max bound below would not (and should not) hold.
@given(values=st.lists(st.floats(1e-3, 1e9), min_size=1, max_size=500),
       ps=st.lists(st.floats(0, 100), min_size=2, max_size=6))
@settings(max_examples=100, deadline=None)
def test_histogram_percentiles_monotone_and_bounded(values, ps):
    h = Histogram()
    for v in values:
        h.record(v)
    ps = sorted(ps)
    results = [h.percentile(p) for p in ps]
    assert results == sorted(results)
    # Every percentile lies within the recorded sample range: a bucket's
    # upper bound is >= any sample it holds, and percentile() caps at the
    # recorded max.
    for r in results:
        assert min(values) <= r <= max(values)


@given(values=st.lists(st.floats(1e-3, 1e9), min_size=1, max_size=200),
       split=st.integers(0, 200),
       ps=st.lists(st.floats(0, 100), min_size=1, max_size=4))
@settings(max_examples=50, deadline=None)
def test_histogram_merge_matches_single_recording(values, split, ps):
    split = min(split, len(values))
    one = Histogram()
    for v in values:
        one.record(v)
    a, b = Histogram(), Histogram()
    for v in values[:split]:
        a.record(v)
    for v in values[split:]:
        b.record(v)
    a.merge(b)
    assert a.count == one.count
    assert a.min == one.min and a.max == one.max
    for p in ps:
        assert a.percentile(p) == one.percentile(p)
