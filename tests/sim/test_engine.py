"""Unit tests for the DES kernel: events, processes, timeouts, conditions."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5)
        assert sim.now == 5.0
        yield sim.timeout(2.5)
        assert sim.now == 7.5

    sim.run_process(proc(sim))
    assert sim.now == 7.5


def test_timeout_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)  # repro: noqa=D104 -- the rejection under test


def test_timeout_carries_value():
    sim = Simulator()

    def proc(sim):
        got = yield sim.timeout(1, value="hello")
        return got

    assert sim.run_process(proc(sim)) == "hello"


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []

    def proc(sim):
        yield sim.timeout(10)
        fired.append(sim.now)
        yield sim.timeout(10)
        fired.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=15)
    assert fired == [10.0]
    assert sim.now == 15.0


def test_run_until_sets_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=100)
    assert sim.now == 100.0


def test_run_until_past_raises():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(SimulationError):
        sim.run(until=5)


def test_events_fire_in_time_order_with_fifo_ties():
    sim = Simulator()
    order = []

    def proc(sim, name, delay):
        yield sim.timeout(delay)
        order.append(name)

    sim.process(proc(sim, "late", 2))
    sim.process(proc(sim, "a", 1))
    sim.process(proc(sim, "b", 1))
    sim.run()
    assert order == ["a", "b", "late"]


def test_event_succeed_delivers_value():
    sim = Simulator()
    ev = sim.event()

    def waiter(sim, ev):
        value = yield ev
        return value

    def firer(sim, ev):
        yield sim.timeout(3)
        ev.succeed(42)

    proc = sim.process(waiter(sim, ev))
    sim.process(firer(sim, ev))
    sim.run()
    assert proc.value == 42
    assert sim.now == 3.0


def test_event_double_succeed_raises():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    ev = sim.event()

    def waiter(sim, ev):
        try:
            yield ev
        except ValueError as exc:
            return str(exc)
        return "no exception"

    proc = sim.process(waiter(sim, ev))
    sim.schedule(1, lambda: ev.fail(ValueError("boom")))
    sim.run()
    assert proc.value == "boom"


def test_callback_on_already_processed_event_still_runs():
    sim = Simulator()
    ev = sim.event()
    ev.succeed("x")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["x"]


def test_process_return_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        return "done"

    assert sim.run_process(proc(sim)) == "done"


def test_process_waits_for_subprocess():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(7)
        return "child-result"

    def parent(sim):
        result = yield sim.process(child(sim))
        return result, sim.now

    assert sim.run_process(parent(sim)) == ("child-result", 7.0)


def test_process_yielding_non_event_raises():
    sim = Simulator()

    def bad(sim):
        yield "not an event"  # repro: noqa=D104 -- the rejection under test

    sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_bare_number_yield_is_a_timeout():
    """Fast path: ``yield <float|int>`` suspends like ``yield timeout()``."""
    sim = Simulator()

    def proc(sim):
        yield 5
        assert sim.now == 5.0
        got = yield 2.5
        assert got is None
        return sim.now

    assert sim.run_process(proc(sim)) == 7.5


def test_bare_negative_yield_raises_in_process():
    sim = Simulator()

    def bad(sim):
        yield -1.0  # repro: noqa=D104 -- the rejection under test

    sim.process(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_bare_yield_orders_like_timeout_yield():
    """Equal-time bare and event timeouts fire in scheduling order."""
    sim = Simulator()
    log = []

    def bare(sim):
        yield 5.0
        log.append("bare")

    def evented(sim):
        yield sim.timeout(5.0)
        log.append("evented")

    sim.process(bare(sim))
    sim.process(evented(sim))
    sim.run()
    assert log == ["bare", "evented"]


def test_interrupt_delivers_cause():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as intr:
            return ("interrupted", intr.cause, sim.now)
        return "slept"

    proc = sim.process(sleeper(sim))

    def interrupter(sim, target):
        yield sim.timeout(5)
        target.interrupt("wake")

    sim.process(interrupter(sim, proc))
    sim.run()
    assert proc.value == ("interrupted", "wake", 5.0)


def test_interrupted_process_can_continue():
    sim = Simulator()

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except Interrupt:
            pass
        yield sim.timeout(10)
        return sim.now

    proc = sim.process(sleeper(sim))

    def interrupter(sim, target):
        yield sim.timeout(5)
        target.interrupt()

    sim.process(interrupter(sim, proc))
    sim.run()
    assert proc.value == 15.0


def test_interrupt_finished_process_raises():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1)

    proc = sim.process(quick(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupt_detaches_original_target():
    """After an interrupt, the original timeout must not resume the process."""
    sim = Simulator()
    resumed = []

    def sleeper(sim):
        try:
            yield sim.timeout(10)
        except Interrupt:
            resumed.append(("interrupt", sim.now))
        yield sim.timeout(100)
        resumed.append(("end", sim.now))

    proc = sim.process(sleeper(sim))
    sim.schedule(5, lambda: proc.interrupt())
    sim.run()
    assert resumed == [("interrupt", 5.0), ("end", 105.0)]


def test_any_of_fires_on_first():
    sim = Simulator()
    t1 = None

    def proc(sim):
        a = sim.timeout(5, value="a")
        b = sim.timeout(10, value="b")
        results = yield AnyOf(sim, [a, b])
        return results, sim.now

    results, now = sim.run_process(proc(sim))
    assert now == 5.0
    assert list(results.values()) == ["a"]


def test_all_of_waits_for_all():
    sim = Simulator()

    def proc(sim):
        a = sim.timeout(5, value="a")
        b = sim.timeout(10, value="b")
        results = yield AllOf(sim, [a, b])
        return sorted(results.values()), sim.now

    values, now = sim.run_process(proc(sim))
    assert now == 10.0
    assert values == ["a", "b"]


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def proc(sim):
        yield AllOf(sim, [])
        return sim.now

    assert sim.run_process(proc(sim)) == 0.0


def test_schedule_runs_plain_callable():
    sim = Simulator()
    hits = []
    sim.schedule(3, lambda: hits.append(sim.now))
    sim.schedule(1, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [1.0, 3.0]


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.schedule(4, lambda: None)
    assert sim.peek() == 0.0 or sim.peek() <= 4.0  # init event first
    sim.run()
    assert sim.peek() == float("inf")


def test_run_process_propagates_process_failure():
    sim = Simulator()

    def failing(sim):
        yield sim.timeout(1)
        raise RuntimeError("inner failure")

    with pytest.raises(RuntimeError, match="inner failure"):
        sim.run_process(failing(sim))


def test_many_processes_interleave_deterministically():
    sim = Simulator()
    log = []

    def worker(sim, name, period, n):
        for _ in range(n):
            yield sim.timeout(period)
            log.append((sim.now, name))

    sim.process(worker(sim, "x", 2, 5))
    sim.process(worker(sim, "y", 3, 3))
    sim.run()
    assert log == sorted(log, key=lambda p: p[0])
    assert len(log) == 8
