"""Unit tests for measurement primitives."""

import pytest

from repro.sim import Counter, Histogram, RateMeter, StatRegistry, TimeSeries, TimeWeightedGauge


def test_counter_accumulates():
    c = Counter("pkts")
    c.add()
    c.add(4)
    assert c.value == 5
    c.reset()
    assert c.value == 0


def test_counter_rejects_negative():
    c = Counter()
    with pytest.raises(ValueError):
        c.add(-1)


def test_gauge_time_weighted_mean():
    g = TimeWeightedGauge(t0=0.0)
    g.update(10, 4)   # level 0 for 10 ns
    g.update(20, 0)   # level 4 for 10 ns
    # mean over [0, 20] = (0*10 + 4*10) / 20 = 2
    assert g.mean(20) == pytest.approx(2.0)
    assert g.max == 4
    assert g.min == 0


def test_gauge_mean_extends_to_now():
    g = TimeWeightedGauge(t0=0.0, initial=2.0)
    assert g.mean(10) == pytest.approx(2.0)


def test_gauge_adjust_delta():
    g = TimeWeightedGauge(t0=0.0)
    g.adjust(5, +3)
    g.adjust(10, -1)
    assert g.level == 2


def test_gauge_backwards_time_rejected():
    g = TimeWeightedGauge(t0=10.0)
    with pytest.raises(ValueError):
        g.update(5, 1)


def test_histogram_exact_small_values():
    h = Histogram()
    for v in [1, 2, 3, 4, 5]:
        h.record(v)
    assert h.count == 5
    assert h.mean == pytest.approx(3.0)
    assert h.percentile(50) == 3
    assert h.percentile(100) == 5
    assert h.min == 1 and h.max == 5


def test_histogram_percentile_bounded_error():
    h = Histogram()
    values = list(range(100, 10000, 7))
    for v in values:
        h.record(v)
    exact = sorted(values)[int(0.99 * len(values)) - 1]
    approx = h.percentile(99)
    assert abs(approx - exact) / exact < 0.05


def test_histogram_empty_percentile_zero():
    h = Histogram()
    assert h.percentile(99) == 0.0
    assert h.mean == 0.0


def test_histogram_percentile_range_checked():
    h = Histogram()
    with pytest.raises(ValueError):
        h.percentile(101)


def test_histogram_bulk_record():
    h = Histogram()
    h.record(10, n=100)
    assert h.count == 100
    assert h.percentile(50) == 10


def test_histogram_merge():
    a, b = Histogram(), Histogram()
    a.record(5)
    b.record(500)
    a.merge(b)
    assert a.count == 2
    assert a.min == 5
    assert a.max == 500


def test_histogram_overflow_clamps_to_last_bucket():
    h = Histogram(hi=1000)
    h.record(10**15)
    assert h.count == 1
    assert h.percentile(100) > 0


def test_rate_meter_windowed_rate():
    m = RateMeter(window=10.0, keep=4)
    for t in range(0, 40):
        m.record(float(t), 2.0)  # 2 units per ns
    assert m.rate(40.0) == pytest.approx(2.0)
    assert m.total == 80.0


def test_rate_meter_partial_window_estimates():
    m = RateMeter(window=100.0)
    m.record(10.0, 30.0)
    assert m.rate(10.0) == pytest.approx(3.0)


def test_rate_meter_mean_rate():
    m = RateMeter(window=5.0)
    m.record(1.0, 10.0)
    assert m.mean_rate(10.0) == pytest.approx(1.0)


def test_timeseries_records_points():
    ts = TimeSeries("x")
    ts.record(1, 10)
    ts.record(2, 20)
    assert ts.times() == [1, 2]
    assert ts.values() == [10, 20]
    assert len(ts) == 2


def test_registry_returns_same_instance():
    reg = StatRegistry()
    c1 = reg.counter("nic.rx")
    c2 = reg.counter("nic.rx")
    assert c1 is c2
    assert "nic.rx" in reg
    assert reg.names() == ["nic.rx"]


def test_registry_distinct_kinds_per_name():
    reg = StatRegistry()
    reg.counter("a")
    reg.histogram("b")
    reg.gauge("c")
    reg.rate_meter("d")
    reg.timeseries("e")
    assert reg.names() == ["a", "b", "c", "d", "e"]
    assert reg.get("missing") is None
