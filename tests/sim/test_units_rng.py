"""Tests for unit helpers and seeded RNG streams."""

import pytest

from repro.sim import RngRegistry
from repro.sim.units import (
    CACHE_LINE,
    MS,
    US,
    gbps,
    ghz_cycle_ns,
    mpps,
    ns_per_packet,
    to_gbps,
    to_mpps,
)


def test_gbps_round_trip():
    assert to_gbps(gbps(200)) == pytest.approx(200)
    assert gbps(200) == pytest.approx(25.0)  # 200 Gbps = 25 bytes/ns


def test_mpps_round_trip():
    assert to_mpps(mpps(14.88)) == pytest.approx(14.88)


def test_ns_per_packet_matches_paper_example():
    # §1: "a 200Gbps link transmitting 1024B packets, each I/O operation
    # has to complete within only 41.8 nanoseconds".
    assert ns_per_packet(200, 1045) == pytest.approx(41.8)


def test_time_constants():
    assert US == 1_000
    assert MS == 1_000_000
    assert CACHE_LINE == 64


def test_cycle_time():
    assert ghz_cycle_ns(2.0) == pytest.approx(0.5)
    assert ghz_cycle_ns(3.2) == pytest.approx(0.3125)


def test_rng_streams_deterministic():
    a = RngRegistry(42).stream("nic")
    b = RngRegistry(42).stream("nic")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_rng_streams_independent_by_name():
    reg = RngRegistry(42)
    xs = [reg.stream("one").random() for _ in range(5)]
    ys = [reg.stream("two").random() for _ in range(5)]
    assert xs != ys


def test_rng_stream_cached():
    reg = RngRegistry(0)
    assert reg.stream("x") is reg.stream("x")


def test_rng_spawn_independent():
    parent = RngRegistry(7)
    child = parent.spawn("worker")
    assert child.root_seed != parent.root_seed
    assert (child.stream("s").random()
            != parent.stream("s").random())


def test_rng_seed_changes_streams():
    assert (RngRegistry(1).stream("s").random()
            != RngRegistry(2).stream("s").random())
