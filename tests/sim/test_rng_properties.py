"""Property tests for RngRegistry, plus the seed-plumbing regression test
for the architectures that draw randomness (HostCC, ShRing).

The Hypothesis suite pins the substream discipline the experiments rely
on: named streams are independent, stable under creation order, and fully
determined by ``(root_seed, name)``.
"""

from __future__ import annotations

import pytest

from repro.hw import HostConfig
from repro.io_arch import HostccArch, ShringArch
from repro.net import Flow, FlowKind
from repro.net import Testbed as _Testbed  # underscore: hide from pytest
from repro.sim import RngRegistry

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the dev extra
    HAVE_HYPOTHESIS = False

pytestmark = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed")

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
NAMES = st.text(
    alphabet=st.characters(codec="ascii", exclude_characters=":/"),
    min_size=1, max_size=40)


def draws(rng, n=8):
    return [rng.random() for _ in range(n)]


# ---------------------------------------------------------------------------
# substream discipline
# ---------------------------------------------------------------------------

@given(seed=SEEDS, a=NAMES, b=NAMES)
@settings(max_examples=50, deadline=None)
def test_distinct_names_give_independent_streams(seed, a, b):
    if a == b:
        return
    reg = RngRegistry(seed)
    assert draws(reg.stream(a)) != draws(reg.stream(b))


@given(seed=SEEDS, a=NAMES, b=NAMES)
@settings(max_examples=50, deadline=None)
def test_streams_stable_under_creation_order(seed, a, b):
    if a == b:
        return
    forward = RngRegistry(seed)
    fa = draws(forward.stream(a))
    fb = draws(forward.stream(b))
    backward = RngRegistry(seed)
    ba = draws(backward.stream(b))
    bb = draws(backward.stream(a))
    assert fa == bb and fb == ba


@given(seed=SEEDS, name=NAMES)
@settings(max_examples=50, deadline=None)
def test_same_seed_and_name_reproduce_exactly(seed, name):
    assert draws(RngRegistry(seed).stream(name)) \
        == draws(RngRegistry(seed).stream(name))


@given(seed=SEEDS, name=NAMES)
@settings(max_examples=50, deadline=None)
def test_stream_is_cached_per_registry(seed, name):
    reg = RngRegistry(seed)
    assert reg.stream(name) is reg.stream(name)


@given(seed=SEEDS, child=NAMES, name=NAMES)
@settings(max_examples=50, deadline=None)
def test_spawn_is_stable_and_independent_of_parent(seed, child, name):
    parent = RngRegistry(seed)
    assert parent.spawn(child).root_seed == parent.spawn(child).root_seed
    expected = draws(parent.spawn(child).stream(name))
    assert draws(parent.spawn(child).stream(name)) == expected
    # Consuming parent streams does not disturb freshly spawned children.
    draws(parent.stream(name))
    assert draws(parent.spawn(child).stream(name)) == expected


@given(seed=SEEDS, a=NAMES, b=NAMES)
@settings(max_examples=50, deadline=None)
def test_spawn_distinct_names_differ(seed, a, b):
    if a == b:
        return
    parent = RngRegistry(seed)
    assert parent.spawn(a).root_seed != parent.spawn(b).root_seed


# ---------------------------------------------------------------------------
# seed plumbing: the architectures that draw randomness
# ---------------------------------------------------------------------------

def _arch_stream(arch_cls, seed):
    """Build ``arch_cls`` on a seeded Testbed and sample its RNG stream."""
    bed = _Testbed(HostConfig(), seed=seed)
    arch = arch_cls(bed.host)
    if arch_cls is ShringArch:  # per-flow guard streams
        flow = Flow(FlowKind.CPU_INVOLVED, flow_id=990_101)
        arch.register_flow(flow)
        return draws(arch._guard_streams[flow.flow_id])
    return draws(arch._rng)


@pytest.mark.parametrize("arch_cls", [HostccArch, ShringArch])
def test_seed_perturbs_architecture_randomness(arch_cls):
    """Different --seed values must reach HostCC's ECN jitter and ShRing's
    guard sampling (they used fixed-seed private Randoms before the
    RngRegistry migration, so --seed silently did not perturb them)."""
    assert _arch_stream(arch_cls, seed=1) != _arch_stream(arch_cls, seed=2)
    assert _arch_stream(arch_cls, seed=1) == _arch_stream(arch_cls, seed=1)


def test_architecture_streams_are_named_registry_streams():
    bed = _Testbed(HostConfig(), seed=11)
    hostcc = HostccArch(bed.host)
    shring = ShringArch(bed.host)
    assert hostcc._rng is bed.rng.stream("hostcc.ecn")
    # ShRing assigns each registered flow its own guard stream off the
    # host registry (decorrelates concurrent flows' mark decisions),
    # keyed by registration ordinal so the global flow-id counter cannot
    # leak into the draws.
    a = Flow(FlowKind.CPU_INVOLVED, flow_id=990_201)
    b = Flow(FlowKind.CPU_INVOLVED, flow_id=990_202)
    shring.register_flow(a)
    shring.register_flow(b)
    assert shring._guard_streams[a.flow_id] \
        is bed.rng.stream("shring.guard.0")
    assert shring._guard_streams[b.flow_id] \
        is bed.rng.stream("shring.guard.1")
    assert shring._guard_streams[a.flow_id] \
        is not shring._guard_streams[b.flow_id]
