"""Additional DES-kernel edge cases: condition failures, event reuse,
process lifecycle, and scheduling determinism."""

import pytest

from repro.sim import AllOf, AnyOf, Event, SimulationError, Simulator


def test_any_of_propagates_failure():
    sim = Simulator()
    bad = sim.event()

    def waiter(sim):
        try:
            yield AnyOf(sim, [sim.timeout(100), bad])
        except RuntimeError as exc:
            return str(exc)

    proc = sim.process(waiter(sim))
    sim.schedule(5, lambda: bad.fail(RuntimeError("broken")))
    sim.run()
    assert proc.value == "broken"


def test_all_of_propagates_failure():
    sim = Simulator()
    bad = sim.event()

    def waiter(sim):
        try:
            yield AllOf(sim, [sim.timeout(1), bad])
        except RuntimeError as exc:
            return str(exc)

    proc = sim.process(waiter(sim))
    sim.schedule(5, lambda: bad.fail(RuntimeError("oops")))
    sim.run()
    assert proc.value == "oops"


def test_condition_rejects_cross_simulator_events():
    sim1, sim2 = Simulator(), Simulator()
    with pytest.raises(SimulationError):
        AnyOf(sim1, [sim2.event()])


def test_event_value_before_trigger_raises():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_event_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_timeout_value_not_visible_until_fired():
    sim = Simulator()
    timeout = sim.timeout(10, value="later")
    assert not timeout.triggered
    sim.run()
    assert timeout.triggered
    assert timeout.value == "later"


def test_process_result_available_after_completion():
    sim = Simulator()

    def worker(sim):
        yield sim.timeout(3)
        return 99

    proc = sim.process(worker(sim))
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive
    assert proc.ok
    assert proc.value == 99


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.process(lambda: None)


def test_waiting_on_foreign_simulator_event_raises():
    sim1, sim2 = Simulator(), Simulator()

    def worker(sim):
        yield sim2.event()

    sim1.process(worker(sim1))
    with pytest.raises(SimulationError):
        sim1.run()


def test_nested_process_failure_propagates_to_parent():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(1)
        raise ValueError("child blew up")

    def parent(sim):
        try:
            yield sim.process(child(sim))
        except ValueError as exc:
            return f"caught: {exc}"

    proc = sim.process(parent(sim))
    sim.run()
    assert proc.value == "caught: child blew up"


def test_same_time_events_fifo_across_mixed_sources():
    sim = Simulator()
    order = []
    sim.schedule(5, lambda: order.append("first-scheduled"))
    ev = sim.timeout(5)
    ev.add_callback(lambda _e: order.append("second-timeout"))
    sim.schedule(5, lambda: order.append("third-scheduled"))
    sim.run()
    assert order == ["first-scheduled", "second-timeout", "third-scheduled"]


def test_run_to_exact_until_with_event_at_until():
    """Events exactly at `until` are NOT processed (strict bound)."""
    sim = Simulator()
    hits = []
    sim.schedule(10, lambda: hits.append(1))
    sim.run(until=10)
    # The event at t=10 fires only when the clock is allowed past it.
    assert sim.now == 10.0
    sim.run()
    assert hits == [1]


def test_interrupt_cause_none_by_default():
    sim = Simulator()
    from repro.sim import Interrupt

    def sleeper(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as intr:
            return intr.cause

    proc = sim.process(sleeper(sim))
    sim.schedule(1, proc.interrupt)
    sim.run()
    assert proc.value is None
