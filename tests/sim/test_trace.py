"""Tests for the structured tracer."""

from repro.sim import NullTracer, Simulator, Tracer


def test_tracer_records_with_timestamps():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("nic.rx", size=64)
    sim.schedule(10, lambda: tracer.emit("nic.rx", size=128))
    sim.run()
    events = tracer.category("nic.rx")
    assert [e.time for e in events] == [0.0, 10.0]
    assert events[1].fields["size"] == 128


def test_tracer_category_filter():
    sim = Simulator()
    tracer = Tracer(sim, categories={"keep"})
    tracer.emit("keep", a=1)
    tracer.emit("drop", b=2)
    assert len(tracer.events) == 1
    assert tracer.enabled("keep") and not tracer.enabled("drop")


def test_tracer_limit_and_dropped_count():
    sim = Simulator()
    tracer = Tracer(sim, limit=2)
    for i in range(5):
        tracer.emit("x", i=i)
    assert len(tracer.events) == 2
    assert tracer.dropped == 3


def test_tracer_drop_accounting_and_dump_report():
    """Regression: every event past ``limit`` counts exactly once (events
    from disabled categories never count) and ``dump()`` reports the drop
    count so truncated traces are never mistaken for complete ones."""
    sim = Simulator()
    tracer = Tracer(sim, categories={"keep"}, limit=2)
    for i in range(6):
        tracer.emit("keep", i=i)
        tracer.emit("ignored", i=i)  # filtered out: must not count as drop
    assert len(tracer.events) == 2
    assert tracer.dropped == 4
    lines = []
    tracer.dump(write=lines.append)
    assert lines[-1] == "... 4 events dropped (limit 2)"
    assert len(lines) == 3  # 2 events + 1 drop report


def test_tracer_dump_silent_when_nothing_dropped():
    sim = Simulator()
    tracer = Tracer(sim, limit=10)
    tracer.emit("a", x=1)
    lines = []
    tracer.dump(write=lines.append)
    assert len(lines) == 1 and "dropped" not in lines[0]


def test_tracer_queries():
    sim = Simulator()
    tracer = Tracer(sim)
    for t, cat in [(1, "a"), (2, "b"), (3, "a")]:
        sim.schedule(t, lambda c=cat: tracer.emit(c))
    sim.run()
    assert tracer.counts() == {"a": 2, "b": 1}
    assert tracer.first("b").time == 2.0
    assert tracer.first("zzz") is None
    assert len(tracer.between(1.5, 3.5)) == 2


def test_tracer_dump_filtered():
    sim = Simulator()
    tracer = Tracer(sim)
    tracer.emit("a", x=1)
    tracer.emit("b", y=2)
    lines = []
    tracer.dump(write=lines.append, categories={"b"})
    assert len(lines) == 1
    assert "y=2" in lines[0]


def test_null_tracer_noop():
    tracer = NullTracer()
    tracer.emit("anything", k=1)
    assert not tracer.enabled("anything")
