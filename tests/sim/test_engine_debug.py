"""Sanitizer (debug) mode for the event kernel.

Everything here runs against ``Simulator(debug=True)``; a final test pins
the ``REPRO_SIM_DEBUG`` environment opt-in. Release-mode behaviour is
covered by test_engine.py — debug mode must not change results, only add
checks, so a handful of tests here assert debug/release equivalence.
"""

from __future__ import annotations

import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim import SimulationError, Simulator

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_debug_defaults_off(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_DEBUG", raising=False)
    assert Simulator().debug is False
    assert Simulator(debug=True).debug is True


def test_env_var_turns_debug_on():
    code = ("from repro.sim import Simulator; "
            "print(Simulator().debug)")
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True,
        env={**os.environ, "REPRO_SIM_DEBUG": "1",
             "PYTHONPATH": str(REPO_ROOT / "src")},
    ).stdout.strip()
    assert out == "True"
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, check=True,
        env={**os.environ, "REPRO_SIM_DEBUG": "0",
             "PYTHONPATH": str(REPO_ROOT / "src")},
    ).stdout.strip()
    assert out == "False"


def test_explicit_flag_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_DEBUG", "1")
    assert Simulator(debug=False).debug is False


# ---------------------------------------------------------------------------
# debug mode preserves results
# ---------------------------------------------------------------------------

def test_debug_run_matches_release_run():
    def workload(sim, log):
        def worker(sim, name, period, n):
            for _ in range(n):
                yield period
                log.append((sim.now, name))
        sim.process(worker(sim, "x", 2.0, 5))
        sim.process(worker(sim, "y", 3.0, 3))
        sim.call_later(4.0, log.append, (sim.now, "cb"))
        sim.run(until=12.0)
        return sim.now

    release_log, debug_log = [], []
    assert workload(Simulator(), release_log) \
        == workload(Simulator(debug=True), debug_log) == 12.0
    assert release_log == debug_log


def test_debug_run_until_advances_clock():
    sim = Simulator(debug=True)
    sim.run(until=100)
    assert sim.now == 100.0
    with pytest.raises(SimulationError):
        sim.run(until=5)


# ---------------------------------------------------------------------------
# NaN rejection
# ---------------------------------------------------------------------------

def test_debug_rejects_nan_delays():
    sim = Simulator(debug=True)
    with pytest.raises(SimulationError, match="NaN"):
        sim.timeout(math.nan)
    with pytest.raises(SimulationError, match="NaN"):
        sim.call_later(math.nan, lambda: None)
    with pytest.raises(SimulationError, match="NaN"):
        sim.call_at(math.nan, lambda: None)


def test_debug_rejects_nan_bare_yield():
    sim = Simulator(debug=True)

    def proc(sim):
        yield math.nan  # repro: noqa=D104 -- the rejection under test

    sim.process(proc(sim))
    with pytest.raises(SimulationError, match="NaN"):
        sim.run()


def test_release_mode_accepts_nan_silently():
    """The release hot path deliberately skips the check (documents the
    hazard the sanitizer exists for): NaN corrupts the heap invariant."""
    sim = Simulator(debug=False)
    sim.call_later(math.nan, lambda: None)  # no raise


# ---------------------------------------------------------------------------
# post-close detection
# ---------------------------------------------------------------------------

def test_close_rejects_further_scheduling():
    sim = Simulator(debug=True)
    sim.run()
    assert sim.close() == []
    assert sim.closed
    with pytest.raises(SimulationError):
        sim.call_later(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.timeout(1.0)
    with pytest.raises(SimulationError):
        sim.process(iter(()))
    with pytest.raises(SimulationError):
        sim.run()


def test_close_rejects_late_event_triggers():
    sim = Simulator(debug=True)
    ev = sim.event()
    sim.close()
    with pytest.raises(SimulationError):
        ev.succeed(1)
    with pytest.raises(SimulationError):
        sim.event().fail(ValueError("late"))


def test_close_is_idempotent_and_release_mode_close_is_lenient():
    debug = Simulator(debug=True)
    assert debug.close() == [] and debug.close() == []
    release = Simulator(debug=False)
    release.close()
    release.call_later(1.0, lambda: None)  # release mode: no enforcement


# ---------------------------------------------------------------------------
# leaked-process reporting
# ---------------------------------------------------------------------------

def test_close_reports_never_terminated_processes():
    sim = Simulator(debug=True)

    def forever(sim):
        while True:
            yield 10.0

    def quick(sim):
        yield 1.0

    leaked_proc = sim.process(forever(sim), name="daemon")
    sim.process(quick(sim), name="quick")
    sim.run(until=100)
    leaked = sim.close()
    assert leaked == [leaked_proc]
    assert sim.alive_processes() == [leaked_proc]


def test_release_mode_does_not_track_processes():
    sim = Simulator(debug=False)

    def forever(sim):
        while True:
            yield 10.0

    sim.process(forever(sim))
    sim.run(until=50)
    assert sim.close() == []


# ---------------------------------------------------------------------------
# recycled-timeout poisoning
# ---------------------------------------------------------------------------

def test_debug_poisons_retained_timeouts():
    """A timeout yielded to the kernel must not be read after the resume:
    release mode recycles it through the free list (stale reads return
    another event's state); debug mode poisons it so the read raises."""
    sim = Simulator(debug=True)
    retained = []

    def proc(sim):
        t = sim.timeout(5.0, value="v")
        retained.append(t)
        yield t

    sim.run_process(proc(sim))
    with pytest.raises(SimulationError, match="recycled"):
        retained[0].value


def test_debug_disables_timeout_pooling():
    sim = Simulator(debug=True)

    def proc(sim):
        first = sim.timeout(1.0)
        yield first
        second = sim.timeout(1.0)
        assert second is not first  # release mode would recycle here
        yield second

    sim.run_process(proc(sim))


# ---------------------------------------------------------------------------
# monotonicity
# ---------------------------------------------------------------------------

def test_debug_detects_backwards_event_time():
    sim = Simulator(debug=True)
    # Forge a corrupted calendar entry (no public API produces one).
    sim.call_later(5.0, lambda: None)
    sim._queue[0][0] = -1.0
    sim._now = 3.0
    with pytest.raises(SimulationError, match="backwards"):
        sim.run()


def test_debug_step_checks_monotonicity():
    sim = Simulator(debug=True)
    sim.call_later(5.0, lambda: None)
    sim._queue[0][0] = -1.0
    sim._now = 3.0
    with pytest.raises(SimulationError, match="backwards"):
        sim.step()
