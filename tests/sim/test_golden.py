"""Golden-trace determinism tests for the DES kernel.

The hot-path refactor (allocation-free scheduling, ``yield <float>``,
``call_later``) must not change simulation *results*: identical seeds must
produce identical event ordering, end to end. These tests pin that down
with digests captured on the pre-refactor kernel:

- a packet-level dctcp/link trace (every delivery at the switch egress,
  timestamped), exercising processes, timeouts, stores, and ``schedule``;
- a reduced fig09 simulation point (the full NIC-PCIe-LLC-CPU stack),
  executed through the runner at ``--jobs 1`` and ``--jobs 4``.

If an engine change breaks one of these on purpose (a deliberate
semantics change), recapture with::

    PYTHONPATH=src python tests/sim/test_golden.py
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.net import (DctcpConfig, DctcpSender, Flow, FlowKind, Message,
                       SwitchPort)
from repro.runner import RunnerOptions, execute_points
from repro.runner.sweep import make_point, run_points_serial
from repro.sim import Simulator
from repro.sim.units import US, gbps

# Digests captured on the pre-refactor kernel (commit 7ba11d2). The
# refactored kernel must reproduce them byte for byte.
#
# Verified unchanged by the RNG-discipline migration (HostCC/ShRing now
# draw from RngRegistry named streams instead of the module-level
# ``random``): the dctcp/link trace never touches an architecture, and
# the pinned fig09 point runs CEIO — whose quick configuration never
# draws the ``ceio.mark`` stream and runs a single flow, so the sorted
# set-iteration fixes are order-equivalent there too. Re-pin only for a
# deliberate semantics change.
GOLDEN_DCTCP_LINK = \
    "7b578ae85eab4505fe3dd1c9a3624ee49d3a576b7b2dc889175b7b4b04698914"
GOLDEN_FIG09_POINT = \
    "d37fb2b8d9da080ec63e75bb6149d6226a2901e9b052b8c18f189b39c7e5fb07"

#: The reduced fig09 point: one panel, one arch, one size, quick mode.
FIG09_PARAMS = {"panel": "erpc-dpdk", "transport": "dpdk", "bypass": False,
                "arch": "ceio", "size": 144, "quick": True}
FIG09_SEED = 7
FIG09_FN = "repro.experiments.fig09:run_point"


def _digest(lines) -> str:
    h = hashlib.sha256()
    for line in lines:
        h.update(line.encode())
        h.update(b"\n")
    return h.hexdigest()


def dctcp_link_trace_digest() -> str:
    """Two DCTCP senders through an ECN-marking switch port; digest every
    delivery and every ACK-driven cwnd change."""
    sim = Simulator()
    trace = []

    config = DctcpConfig()
    # Explicit flow ids: the global flow-id counter depends on what ran
    # earlier in the process, and the digest must not.
    flows = [Flow(FlowKind.CPU_INVOLVED, message_payload=1000,
                  flow_id=990_001 + i) for i in range(2)]
    senders = {}

    def deliver(packet):
        trace.append(f"rx t={sim.now!r} f={packet.flow.flow_id} "
                     f"seq={packet.seq} size={packet.size} "
                     f"ecn={packet.ecn_marked}")
        sender = senders[packet.flow.flow_id]
        seq, marked = packet.seq, packet.ecn_marked
        # Reverse path: fixed-delay ACK, like Testbed.ack().
        sim.schedule(600.0, lambda: sender.on_ack(seq, marked))

    port = SwitchPort(sim, rate=gbps(200), propagation=0.6 * US,
                      deliver=deliver, buffer_bytes=60_000,
                      ecn_threshold=15_000, name="tor")
    for flow in flows:
        sender = DctcpSender(sim, flow, port.send, config)
        senders[flow.flow_id] = sender
        sender.submit_message(Message(1000, count=200))
    sim.run(until=200 * US)
    trace.append(f"end now={sim.now!r} "
                 f"tx={port.tx_packets.value!r} "
                 f"marked={port.marked_packets.value!r} "
                 f"dropped={port.dropped_packets.value!r}")
    for fid, sender in sorted(senders.items()):
        trace.append(f"sender f={fid} cwnd={sender.cwnd!r} "
                     f"alpha={sender.alpha!r}")
    return _digest(trace)


def _fig09_point() -> "Point":
    return make_point("fig09", FIG09_FN, FIG09_PARAMS, FIG09_SEED,
                      FIG09_SEED, label="golden")


def fig09_point_digest(jobs: int = 0) -> str:
    """Digest of the reduced fig09 point's full metric dict.

    ``jobs=0`` runs in-process; otherwise through the worker pool.
    """
    if jobs == 0:
        results = run_points_serial([_fig09_point()])
    else:
        options = RunnerOptions(jobs=jobs, use_cache=False, quiet=True)
        results, failures = execute_points([_fig09_point()], options)
        assert not failures
    payload = json.dumps(results["fig09/golden"], sort_keys=True)
    return _digest([payload])


def test_dctcp_link_trace_matches_golden():
    assert dctcp_link_trace_digest() == GOLDEN_DCTCP_LINK


@pytest.mark.slow
def test_fig09_point_matches_golden_jobs_1():
    assert fig09_point_digest(jobs=1) == GOLDEN_FIG09_POINT


@pytest.mark.slow
def test_fig09_point_matches_golden_jobs_4():
    assert fig09_point_digest(jobs=4) == GOLDEN_FIG09_POINT


if __name__ == "__main__":  # recapture helper
    print(f"GOLDEN_DCTCP_LINK = \"{dctcp_link_trace_digest()}\"")
    print(f"GOLDEN_FIG09_POINT = \"{fig09_point_digest()}\"")
