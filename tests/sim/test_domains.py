"""Event domains and the bounded-horizon shard protocol surface.

These are the kernel-level contracts ``repro.shard`` is built on: the
composite ``(domain << DOMAIN_SHIFT) | count`` sequence space, the
exclusive/inclusive window semantics of ``run_until``, and the
``reserve_key`` / ``post_keyed`` pair that lets one kernel consume a
calendar key another kernel executes.
"""

import pytest

from repro.sim import SimulationError, Simulator
from repro.sim.engine import DOMAIN_SHIFT


def _noop():
    pass


def test_default_domain_is_zero():
    sim = Simulator()
    assert sim.domain == 0
    entry = sim.call_later(1.0, _noop)
    assert entry[1] >> DOMAIN_SHIFT == 0


def test_set_domain_partitions_the_sequence_space():
    sim = Simulator()
    sim.set_domain(3)
    entry = sim.call_later(1.0, _noop)
    assert entry[1] >> DOMAIN_SHIFT == 3
    sim.set_domain(0)
    entry = sim.call_later(1.0, _noop)
    assert entry[1] >> DOMAIN_SHIFT == 0


def test_domain_counters_are_independent():
    sim = Simulator()
    sim.set_domain(1)
    first = sim.call_later(1.0, _noop)[1]
    sim.set_domain(2)
    other = sim.call_later(1.0, _noop)[1]
    sim.set_domain(1)
    second = sim.call_later(1.0, _noop)[1]
    assert second == first + 1  # domain 2's draw did not advance domain 1
    assert other >> DOMAIN_SHIFT == 2


def test_execution_restores_the_scheduling_domain():
    sim = Simulator()
    seen = []
    sim.set_domain(2)
    sim.call_later(1.0, lambda: seen.append(sim.domain))
    sim.set_domain(0)
    sim.run(until=2.0)
    assert seen == [2]


def test_same_time_ties_order_by_domain():
    sim = Simulator()
    order = []
    sim.set_domain(2)
    sim.call_later(5.0, order.append, "d2")
    sim.set_domain(1)
    sim.call_later(5.0, order.append, "d1")
    sim.set_domain(0)
    sim.run()
    assert order == ["d1", "d2"]


def test_run_until_exclusive_then_inclusive():
    sim = Simulator()
    fired = []
    sim.call_later(10.0, fired.append, 1)
    assert sim.run_until(10.0) == 0  # exclusive: the t=10 event waits
    assert fired == [] and sim.now == 10.0
    assert sim.run_until(10.0, inclusive=True) == 1
    assert fired == [1]
    assert sim.events_executed == 1


def test_run_until_into_the_past_raises():
    sim = Simulator()
    sim.run_until(10.0, inclusive=True)
    with pytest.raises(SimulationError):
        sim.run_until(5.0)


def test_reserve_key_matches_the_call_later_key():
    mirror, sim = Simulator(), Simulator()
    entry = mirror.call_later(5.0, _noop)
    assert sim.reserve_key(5.0) == (entry[0], entry[1])


def test_reserve_key_consumes_one_sequence_number():
    sim = Simulator()
    _when, seq = sim.reserve_key(3.0)
    assert sim.call_later(3.0, _noop)[1] == seq + 1


def test_post_keyed_consumes_no_local_sequence_number():
    emitter, receiver = Simulator(), Simulator()
    when, seq = emitter.reserve_key(4.0)
    got = []
    receiver.post_keyed(when, seq, got.append, "x")
    # The receiver's own counter is untouched by the foreign entry.
    assert receiver.call_later(0.0, _noop)[1] == 1
    receiver.run_until(when, inclusive=True)
    assert got == ["x"]


def test_post_keyed_preserves_the_foreign_domain():
    emitter, receiver = Simulator(), Simulator()
    emitter.set_domain(7)
    when, seq = emitter.reserve_key(2.0)
    seen = []
    receiver.post_keyed(when, seq, lambda: seen.append(receiver.domain))
    receiver.run_until(when, inclusive=True)
    assert seen == [7]


def test_post_keyed_in_the_past_raises():
    sim = Simulator()
    sim.run(until=10.0)
    with pytest.raises(SimulationError):
        sim.post_keyed(5.0, 1, _noop)
