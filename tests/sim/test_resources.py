"""Unit tests for Store, Container, Resource, and TokenBucket."""

import pytest

from repro.sim import Container, Resource, SimulationError, Simulator, Store, TokenBucket


# ---------------------------------------------------------------------------
# Store
# ---------------------------------------------------------------------------

def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)

    def producer(sim, store):
        for i in range(3):
            yield store.put(i)

    def consumer(sim, store):
        out = []
        for _ in range(3):
            item = yield store.get()
            out.append(item)
        return out

    sim.process(producer(sim, store))
    proc = sim.process(consumer(sim, store))
    sim.run()
    assert proc.value == [0, 1, 2]


def test_store_put_blocks_when_full():
    sim = Simulator()
    store = Store(sim, capacity=1)
    timeline = []

    def producer(sim, store):
        yield store.put("a")
        timeline.append(("put-a", sim.now))
        yield store.put("b")
        timeline.append(("put-b", sim.now))

    def consumer(sim, store):
        yield sim.timeout(10)
        item = yield store.get()
        timeline.append(("got", item, sim.now))

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert ("put-a", 0.0) in timeline
    assert ("put-b", 10.0) in timeline


def test_store_get_blocks_when_empty():
    sim = Simulator()
    store = Store(sim)

    def consumer(sim, store):
        item = yield store.get()
        return item, sim.now

    proc = sim.process(consumer(sim, store))
    sim.schedule(7, lambda: store.try_put("late"))
    sim.run()
    assert proc.value == ("late", 7.0)


def test_store_try_put_respects_capacity():
    sim = Simulator()
    store = Store(sim, capacity=2)
    assert store.try_put(1)
    assert store.try_put(2)
    assert not store.try_put(3)
    assert store.level == 2


def test_store_try_get_empty_returns_none():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None


def test_store_get_batch_drains_up_to_n():
    sim = Simulator()
    store = Store(sim)
    for i in range(5):
        store.try_put(i)
    assert store.get_batch(3) == [0, 1, 2]
    assert store.get_batch(10) == [3, 4]
    assert store.get_batch(4) == []


def test_store_get_batch_unblocks_putters():
    sim = Simulator()
    store = Store(sim, capacity=2)
    store.try_put("a")
    store.try_put("b")
    done = []

    def producer(sim, store):
        yield store.put("c")
        done.append(sim.now)

    sim.process(producer(sim, store))
    sim.run()
    assert not done  # still blocked
    store.get_batch(2)
    sim.run()
    assert done == [0.0]
    assert list(store.items) == ["c"]


def test_store_zero_capacity_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Store(sim, capacity=0)


def test_store_direct_handoff_to_waiting_getter():
    sim = Simulator()
    store = Store(sim, capacity=1)

    def getter(sim, store):
        item = yield store.get()
        return item

    proc = sim.process(getter(sim, store))
    sim.run()
    assert store.try_put("direct")
    sim.run()
    assert proc.value == "direct"
    assert store.level == 0


# ---------------------------------------------------------------------------
# Container
# ---------------------------------------------------------------------------

def test_container_get_put_levels():
    sim = Simulator()
    c = Container(sim, capacity=10, init=5)
    assert c.try_get(3)
    assert c.level == 2
    assert c.try_put(8)
    assert c.level == 10
    assert not c.try_put(1)


def test_container_get_blocks_until_put():
    sim = Simulator()
    c = Container(sim, capacity=10, init=0)

    def getter(sim, c):
        yield c.get(4)
        return sim.now

    proc = sim.process(getter(sim, c))
    sim.schedule(5, lambda: c.try_put(2))
    sim.schedule(9, lambda: c.try_put(2))
    sim.run()
    assert proc.value == 9.0


def test_container_fifo_getters_no_starvation():
    sim = Simulator()
    c = Container(sim, capacity=100, init=0)
    order = []

    def getter(sim, c, name, amount):
        yield c.get(amount)
        order.append(name)

    sim.process(getter(sim, c, "big", 10))
    sim.process(getter(sim, c, "small", 1))
    sim.run()
    c.try_put(5)   # not enough for 'big'; 'small' must still wait (FIFO)
    sim.run()
    assert order == []
    c.try_put(6)
    sim.run()
    assert order == ["big", "small"]


def test_container_try_get_fails_when_waiters_exist():
    sim = Simulator()
    c = Container(sim, capacity=10, init=3)

    def getter(sim, c):
        yield c.get(5)

    sim.process(getter(sim, c))
    sim.run()
    assert not c.try_get(1)  # must not jump the queue


def test_container_init_bounds_checked():
    sim = Simulator()
    with pytest.raises(SimulationError):
        Container(sim, capacity=5, init=6)
    with pytest.raises(SimulationError):
        Container(sim, capacity=5, init=-1)


def test_container_put_blocks_at_capacity():
    sim = Simulator()
    c = Container(sim, capacity=5, init=5)

    def putter(sim, c):
        yield c.put(3)
        return sim.now

    proc = sim.process(putter(sim, c))
    sim.schedule(4, lambda: c.try_get(3))
    sim.run()
    assert proc.value == 4.0
    assert c.level == 5


# ---------------------------------------------------------------------------
# Resource
# ---------------------------------------------------------------------------

def test_resource_serialises_users():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    spans = []

    def user(sim, res, name, hold):
        yield res.request()
        start = sim.now
        yield sim.timeout(hold)
        res.release()
        spans.append((name, start, sim.now))

    sim.process(user(sim, res, "a", 5))
    sim.process(user(sim, res, "b", 5))
    sim.run()
    assert spans == [("a", 0.0, 5.0), ("b", 5.0, 10.0)]


def test_resource_parallel_capacity():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    ends = []

    def user(sim, res):
        yield res.request()
        yield sim.timeout(10)
        res.release()
        ends.append(sim.now)

    for _ in range(4):
        sim.process(user(sim, res))
    sim.run()
    assert ends == [10.0, 10.0, 20.0, 20.0]


def test_resource_release_without_request_raises():
    sim = Simulator()
    res = Resource(sim)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_use_helper():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim, res):
        yield from res.use(8)
        return sim.now

    p1 = sim.process(user(sim, res))
    p2 = sim.process(user(sim, res))
    sim.run()
    assert (p1.value, p2.value) == (8.0, 16.0)


def test_resource_queue_length_visible():
    sim = Simulator()
    res = Resource(sim, capacity=1)

    def user(sim, res):
        yield res.request()
        yield sim.timeout(100)
        res.release()

    for _ in range(3):
        sim.process(user(sim, res))
    sim.run(until=1)
    assert res.in_use == 1
    assert res.queue_length == 2


# ---------------------------------------------------------------------------
# TokenBucket
# ---------------------------------------------------------------------------

def test_token_bucket_immediate_when_tokens_available():
    sim = Simulator()
    tb = TokenBucket(sim, rate=1.0, burst=10)

    def taker(sim, tb):
        yield tb.take(5)
        return sim.now

    assert sim.run_process(taker(sim, tb)) == 0.0


def test_token_bucket_waits_for_refill():
    sim = Simulator()
    tb = TokenBucket(sim, rate=2.0, burst=10, init=0)

    def taker(sim, tb):
        yield tb.take(10)
        return sim.now

    assert sim.run_process(taker(sim, tb)) == 5.0


def test_token_bucket_rate_determines_sustained_throughput():
    sim = Simulator()
    tb = TokenBucket(sim, rate=1.0, burst=4, init=0)

    def taker(sim, tb, n):
        for _ in range(n):
            yield tb.take(4)
        return sim.now

    # 5 takes of 4 tokens at 1 token/ns from empty: 4, 8, ..., 20 ns.
    assert sim.run_process(taker(sim, tb, 5)) == 20.0


def test_token_bucket_burst_caps_accrual():
    sim = Simulator()
    tb = TokenBucket(sim, rate=1.0, burst=5)

    def proc(sim, tb):
        yield sim.timeout(1000)  # idle long; tokens cap at burst
        assert tb.tokens == 5
        yield tb.take(5)
        t0 = sim.now
        yield tb.take(5)
        return sim.now - t0

    assert sim.run_process(proc(sim, tb)) == 5.0


def test_token_bucket_set_rate_mid_wait():
    sim = Simulator()
    tb = TokenBucket(sim, rate=1.0, burst=100, init=0)

    def taker(sim, tb):
        yield tb.take(100)
        return sim.now

    proc = sim.process(taker(sim, tb))
    # After 10 ns, 10 tokens accrued; speed up x10 => remaining 90 tokens
    # in 9 ns, finishing at t=19.
    sim.schedule(10, lambda: tb.set_rate(10.0))
    sim.run()
    assert proc.value == pytest.approx(19.0)


def test_token_bucket_zero_rate_pauses():
    sim = Simulator()
    tb = TokenBucket(sim, rate=1.0, burst=10, init=0)

    def taker(sim, tb):
        yield tb.take(5)
        return sim.now

    proc = sim.process(taker(sim, tb))
    sim.schedule(1, lambda: tb.set_rate(0.0))
    sim.schedule(50, lambda: tb.set_rate(1.0))
    sim.run()
    # 1 token by t=1, stalled until t=50, 4 more tokens by t=54.
    assert proc.value == pytest.approx(54.0)


def test_token_bucket_take_exceeding_burst_raises():
    sim = Simulator()
    tb = TokenBucket(sim, rate=1.0, burst=10)
    with pytest.raises(SimulationError):
        tb.take(11)


def test_token_bucket_fifo_ordering():
    sim = Simulator()
    tb = TokenBucket(sim, rate=1.0, burst=10, init=0)
    order = []

    def taker(sim, tb, name, amount):
        yield tb.take(amount)
        order.append((name, sim.now))

    sim.process(taker(sim, tb, "first-big", 8))
    sim.process(taker(sim, tb, "second-small", 1))
    sim.run()
    assert order == [("first-big", 8.0), ("second-small", 9.0)]


def test_token_bucket_try_take():
    sim = Simulator()
    tb = TokenBucket(sim, rate=0.0, burst=10, init=3)
    assert tb.try_take(3)
    assert not tb.try_take(1)
