"""Unit tests for the DCTCP sender: window dynamics, loss recovery,
message completion."""

import pytest

from repro.net import DctcpConfig, DctcpSender, Flow, FlowKind, Message
from repro.sim import Simulator


class Harness:
    """Catches transmitted packets; ACKs are injected manually."""

    def __init__(self, **cfg):
        self.sim = Simulator()
        self.flow = Flow(FlowKind.CPU_INVOLVED, message_payload=1000)
        self.sent = []
        self.config = DctcpConfig(**cfg)
        self.sender = DctcpSender(self.sim, self.flow, self.sent.append,
                                  self.config)

    def submit(self, count=1, payload=1000):
        return self.sender.submit_message(Message(payload, count))

    def ack(self, seq, ecn=False, advance=1000.0):
        self.sim.run(until=self.sim.now + advance)
        self.sender.on_ack(seq, ecn)


def test_initial_window_limits_inflight():
    h = Harness(init_cwnd=4 * 1042)  # bytes: four 1042B frames
    h.submit(count=10)
    h.sim.run(until=1)
    assert len(h.sent) == 4
    assert h.sender.backlog == 6


def test_acks_release_window():
    h = Harness(init_cwnd=4 * 1042)
    h.submit(count=10)
    h.sim.run(until=1)
    h.ack(0)
    h.ack(1)
    assert len(h.sent) == 6


def test_flow_sender_attached():
    h = Harness()
    assert h.flow.sender is h.sender


def test_slow_start_doubles_window():
    h = Harness(init_cwnd=2 * 1042, rtt_init=100.0)
    h.submit(count=64)
    h.sim.run(until=1)
    start = h.sender.cwnd
    # ACK everything sent so far across several RTTs without marks.
    for _ in range(4):
        for pkt in list(h.sent):
            if pkt.seq in h.sender.inflight:
                h.ack(pkt.seq, advance=200.0)
    assert h.sender.cwnd > start


def test_marked_window_reduces_cwnd():
    h = Harness(init_cwnd=16 * 1042, rtt_init=100.0)
    h.submit(count=64)
    h.sim.run(until=1)
    before = h.sender.cwnd
    for pkt in list(h.sent[:16]):
        h.ack(pkt.seq, ecn=True, advance=50.0)
    assert h.sender.cwnd < before
    assert h.sender.alpha > 0


def test_alpha_ewma_converges_to_mark_fraction():
    h = Harness(init_cwnd=8 * 1042, rtt_init=50.0)
    h.submit(count=400)
    h.sim.run(until=1)
    for _round in range(40):
        for pkt in list(h.sent):
            if pkt.seq in h.sender.inflight:
                h.ack(pkt.seq, ecn=True, advance=20.0)
    assert h.sender.alpha > 0.6  # all-marked stream drives alpha toward 1


def test_dupack_fast_retransmit():
    h = Harness(init_cwnd=8 * 1042, dupack_threshold=3, rtt_init=100.0)
    h.submit(count=8)
    h.sim.run(until=1)
    assert len(h.sent) == 8
    # Packet 0 lost; ACK 1..3 triggers a retransmit of 0.
    h.ack(1)
    h.ack(2)
    h.ack(3)
    assert h.sender.retransmits.value == 1
    retx = h.sent[-1]
    assert retx.seq == 0
    assert retx.retransmitted


def test_rto_collapses_window_and_requeues():
    h = Harness(init_cwnd=8 * 1042, rto=1000.0, rtt_init=100.0)
    h.submit(count=8)
    h.sim.run(until=1)
    # No ACKs at all: timeout fires.
    h.sim.run(until=5000)
    assert h.sender.timeouts.value >= 1
    assert h.sender.cwnd == h.config.min_cwnd
    # Go-back-N: only the oldest stays in flight, the rest requeued.
    assert len(h.sender.inflight) == 1
    assert h.sender.backlog >= 7


def test_rto_recovery_preserves_seq_order():
    h = Harness(init_cwnd=4 * 1042, rto=1000.0, rtt_init=100.0)
    h.submit(count=4)
    h.sim.run(until=5000)  # RTO fired; 0 retransmitted, 1-3 requeued
    h.ack(0, advance=10.0)
    h.sim.run(until=h.sim.now + 1)
    requeued = [p.seq for p in h.sent[5:]]
    assert requeued == sorted(requeued)


def test_message_completion_event():
    h = Harness(init_cwnd=8 * 1042)
    done = h.submit(count=3)
    h.sim.run(until=1)
    h.ack(0)
    h.ack(1)
    assert not done.triggered
    h.ack(2)
    h.sim.run(until=h.sim.now + 1)
    assert done.triggered
    assert done.value.complete_time > 0


def test_duplicate_ack_ignored():
    h = Harness(init_cwnd=4 * 1042)
    h.submit(count=4)
    h.sim.run(until=1)
    h.ack(0)
    before = h.sender.packets_acked.value
    h.ack(0)  # stale
    assert h.sender.packets_acked.value == before


def test_srtt_tracks_samples():
    h = Harness(init_cwnd=2 * 1042, rtt_init=10_000.0)
    h.submit(count=2)
    h.sim.run(until=1)
    h.ack(0, advance=500.0)
    assert h.sender.srtt < 10_000.0


def test_first_send_time_survives_retransmit():
    h = Harness(init_cwnd=4 * 1042, rto=1000.0, rtt_init=100.0)
    h.submit(count=1)
    h.sim.run(until=1)
    pkt = h.sent[0]
    t0 = pkt.first_send_time
    h.sim.run(until=5000)  # RTO retransmits
    # The retransmission is a clone: the original copy (possibly still
    # traversing the network) stays frozen, the new copy keeps the
    # original first_send_time but carries its own send_time.
    assert len(h.sent) > 1
    retx = h.sent[-1]
    assert retx is not pkt
    assert retx.seq == pkt.seq
    assert retx.retransmitted and not pkt.retransmitted
    assert retx.first_send_time == t0
    assert retx.send_time > t0
    assert pkt.first_send_time == t0 and pkt.send_time == t0
