"""Unit tests for packets, messages, links, and the ECN switch port."""

import pytest

from repro.net import ETHERNET_OVERHEAD, Flow, FlowKind, Link, Message, SwitchPort
from repro.sim import Simulator


def make_flow(**kwargs):
    defaults = dict(kind=FlowKind.CPU_INVOLVED, message_payload=1024)
    defaults.update(kwargs)
    return Flow(**defaults)


# ---------------------------------------------------------------------------
# Packet / Message / Flow
# ---------------------------------------------------------------------------

def test_packet_size_includes_framing():
    flow = make_flow()
    msg = Message(payload=1024, count=1)
    pkt = msg.packets(flow, seq_start=0)[0]
    assert pkt.size == 1024 + ETHERNET_OVERHEAD
    assert pkt.payload == 1024


def test_message_packets_sequence_and_last_marker():
    flow = make_flow()
    msg = Message(payload=512, count=4)
    pkts = msg.packets(flow, seq_start=10)
    assert [p.seq for p in pkts] == [10, 11, 12, 13]
    assert [p.last_in_message for p in pkts] == [False, False, False, True]
    assert all(p.message_id == msg.message_id for p in pkts)
    assert msg.total_bytes == 2048


def test_message_validation():
    with pytest.raises(ValueError):
        Message(payload=0, count=1)
    with pytest.raises(ValueError):
        Message(payload=64, count=0)


def test_flow_ids_unique_and_kinds():
    f1, f2 = make_flow(), make_flow(kind=FlowKind.CPU_BYPASS)
    assert f1.flow_id != f2.flow_id
    assert f1.is_cpu_involved
    assert not f2.is_cpu_involved


def test_flow_make_message_uses_flow_shape():
    flow = make_flow(message_payload=256, packets_per_message=8)
    msg = flow.make_message()
    assert msg.payload == 256
    assert msg.count == 8


# ---------------------------------------------------------------------------
# Link
# ---------------------------------------------------------------------------

def test_link_serialisation_and_propagation():
    sim = Simulator()
    arrivals = []
    link = Link(sim, rate=1.0, propagation=100.0,
                deliver=lambda p: arrivals.append((p, sim.now)))
    flow = make_flow()
    pkt = Message(58, 1).packets(flow, 0)[0]  # size 100
    link.send(pkt)
    sim.run()
    assert len(arrivals) == 1
    # 100 bytes at 1 B/ns + 100 ns propagation.
    assert arrivals[0][1] == pytest.approx(200.0)


def test_link_fifo_back_to_back():
    sim = Simulator()
    arrivals = []
    link = Link(sim, rate=10.0, propagation=0.0,
                deliver=lambda p: arrivals.append((p.seq, sim.now)))
    flow = make_flow()
    for pkt in Message(58, 3).packets(flow, 0):
        link.send(pkt)
    sim.run()
    assert [seq for seq, _t in arrivals] == [0, 1, 2]
    times = [t for _s, t in arrivals]
    assert times[1] - times[0] == pytest.approx(10.0)  # 100B / 10B/ns


def test_link_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        Link(Simulator(), rate=0, propagation=0)


# ---------------------------------------------------------------------------
# SwitchPort
# ---------------------------------------------------------------------------

def _mk_pkts(n, payload=958):
    flow = make_flow()
    return Message(payload, n).packets(flow, 0)  # each 1000B


def test_switch_marks_above_threshold():
    sim = Simulator()
    got = []
    port = SwitchPort(sim, rate=1.0, propagation=0.0,
                      deliver=got.append, buffer_bytes=100_000,
                      ecn_threshold=2_000)
    for pkt in _mk_pkts(5):
        port.send(pkt)
    sim.run()
    assert len(got) == 5
    # Packets enqueued while queue > 2000B get CE-marked.
    assert sum(p.ecn_marked for p in got) == 2
    assert port.marked_packets.value == 2


def test_switch_tail_drop_when_full():
    sim = Simulator()
    got = []
    port = SwitchPort(sim, rate=1.0, propagation=0.0,
                      deliver=got.append, buffer_bytes=2_500,
                      ecn_threshold=10_000)
    for pkt in _mk_pkts(5):
        port.send(pkt)
    sim.run()
    assert len(got) == 2
    assert port.dropped_packets.value == 3


def test_switch_queue_gauge_tracks_occupancy():
    sim = Simulator()
    port = SwitchPort(sim, rate=1.0, propagation=0.0,
                      deliver=lambda p: None, buffer_bytes=100_000,
                      ecn_threshold=100_000)
    for pkt in _mk_pkts(3):
        port.send(pkt)
    assert port.queued_bytes == 3000
    sim.run()
    assert port.queued_bytes == 0
    assert port.queue_gauge.max == 3000
