"""Satellite: every link-level drop emits one attributable trace event
(kind, flow, seq) when a tracer is attached — and none when not."""

from repro.faults import FaultPlan, FaultSpec, install_plan
from repro.hw import CacheConfig, HostConfig
from repro.io_arch import build_arch
from repro.net import Flow, FlowKind, Message, Testbed
from repro.sim.trace import Tracer
from repro.sim.units import US


def build(seed=5):
    testbed = Testbed(host_config=HostConfig(
        cache=CacheConfig(size=512 * 1024)), seed=seed)
    testbed.install_io_arch(build_arch("baseline", testbed.host))
    sender = testbed.add_flow(Flow(FlowKind.CPU_INVOLVED, name="f0",
                                   message_payload=512))

    def proc(sim):
        for _ in range(40):
            sender.submit_message(Message(512, 1))
            yield 1000.0

    testbed.sim.process(proc(testbed.sim))
    return testbed, sender


def test_fault_drops_emit_attributed_trace_events():
    testbed, _ = build()
    tracer = Tracer(testbed.sim)
    testbed.port.tracer = tracer
    install_plan(testbed, FaultPlan((
        FaultSpec("net.link", "corrupt", start=5 * US, duration=20 * US,
                  magnitude=1.0),)))
    testbed.run(until=100 * US)
    drops = tracer.category("link.drop")
    assert len(drops) == testbed.port.fault_dropped.value > 0
    flow_id = testbed.flows[0].flow_id
    seqs = set()
    for event in drops:
        assert event.fields["link"] == "tor"
        assert event.fields["kind"] == "corrupt"
        assert event.fields["flow"] == flow_id
        seqs.add(event.fields["seq"])
    assert len(seqs) == len(drops)             # one event per lost packet
    # All inside the fault window.
    assert all(5 * US <= e.time < 25 * US for e in drops)


def test_no_tracer_means_no_events_and_same_drops():
    def run(with_tracer):
        testbed, sender = build()
        tracer = Tracer(testbed.sim)
        if with_tracer:
            testbed.port.tracer = tracer
        install_plan(testbed, FaultPlan((
            FaultSpec("net.link", "loss", start=5 * US, duration=20 * US,
                      magnitude=0.5),)))
        testbed.run(until=100 * US)
        return (testbed.port.fault_dropped.value,
                sender.packets_acked.value, len(tracer.events))

    dropped_t, acked_t, events_t = run(True)
    dropped_n, acked_n, events_n = run(False)
    # Tracing is pure observation: identical simulation either way.
    assert (dropped_t, acked_t) == (dropped_n, acked_n)
    assert events_t == dropped_t
    assert events_n == 0
