"""Property test (hypothesis): DCTCP's RTO recovers every message under
injected Gilbert–Elliott burst loss.

For any burst-loss shape drawn from the strategy, and losses actually
observed on the wire, the transport must (a) retransmit — losses are
repaired, not ignored; (b) complete every submitted message within a
bounded horizon — no permanent stall; (c) ACK every data packet exactly
once at the application level (completion events all fire)."""

import pytest

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the dev extra
    HAVE_HYPOTHESIS = False

from repro.faults import FaultPlan, FaultSpec, install_plan
from repro.hw import CacheConfig, HostConfig
from repro.io_arch import build_arch
from repro.net import Flow, FlowKind, Message, Testbed
from repro.sim.units import MS, US

pytestmark = pytest.mark.skipif(
    not HAVE_HYPOTHESIS, reason="hypothesis not installed")

N_MESSAGES = 30
#: Generous bound: tens of RTO cycles (RTO is 200 us), far past anything
#: a live transport needs — hitting it means a permanent stall.
HORIZON = 20 * MS

burst_shapes = st.fixed_dictionaries({
    "magnitude": st.floats(min_value=0.1, max_value=1.0),
    "p_good_bad": st.floats(min_value=0.01, max_value=0.3),
    "p_bad_good": st.floats(min_value=0.05, max_value=0.5),
    "duration_us": st.integers(min_value=20, max_value=200),
    "seed": st.integers(min_value=0, max_value=2**20),
})


@settings(max_examples=15, deadline=None)
@given(shape=burst_shapes)
def test_rto_recovers_every_message_under_burst_loss(shape):
    testbed = Testbed(host_config=HostConfig(
        cache=CacheConfig(size=512 * 1024)), seed=shape["seed"])
    testbed.install_io_arch(build_arch("baseline", testbed.host))
    sender = testbed.add_flow(Flow(FlowKind.CPU_INVOLVED, name="f0",
                                   message_payload=512))
    install_plan(testbed, FaultPlan((
        FaultSpec("net.link", "burst_loss", start=2 * US,
                  duration=shape["duration_us"] * US,
                  magnitude=shape["magnitude"],
                  params={"p_good_bad": shape["p_good_bad"],
                          "p_bad_good": shape["p_bad_good"]}),)))

    done_events = []

    def proc(sim):
        for _ in range(N_MESSAGES):
            done_events.append(sender.submit_message(Message(512, 1)))
            yield 2000.0

    testbed.sim.process(proc(testbed.sim))
    testbed.run(until=HORIZON)

    lost = testbed.port.fault_dropped.value
    # (a) wire losses are repaired by retransmission, not ignored. (Not
    # one-to-one: a drop can hit a spurious retransmission whose original
    # already got through, needing no further repair.)
    if lost > 0:
        assert sender.retransmits.value > 0
    # (b, c) no permanent stall: every message completed in the horizon.
    assert len(done_events) == N_MESSAGES
    assert all(event.triggered for event in done_events)
    assert sender.packets_acked.value >= N_MESSAGES
