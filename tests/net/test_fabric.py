"""Tests for the two-server testbed wiring (fabric + ACK path)."""

import pytest

from repro.hw import CacheConfig, HostConfig
from repro.io_arch import build_arch
from repro.net import FabricConfig, Flow, FlowKind
from repro.net import Testbed as TB
from repro.sim.units import US


def test_add_flow_requires_installed_arch():
    bed = TB()
    with pytest.raises(RuntimeError, match="install_io_arch"):
        bed.add_flow(Flow(FlowKind.CPU_INVOLVED, message_payload=100))


def test_install_wires_ack_and_handler():
    bed = TB()
    arch = build_arch("baseline", bed.host)
    bed.install_io_arch(arch)
    assert bed.host.nic.handler is arch
    assert arch.ack is not None


def test_ack_round_trip_delay():
    bed = TB(host_config=HostConfig(cache=CacheConfig(size=256 * 1024)))
    arch = build_arch("baseline", bed.host)
    bed.install_io_arch(arch)
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=500)
    sender = bed.add_flow(flow)
    done = sender.submit_message(flow.make_message())
    bed.run(until=100 * US)
    assert done.triggered
    msg = done.value
    # Completion takes at least the forward + reverse propagation.
    assert (msg.complete_time - msg.submit_time
            >= 2 * bed.fabric_config.one_way_delay)


def test_ack_extra_mark_reaches_sender():
    bed = TB(host_config=HostConfig(cache=CacheConfig(size=256 * 1024)))
    arch = build_arch("baseline", bed.host)
    bed.install_io_arch(arch)
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=500)
    sender = bed.add_flow(flow)
    sender.submit_message(flow.make_message())
    bed.run(until=5 * US)  # packet en route / accepted

    marked = []
    original = sender.on_ack
    sender.on_ack = lambda seq, ecn: (marked.append(ecn),
                                      original(seq, ecn))
    # Re-ACK with a host-side mark (what HostCC/ShRing/CEIO guards do).
    pkt = flow.make_message().packets(flow, 99)[0]
    bed.ack(pkt, extra_mark=True)
    bed.run(until=10 * US)
    assert True in marked


def test_ack_for_unknown_flow_is_ignored():
    bed = TB()
    arch = build_arch("baseline", bed.host)
    bed.install_io_arch(arch)
    ghost = Flow(FlowKind.CPU_INVOLVED, message_payload=100)
    pkt = ghost.make_message().packets(ghost, 0)[0]
    bed.ack(pkt)  # must not raise
    bed.run(until=5 * US)


def test_fabric_config_defaults():
    cfg = FabricConfig()
    assert cfg.rate == pytest.approx(25.0)
    assert cfg.ecn_threshold < cfg.switch_buffer


def test_reverse_delay_defaults_to_one_way_delay():
    cfg = FabricConfig()
    assert cfg.ack_delay is None
    assert cfg.reverse_delay == cfg.one_way_delay
    asym = FabricConfig(ack_delay=0.1 * US)
    assert asym.reverse_delay == pytest.approx(0.1 * US)


def test_asymmetric_ack_delay_shortens_round_trip():
    def round_trip(fabric_config):
        bed = TB(host_config=HostConfig(cache=CacheConfig(size=256 * 1024)),
                 fabric_config=fabric_config)
        arch = build_arch("baseline", bed.host)
        bed.install_io_arch(arch)
        flow = Flow(FlowKind.CPU_INVOLVED, message_payload=500)
        sender = bed.add_flow(flow)
        done = sender.submit_message(flow.make_message())
        bed.run(until=100 * US)
        assert done.triggered
        return done.value.complete_time - done.value.submit_time

    symmetric = round_trip(FabricConfig())
    asym = round_trip(FabricConfig(ack_delay=0.1 * US))
    # Same forward path; the reverse path is 0.5 us shorter.
    assert symmetric - asym == pytest.approx(0.5 * US)


def test_add_flow_after_measurement_started_raises():
    from repro.workloads.measure import MeasurementWindow

    bed = TB()
    arch = build_arch("baseline", bed.host)
    bed.install_io_arch(arch)
    bed.add_flow(Flow(FlowKind.CPU_INVOLVED, name="early",
                      message_payload=100))
    MeasurementWindow(bed, arch)
    late = Flow(FlowKind.CPU_INVOLVED, name="late", message_payload=100)
    with pytest.raises(RuntimeError, match="after measurement started"):
        bed.add_flow(late)
    # The error names the flow and the escape hatch.
    with pytest.raises(RuntimeError, match="'late'.*late_ok"):
        bed.add_flow(late)


def test_add_flow_late_ok_announces_flow_to_window():
    from repro.workloads.measure import MeasurementWindow

    bed = TB()
    arch = build_arch("baseline", bed.host)
    bed.install_io_arch(arch)
    bed.add_flow(Flow(FlowKind.CPU_INVOLVED, name="early",
                      message_payload=100))
    window = MeasurementWindow(bed, arch)
    late = Flow(FlowKind.CPU_INVOLVED, name="late", message_payload=100)
    bed.add_flow(late, late_ok=True)
    bed.run(until=1 * US)
    measurement = window.finish()
    assert bed.active_window is None
    assert {fm.name for fm in measurement.flows} == {"early", "late"}


def test_window_clears_active_registration_on_finish():
    from repro.workloads.measure import MeasurementWindow

    bed = TB()
    arch = build_arch("baseline", bed.host)
    bed.install_io_arch(arch)
    assert bed.active_window is None
    window = MeasurementWindow(bed, arch)
    assert bed.active_window is window
    bed.run(until=1 * US)
    window.finish()
    assert bed.active_window is None
    # After the window closes, plain add_flow works again.
    bed.add_flow(Flow(FlowKind.CPU_INVOLVED, name="next",
                      message_payload=100))
