"""Tests for DRAM, PCIe, IIO, memory controller, CPU, and NIC models."""

import pytest

from repro.hw import (
    CpuConfig,
    DmaWrite,
    DramConfig,
    Host,
    HostConfig,
    NicConfig,
    PcieConfig,
)
from repro.sim import Simulator
from repro.sim.units import gbps


# ---------------------------------------------------------------------------
# DRAM
# ---------------------------------------------------------------------------

def test_dram_access_latency_includes_transfer():
    sim = Simulator()
    host = Host(sim)
    cfg = host.config.dram

    def proc(sim):
        t0 = sim.now
        yield from host.dram.read(2048)
        return sim.now - t0

    latency = sim.run_process(proc(sim))
    assert latency == pytest.approx(cfg.base_latency + 2048 / cfg.channel_bandwidth)


def test_dram_channels_parallelise():
    sim = Simulator()
    host = Host(sim)
    ends = []

    def proc(sim):
        yield from host.dram.read(2048)
        ends.append(sim.now)

    for _ in range(host.config.dram.channels):
        sim.process(proc(sim))
    sim.run()
    assert len(set(ends)) == 1  # all channels in parallel, same finish time


def test_dram_latency_estimate_inflates_under_load():
    sim = Simulator()
    host = Host(sim)
    idle = host.dram.latency_estimate(64, 0.0)
    # Saturate the bandwidth meter.
    for t in range(0, 100):
        host.dram.record_demand(float(t * 100), 16000)
    loaded = host.dram.latency_estimate(64, 10_000.0)
    assert loaded > idle


def test_dram_utilization_bounded():
    sim = Simulator()
    host = Host(sim)
    host.dram.record_demand(1.0, 10**9)
    assert host.dram.utilization(10.0) == 1.0


# ---------------------------------------------------------------------------
# PCIe
# ---------------------------------------------------------------------------

def test_pcie_wire_bytes_includes_tlp_overhead():
    cfg = PcieConfig()
    assert cfg.wire_bytes(0) == 0
    assert cfg.wire_bytes(256) == 256 + 24
    assert cfg.wire_bytes(257) == 257 + 2 * 24


def test_pcie_write_issue_is_fast_latency_is_pipelined():
    sim = Simulator()
    host = Host(sim)
    cfg = host.config.pcie

    def proc(sim):
        t0 = sim.now
        yield from host.pcie.write_issue(1024)
        issue_time = sim.now - t0
        yield host.pcie.write_latency_event()
        return issue_time, sim.now - t0

    issue_time, total = sim.run_process(proc(sim))
    assert issue_time < cfg.write_latency  # issue = wire serialisation only
    assert total >= cfg.write_latency


def test_pcie_back_to_back_writes_overlap_latency():
    """Two posted writes must not serialise their in-flight latency."""
    sim = Simulator()
    host = Host(sim)
    from repro.hw import DmaWrite
    delivered = []

    def proc(sim):
        for i in range(2):
            write = DmaWrite(f"p{i}", 2048, ddio=True,
                             deliver=lambda t: delivered.append(t))
            yield from host.nic.dma.write_to_host(write)

    sim.process(proc(sim))
    sim.run()
    assert len(delivered) == 2
    # Second delivery trails the first by far less than the 300ns latency.
    assert delivered[1] - delivered[0] < host.config.pcie.write_latency / 2


def test_pcie_read_costs_round_trip():
    sim = Simulator()
    host = Host(sim)
    cfg = host.config.pcie

    def proc(sim):
        t0 = sim.now
        yield from host.pcie.read(2048)
        return sim.now - t0

    latency = sim.run_process(proc(sim))
    assert latency >= cfg.read_latency


def test_pcie_credits_block_writer_until_released():
    sim = Simulator()
    config = HostConfig(pcie=PcieConfig(posted_credits=4096))
    host = Host(sim, config)

    def writer(sim):
        yield from host.pcie.acquire_write_credits(4096)
        yield from host.pcie.acquire_write_credits(4096)
        return sim.now

    proc = sim.process(writer(sim))
    sim.schedule(500, lambda: host.pcie.release_write_credits(4096))
    sim.run()
    assert proc.value == 500.0


# ---------------------------------------------------------------------------
# IIO + memory controller end-to-end
# ---------------------------------------------------------------------------

def test_dma_write_lands_in_llc_with_ddio():
    sim = Simulator()
    host = Host(sim)
    delivered = []

    def proc(sim):
        write = DmaWrite("pkt0", 2048, ddio=True,
                         deliver=lambda t: delivered.append(t))
        yield from host.nic.dma.write_to_host(write)

    sim.process(proc(sim))
    sim.run()
    assert delivered, "memory controller must call deliver()"
    assert host.llc.is_resident("pkt0")


def test_dma_write_without_ddio_goes_to_dram():
    sim = Simulator()
    host = Host(sim)

    def proc(sim):
        write = DmaWrite("pkt0", 2048, ddio=False)
        yield from host.nic.dma.write_to_host(write)

    sim.process(proc(sim))
    sim.run()
    assert not host.llc.is_resident("pkt0")
    assert host.dram.bytes_written.value == 2048


def test_ddio_eviction_generates_writeback_traffic():
    sim = Simulator()
    host = Host(sim)
    n_fit = host.config.cache.ddio_capacity // 2048

    def proc(sim):
        for i in range(n_fit + 8):
            write = DmaWrite(f"p{i}", 2048, ddio=True)
            yield from host.nic.dma.write_to_host(write)

    sim.process(proc(sim))
    sim.run()
    assert host.memctrl.writeback_bytes.value >= 8 * 2048


def test_iio_occupancy_tracked():
    sim = Simulator()
    host = Host(sim)

    def proc(sim):
        yield from host.iio.put(DmaWrite("x", 1024, ddio=True), 1024)
        assert host.iio.occupancy == 1024

    sim.process(proc(sim))
    sim.run()
    # Drained by memctrl afterwards.
    assert host.iio.occupancy == 0


# ---------------------------------------------------------------------------
# CPU core
# ---------------------------------------------------------------------------

def test_core_compute_duration_scales_with_frequency():
    sim = Simulator()
    host = Host(sim, HostConfig(cpu=CpuConfig(cores=2, freq_ghz=2.0)))
    core = host.cpu.allocate()

    def proc(sim):
        t0 = sim.now
        yield core.compute(100)
        return sim.now - t0

    assert sim.run_process(proc(sim)) == pytest.approx(50.0)


def test_core_read_hit_vs_miss_latency():
    sim = Simulator()
    host = Host(sim)
    core = host.cpu.allocate()
    host.llc.io_insert("hot", 2048)
    hit_lat, hit_missed = core.read_latency("hot", 2048)
    miss_lat, miss_missed = core.read_latency("cold", 2048)
    assert not hit_missed and miss_missed
    assert hit_lat == host.config.cache.hit_latency
    assert miss_lat > 3 * hit_lat


def test_core_read_buffer_process_advances_time():
    sim = Simulator()
    host = Host(sim)
    core = host.cpu.allocate()
    host.llc.io_insert("hot", 2048)

    def proc(sim):
        t0 = sim.now
        missed = yield from core.read_buffer("hot", 2048)
        return sim.now - t0, missed

    duration, missed = sim.run_process(proc(sim))
    assert duration == host.config.cache.hit_latency
    assert missed is False


def test_core_allocation_exhaustion():
    sim = Simulator()
    host = Host(sim, HostConfig(cpu=CpuConfig(cores=1)))
    host.cpu.allocate()
    with pytest.raises(RuntimeError):
        host.cpu.allocate()
    host.cpu.release_all()
    host.cpu.allocate()


def test_core_copy_to_app_buffer_costs_time_and_bandwidth():
    sim = Simulator()
    host = Host(sim)
    core = host.cpu.allocate()

    def proc(sim):
        t0 = sim.now
        yield from core.copy_to_app_buffer(4096)
        return sim.now - t0

    duration = sim.run_process(proc(sim))
    assert duration > 0
    assert host.dram.bytes_written.value == 4096


# ---------------------------------------------------------------------------
# NIC
# ---------------------------------------------------------------------------

class _Pkt:
    def __init__(self, size):
        self.size = size


class _CountingHandler:
    def __init__(self, sim):
        self.sim = sim
        self.seen = []
        self.drops = []

    def on_packet(self, packet):
        self.seen.append(packet)
        yield self.sim.timeout(1)

    def on_drop(self, packet):
        self.drops.append(packet)


def test_nic_dispatches_packets_to_handler():
    sim = Simulator()
    host = Host(sim)
    handler = _CountingHandler(sim)
    host.nic.install_handler(handler)
    for _ in range(5):
        assert host.nic.receive(_Pkt(1024))
    sim.run()
    assert len(handler.seen) == 5
    assert host.nic.rx_packets.value == 5


def test_nic_drops_without_handler():
    sim = Simulator()
    host = Host(sim)
    assert not host.nic.receive(_Pkt(1024))
    assert host.nic.dropped_packets.value == 1


def test_nic_mac_buffer_overflow_drops_and_notifies():
    sim = Simulator()
    host = Host(sim)

    class Blocker(_CountingHandler):
        def on_packet(self, packet):
            yield self.sim.timeout(10**9)

    handler = Blocker(sim)
    host.nic.install_handler(handler)
    jumbo = _Pkt(400 * 1024)
    assert host.nic.receive(jumbo)
    assert host.nic.receive(jumbo)
    assert not host.nic.receive(jumbo)  # 1 MB MAC buffer full
    assert handler.drops and handler.drops[0] is jumbo


def test_nic_firmware_overhead_applied():
    sim = Simulator()
    host = Host(sim)
    handler = _CountingHandler(sim)
    host.nic.install_handler(handler)
    host.nic.receive(_Pkt(64))
    sim.run()
    assert sim.now >= host.config.nic.firmware_overhead


def test_on_nic_memory_allocation_bounds():
    sim = Simulator()
    cfg = HostConfig(nic=NicConfig(memory_size=4096))
    host = Host(sim, cfg)
    mem = host.nic.memory
    assert mem.allocate(4096)
    assert not mem.allocate(1)
    mem.free_bytes(2048)
    assert mem.allocate(2048)
    assert mem.used == 4096


def test_arm_core_loop_runs_periodically():
    sim = Simulator()
    host = Host(sim)
    ticks = []
    host.nic.arm.spawn_loop(lambda: ticks.append(sim.now), period=100)
    sim.run(until=1000)
    assert len(ticks) == 10


def test_arm_cores_exhaustion():
    sim = Simulator()
    cfg = HostConfig(nic=NicConfig(arm_cores=1))
    host = Host(sim, cfg)
    host.nic.arm.spawn_loop(lambda: None, period=10)
    with pytest.raises(RuntimeError):
        host.nic.arm.spawn_loop(lambda: None, period=10)


def test_host_paper_defaults():
    sim = Simulator()
    host = Host(sim)
    assert host.total_credits == 3072
    assert host.config.link_rate == pytest.approx(gbps(200))
    assert host.llc_miss_rate() == 0.0
