"""Focused tests for IIO back-pressure and the PCIe credit loop."""

import pytest

from repro.hw import DmaWrite, Host, HostConfig, NicConfig, PcieConfig
from repro.sim import Simulator


def test_iio_put_blocks_when_full_until_complete():
    sim = Simulator()
    cfg = HostConfig(nic=NicConfig(iio_capacity=2048))
    host = Host(sim, cfg)
    # Stall the memory controller by filling DRAM channels first? Simpler:
    # enqueue two entries directly; capacity 2048 admits only one 2048B.
    done = []

    def producer(sim):
        yield from host.iio.put(DmaWrite("a", 2048, ddio=True), 2048)
        done.append("a")
        yield from host.iio.put(DmaWrite("b", 2048, ddio=True), 2048)
        done.append("b")

    sim.process(producer(sim))
    sim.run(until=5)
    # 'a' admitted; 'b' must wait until memctrl completes 'a'.
    assert "a" in done
    sim.run()
    assert done == ["a", "b"]


def test_iio_fill_fraction():
    sim = Simulator()
    cfg = HostConfig(nic=NicConfig(iio_capacity=4096))
    host = Host(sim, cfg)

    def producer(sim):
        yield from host.iio.put(DmaWrite("a", 1024, ddio=True), 1024)

    sim.process(producer(sim))
    sim.run(until=0.5)
    assert host.iio.fill_fraction == pytest.approx(0.25)


def test_pcie_credits_cycle_through_memctrl():
    """Posted credits return only after the memory controller finishes."""
    sim = Simulator()
    cfg = HostConfig(pcie=PcieConfig(posted_credits=4096))
    host = Host(sim, cfg)
    start = host.pcie.credits_available

    def producer(sim):
        yield from host.nic.dma.write_to_host(DmaWrite("a", 4096, ddio=True))

    sim.process(producer(sim))
    sim.run(until=10)  # issued; in flight; credits held
    assert host.pcie.credits_available < start
    sim.run()
    assert host.pcie.credits_available == start


def test_pcie_utilization_reflects_traffic():
    sim = Simulator()
    host = Host(sim)
    assert host.pcie.utilization(0.0) == 0.0

    def producer(sim):
        for i in range(50):
            yield from host.nic.dma.write_to_host(
                DmaWrite(f"p{i}", 2048, ddio=True))

    sim.process(producer(sim))
    sim.run()
    assert host.pcie.utilization(sim.now) > 0.0
    assert host.pcie.bytes_written.value == 50 * 2048


def test_memctrl_delivery_order_preserved():
    """IIO is a FIFO: deliveries happen in DMA-issue order even though the
    in-flight PCIe latency is pipelined."""
    sim = Simulator()
    host = Host(sim)
    order = []

    def producer(sim):
        for i in range(10):
            write = DmaWrite(f"p{i}", 1024, ddio=True,
                             deliver=lambda t, i=i: order.append(i))
            yield from host.nic.dma.write_to_host(write)

    sim.process(producer(sim))
    sim.run()
    assert order == list(range(10))


def test_writeback_stalls_drain_under_thrash():
    """With the DDIO partition saturated, every insert evicts and the
    drain slows to the write-back bandwidth — the IIO backs up."""
    sim = Simulator()
    from repro.hw import CacheConfig
    host = Host(sim, HostConfig(cache=CacheConfig(size=64 * 1024)))

    def producer(sim):
        for i in range(200):
            yield from host.nic.dma.write_to_host(
                DmaWrite(f"p{i}", 2048, ddio=True))

    sim.process(producer(sim))
    sim.run(until=10_000)
    assert host.memctrl.writeback_bytes.value > 0
    assert host.iio.occupancy_gauge.max > 0


def test_on_nic_memory_write_read_bandwidth_shared():
    sim = Simulator()
    host = Host(sim)
    mem = host.nic.memory
    t0 = sim.now

    def worker(sim):
        # Exceed the bucket's burst so sustained bandwidth governs.
        for _ in range(8):
            yield from mem.write(64 * 1024)
        yield from mem.read(64 * 1024)

    sim.process(worker(sim))
    sim.run()
    # 9 x 64 KB through a shared bucket: everything beyond the initial
    # burst is paced at the configured bandwidth; the read adds latency.
    total = 9 * 64 * 1024
    expected = (total - 256 * 1024) / mem.config.memory_bandwidth
    assert sim.now - t0 >= expected
    assert mem.bytes_written.value == 8 * 64 * 1024
    assert mem.bytes_read.value == 64 * 1024
