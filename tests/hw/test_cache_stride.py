"""The 2 KB-stride alignment property of the set-associative LLC model.

Real DDIO receives into 2 KB-aligned mbufs: a 144 B packet occupies 3
cache lines of a 2 KB slot, so the cache's *set* utilisation is a small
fraction of its byte capacity. The set-associative model reproduces this
(and therefore holds far fewer small packets than the byte-accounted
fully-associative model) — the documented divergence in the cache-model
ablation.
"""

from repro.hw import CacheConfig, FullyAssociativeLLC, SetAssociativeLLC


def config():
    return CacheConfig(size=256 * 1024, ways=8, ddio_ways=4)


def test_small_packets_exhaust_sets_before_bytes():
    """With 2 KB-aligned 192 B inserts, the SA model evicts long before
    byte capacity is reached (alignment waste), while the FA model does
    not — quantifying why Eq. 1 counts buffers, not bytes."""
    cfg = config()
    sa, fa = SetAssociativeLLC(cfg), FullyAssociativeLLC(cfg)
    n = 600  # 600 x 192 B = 115 KB, under the 128 KB DDIO partition
    for i in range(n):
        sa.io_insert(i, 192)
        fa.io_insert(i, 192)
    sa_resident = sum(sa.is_resident(i) for i in range(n))
    fa_resident = sum(fa.is_resident(i) for i in range(n))
    assert fa_resident == n          # byte-accounted: everything fits
    assert sa_resident < n           # stride-accounted: sets overflow
    # Capacity in 2 KB-aligned small-buffer slots: only the sets covered
    # by the first 3 lines of each 32-line stride are usable.
    sets_used = cfg.sets * 3 // 32
    slot_capacity = sets_used * cfg.ddio_ways  # lines
    assert sa_resident <= slot_capacity


def test_full_buffers_use_all_sets():
    """At ~full 2 KB payloads the two models agree on capacity."""
    cfg = config()
    sa, fa = SetAssociativeLLC(cfg), FullyAssociativeLLC(cfg)
    n_fit = cfg.ddio_capacity // 2048
    for i in range(n_fit):
        sa.io_insert(i, 2048)
        fa.io_insert(i, 2048)
    assert all(fa.is_resident(i) for i in range(n_fit))
    assert all(sa.is_resident(i) for i in range(n_fit))
    # One more wraps both models into eviction.
    sa.io_insert("extra", 2048)
    fa.io_insert("extra", 2048)
    assert not fa.is_resident(0)
    assert not sa.is_resident(0)


def test_sa_eviction_victims_are_oldest_per_set():
    cfg = config()
    sa = SetAssociativeLLC(cfg)
    per_wrap = cfg.sets * cfg.line // 2048
    total = per_wrap * (cfg.ddio_ways + 1)
    for i in range(total):
        sa.io_insert(i, 2048)
    # The first wrap (oldest) is fully evicted; the last fully resident.
    assert all(not sa.is_resident(i) for i in range(per_wrap))
    assert all(sa.is_resident(i) for i in range(total - per_wrap, total))
