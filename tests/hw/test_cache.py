"""Unit tests for both LLC models and the DDIO partition behaviour."""

import pytest

from repro.hw import CacheConfig, FullyAssociativeLLC, SetAssociativeLLC, build_llc


def small_config(**kwargs):
    defaults = dict(size=64 * 1024, ways=8, ddio_ways=4, line=64)
    defaults.update(kwargs)
    return CacheConfig(**defaults)


# ---------------------------------------------------------------------------
# Config derived values
# ---------------------------------------------------------------------------

def test_paper_config_credit_math():
    cfg = CacheConfig()
    assert cfg.size == 12 * 1024 * 1024
    assert cfg.ddio_capacity == 6 * 1024 * 1024
    # Eq. (1): ~3000 credits with 2 KB buffers (paper reports 3000).
    assert cfg.ddio_capacity // 2048 == 3072


def test_sets_geometry():
    cfg = small_config()
    assert cfg.sets == 64 * 1024 // (64 * 8)


# ---------------------------------------------------------------------------
# FullyAssociativeLLC
# ---------------------------------------------------------------------------

def test_fa_insert_then_read_hits():
    llc = FullyAssociativeLLC(small_config())
    llc.io_insert("buf1", 2048)
    assert llc.cpu_read("buf1", 2048) == 1.0
    assert llc.stats.miss_rate == 0.0


def test_fa_read_unknown_misses():
    llc = FullyAssociativeLLC(small_config())
    assert llc.cpu_read("ghost", 2048) == 0.0
    assert llc.stats.miss_rate == 1.0


def test_fa_eviction_when_region_full():
    # ddio capacity = 32 KB -> 16 buffers of 2 KB.
    llc = FullyAssociativeLLC(small_config())
    for i in range(16):
        assert llc.io_insert(f"b{i}", 2048) == 0
    evicted = llc.io_insert("b16", 2048)
    assert evicted == 2048
    assert not llc.is_resident("b0")      # oldest evicted first
    assert llc.is_resident("b16")
    assert llc.cpu_read("b0", 2048) == 0.0


def test_fa_occupancy_accounting():
    llc = FullyAssociativeLLC(small_config())
    llc.io_insert("a", 2048)
    llc.io_insert("b", 1024)
    assert llc.occupancy == 3072
    llc.release("a")
    assert llc.occupancy == 1024
    llc.release("missing")  # no-op
    assert llc.occupancy == 1024


def test_fa_read_refreshes_lru():
    llc = FullyAssociativeLLC(small_config())
    for i in range(16):
        llc.io_insert(f"b{i}", 2048)
    llc.cpu_read("b0", 2048)  # refresh oldest
    llc.io_insert("b16", 2048)
    assert llc.is_resident("b0")
    assert not llc.is_resident("b1")  # b1 became the victim


def test_fa_reinsert_same_key_replaces():
    llc = FullyAssociativeLLC(small_config())
    llc.io_insert("a", 2048)
    llc.io_insert("a", 1024)
    assert llc.occupancy == 1024


def test_fa_flush():
    llc = FullyAssociativeLLC(small_config())
    llc.io_insert("a", 2048)
    llc.flush()
    assert llc.occupancy == 0
    assert not llc.is_resident("a")


def test_fa_insert_rejects_nonpositive():
    llc = FullyAssociativeLLC(small_config())
    with pytest.raises(ValueError):
        llc.io_insert("a", 0)


def test_fa_miss_rate_counts_lines():
    llc = FullyAssociativeLLC(small_config())
    llc.io_insert("hit", 1024)
    llc.cpu_read("hit", 1024)    # 16 lines hit
    llc.cpu_read("miss", 1024)   # 16 lines missed
    assert llc.stats.cpu_lines_read == 32
    assert llc.stats.miss_rate == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# SetAssociativeLLC
# ---------------------------------------------------------------------------

def test_sa_insert_then_read_hits():
    llc = SetAssociativeLLC(small_config())
    llc.io_insert("buf1", 2048)
    assert llc.cpu_read("buf1", 2048) == 1.0


def test_sa_read_unknown_misses():
    llc = SetAssociativeLLC(small_config())
    assert llc.cpu_read("ghost", 2048) == 0.0


def test_sa_way_pressure_evicts_older_buffers():
    """Buffers land in the same sets; exceeding ddio_ways evicts lines."""
    cfg = small_config()
    llc = SetAssociativeLLC(cfg)
    # Each 2 KB buffer covers 32 consecutive sets; the allocator packs them
    # so buffer i and buffer i + sets/32 share sets. ddio_ways=4 means the
    # 5th buffer hitting the same sets evicts the 1st's lines.
    buffers_per_wrap = cfg.sets * cfg.line // 2048
    total = buffers_per_wrap * (cfg.ddio_ways + 1)
    for i in range(total):
        llc.io_insert(f"b{i}", 2048)
    assert llc.cpu_read("b0", 2048) == 0.0           # fully evicted
    assert llc.cpu_read(f"b{total-1}", 2048) == 1.0  # newest resident


def test_sa_partial_residency_fraction():
    """Reading past the inserted size yields a fractional hit."""
    cfg = small_config()
    llc = SetAssociativeLLC(cfg)
    llc.io_insert("a", 1024)
    frac = llc.cpu_read("a", 2048)
    assert frac == pytest.approx(0.5)
    assert llc.stats.cpu_lines_hit == 16
    assert llc.stats.cpu_lines_missed == 16


def test_sa_release_clears_lines():
    llc = SetAssociativeLLC(small_config())
    llc.io_insert("a", 2048)
    llc.release("a")
    assert llc.occupancy == 0
    assert llc.cpu_read("a", 2048) == 0.0


def test_sa_occupancy_counts_lines():
    llc = SetAssociativeLLC(small_config())
    llc.io_insert("a", 2048)
    assert llc.occupancy == 2048


def test_sa_flush():
    llc = SetAssociativeLLC(small_config())
    llc.io_insert("a", 2048)
    llc.flush()
    assert llc.occupancy == 0


def test_sa_eviction_stats_recorded():
    cfg = small_config()
    llc = SetAssociativeLLC(cfg)
    buffers_per_wrap = cfg.sets * cfg.line // 2048
    for i in range(buffers_per_wrap * (cfg.ddio_ways + 1)):
        llc.io_insert(f"b{i}", 2048)
    assert llc.stats.io_lines_evicted > 0


# ---------------------------------------------------------------------------
# build_llc dispatch
# ---------------------------------------------------------------------------

def test_build_llc_selects_model():
    assert isinstance(build_llc(small_config()), FullyAssociativeLLC)
    assert isinstance(build_llc(small_config(set_associative=True)),
                      SetAssociativeLLC)


def test_models_agree_on_simple_workload():
    """Both models: fill to capacity -> all hits; 2x capacity -> ~50% misses."""
    for model_cls in (FullyAssociativeLLC, SetAssociativeLLC):
        llc = model_cls(small_config())
        n_fit = 32 * 1024 // 2048  # ddio capacity / buf
        for i in range(2 * n_fit):
            llc.io_insert(f"b{i}", 2048)
        hits = sum(llc.cpu_read(f"b{i}", 2048) for i in range(2 * n_fit))
        assert hits == pytest.approx(n_fit, rel=0.2), model_cls.__name__
