"""Tests for the DPDK and RDMA framework shims."""

import pytest

from repro.frameworks import (
    CompletionQueue,
    EthDev,
    Mempool,
    QpType,
    RdmaEndpoint,
)
from repro.hw import CacheConfig, HostConfig
from repro.io_arch import build_arch
from repro.net import Flow, FlowKind, SaturatingSource
from repro.net import Testbed as TB
from repro.sim.units import US


def build_bed(arch_name="baseline"):
    bed = TB(host_config=HostConfig(cache=CacheConfig(size=256 * 1024)),
             seed=5)
    arch = build_arch(arch_name, bed.host)
    bed.install_io_arch(arch)
    return bed, arch


def saturate(bed, flow, outstanding=16):
    SaturatingSource(bed.sim, bed.senders[flow.flow_id],
                     outstanding=outstanding).start()


# ---------------------------------------------------------------------------
# Mempool
# ---------------------------------------------------------------------------

def test_mempool_alloc_free_cycle():
    pool = Mempool("p", capacity=4)
    assert pool.alloc(3)
    assert pool.in_use == 3
    assert not pool.alloc(2)
    assert pool.alloc_failures.value == 1
    pool.free(3)
    assert pool.available == 4


def test_mempool_free_clamps_to_capacity():
    pool = Mempool("p", capacity=2)
    pool.free(10)
    assert pool.available == 2


def test_mempool_capacity_validated():
    with pytest.raises(ValueError):
        Mempool("p", capacity=0)


# ---------------------------------------------------------------------------
# EthDev
# ---------------------------------------------------------------------------

def test_ethdev_rx_burst_and_free_roundtrip():
    bed, arch = build_bed()
    dev = EthDev(arch, Mempool("m", capacity=128))
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=1000)
    bed.add_flow(flow)  # registers with arch
    saturate(bed, flow)
    bed.run(until=100 * US)

    def consumer(sim):
        records = yield from dev.rx_burst(flow, 16)
        return records

    records = []
    proc = bed.sim.process(consumer(bed.sim))
    while not proc.triggered:
        bed.sim.step()
    records = proc.value
    assert records
    assert dev.mempool.in_use == len(records)
    dev.free(records)
    assert dev.mempool.in_use == 0
    dev.tx_burst(len(records))
    assert dev.tx_packets.value == len(records)


def test_ethdev_rx_queue_setup_registers_flow():
    bed, arch = build_bed()
    dev = EthDev(arch)
    flow = Flow(FlowKind.CPU_INVOLVED, message_payload=1000)
    dev.rx_queue_setup(flow)
    assert flow.flow_id in arch.flows


# ---------------------------------------------------------------------------
# RDMA: CQ + endpoint reassembly
# ---------------------------------------------------------------------------

def test_cq_push_poll_fifo():
    bed, _ = build_bed()
    cq = CompletionQueue(bed.sim)
    cq.push("a")
    cq.push("b")
    assert cq.poll(1) == ["a"]
    assert cq.poll(8) == ["b"]
    assert cq.poll(8) == []


def test_cq_overflow_counted():
    bed, _ = build_bed()
    cq = CompletionQueue(bed.sim, depth=1)
    cq.push("a")
    cq.push("b")
    assert cq.overflows.value == 1


def test_cq_wait_blocks_until_completion():
    bed, _ = build_bed()
    cq = CompletionQueue(bed.sim)

    def waiter(sim):
        wc = yield from cq.wait()
        return wc, sim.now

    proc = bed.sim.process(waiter(bed.sim))
    bed.sim.schedule(500, lambda: cq.push("done"))
    bed.sim.run()
    assert proc.value == ("done", 500.0)


def test_endpoint_assembles_messages_into_completions():
    bed, arch = build_bed()
    cq = CompletionQueue(bed.sim)
    endpoint = RdmaEndpoint(arch, cq)
    flow = Flow(FlowKind.CPU_BYPASS, message_payload=1000,
                packets_per_message=4)
    bed.add_flow(flow)
    endpoint.create_qp(flow, QpType.RC)
    endpoint.start()
    saturate(bed, flow, outstanding=4)
    bed.run(until=150 * US)
    completions = cq.poll(64)
    assert completions
    for wc in completions:
        assert len(wc.records) == 4
        assert wc.byte_len == 4000
        assert wc.records[-1].packet.last_in_message
        seqs = [r.packet.seq for r in wc.records]
        assert seqs == sorted(seqs)
    assert endpoint.messages_completed.value >= len(completions)


def test_endpoint_destroy_qp_stops_service():
    bed, arch = build_bed()
    cq = CompletionQueue(bed.sim)
    endpoint = RdmaEndpoint(arch, cq)
    flow = Flow(FlowKind.CPU_BYPASS, message_payload=1000,
                packets_per_message=2)
    bed.add_flow(flow)
    qp = endpoint.create_qp(flow)
    assert flow.flow_id in endpoint.qps
    endpoint.destroy_qp(flow)
    assert flow.flow_id not in endpoint.qps
    qp.post_recv(8)
    assert qp.posted_recvs.value == 8
