"""Property tests (hypothesis) for the open-loop demand layer.

Invariants:

- **determinism** — the arrival timestamp sequence is a pure function of
  (seed, stream name, profile, parameters): two independently built
  registries yield identical prefixes, and consuming a prefix leaves the
  stream at a position determined only by the count (the ``--jobs`` /
  sharding contract of ``docs/WORKLOADS.md``);
- **shape** — arrivals are strictly positive, non-decreasing, and bounded
  by the horizon; rates respect the profile's declared peak;
- **admission conservation** — for any admit/shed interleaving,
  ``offered == admitted + shed`` holds exactly.
"""

from hypothesis import given, settings, strategies as st

from repro.core.admission import AdmissionController
from repro.demand import (DiurnalProfile, FlashCrowdProfile, ScaledProfile,
                          SteadyProfile, WindowsProfile, poisson_times,
                          profile_from_dict, session_times)
from repro.sim.rng import RngRegistry

profiles = st.one_of(
    st.builds(SteadyProfile,
              rate_mpps=st.floats(0.1, 64.0)),
    st.builds(DiurnalProfile,
              base_mpps=st.floats(0.5, 32.0),
              amplitude=st.floats(0.0, 0.95),
              period_us=st.floats(10.0, 400.0),
              phase_us=st.floats(0.0, 100.0)),
    st.builds(FlashCrowdProfile,
              base_mpps=st.floats(0.5, 16.0),
              peak_mpps=st.floats(16.0, 128.0),
              start_us=st.floats(0.0, 100.0),
              ramp_us=st.floats(1.0, 50.0),
              hold_us=st.floats(1.0, 100.0),
              decay_us=st.floats(1.0, 50.0)),
)


def _take(gen, n):
    out = []
    for t in gen:
        out.append(t)
        if len(out) == n:
            break
    return out


@given(profile=profiles, seed=st.integers(0, 2**31 - 1),
       n=st.integers(1, 200))
@settings(max_examples=60, deadline=None)
def test_poisson_arrivals_deterministic_across_registries(profile, seed, n):
    a = poisson_times(RngRegistry(seed).stream("demand-kv.0"), profile)
    b = poisson_times(RngRegistry(seed).stream("demand-kv.0"), profile)
    assert _take(a, n) == _take(b, n)


@given(profile=profiles, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_poisson_prefix_consumption_is_position_independent(profile, seed):
    """Consuming K arrivals then continuing equals taking K+M up front —
    lazy generation never looks ahead, so a source stopped mid-stream
    (shard boundary, measure end) has drawn exactly what it yielded."""
    whole = _take(poisson_times(RngRegistry(seed).stream("d"), profile), 50)
    split = poisson_times(RngRegistry(seed).stream("d"), profile)
    head = _take(split, 20)
    tail = _take(split, 30)
    assert head + tail == whole


@given(profile=profiles, seed=st.integers(0, 2**31 - 1),
       horizon_us=st.floats(10.0, 500.0))
@settings(max_examples=60, deadline=None)
def test_poisson_arrivals_positive_monotone_bounded(profile, seed,
                                                    horizon_us):
    horizon = horizon_us * 1000.0
    rng = RngRegistry(seed).stream("d")
    times = list(poisson_times(rng, profile, horizon=horizon))
    assert all(t > 0.0 for t in times)
    assert all(a <= b for a, b in zip(times, times[1:]))
    assert all(t < horizon for t in times)


@given(profile=profiles, seed=st.integers(0, 2**31 - 1),
       mean=st.floats(1.0, 40.0), shape=st.floats(1.05, 3.0),
       gap=st.floats(100.0, 5000.0))
@settings(max_examples=40, deadline=None)
def test_session_arrivals_deterministic_and_monotone(profile, seed, mean,
                                                     shape, gap):
    def stream():
        return session_times(RngRegistry(seed).stream("s"), profile,
                             mean_messages=mean, shape=shape,
                             intra_gap_ns=gap, horizon=200_000.0)
    a = list(stream())
    assert a == list(stream())
    assert all(t > 0.0 for t in a)
    assert all(x <= y for x, y in zip(a, a[1:]))
    assert all(t < 200_000.0 for t in a)


@given(profile=profiles, factor=st.floats(0.01, 4.0),
       t_us=st.floats(0.0, 1000.0))
@settings(max_examples=100, deadline=None)
def test_profile_rate_bounded_by_peak_and_scales(profile, factor, t_us):
    t = t_us * 1000.0
    assert 0.0 <= profile.rate(t) <= profile.peak() + 1e-12
    scaled = ScaledProfile(profile, factor)
    assert abs(scaled.rate(t) - profile.rate(t) * factor) < 1e-12


@given(profile=profiles)
@settings(max_examples=60, deadline=None)
def test_profile_dict_round_trip(profile):
    data = profile.to_dict()
    again = profile_from_dict(data)
    assert again.to_dict() == data
    for t in (0.0, 5_000.0, 123_456.0, 900_000.0):
        assert abs(again.rate(t) - profile.rate(t)) < 1e-12


def test_windows_profile_rate_is_piecewise():
    profile = WindowsProfile([(0.0, 50.0, 4.0), (100.0, 150.0, 8.0)])
    assert profile.rate(25_000.0) == 4.0 * 1e-3
    assert profile.rate(75_000.0) == 0.0
    assert profile.rate(125_000.0) == 8.0 * 1e-3
    assert profile.peak() == 8.0 * 1e-3


# ---------------------------------------------------------------------------
# Admission conservation
# ---------------------------------------------------------------------------

admission_ops = st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 200_000)),
    min_size=1, max_size=400)


@given(ring_limit=st.integers(1, 128),
       slow_limit=st.integers(1, 100_000), ops=admission_ops)
@settings(max_examples=150, deadline=None)
def test_admission_conserves_offered(ring_limit, slow_limit, ops):
    ctl = AdmissionController(ring_limit=ring_limit,
                              slow_bytes_limit=slow_limit)
    admitted = shed = 0
    for depth, slow_bytes in ops:
        if ctl.admit(depth, slow_bytes):
            admitted += 1
            assert depth < ring_limit and slow_bytes < slow_limit
        else:
            shed += 1
            assert depth >= ring_limit or slow_bytes >= slow_limit
    assert ctl.offered.value == len(ops)
    assert ctl.admitted.value == admitted
    assert ctl.shed.value == shed
    assert ctl.offered.value == ctl.admitted.value + ctl.shed.value
