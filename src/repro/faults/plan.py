"""Declarative fault plans: what breaks, where, when, and how badly.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries. Each spec
names an injection *site* (an existing simulator layer), a fault *kind*
the site supports, an onset time, a duration, a magnitude, and — for
stochastic faults — the name of the :class:`~repro.sim.rng.RngRegistry`
stream its draws come from. The plan itself is pure data: it is JSON
round-trippable, so it can ride inside a runner point's params (and its
cache key) and be reconstructed bit-identically inside a pool worker.

Compilation into live injector processes is :mod:`repro.faults.injectors`'
job; this module never touches the simulator.

Determinism contract (see ``docs/FAULTS.md``): every stochastic fault
draws from a named stream of the testbed's seeded registry, so a plan plus
a ``--seed`` fully determines every injected event — independent of
``--jobs`` scheduling, wall clock, or process layout.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["FAULT_SITES", "CHANNEL_SITE", "FaultSpec", "FaultPlan"]

#: site -> fault kinds it supports.
FAULT_SITES: Dict[str, Tuple[str, ...]] = {  # repro: noqa=D106 -- registry, never mutated
    "net.link": ("loss", "burst_loss", "corrupt"),
    "net.channel": ("loss", "latency"),
    "hw.pcie": ("stall", "latency"),
    "hw.nic": ("dma_stall", "descriptor_drop"),
    "hw.cache": ("ddio_reconfig",),
    "hw.cpu": ("slowdown",),
    "apps": ("crash_restart",),
}

#: The one site injected at the shard coordinator's channel layer
#: (:mod:`repro.shard.channel`) rather than compiled into a per-host
#: :class:`~repro.faults.injectors.FaultController`. Under ``--shards 1``
#: there are no cut links, so these specs are declared no-ops.
CHANNEL_SITE = "net.channel"


def _canonical_value(value: Any) -> Any:
    """JSON-stable representation (floats stay floats; ints stay ints)."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return value
    raise TypeError(f"fault param values must be scalars, got {value!r}")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: site + kind + window + magnitude (+ optional filters).

    ``magnitude`` is kind-specific: a probability for ``loss`` /
    ``burst_loss`` / ``corrupt`` / ``descriptor_drop``, extra nanoseconds
    for ``latency``, the residual-bandwidth fraction for ``stall``, the
    remaining DDIO fraction for ``ddio_reconfig``, and the execution-time
    multiplier for ``slowdown``. ``flow`` filters the fault to one flow by
    *name* where the site supports it. ``params`` carries kind-specific
    extras as a sorted tuple of (key, value) pairs so specs stay hashable.
    """

    site: str
    kind: str
    start: float = 0.0
    duration: float = math.inf
    magnitude: float = 1.0
    flow: Optional[str] = None
    #: Override for the RNG stream name (default: ``faults.<i>.<site>.<kind>``).
    stream: str = ""
    params: Tuple[Tuple[str, Any], ...] = field(default_factory=tuple)
    #: Target host for multi-host fabrics (:mod:`repro.topo`): the fault
    #: is injected at that server's endpoint. ``None`` — the only value
    #: meaningful on the single-host ``Testbed`` — targets the fabric's
    #: first (primary) server and keeps the canonical JSON byte-identical
    #: to pre-multi-host plans, so historical cache keys never move.
    host: Optional[str] = None

    def __post_init__(self):
        kinds = FAULT_SITES.get(self.site)
        if kinds is None:
            raise ValueError(f"unknown fault site {self.site!r}; "
                             f"choose from {sorted(FAULT_SITES)}")
        if self.kind not in kinds:
            raise ValueError(f"site {self.site!r} supports {kinds}, "
                             f"not {self.kind!r}")
        if self.start < 0:
            raise ValueError("fault start must be >= 0")
        if not self.duration > 0:
            raise ValueError("fault duration must be positive")
        if self.magnitude < 0:
            raise ValueError("fault magnitude must be >= 0")
        if self.site == CHANNEL_SITE:
            # Channel faults address cut links, which belong to no host
            # and carry whole messages, not flow-tagged packets.
            if self.host is not None:
                raise ValueError(
                    "net.channel faults target shard-boundary links, "
                    "not hosts; drop the host qualifier")
            if self.flow is not None:
                raise ValueError(
                    "net.channel faults apply per channel message and "
                    "do not support flow filters")
            if not self.finite:
                raise ValueError(
                    "net.channel faults need a finite duration")
        params = self.params
        if isinstance(params, Mapping):
            params = params.items()
        normalised = tuple(sorted(
            (str(k), _canonical_value(v)) for k, v in params))
        object.__setattr__(self, "params", normalised)

    # ------------------------------------------------------------------
    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def finite(self) -> bool:
        return math.isfinite(self.duration)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (an unbounded duration becomes ``None``).

        ``host`` is emitted only when set: single-host plans keep their
        historical serialisation (and thus ``FaultPlan.canonical()``
        output and every derived cache key) byte for byte.
        """
        data = {
            "site": self.site,
            "kind": self.kind,
            "start": self.start,
            "duration": self.duration if self.finite else None,
            "magnitude": self.magnitude,
            "flow": self.flow,
            "stream": self.stream,
            "params": {k: v for k, v in self.params},
        }
        if self.host is not None:
            data["host"] = self.host
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        duration = data.get("duration")
        return cls(site=data["site"], kind=data["kind"],
                   start=float(data.get("start", 0.0)),
                   duration=math.inf if duration is None else float(duration),
                   magnitude=float(data.get("magnitude", 1.0)),
                   flow=data.get("flow"),
                   stream=data.get("stream", ""),
                   params=tuple((data.get("params") or {}).items()),
                   host=data.get("host"))


class FaultPlan:
    """An ordered, immutable collection of :class:`FaultSpec` entries.

    Empty plans are falsy; installing one is a guaranteed no-op (the
    golden-digest contract: fault seams add zero behaviour when unused).
    """

    __slots__ = ("specs",)

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __eq__(self, other) -> bool:
        return isinstance(other, FaultPlan) and self.specs == other.specs

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.specs)!r})"

    # ------------------------------------------------------------------
    def split_channel(self) -> Tuple[Tuple[FaultSpec, ...], "FaultPlan"]:
        """``(channel specs, host-site plan)`` — ``net.channel`` specs go
        to the shard coordinator's channel layer
        (:mod:`repro.shard.channel`); everything else compiles into
        per-host controllers via :meth:`split_by_host`. Spec order is
        preserved on both sides (it names the RNG streams)."""
        channel = tuple(s for s in self.specs if s.site == CHANNEL_SITE)
        hosts = FaultPlan(s for s in self.specs if s.site != CHANNEL_SITE)
        return channel, hosts

    def split_by_host(self, primary: str) -> Dict[str, "FaultPlan"]:
        """Partition the plan per target host for a multi-host fabric.

        Specs without a ``host`` qualifier go to ``primary`` (the
        fabric's first server), preserving single-host semantics. Hosts
        appear in first-mention order; empty hosts are absent.
        """
        buckets: Dict[str, List[FaultSpec]] = {}
        for spec in self.specs:
            buckets.setdefault(spec.host or primary, []).append(spec)
        return {host: FaultPlan(specs) for host, specs in buckets.items()}

    # ------------------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, Any]]:
        return [spec.to_dict() for spec in self.specs]

    @classmethod
    def from_dicts(cls, dicts: Iterable[Mapping[str, Any]]) -> "FaultPlan":
        return cls(FaultSpec.from_dict(d) for d in dicts)

    def canonical(self) -> str:
        """Deterministic compact JSON — the runner's ``faults=`` tag, so a
        cached healthy result can never be served for a faulted run."""
        return json.dumps(self.to_dicts(), sort_keys=True,
                          separators=(",", ":"))

    def to_json(self) -> str:
        return self.canonical()

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dicts(json.loads(text))
