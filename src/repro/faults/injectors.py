"""Compile a :class:`~repro.faults.plan.FaultPlan` into injector processes.

Each spec becomes one *window process*: sleep until onset, switch the
fault on through a small seam on the target layer, sleep for the duration,
switch it off and restore the nominal configuration. The seams are
attributes the layers expose for exactly this purpose and that are
float-identity-preserving when unused (``None`` hooks, ``+ 0.0`` /
``* 1.0`` terms), so an empty or never-armed plan leaves golden digests
byte-identical.

All stochastic decisions draw from named streams of the testbed's seeded
``RngRegistry`` (``faults.<index>.<site>.<kind>`` unless the spec names
its own stream), which is what makes chaos runs bit-reproducible across
``--seed`` and ``--jobs``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..sim.stats import Counter
from .plan import FaultSpec

__all__ = ["FaultController", "install_plan"]

_Handler = Callable[["FaultController", "FaultSpec", int],
                    Tuple[Callable[[], None], Callable[[], None]]]

#: (site, kind) -> handler factory.
_HANDLERS: Dict[Tuple[str, str], _Handler] = {}  # repro: noqa=D106 -- registry, populated at import only


def _handler(site: str, kind: str):
    def register(fn: _Handler) -> _Handler:
        _HANDLERS[(site, kind)] = fn
        return fn
    return register


def _chain_hook(target, attr: str, hook):
    """Install ``hook`` on ``target.attr``, chaining any existing hook
    (first non-None verdict wins). Returns (on, off) closures; ``off``
    restores exactly the previous hook."""
    saved = []

    def on() -> None:
        prev = getattr(target, attr)
        saved.append(prev)
        if prev is None:
            setattr(target, attr, hook)
        else:
            def chained(arg):
                verdict = hook(arg)
                return verdict if verdict else prev(arg)
            setattr(target, attr, chained)

    def off() -> None:
        setattr(target, attr, saved.pop())

    return on, off


class FaultController:
    """Arms one window process per spec of a plan against a testbed."""

    def __init__(self, testbed, plan, scenario=None):
        self.testbed = testbed
        self.sim = testbed.sim
        self.plan = plan
        #: The owning :class:`~repro.workloads.scenarios.Scenario`, needed
        #: only by ``apps`` faults (crash/restart of a worker).
        self.scenario = scenario
        self.windows_opened = Counter("faults.windows")
        self._procs = []
        self._armed = False

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Spawn the window processes. A second call is an error; an empty
        plan spawns nothing (zero behaviour, zero events)."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for index, spec in enumerate(self.plan):
            factory = _HANDLERS.get((spec.site, spec.kind))
            if factory is None:
                raise ValueError(
                    f"no injector for site={spec.site!r} kind={spec.kind!r}")
            on, off = factory(self, spec, index)
            self._procs.append(self.sim.process(
                self._window(spec, on, off),
                name=f"fault-{index}-{spec.site}.{spec.kind}"))

    def _window(self, spec, on, off):
        if spec.start > 0:
            yield spec.start
        on()
        self.windows_opened.add(1)
        if spec.finite:
            yield spec.duration
            off()

    # ------------------------------------------------------------------
    def stream(self, spec, index: int):
        name = spec.stream or f"faults.{index}.{spec.site}.{spec.kind}"
        return self.testbed.rng.stream(name)

    def flow_id_for(self, name: Optional[str]) -> Optional[int]:
        """Resolve a spec's flow-name filter at fault-onset time (the flow
        must exist by then). None = fault applies to every flow."""
        if name is None:
            return None
        for flow in self.testbed.flows:
            if flow.name == name:
                return flow.flow_id
        raise ValueError(f"fault spec references unknown flow {name!r}")


def install_plan(testbed, plan, scenario=None) -> Optional[FaultController]:
    """Convenience: build and arm a controller; None for an empty plan."""
    if not plan:
        return None
    controller = FaultController(testbed, plan, scenario=scenario)
    controller.arm()
    return controller


# ----------------------------------------------------------------------
# net.link — packet loss / burst loss / corruption at the switch egress
# ----------------------------------------------------------------------
def _link_verdict(controller: FaultController, spec: FaultSpec,
                  index: int,
                  drop_kind: str):
    rng = controller.stream(spec, index)
    flow_name = spec.flow
    p = spec.magnitude

    def verdict(packet) -> Optional[str]:
        if flow_name is not None and packet.flow.name != flow_name:
            return None
        return drop_kind if rng.random() < p else None

    return verdict


@_handler("net.link", "loss")
def _link_loss(controller: FaultController, spec: FaultSpec,
               index: int):
    return _chain_hook(controller.testbed.port, "fault",
                       _link_verdict(controller, spec, index, "loss"))


@_handler("net.link", "corrupt")
def _link_corrupt(controller: FaultController, spec: FaultSpec,
                  index: int):
    # A corrupted frame fails its FCS and is dropped at the egress — same
    # observable effect as loss, but attributed distinctly in traces.
    return _chain_hook(controller.testbed.port, "fault",
                       _link_verdict(controller, spec, index, "corrupt"))


@_handler("net.link", "burst_loss")
def _link_burst_loss(controller: FaultController, spec: FaultSpec,
                     index: int):
    """Gilbert–Elliott two-state loss: rare transitions into a bad state
    where loss probability jumps to ``magnitude`` (defaults: p(G->B)=0.05,
    p(B->G)=0.2, good-state loss 0)."""
    rng = controller.stream(spec, index)
    flow_name = spec.flow
    p_gb = spec.param("p_good_bad", 0.05)
    p_bg = spec.param("p_bad_good", 0.2)
    good_loss = spec.param("good_loss", 0.0)
    bad_loss = spec.magnitude
    bad = [False]

    def verdict(packet) -> Optional[str]:
        if flow_name is not None and packet.flow.name != flow_name:
            return None
        if bad[0]:
            if rng.random() < p_bg:
                bad[0] = False
        elif rng.random() < p_gb:
            bad[0] = True
        p = bad_loss if bad[0] else good_loss
        return "burst_loss" if p > 0 and rng.random() < p else None

    return _chain_hook(controller.testbed.port, "fault", verdict)


# ----------------------------------------------------------------------
# hw.pcie — link retrain: stall windows and latency spikes
# ----------------------------------------------------------------------
@_handler("hw.pcie", "stall")
def _pcie_stall(controller: FaultController, spec: FaultSpec,
                index: int):
    """Collapse wire bandwidth to ``magnitude`` of nominal (0 = full stall,
    clamped to a crawl so token accounting stays finite)."""
    pcie = controller.testbed.host.pcie
    nominal = pcie.config.bandwidth
    stalled = max(nominal * spec.magnitude, nominal * 1e-6)

    def on() -> None:
        pcie.set_wire_rate(stalled)

    def off() -> None:
        pcie.set_wire_rate(nominal)

    return on, off


@_handler("hw.pcie", "latency")
def _pcie_latency(controller: FaultController, spec: FaultSpec,
                  index: int):
    """Add ``magnitude`` ns to every transaction's in-flight latency.
    Additive so overlapping windows compose and restore exactly."""
    pcie = controller.testbed.host.pcie
    extra = spec.magnitude

    def on() -> None:
        pcie.extra_latency += extra

    def off() -> None:
        pcie.extra_latency -= extra

    return on, off


# ----------------------------------------------------------------------
# hw.nic — DMA-engine stalls and descriptor drops
# ----------------------------------------------------------------------
@_handler("hw.nic", "dma_stall")
def _nic_dma_stall(controller: FaultController, spec: FaultSpec,
                   index: int):
    dma = controller.testbed.host.nic.dma
    sim = controller.sim
    if not spec.finite:
        raise ValueError("hw.nic dma_stall needs a finite duration")

    def on() -> None:
        dma.stall_until = max(dma.stall_until, sim.now + spec.duration)

    def off() -> None:
        pass  # the stall window is time-based; nothing to restore

    return on, off


@_handler("hw.nic", "descriptor_drop")
def _nic_descriptor_drop(controller: FaultController, spec: FaultSpec,
                         index: int):
    """Silently lose DMA writes with probability ``magnitude`` — the
    credit-loss scenario: CEIO consumes the credit and counts the packet
    issued, but delivery never happens."""
    dma = controller.testbed.host.nic.dma
    rng = controller.stream(spec, index)
    target = [None]

    def filt(write) -> bool:
        if target[0] is not None and write.flow_id != target[0]:
            return False
        return rng.random() < spec.magnitude

    on, off = _chain_hook(dma, "drop_filter", filt)

    def on_resolved() -> None:
        target[0] = controller.flow_id_for(spec.flow)
        on()

    return on_resolved, off


# ----------------------------------------------------------------------
# hw.cache — runtime DDIO reconfiguration
# ----------------------------------------------------------------------
@_handler("hw.cache", "ddio_reconfig")
def _cache_ddio_reconfig(controller: FaultController, spec: FaultSpec,
                         index: int):
    """Shrink the DDIO partition to ``magnitude`` of nominal (capacity for
    the fully-associative model, ways for the set-associative one),
    evicting whatever no longer fits; restore on window close."""
    llc = controller.testbed.host.llc
    if hasattr(llc, "set_ddio_capacity"):
        nominal = llc.capacity

        def on() -> None:
            llc.set_ddio_capacity(int(nominal * spec.magnitude))

        def off() -> None:
            llc.set_ddio_capacity(nominal)
    else:
        nominal_ways = llc.ddio_ways

        def on() -> None:
            llc.set_ddio_ways(
                max(1, int(round(nominal_ways * spec.magnitude))))

        def off() -> None:
            llc.set_ddio_ways(nominal_ways)

    return on, off


# ----------------------------------------------------------------------
# hw.cpu — core preemption / slowdown windows
# ----------------------------------------------------------------------
@_handler("hw.cpu", "slowdown")
def _cpu_slowdown(controller: FaultController, spec: FaultSpec,
                  index: int):
    """Multiply execution time on the targeted core (param ``core``; all
    cores when absent) by ``magnitude`` — e.g. 4.0 models a core losing
    3/4 of its cycles to a preempting tenant."""
    cpu = controller.testbed.host.cpu
    core_idx = spec.param("core")
    cores = (cpu.cores if core_idx is None
             else [cpu.cores[int(core_idx)]])
    saved = []

    def on() -> None:
        for core in cores:
            saved.append(core.slowdown)
            core.slowdown = core.slowdown * spec.magnitude

    def off() -> None:
        for core in reversed(cores):
            core.slowdown = saved.pop()

    return on, off


# ----------------------------------------------------------------------
# apps — crash/restart of a worker
# ----------------------------------------------------------------------
@_handler("apps", "crash_restart")
def _apps_crash_restart(controller: FaultController, spec: FaultSpec,
                        index: int):
    """Kill one CPU-involved worker at onset (its flow is unregistered —
    the quiesce path) and restart it under the same name when the window
    closes. Param ``worker`` picks the victim by position (default 0);
    ``flow`` picks it by name."""
    scenario = controller.scenario
    if scenario is None:
        raise ValueError("apps.crash_restart needs a Scenario-owned plan")
    crashed = []

    def on() -> None:
        index_ = int(spec.param("worker", 0))
        if spec.flow is not None:
            names = [entry[0].name for entry in scenario.involved]
            index_ = names.index(spec.flow)
        name = scenario.crash_involved_flow(index_)
        crashed.append(name)

    def off() -> None:
        name = crashed.pop()
        if name is not None:
            scenario.restart_involved_flow(name)

    return on, off
