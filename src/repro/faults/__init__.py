"""Deterministic fault injection for the CEIO testbed.

Declare *what* breaks with :class:`FaultPlan` / :class:`FaultSpec`
(:mod:`repro.faults.plan`), compile it into live injector processes with
:class:`FaultController` (:mod:`repro.faults.injectors`). See
``docs/FAULTS.md`` for the schema, the injection sites, the CEIO recovery
mechanisms they exercise, and the determinism contract.
"""

from .injectors import FaultController, install_plan
from .plan import FAULT_SITES, FaultPlan, FaultSpec

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "FaultController",
    "install_plan",
]
