"""Scenario builders reproducing the paper's evaluation setups (§2.3, §6).

A :class:`Scenario` wires a testbed, one I/O architecture, eRPC/KV servers
for CPU-involved flows, LineFS servers for CPU-bypass flows, and
saturating clients — then runs warm-up + measurement windows. Dynamic
behaviours (flow replacement, bursts) are expressed as per-phase actions.

Experiments run on a *scaled* host by default (LLC divided by
``scale``): every capacity relationship of the paper's testbed is
preserved (baseline rings exceed the DDIO partition, ShRing's shared ring
stays below it, CEIO's credit pool equals it) while steady state arrives
``scale``-times sooner — essential for a packet-level simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..apps.erpc import ErpcConfig, ErpcServer
from ..apps.kvstore import KvStore
from ..apps.linefs import LineFsConfig, LineFsServer
from ..audit import Reconciler, build_ledger, record_report
from ..core import CeioConfig
from ..faults import FaultController, FaultPlan
from ..hw import CacheConfig, CpuConfig, HostConfig
from ..io_arch import build_arch
from ..io_arch.shring import ShringConfig
from ..net import Flow, FlowKind, OpenLoopSource, SaturatingSource, Testbed
from ..sim.units import MIB, US
from .measure import Measurement, MeasurementWindow

__all__ = ["ScenarioConfig", "Scenario", "scaled_host_config",
           "shring_entries_for"]


def scaled_host_config(scale: int = 4, set_associative: bool = False,
                       io_buf_size: int = 2048,
                       cores: Optional[int] = None) -> HostConfig:
    """The paper's testbed with the LLC divided by ``scale``.

    Only the cache shrinks: link, PCIe, DRAM, and ring sizes keep their
    real values, so the *pressure relationships* (rings vs DDIO capacity,
    shared ring vs DDIO capacity, credits vs DDIO capacity) are identical
    to the full-size testbed while transients are ``scale`` x shorter.
    ``cores`` widens the receiver's core pool beyond the testbed's 16
    (wide-fan-in scenarios dedicate one eRPC core per incoming flow);
    ``None`` keeps the default.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    cache = CacheConfig(size=12 * MIB // scale,
                        set_associative=set_associative)
    config = HostConfig(cache=cache, io_buf_size=io_buf_size)
    if cores is not None:
        config.cpu = CpuConfig(cores=cores)
    return config


def shring_entries_for(host_config: HostConfig) -> int:
    """ShRing's ring size rule from the paper's eval: 4096 entries under a
    12 MB LLC, i.e. two thirds of LLC-capacity-in-buffers."""
    return (host_config.cache.size // host_config.io_buf_size) * 2 // 3


@dataclass
class ScenarioConfig:
    arch: str = "ceio"
    #: LLC scale-down factor (see :func:`scaled_host_config`).
    scale: int = 4
    #: Payload of CPU-involved (KV/echo) request packets.
    payload: int = 144
    #: eRPC transport: "dpdk" or "rdma".
    transport: str = "dpdk"
    n_involved: int = 8
    n_bypass: int = 0
    #: Packets per LineFS chunk (chunk bytes = chunk_packets * payload).
    chunk_packets: int = 32
    bypass_payload: int = 1024
    #: Closed-loop outstanding messages per client thread.
    outstanding: int = 96
    #: If set, CPU-involved clients are *open-loop* at this aggregate
    #: offered load (Mpps across all involved flows) instead of
    #: closed-loop saturating — the right methodology for comparing
    #: latency across architectures at identical demand.
    open_loop_mpps: Optional[float] = None
    warmup: float = 400 * US
    duration: float = 600 * US
    seed: int = 0
    set_associative_cache: bool = False
    io_buf_size: int = 2048
    #: Extra per-request CPU cycles charged by the RPC handler (models
    #: heavier application logic; Table 2's echo-with-full-stack setup).
    app_extra_cycles: float = 0.0
    ceio: Optional[CeioConfig] = None
    linefs: Optional[LineFsConfig] = None
    host_config: Optional[HostConfig] = None
    #: Fault plan armed at build time (:mod:`repro.faults`); None/empty =
    #: the healthy testbed, bit-identical to a config without the field.
    faults: Optional[FaultPlan] = None


class Scenario:
    """One built testbed + applications, ready to run and measure."""

    def __init__(self, config: ScenarioConfig):
        self.config = config
        host_config = config.host_config or scaled_host_config(
            config.scale, config.set_associative_cache, config.io_buf_size)
        self.testbed = Testbed(host_config=host_config, seed=config.seed)
        self.arch = self._build_arch(host_config)
        self.testbed.install_io_arch(self.arch)
        self.kv = KvStore(seed=config.seed)
        self.involved: List[Tuple[Flow, ErpcServer, SaturatingSource]] = []
        self.bypass: List[Tuple[Flow, LineFsServer, SaturatingSource]] = []
        self.fault_controller: Optional[FaultController] = None
        self.reconciler: Optional[Reconciler] = None
        self._built = False

    def _build_arch(self, host_config: HostConfig):
        cfg = self.config
        if cfg.arch == "shring":
            return build_arch("shring", self.testbed.host,
                              config=ShringConfig(
                                  ring_entries=shring_entries_for(host_config)))
        if cfg.arch == "ceio" and cfg.ceio is not None:
            return build_arch("ceio", self.testbed.host, config=cfg.ceio)
        return build_arch(cfg.arch, self.testbed.host)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self) -> "Scenario":
        cfg = self.config
        for i in range(cfg.n_involved):
            self.add_involved_flow(f"kv{i}")
        for i in range(cfg.n_bypass):
            self.add_bypass_flow(f"dfs{i}")
        if cfg.faults:
            self.fault_controller = FaultController(
                self.testbed, cfg.faults, scenario=self)
            self.fault_controller.arm()
        self.reconciler = Reconciler(build_ledger(self.testbed, self.arch))
        self._built = True
        return self

    def add_involved_flow(self, name: str,
                          outstanding: Optional[int] = None
                          ) -> Tuple[Flow, ErpcServer, SaturatingSource]:
        cfg = self.config
        flow = Flow(FlowKind.CPU_INVOLVED, name=name,
                    message_payload=cfg.payload, packets_per_message=1)
        # late_ok: the crash/restart fault path re-registers mid-window by
        # design; add_flow announces the flow to any open window.
        sender = self.testbed.add_flow(flow, late_ok=True)
        core = self.testbed.host.cpu.allocate()
        erpc_config = ErpcConfig(transport=cfg.transport)
        erpc_config.rpc_overhead_cycles += cfg.app_extra_cycles
        server = ErpcServer(self.arch, flow, core, self.kv.handle,
                            config=erpc_config)
        server.start()
        if cfg.open_loop_mpps is not None:
            per_flow_rate = cfg.open_loop_mpps * 1e-3 / max(1, cfg.n_involved)
            source = OpenLoopSource(
                self.testbed.sim, sender, rate_msgs_per_ns=per_flow_rate,
                rng=self.testbed.rng.stream(f"openloop-{name}"))  # repro: noqa=D109 -- per-tenant stream; name comes from the validated scenario spec key
        else:
            source = SaturatingSource(
                self.testbed.sim, sender,
                outstanding=cfg.outstanding if outstanding is None
                else outstanding)
        source.start(delay=self._stagger())
        entry = (flow, server, source)
        self.involved.append(entry)
        return entry

    def _stagger(self) -> float:
        """Client threads come up a few microseconds apart, not in lockstep."""
        rng = self.testbed.rng.stream("client-stagger")  # repro: noqa=D109 -- shares the literal with TopoScenario by design: mutually exclusive builders, same draw sequence on the legacy testbed
        return rng.uniform(0, 20_000.0)

    def add_bypass_flow(self, name: str
                        ) -> Tuple[Flow, LineFsServer, SaturatingSource]:
        cfg = self.config
        flow = Flow(FlowKind.CPU_BYPASS, name=name,
                    message_payload=cfg.bypass_payload,
                    packets_per_message=cfg.chunk_packets)
        sender = self.testbed.add_flow(flow, late_ok=True)
        core = self.testbed.host.cpu.allocate()
        server = LineFsServer(self.arch, core, config=cfg.linefs)
        server.attach_flow(flow)
        server.start()
        source = SaturatingSource(self.testbed.sim, sender,
                                  outstanding=max(4, cfg.outstanding // 12))
        source.start(delay=self._stagger())
        entry = (flow, server, source)
        self.bypass.append(entry)
        return entry

    def remove_involved_flow(self) -> Optional[Flow]:
        """Stop the most recent CPU-involved flow and free its core."""
        if not self.involved:
            return None
        flow, server, source = self.involved.pop()
        source.stop()
        server.stop()
        self.testbed.host.cpu.release(server.core)
        return flow

    def crash_involved_flow(self, index: int = 0) -> Optional[str]:
        """Fault action (repro.faults apps "crash_restart"): kill the
        ``index``-th CPU-involved worker outright.

        Unlike :meth:`remove_involved_flow` — which models a flow going
        quiet but staying registered — a crash tears the flow all the way
        down: the I/O architecture quiesces it (drains interrupted,
        credits and on-NIC buffers reclaimed), the sender is dropped so
        in-flight retransmission state dies with the app, and the core is
        freed. Returns the flow's name for :meth:`restart_involved_flow`.
        """
        if not self.involved:
            return None
        index %= len(self.involved)
        flow, server, source = self.involved.pop(index)
        source.stop()
        server.stop()
        self.testbed.host.cpu.release(server.core)
        self.arch.unregister_flow(flow)
        self.testbed.senders.pop(flow.flow_id, None)
        return flow.name

    def restart_involved_flow(self, name: str
                              ) -> Tuple[Flow, ErpcServer, SaturatingSource]:
        """Bring a crashed worker back under the same name. The flow
        re-registers from scratch (fresh flow id, fresh credit account,
        fresh steering rule) — the §5 re-registration path."""
        return self.add_involved_flow(name)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    #: Interval between mid-run conservation barriers under
    #: ``REPRO_SIM_DEBUG=1``, ns.
    AUDIT_BARRIER_NS = 50 * US

    def run_measure(self, warmup: Optional[float] = None,
                    duration: Optional[float] = None) -> Measurement:
        """Warm up, then measure one steady-state window.

        Every window ends with a full cross-layer reconciliation: the
        report is attached to the measurement and queued for the runner's
        audit collector. Under ``REPRO_SIM_DEBUG=1`` the run additionally
        checks the barrier-safe accounts every :attr:`AUDIT_BARRIER_NS`.
        """
        cfg = self.config
        if not self._built:
            self.build()
        sim = self.testbed.sim
        self._run(sim.now + (cfg.warmup if warmup is None else warmup))
        window = MeasurementWindow(self.testbed, self.arch)
        self._run(sim.now + (cfg.duration if duration is None else duration))
        measurement = window.finish()
        measurement.extras.update(self._arch_extras())
        if self.reconciler is not None:
            report = self.reconciler.check(now=sim.now)
            measurement.audit = report.to_dict()
            record_report(report)
        return measurement

    def _run(self, until: float) -> None:
        """Advance the simulation, reconciling at periodic barriers when
        the debug sanitizer is on.

        The barrier checks run from *outside* the event loop — between
        ``sim.run()`` chunks, never as an injected process — so debug mode
        keeps its contract of changing no results, only adding checks.
        """
        sim = self.testbed.sim
        if self.reconciler is None or not sim.debug:
            sim.run(until=until)
            return
        while True:
            step_until = min(until, sim.now + self.AUDIT_BARRIER_NS)
            sim.run(until=step_until)
            report = self.reconciler.check(now=sim.now, barrier_only=True)
            if not report.ok:
                record_report(report)
            if step_until >= until:
                return

    def run_phases(self, actions: List[Callable[["Scenario"], None]],
                   phase_warmup: Optional[float] = None,
                   phase_duration: Optional[float] = None
                   ) -> List[Measurement]:
        """Phase 0 runs as built; each action mutates the scenario and a new
        warm-up + window follows (the Figure 4 / Figure 10 time axis)."""
        results = [self.run_measure(phase_warmup, phase_duration)]
        for action in actions:
            action(self)
            results.append(self.run_measure(phase_warmup, phase_duration))
        return results

    def _arch_extras(self) -> dict:
        extras = {}
        arch = self.arch
        for attr in ("fast_packets", "slow_packets", "overdraft",
                     "ring_full_drops", "guard_marks", "congestion_events"):
            counter = getattr(arch, attr, None)
            if counter is not None:
                extras[attr] = counter.value
        if hasattr(arch, "fast_fraction"):
            extras["fast_fraction"] = arch.fast_fraction()
        return extras


def replace_two_with_bypass(scenario: Scenario) -> None:
    """The Figure 4a / 10a phase action: two CPU-involved flows are
    replaced by two CPU-bypass (LineFS) flows."""
    for _ in range(2):
        scenario.remove_involved_flow()
    n = len(scenario.bypass)
    for i in range(2):
        scenario.add_bypass_flow(f"dfs{n + i}")


def add_two_burst_flows(scenario: Scenario) -> None:
    """The Figure 4b / 10b phase action: two additional burst CPU-involved
    flows arrive on two extra cores."""
    n = len(scenario.involved)
    for i in range(2):
        scenario.add_involved_flow(f"burst{n + i}")
