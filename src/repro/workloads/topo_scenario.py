"""Compile a validated scenario dict into a wired multi-host fabric.

:class:`TopoScenario` is the declarative twin of the hand-built
:class:`~repro.workloads.scenarios.Scenario`: it takes a schema dict
(see :mod:`repro.scenario`), builds the topology, compiles it into a
:class:`repro.topo.Fabric`, installs one I/O architecture per server
host, wires each tenant's flows (erpc / kvstore / linefs) from its
source clients, arms per-host fault controllers, and runs warm-up +
measurement windows with the same debug-barrier auditing contract as
the legacy scenario.

Bit-compatibility: compiling the ``paper-baseline`` template (a
``two_host`` topology) performs exactly the legacy construction
sequence — Simulator, registry, Host, ToR port, architecture, KvStore,
then flows ``kv0..`` with unprefixed ``client-stagger`` draws — so its
measurements are byte-identical to ``Scenario(ScenarioConfig())``'s
(pinned by ``tests/topo/test_two_host_compat.py``).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Mapping, Optional

from ..apps.erpc import ErpcConfig, ErpcServer
from ..apps.kvstore import KvStore
from ..apps.linefs import LineFsServer
from ..audit import Reconciler, build_fabric_ledger, record_report
from ..faults import FaultController
from ..io_arch import build_arch
from ..io_arch.shring import ShringConfig
from ..net import Flow, FlowKind, OpenLoopSource, SaturatingSource
from ..scenario import canonical, fault_plan_of, validate
from ..scenario.schema import build_topology
from ..sim.units import US
from ..topo import Fabric, HostEndpoint
from .measure import Measurement, MeasurementWindow
from .scenarios import scaled_host_config, shring_entries_for

__all__ = ["TopoScenario", "compile_scenario"]


def echo_handler(ctx) -> float:
    """The plain-eRPC application handler: echo, zero extra cycles."""
    return 0.0


class _FlowRecord:
    """Bookkeeping for one wired flow (crash/restart needs the recipe)."""

    __slots__ = ("flow", "server", "source", "tenant", "src")

    def __init__(self, flow, server, source, tenant, src):
        self.flow = flow
        self.server = server
        self.source = source
        self.tenant = tenant
        self.src = src


class _HostView:
    """The per-host scenario surface ``repro.faults`` injectors expect
    (``involved`` + crash/restart), scoped to one endpoint."""

    def __init__(self, scenario: "TopoScenario", host: str):
        self._scenario = scenario
        self._host = host

    @property
    def involved(self):
        return [(rec.flow, rec.server, rec.source)
                for rec in self._scenario.involved[self._host]]

    def crash_involved_flow(self, index: int = 0) -> Optional[str]:
        return self._scenario.crash_involved_flow(self._host, index)

    def restart_involved_flow(self, name: str):
        return self._scenario.restart_involved_flow(self._host, name)


class TopoScenario:
    """One compiled scenario: fabric + per-host stacks + tenants."""

    #: Interval between mid-run conservation barriers under
    #: ``REPRO_SIM_DEBUG=1``, ns (the legacy Scenario's contract).
    AUDIT_BARRIER_NS = 50 * US

    def __init__(self, spec: Mapping[str, Any]):
        self.normal = validate(spec)
        self.canonical = canonical(self.normal)
        self.topology = build_topology(self.normal)
        self.seed = self.normal["seed"]
        hosts_cfg = self.normal["hosts"]
        default_cfg = hosts_cfg["*"]
        self._host_cfg: Dict[str, Dict[str, Any]] = {}
        host_configs = {}
        for spec_host in self.topology.server_hosts:
            cfg = hosts_cfg.get(spec_host.name, default_cfg)
            self._host_cfg[spec_host.name] = cfg
            host_configs[spec_host.name] = scaled_host_config(
                cfg["scale"], cfg["set_associative_cache"],
                cfg["io_buf_size"], cores=cfg["cores"])
        self.fabric = Fabric(self.topology, host_configs=host_configs,
                             seed=self.seed)
        self.primary = next(iter(self.fabric.endpoints))
        for name, endpoint in self.fabric.endpoints.items():
            endpoint.install_io_arch(
                self._build_arch(endpoint, self._host_cfg[name],
                                 host_configs[name]))
        #: One KV store per server host (ErpcServer handlers close over
        #: it); seeded like the legacy scenario's.
        self.kv: Dict[str, KvStore] = {
            name: KvStore(seed=self.seed) for name in self.fabric.endpoints}
        self.involved: Dict[str, List[_FlowRecord]] = {
            name: [] for name in self.fabric.endpoints}
        self.bypass: Dict[str, List[_FlowRecord]] = {
            name: [] for name in self.fabric.endpoints}
        self._crashed: Dict[str, Dict[str, _FlowRecord]] = {
            name: {} for name in self.fabric.endpoints}
        self.fault_controllers: List[FaultController] = []
        self.reconciler: Optional[Reconciler] = None
        self._built = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_arch(self, endpoint: HostEndpoint, cfg: Mapping[str, Any],
                    host_config):
        if cfg["arch"] == "shring":
            return build_arch(
                "shring", endpoint.host,
                config=ShringConfig(
                    ring_entries=shring_entries_for(host_config)))
        return build_arch(cfg["arch"], endpoint.host)

    def build(self) -> "TopoScenario":
        clients = [spec.name for spec in self.topology.client_hosts]
        for tenant in self.normal["tenants"]:
            sources = list(tenant["sources"]) or clients
            if not sources:
                sources = [spec.name for spec in self.topology.hosts.values()
                           if spec.name != tenant["host"]]
            for i in range(tenant["flows"]):
                self._add_tenant_flow(tenant, f"{tenant['name']}{i}",
                                      sources[i % len(sources)])
        plan = fault_plan_of(self.normal)
        if plan:
            for host, host_plan in plan.split_by_host(self.primary).items():
                controller = FaultController(
                    self.fabric.endpoints[host], host_plan,
                    scenario=_HostView(self, host))
                controller.arm()
                self.fault_controllers.append(controller)
        self.reconciler = Reconciler(build_fabric_ledger(self.fabric))
        self._built = True
        return self

    def _add_tenant_flow(self, tenant: Mapping[str, Any], name: str,
                         src: str, late_ok: bool = False) -> _FlowRecord:
        host = tenant["host"]
        endpoint = self.fabric.endpoints[host]
        arch = endpoint.io_arch
        if tenant["workload"] == "linefs":
            flow = Flow(FlowKind.CPU_BYPASS, name=name,
                        message_payload=tenant["payload"],
                        packets_per_message=tenant["chunk_packets"])
            sender = self.fabric.add_flow(flow, src=src, dst=host,
                                          late_ok=late_ok)
            core = endpoint.host.cpu.allocate()
            server = LineFsServer(arch, core)
            server.attach_flow(flow)
            server.start()
            source = SaturatingSource(self.fabric.sim, sender,
                                      outstanding=tenant["outstanding"])
        else:
            flow = Flow(FlowKind.CPU_INVOLVED, name=name,
                        message_payload=tenant["payload"],
                        packets_per_message=1)
            sender = self.fabric.add_flow(flow, src=src, dst=host,
                                          late_ok=late_ok)
            core = endpoint.host.cpu.allocate()
            erpc_config = ErpcConfig(transport=tenant["transport"])
            erpc_config.rpc_overhead_cycles += tenant["app_extra_cycles"]
            handler = (self.kv[host].handle
                       if tenant["workload"] == "kvstore" else echo_handler)
            server = ErpcServer(arch, flow, core, handler,
                                config=erpc_config)
            server.start()
            if tenant["open_loop_mpps"] is not None:
                rate = (tenant["open_loop_mpps"] * 1e-3
                        / max(1, tenant["flows"]))
                source = OpenLoopSource(
                    self.fabric.sim, sender, rate_msgs_per_ns=rate,
                    rng=endpoint.rng.stream(f"openloop-{name}"))
            else:
                source = SaturatingSource(self.fabric.sim, sender,
                                          outstanding=tenant["outstanding"])
        source.start(delay=self._stagger(endpoint))
        record = _FlowRecord(flow, server, source, tenant, src)
        bucket = (self.bypass if tenant["workload"] == "linefs"
                  else self.involved)
        bucket[host].append(record)
        return record

    def _stagger(self, endpoint: HostEndpoint) -> float:
        """Per-host client stagger (the legacy unprefixed stream on a
        legacy-named two-host fabric; ``<host>.client-stagger`` else)."""
        return endpoint.rng.stream("client-stagger").uniform(0, 20_000.0)

    # ------------------------------------------------------------------
    # Crash / restart (repro.faults apps site)
    # ------------------------------------------------------------------
    def crash_involved_flow(self, host: str, index: int = 0
                            ) -> Optional[str]:
        records = self.involved[host]
        if not records:
            return None
        record = records.pop(index % len(records))
        record.source.stop()
        record.server.stop()
        endpoint = self.fabric.endpoints[host]
        endpoint.host.cpu.release(record.server.core)
        endpoint.io_arch.unregister_flow(record.flow)
        self.fabric.senders.pop(record.flow.flow_id, None)
        self._crashed[host][record.flow.name] = record
        return record.flow.name

    def restart_involved_flow(self, host: str, name: str) -> _FlowRecord:
        record = self._crashed[host].pop(name)
        return self._add_tenant_flow(record.tenant, name, record.src,
                                     late_ok=True)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_measure(self, warmup: Optional[float] = None,
                    duration: Optional[float] = None
                    ) -> Dict[str, Measurement]:
        """Warm up, then measure one steady-state window per server host.

        Every window ends with a full fabric-wide reconciliation; the
        report is attached to every host's measurement and queued for
        the runner's audit collector.
        """
        if not self._built:
            self.build()
        measure = self.normal["measure"]
        sim = self.fabric.sim
        self._run(sim.now + (measure["warmup_us"] * US
                             if warmup is None else warmup))
        windows = {name: MeasurementWindow(endpoint, endpoint.io_arch)
                   for name, endpoint in self.fabric.endpoints.items()}
        self._run(sim.now + (measure["duration_us"] * US
                             if duration is None else duration))
        results: Dict[str, Measurement] = {}
        report = None
        for name, window in windows.items():
            measurement = window.finish()
            measurement.extras.update(
                _arch_extras(self.fabric.endpoints[name].io_arch))
            results[name] = measurement
        if self.reconciler is not None:
            report = self.reconciler.check(now=sim.now)
            for measurement in results.values():
                measurement.audit = report.to_dict()
            record_report(report)
        return results

    def _run(self, until: float) -> None:
        """Advance the simulation with periodic conservation barriers
        under ``REPRO_SIM_DEBUG=1`` (checks only, never new events)."""
        sim = self.fabric.sim
        if self.reconciler is None or not sim.debug:
            sim.run(until=until)
            return
        while True:
            step_until = min(until, sim.now + self.AUDIT_BARRIER_NS)
            sim.run(until=step_until)
            report = self.reconciler.check(now=sim.now, barrier_only=True)
            if not report.ok:
                record_report(report)
            if step_until >= until:
                return

    def run(self) -> Dict[str, Dict[str, Any]]:
        """Build, measure, and return JSON-safe per-host metrics (the
        ``python -m repro.scenario run`` payload)."""
        return {name: asdict(measurement)
                for name, measurement in self.run_measure().items()}


def _arch_extras(arch) -> Dict[str, float]:
    extras: Dict[str, float] = {}
    for attr in ("fast_packets", "slow_packets", "overdraft",
                 "ring_full_drops", "guard_marks", "congestion_events"):
        counter = getattr(arch, attr, None)
        if counter is not None:
            extras[attr] = counter.value
    if hasattr(arch, "fast_fraction"):
        extras["fast_fraction"] = arch.fast_fraction()
    return extras


def compile_scenario(spec: Mapping[str, Any]) -> TopoScenario:
    """Validate + compile ``spec`` (built, ready to ``run_measure()``)."""
    return TopoScenario(spec).build()
