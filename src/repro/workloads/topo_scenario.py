"""Compile a validated scenario dict into a wired multi-host fabric.

:class:`TopoScenario` is the declarative twin of the hand-built
:class:`~repro.workloads.scenarios.Scenario`: it takes a schema dict
(see :mod:`repro.scenario`), builds the topology, compiles it into a
:class:`repro.topo.Fabric`, installs one I/O architecture per server
host, wires each tenant's flows (erpc / kvstore / linefs) from its
source clients, arms per-host fault controllers, and runs warm-up +
measurement windows with the same debug-barrier auditing contract as
the legacy scenario.

Bit-compatibility: compiling the ``paper-baseline`` template (a
``two_host`` topology) performs exactly the legacy construction
sequence — Simulator, registry, Host, ToR port, architecture, KvStore,
then flows ``kv0..`` with unprefixed ``client-stagger`` draws — so its
measurements are byte-identical to ``Scenario(ScenarioConfig())``'s
(pinned by ``tests/topo/test_two_host_compat.py``).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Mapping, Optional

from ..apps.erpc import ErpcConfig, ErpcServer
from ..apps.kvstore import KvStore
from ..apps.linefs import LineFsServer
from ..audit import Reconciler, build_fabric_ledger, record_report
from ..demand import (DemandSource, ScaledProfile, poisson_times,
                      profile_from_dict, session_times)
from ..faults import FaultController
from ..io_arch import build_arch
from ..io_arch.shring import ShringConfig
from ..net import Flow, FlowKind, OpenLoopSource, SaturatingSource
from ..scenario import canonical, fault_plan_of, validate
from ..scenario.schema import build_topology
from ..sim.units import US
from ..topo import Fabric, HostEndpoint
from .measure import Measurement, MeasurementWindow
from .scenarios import scaled_host_config, shring_entries_for
from .slo import SloTarget, SloTracker

__all__ = ["TopoScenario", "compile_scenario"]


def echo_handler(ctx) -> float:
    """The plain-eRPC application handler: echo, zero extra cycles."""
    return 0.0


class _FlowRecord:
    """Bookkeeping for one wired flow (crash/restart needs the recipe)."""

    __slots__ = ("flow", "server", "source", "tenant", "src")

    def __init__(self, flow, server, source, tenant, src):
        self.flow = flow
        self.server = server
        self.source = source
        self.tenant = tenant
        self.src = src


class _HostView:
    """The per-host scenario surface ``repro.faults`` injectors expect
    (``involved`` + crash/restart), scoped to one endpoint."""

    def __init__(self, scenario: "TopoScenario", host: str):
        self._scenario = scenario
        self._host = host

    @property
    def involved(self):
        return [(rec.flow, rec.server, rec.source)
                for rec in self._scenario.involved[self._host]]

    def crash_involved_flow(self, index: int = 0) -> Optional[str]:
        return self._scenario.crash_involved_flow(self._host, index)

    def restart_involved_flow(self, name: str):
        return self._scenario.restart_involved_flow(self._host, name)


class TopoScenario:
    """One compiled scenario: fabric + per-host stacks + tenants."""

    #: Interval between mid-run conservation barriers under
    #: ``REPRO_SIM_DEBUG=1``, ns (the legacy Scenario's contract).
    AUDIT_BARRIER_NS = 50 * US

    def __init__(self, spec: Mapping[str, Any],
                 scope: Optional[Any] = None):
        self.normal = validate(spec)
        self.canonical = canonical(self.normal)
        self.topology = build_topology(self.normal)
        self.seed = self.normal["seed"]
        hosts_cfg = self.normal["hosts"]
        default_cfg = hosts_cfg["*"]
        self._host_cfg: Dict[str, Dict[str, Any]] = {}
        host_configs = {}
        for spec_host in self.topology.server_hosts:
            cfg = hosts_cfg.get(spec_host.name, default_cfg)
            self._host_cfg[spec_host.name] = cfg
            host_configs[spec_host.name] = scaled_host_config(
                cfg["scale"], cfg["set_associative_cache"],
                cfg["io_buf_size"], cores=cfg["cores"])
        self.fabric = Fabric(self.topology, host_configs=host_configs,
                             seed=self.seed, scope=scope)
        #: The fault plan's default target host. Computed from the
        #: *topology* (first server), never from the scoped endpoint
        #: dict, so every shard buckets unqualified specs identically
        #: (on an unscoped fabric the two definitions coincide).
        servers = self.topology.server_hosts
        self.primary = servers[0].name if servers else None
        for name, endpoint in self.fabric.endpoints.items():
            with self.fabric.host_domain(name):
                endpoint.install_io_arch(
                    self._build_arch(endpoint, self._host_cfg[name],
                                     host_configs[name]))
        #: One KV store per server host (ErpcServer handlers close over
        #: it); seeded like the legacy scenario's.
        self.kv: Dict[str, KvStore] = {
            name: KvStore(seed=self.seed) for name in self.fabric.endpoints}
        self.involved: Dict[str, List[_FlowRecord]] = {
            name: [] for name in self.fabric.endpoints}
        self.bypass: Dict[str, List[_FlowRecord]] = {
            name: [] for name in self.fabric.endpoints}
        self._crashed: Dict[str, Dict[str, _FlowRecord]] = {
            name: {} for name in self.fabric.endpoints}
        self.fault_controllers: List[FaultController] = []
        #: ``net.channel`` specs (shard-coordinator faults), split out of
        #: the plan at build time. No-ops on a single kernel (no cut
        #: links); :func:`repro.shard.run_sharded` compiles them.
        self.channel_fault_specs: tuple = ()
        self.reconciler: Optional[Reconciler] = None
        self._built = False
        self._windows: Dict[str, MeasurementWindow] = {}
        #: Open-loop demand (None for closed-loop scenarios — in which
        #: case no demand source, SLO tracker, or extra RNG stream is
        #: ever created, keeping goldens and shard digests unchanged).
        self.demand_spec: Optional[Dict[str, Any]] = \
            self.normal.get("demand")
        self.slo_trackers: Dict[str, SloTracker] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_arch(self, endpoint: HostEndpoint, cfg: Mapping[str, Any],
                    host_config):
        if cfg["arch"] == "shring":
            return build_arch(
                "shring", endpoint.host,
                config=ShringConfig(
                    ring_entries=shring_entries_for(host_config)))
        if cfg["arch"] == "ceio" and "ceio" in cfg:
            from ..core.config import CeioConfig
            return build_arch("ceio", endpoint.host,
                              config=CeioConfig(**cfg["ceio"]))
        return build_arch(cfg["arch"], endpoint.host)

    def build(self) -> "TopoScenario":
        clients = [spec.name for spec in self.topology.client_hosts]
        for tenant in self.normal["tenants"]:
            sources = list(tenant["sources"]) or clients
            if not sources:
                sources = [spec.name for spec in self.topology.hosts.values()
                           if spec.name != tenant["host"]]
            for i in range(tenant["flows"]):
                self._add_tenant_flow(tenant, f"{tenant['name']}{i}",
                                      sources[i % len(sources)])
        if self.demand_spec is not None:
            self._build_slo_trackers()
        plan = fault_plan_of(self.normal)
        if plan:
            # net.channel specs belong to the shard coordinator's
            # channel layer (repro.shard.channel); with one kernel there
            # are no cut links, so they are declared no-ops here either
            # way. Host-site specs compile into the owning host's
            # controller — on a scoped fabric only the shard that
            # materialises the endpoint arms it, and the arm is
            # bracketed in the host's event domain so the sequence
            # numbers it consumes are the ones the single kernel (and no
            # other shard) consumes for the same controller.
            self.channel_fault_specs, host_faults = plan.split_channel()
            for host, host_plan in \
                    host_faults.split_by_host(self.primary).items():
                if not self.fabric.is_local_host(host):
                    continue
                self._check_faults_shard_local(host, host_plan)
                with self.fabric.host_domain(host):
                    controller = FaultController(
                        self.fabric.endpoints[host], host_plan,
                        scenario=_HostView(self, host))
                    controller.arm()
                self.fault_controllers.append(controller)
        self.reconciler = Reconciler(build_fabric_ledger(self.fabric))
        self._built = True
        return self

    def _check_faults_shard_local(self, host: str, host_plan) -> None:
        """Crash/restart must not straddle a shard boundary: the crash
        stops the flow's *source* (client side) and the restart rebuilds
        it, so both ends must live in this shard. Every other site
        touches only the endpoint's own hardware and last-hop port."""
        if self.fabric.scope is None:
            return
        if not any(spec.site == "apps" for spec in host_plan):
            return
        remote = sorted({rec.src for rec in self.involved[host]
                         if rec.source is None})
        if remote:
            raise ValueError(
                f"apps.crash_restart on {host!r} is not supported under "
                f"this partition: client host(s) {remote} live in a "
                "different shard than the server, and crash/restart "
                "must quiesce both ends atomically. Use fewer shards "
                "(or --shards 1) or co-locate the tenant's sources.")

    def _add_tenant_flow(self, tenant: Mapping[str, Any], name: str,
                         src: str, late_ok: bool = False) -> _FlowRecord:
        """Wire one flow end to end. On a scoped (shard) fabric this is
        still called for *every* flow — registration ordinals, ECMP
        draws, and RNG stream positions are global bookkeeping every
        shard replicates — but live pieces (server stack, source,
        transport) are built only on the shards owning their hosts.
        Construction is bracketed in the owning atoms' event domains so
        per-domain sequence counters advance identically everywhere."""
        fabric = self.fabric
        host = tenant["host"]
        endpoint = fabric.endpoints.get(host)
        if endpoint is None and fabric.scope is None:
            raise KeyError(host)
        local_src = fabric.is_local_host(src)
        server = None
        if tenant["workload"] == "linefs":
            flow = Flow(FlowKind.CPU_BYPASS, name=name,
                        message_payload=tenant["payload"],
                        packets_per_message=tenant["chunk_packets"])
            sender = fabric.add_flow(flow, src=src, dst=host,
                                     late_ok=late_ok)
            if endpoint is not None:
                with fabric.host_domain(host):
                    core = endpoint.host.cpu.allocate()
                    server = LineFsServer(endpoint.io_arch, core)
                    server.attach_flow(flow)
                    server.start()
            source = None
            if local_src:
                with fabric.host_domain(src):
                    if self._demand_entry(tenant) is not None:
                        source = DemandSource(
                            fabric.sim, sender,
                            self._demand_arrivals(tenant, name))
                    else:
                        source = SaturatingSource(
                            fabric.sim, sender,
                            outstanding=tenant["outstanding"])
        else:
            flow = Flow(FlowKind.CPU_INVOLVED, name=name,
                        message_payload=tenant["payload"],
                        packets_per_message=1)
            sender = fabric.add_flow(flow, src=src, dst=host,
                                     late_ok=late_ok)
            if endpoint is not None:
                with fabric.host_domain(host):
                    core = endpoint.host.cpu.allocate()
                    erpc_config = ErpcConfig(transport=tenant["transport"])
                    erpc_config.rpc_overhead_cycles += \
                        tenant["app_extra_cycles"]
                    handler = (self.kv[host].handle
                               if tenant["workload"] == "kvstore"
                               else echo_handler)
                    server = ErpcServer(endpoint.io_arch, flow, core,
                                        handler, config=erpc_config)
                    server.start()
            source = None
            if local_src:
                with fabric.host_domain(src):
                    if self._demand_entry(tenant) is not None:
                        source = DemandSource(
                            fabric.sim, sender,
                            self._demand_arrivals(tenant, name))
                    elif tenant["open_loop_mpps"] is not None:
                        rate = (tenant["open_loop_mpps"] * 1e-3
                                / max(1, tenant["flows"]))
                        source = OpenLoopSource(
                            fabric.sim, sender, rate_msgs_per_ns=rate,
                            rng=fabric.host_rng(host).stream(  # repro: noqa=D109 -- per-tenant stream; name comes from the validated scenario spec key
                                f"openloop-{name}"))
                    else:
                        source = SaturatingSource(
                            fabric.sim, sender,
                            outstanding=tenant["outstanding"])
        # Demand-driven flows measure latency from message *submission*
        # (coordinated-omission fix: sender-side queueing under open-loop
        # overload lands in the tail instead of vanishing).
        if endpoint is not None and self._demand_entry(tenant) is not None:
            rx = endpoint.io_arch.flows.get(flow.flow_id)
            if rx is not None:
                rx.latency_from_submit = True
        # The stagger draw advances the destination host's stream on
        # every shard, local or not: later flows toward the same host
        # must see the same stream position everywhere.
        stagger = self._stagger(host)
        if source is not None:
            with fabric.host_domain(src):
                source.start(delay=stagger)
        record = _FlowRecord(flow, server, source, tenant, src)
        if endpoint is not None:
            bucket = (self.bypass if tenant["workload"] == "linefs"
                      else self.involved)
            bucket[host].append(record)
        return record

    def _demand_entry(self, tenant: Mapping[str, Any]
                      ) -> Optional[Dict[str, Any]]:
        """The tenant's normalised ``demand.tenants`` entry, if any."""
        if self.demand_spec is None:
            return None
        return self.demand_spec["tenants"].get(tenant["name"])

    def _demand_arrivals(self, tenant: Mapping[str, Any], flow_name: str):
        """Lazy arrival-timestamp iterator for one flow of a demand
        tenant: the tenant-aggregate profile scaled down to the flow,
        sampled from the destination host's ``demand-<flow>`` stream (a
        stream per flow, never a materialised list — million-event
        horizons stay O(1) memory)."""
        entry = self._demand_entry(tenant)
        profile = profile_from_dict(
            self.demand_spec["profiles"][entry["profile"]])
        per_flow = ScaledProfile(profile, 1.0 / max(1, tenant["flows"]))
        rng = self.fabric.host_rng(tenant["host"]).stream(  # repro: noqa=D109 -- per-flow stream; name comes from the validated scenario spec key
            f"demand-{flow_name}")
        if entry["arrivals"] == "sessions":
            return session_times(rng, per_flow,
                                 mean_messages=entry["mean_messages"],
                                 shape=entry["shape"],
                                 intra_gap_ns=entry["intra_gap_us"] * US)
        return poisson_times(rng, per_flow)

    def _build_slo_trackers(self) -> None:
        """One tracker per (local) server host observing demand tenants.

        Created at build() time — ``open_windows`` must never schedule
        events (shard contract), so sampling runs from t=0 and
        ``summary(since=...)`` filters to the measure window later."""
        window = self.demand_spec["window_us"] * US
        for host in sorted(self.fabric.endpoints):
            endpoint = self.fabric.endpoints[host]
            records = [rec for rec in
                       self.involved[host] + self.bypass[host]
                       if rec.tenant["name"] in self.demand_spec["tenants"]]
            if not records:
                continue
            with self.fabric.host_domain(host):
                tracker = SloTracker(self.fabric.sim, window,
                                     name=f"{host}.slo")
                for rec in records:
                    entry = self.demand_spec["tenants"][rec.tenant["name"]]
                    target = (SloTarget(**entry["slo"])
                              if entry["slo"] else None)
                    rx = endpoint.io_arch.flows.get(rec.flow.flow_id)
                    if rx is not None:
                        tracker.watch(rec.tenant["name"], rx, target)
            self.slo_trackers[host] = tracker

    def _stagger(self, host: str) -> float:
        """Per-host client stagger (the legacy unprefixed stream on a
        legacy-named two-host fabric; ``<host>.client-stagger`` else)."""
        return self.fabric.host_rng(host).stream(  # repro: noqa=D109 -- deliberately Scenario's literal: host-prefixed here, byte-identical draws on legacy two-host fabrics
            "client-stagger").uniform(0, 20_000.0)

    # ------------------------------------------------------------------
    # Crash / restart (repro.faults apps site)
    # ------------------------------------------------------------------
    def crash_involved_flow(self, host: str, index: int = 0
                            ) -> Optional[str]:
        records = self.involved[host]
        if not records:
            return None
        record = records.pop(index % len(records))
        record.source.stop()
        record.server.stop()
        endpoint = self.fabric.endpoints[host]
        endpoint.host.cpu.release(record.server.core)
        endpoint.io_arch.unregister_flow(record.flow)
        self.fabric.senders.pop(record.flow.flow_id, None)
        self._crashed[host][record.flow.name] = record
        return record.flow.name

    def restart_involved_flow(self, host: str, name: str) -> _FlowRecord:
        record = self._crashed[host].pop(name)
        return self._add_tenant_flow(record.tenant, name, record.src,
                                     late_ok=True)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_measure(self, warmup: Optional[float] = None,
                    duration: Optional[float] = None
                    ) -> Dict[str, Measurement]:
        """Warm up, then measure one steady-state window per server host.

        Every window ends with a full fabric-wide reconciliation; the
        report is attached to every host's measurement and queued for
        the runner's audit collector.
        """
        if not self._built:
            self.build()
        measure = self.normal["measure"]
        sim = self.fabric.sim
        self._run(sim.now + (measure["warmup_us"] * US
                             if warmup is None else warmup))
        self.open_windows()
        self._run(sim.now + (measure["duration_us"] * US
                             if duration is None else duration))
        results = self.finish_measurements()
        if self.reconciler is not None:
            report = self.reconciler.check(now=sim.now)
            for measurement in results.values():
                measurement.audit = report.to_dict()
            record_report(report)
        return results

    # -- phase hooks (the sharded coordinator drives these directly,
    # with conservative barrier windows replacing the _run calls) -------
    def measure_horizons(self) -> tuple:
        """(warmup end, measurement end) in absolute ns from t=0."""
        measure = self.normal["measure"]
        t_warm = measure["warmup_us"] * US
        return t_warm, t_warm + measure["duration_us"] * US

    def open_windows(self) -> None:
        """Open one MeasurementWindow per (local) server host. Reads
        counters only; never schedules events or consumes sequence
        numbers, so shards may call it between barrier windows."""
        self._windows = {
            name: MeasurementWindow(endpoint, endpoint.io_arch)
            for name, endpoint in self.fabric.endpoints.items()}

    def finish_measurements(self) -> Dict[str, Measurement]:
        """Close the open windows and compute per-host metrics (audit
        report not yet attached — the single-kernel path attaches its
        local report, the shard coordinator the merged one)."""
        results: Dict[str, Measurement] = {}
        for name, window in self._windows.items():
            measurement = window.finish()
            measurement.extras.update(
                _arch_extras(self.fabric.endpoints[name].io_arch))
            if self.demand_spec is not None:
                self._attach_slo(name, window, measurement)
            results[name] = measurement
        return results

    def _attach_slo(self, name: str, window: MeasurementWindow,
                    measurement: Measurement) -> None:
        """Demand-only measurement surface: admission counters plus the
        per-tenant SLO summary. Attached via ``extras`` keys and a
        dynamic ``measurement.slo`` attribute — never new dataclass
        fields, so closed-loop ``asdict`` bytes (and the goldens pinned
        on them) cannot move."""
        arch = self.fabric.endpoints[name].io_arch
        measurement.extras["offered"] = arch.rx_offered.value
        measurement.extras["shed"] = arch.rx_shed.value
        tracker = self.slo_trackers.get(name)
        if tracker is None:
            return
        summary = tracker.summary(since=window.t_start)
        measurement.slo = summary
        for tenant in sorted(summary):
            stats = summary[tenant]
            if not stats.get("windows"):
                continue
            prefix = f"slo.{tenant}."
            for key in ("goodput_mpps", "p99_us", "p999_us", "p9999_us",
                        "shed"):
                measurement.extras[prefix + key] = float(stats[key])
            measurement.extras[prefix + "ok"] = 1.0 if stats["ok"] else 0.0

    def _run(self, until: float) -> None:
        """Advance the simulation with periodic conservation barriers
        under ``REPRO_SIM_DEBUG=1`` (checks only, never new events)."""
        sim = self.fabric.sim
        if self.reconciler is None or not sim.debug:
            sim.run(until=until)
            return
        while True:
            step_until = min(until, sim.now + self.AUDIT_BARRIER_NS)
            sim.run(until=step_until)
            report = self.reconciler.check(now=sim.now, barrier_only=True)
            if not report.ok:
                record_report(report)
            if step_until >= until:
                return

    def run(self) -> Dict[str, Dict[str, Any]]:
        """Build, measure, and return JSON-safe per-host metrics (the
        ``python -m repro.scenario run`` payload)."""
        return {name: asdict(measurement)
                for name, measurement in self.run_measure().items()}


def _arch_extras(arch) -> Dict[str, float]:
    extras: Dict[str, float] = {}
    for attr in ("fast_packets", "slow_packets", "overdraft",
                 "ring_full_drops", "guard_marks", "congestion_events"):
        counter = getattr(arch, attr, None)
        if counter is not None:
            extras[attr] = counter.value
    if hasattr(arch, "fast_fraction"):
        extras["fast_fraction"] = arch.fast_fraction()
    return extras


def compile_scenario(spec: Mapping[str, Any],
                     scope: Optional[Any] = None) -> TopoScenario:
    """Validate + compile ``spec`` (built, ready to ``run_measure()``).

    ``scope`` (a set of switch names) compiles a shard-local replica —
    see :mod:`repro.shard`."""
    return TopoScenario(spec, scope=scope).build()
