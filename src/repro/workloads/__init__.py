"""Workloads: generators, measurement windows, and paper scenarios."""

from .generators import (
    FixedSize,
    LognormalSize,
    LongTailSize,
    UniformSize,
    pareto_burst_lengths,
    poisson_arrivals,
)
from .churn import ChurnConfig, ChurnResult, UdChurnScenario
from .measure import FlowMetrics, Measurement, MeasurementWindow
from .scenarios import (
    Scenario,
    ScenarioConfig,
    add_two_burst_flows,
    replace_two_with_bypass,
    scaled_host_config,
    shring_entries_for,
)

__all__ = [
    "FixedSize", "LognormalSize", "LongTailSize", "UniformSize",
    "pareto_burst_lengths", "poisson_arrivals",
    "ChurnConfig", "ChurnResult", "UdChurnScenario",
    "FlowMetrics", "Measurement", "MeasurementWindow",
    "Scenario", "ScenarioConfig",
    "add_two_burst_flows", "replace_two_with_bypass",
    "scaled_host_config", "shring_entries_for",
]
