"""Measurement windows: warm-up handling and delta-based metrics.

End-to-end experiments must not measure the transient while receive rings
fill and DCTCP converges (the paper reports steady-state throughput and
tail latency). A :class:`MeasurementWindow` snapshots every counter at the
end of warm-up and reports deltas over the measurement interval; latency
histograms are replaced at the window start so percentiles cover only
steady state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..io_arch.base import FlowRx
from ..net.packet import Flow, FlowKind
from ..sim.stats import Histogram
from ..sim.units import US, to_gbps, to_mpps

__all__ = ["FlowMetrics", "Measurement", "MeasurementWindow", "TailStats"]


@dataclass
class TailStats:
    """Latency tail summary down to p99.99, in microseconds.

    Kept OUT of :class:`Measurement`'s declared fields on purpose: the
    measurement's ``asdict`` form is pinned byte-for-byte by the golden
    tests, and the tail summary only exists for demand-driven (open-loop)
    runs — which attach it dynamically (``measurement.slo``) and through
    ``extras``. p99.99 needs ~10^4 samples to mean anything; below that
    the histogram clamps it to the observed max, which
    :meth:`from_histogram` inherits (the quantile is always bounded by
    the max recorded value).
    """

    p50_us: float
    p99_us: float
    p999_us: float
    p9999_us: float

    @classmethod
    def from_histogram(cls, hist: Histogram) -> "TailStats":
        return cls(p50_us=hist.percentile(50) / US,
                   p99_us=hist.percentile(99) / US,
                   p999_us=hist.percentile(99.9) / US,
                   p9999_us=hist.percentile(99.99) / US)

    def to_dict(self) -> Dict[str, float]:
        return {"p50_us": self.p50_us, "p99_us": self.p99_us,
                "p999_us": self.p999_us, "p9999_us": self.p9999_us}


@dataclass
class FlowMetrics:
    name: str
    kind: str
    mpps: float
    gbps: float
    p50_us: float
    p99_us: float
    p999_us: float
    dropped: float


@dataclass
class Measurement:
    """Steady-state metrics over one measurement window."""

    duration: float
    involved_mpps: float
    bypass_mpps: float
    bypass_gbps: float
    total_mpps: float
    llc_miss_rate: float
    p50_us: float
    p99_us: float
    p999_us: float
    dropped: float
    flows: List[FlowMetrics] = field(default_factory=list)
    extras: Dict[str, float] = field(default_factory=dict)
    #: End-of-run conservation report (repro.audit), as
    #: ``AuditReport.to_dict()``; None when auditing was not enabled.
    audit: Optional[Dict] = None

    def flow(self, name: str) -> Optional[FlowMetrics]:
        for fm in self.flows:
            if fm.name == name:
                return fm
        return None


class MeasurementWindow:
    """Snapshot-now / report-deltas-later measurement scope."""

    def __init__(self, testbed, arch):
        self.testbed = testbed
        self.arch = arch
        self.t_start = testbed.sim.now
        self._flow_marks: Dict[int, Dict[str, float]] = {}
        llc = testbed.host.llc.stats
        self._llc_mark = (llc.cpu_lines_read, llc.cpu_lines_missed)
        self._drop_mark = arch.rx_dropped.value
        for fid, rx in arch.flows.items():
            self._mark_flow(fid, rx)
        # Announce the open window so late flow registration is either
        # rejected (Testbed.add_flow without late_ok) or routed through
        # note_new_flow instead of silently escaping the metrics.
        testbed.active_window = self

    def _mark_flow(self, fid: int, rx: FlowRx) -> None:
        self._flow_marks[fid] = {
            "processed": rx.processed.value,
            "bytes": rx.processed_bytes.value,
            "dropped": rx.dropped.value,
        }
        # Fresh histogram so percentiles exclude warm-up samples.
        rx.latency = Histogram(rx.latency.name)

    def note_new_flow(self, flow: Flow) -> None:
        """Include a flow registered after the window opened."""
        rx = self.arch.flows.get(flow.flow_id)
        if rx is not None and flow.flow_id not in self._flow_marks:
            self._mark_flow(flow.flow_id, rx)

    def finish(self) -> Measurement:
        if self.testbed.active_window is self:
            self.testbed.active_window = None
        now = self.testbed.sim.now
        duration = now - self.t_start
        if duration <= 0:
            raise ValueError("measurement window has zero duration")
        flows: List[FlowMetrics] = []
        merged = Histogram("window.latency")
        involved_pps = bypass_pps = bypass_bps = total_pps = 0.0
        dropped = 0.0
        for fid, rx in self.arch.flows.items():
            mark = self._flow_marks.get(fid)
            if mark is None:
                continue
            d_proc = rx.processed.value - mark["processed"]
            d_bytes = rx.processed_bytes.value - mark["bytes"]
            d_drop = rx.dropped.value - mark["dropped"]
            pps = d_proc / duration
            bps = d_bytes / duration
            total_pps += pps
            dropped += d_drop
            if rx.flow.kind is FlowKind.CPU_INVOLVED:
                involved_pps += pps
            else:
                bypass_pps += pps
                bypass_bps += bps
            merged.merge(rx.latency)
            flows.append(FlowMetrics(
                name=rx.flow.name,
                kind=rx.flow.kind.value,
                mpps=to_mpps(pps),
                gbps=to_gbps(bps),
                p50_us=rx.latency.percentile(50) / US,
                p99_us=rx.latency.percentile(99) / US,
                p999_us=rx.latency.percentile(99.9) / US,
                dropped=d_drop,
            ))
        llc = self.testbed.host.llc.stats
        d_read = llc.cpu_lines_read - self._llc_mark[0]
        d_miss = llc.cpu_lines_missed - self._llc_mark[1]
        return Measurement(
            duration=duration,
            involved_mpps=to_mpps(involved_pps),
            bypass_mpps=to_mpps(bypass_pps),
            bypass_gbps=to_gbps(bypass_bps),
            total_mpps=to_mpps(total_pps),
            llc_miss_rate=(d_miss / d_read) if d_read else 0.0,
            p50_us=merged.percentile(50) / US,
            p99_us=merged.percentile(99) / US,
            p999_us=merged.percentile(99.9) / US,
            dropped=dropped,
            flows=flows,
        )
