"""Windowed per-tenant SLO tracking for open-loop (demand-driven) runs.

Closed-loop experiments summarise latency once, over the whole measure
window. Under open-loop overload that is not enough: an unguarded
architecture's tail *diverges over time* (the standing queue grows every
window), which a single end-of-run percentile flattens into one number.
The tracker samples each tenant's goodput and latency tail every
``window`` ns by diffing histogram snapshots, so experiments can assert
trajectory properties ("p99.9 held flat", "p99.9 grew monotonically")
and check declared targets.

Shard contract: the sampling process is created at **build()** time (the
fabric's ``open_windows`` must never schedule events), runs from t=0 in
the domain of the host it observes, touches only counters/histograms and
draws no RNG — so sharded runs sample identically to the single-kernel
run. ``MeasurementWindow`` *replaces* each flow's latency histogram when
the measure window opens; the tracker detects the new object by identity
and restarts its deltas from zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..io_arch.base import FlowRx
from ..sim.stats import HistogramSnapshot, percentile_from_counts
from ..sim.units import US, to_mpps

__all__ = ["SloTarget", "SloTracker"]


@dataclass
class SloTarget:
    """Declared per-tenant objectives; None = not asserted."""

    p99_us: Optional[float] = None
    p999_us: Optional[float] = None
    p9999_us: Optional[float] = None
    min_goodput_mpps: Optional[float] = None

    def to_dict(self) -> Dict[str, float]:
        return {k: v for k, v in (("p99_us", self.p99_us),
                                  ("p999_us", self.p999_us),
                                  ("p9999_us", self.p9999_us),
                                  ("min_goodput_mpps",
                                   self.min_goodput_mpps))
                if v is not None}


class SloTracker:
    """Samples per-tenant goodput and latency tails on a fixed cadence."""

    def __init__(self, sim, window: float, name: str = "slo"):
        if window <= 0:
            raise ValueError("SLO window must be positive")
        self.sim = sim
        self.window = window
        self.name = name
        self._tenants: Dict[str, List[FlowRx]] = {}
        self._targets: Dict[str, SloTarget] = {}
        # Per-rx sampling state: (histogram object, snapshot, processed,
        # shed). The histogram reference detects MeasurementWindow's
        # object replacement at the measure-window boundary.
        self._prev: Dict[int, Tuple[Any, Optional[HistogramSnapshot],
                                    float, float]] = {}
        #: One record per (window, tenant): timestamped goodput + tails.
        self.windows: List[Dict[str, Any]] = []
        self._proc = sim.process(self._loop(), name=f"{name}-sampler")

    # ------------------------------------------------------------------
    def watch(self, tenant: str, rx: FlowRx,
              target: Optional[SloTarget] = None) -> None:
        """Attach one flow's receive state to a tenant's aggregate."""
        self._tenants.setdefault(tenant, []).append(rx)
        if target is not None:
            self._targets[tenant] = target
        self._prev[id(rx)] = (rx.latency, rx.latency.snapshot(),
                              rx.processed.value, rx.shed.value)

    def set_target(self, tenant: str, target: SloTarget) -> None:
        self._targets[tenant] = target

    # ------------------------------------------------------------------
    def _loop(self):
        while True:
            yield self.window
            self._sample()

    def _sample(self) -> None:
        now = self.sim.now
        for tenant in sorted(self._tenants):
            rxs = self._tenants[tenant]
            if not rxs:
                continue
            bounds = rxs[0].latency.bounds
            counts = [0] * len(bounds)
            d_processed = 0.0
            d_shed = 0.0
            for rx in rxs:
                hist = rx.latency
                prev = self._prev.get(id(rx), (None, None, 0.0, 0.0))
                if prev[0] is hist:
                    snap, p_proc, p_shed = prev[1], prev[2], prev[3]
                else:
                    # Fresh histogram (measure window opened) or first
                    # sight: the whole object is this window's delta.
                    snap, p_proc, p_shed = None, prev[2], prev[3]
                for i, n in enumerate(hist.delta_counts(snap)):
                    counts[i] += n
                d_processed += rx.processed.value - p_proc
                d_shed += rx.shed.value - p_shed
                self._prev[id(rx)] = (hist, hist.snapshot(),
                                      rx.processed.value, rx.shed.value)
            self.windows.append({
                "t_us": now / US,
                "tenant": tenant,
                "goodput_mpps": to_mpps(d_processed / self.window),
                "shed": d_shed,
                "samples": sum(counts),
                "p99_us": percentile_from_counts(bounds, counts, 99) / US,
                "p999_us": percentile_from_counts(bounds, counts, 99.9) / US,
                "_counts": counts,
            })

    # ------------------------------------------------------------------
    def summary(self, since: float = 0.0) -> Dict[str, Any]:
        """Aggregate per-tenant achievement vs targets over windows whose
        sample instant falls after ``since`` (pass the warm-up end so the
        transient does not count against the SLO). JSON-safe."""
        out: Dict[str, Any] = {}
        for tenant in sorted(self._tenants):
            recs = [w for w in self.windows
                    if w["tenant"] == tenant and w["t_us"] * US > since]
            if not recs:
                out[tenant] = {"windows": 0, "ok": True, "violations": []}
                continue
            bounds = self._tenants[tenant][0].latency.bounds
            total = [0] * len(bounds)
            for w in recs:
                for i, n in enumerate(w["_counts"]):
                    total[i] += n
            goodputs = [w["goodput_mpps"] for w in recs]
            tail = {
                "p50_us": percentile_from_counts(bounds, total, 50) / US,
                "p99_us": percentile_from_counts(bounds, total, 99) / US,
                "p999_us": percentile_from_counts(bounds, total, 99.9) / US,
                "p9999_us":
                    percentile_from_counts(bounds, total, 99.99) / US,
            }
            target = self._targets.get(tenant, SloTarget())
            violations: List[str] = []
            for key in ("p99_us", "p999_us", "p9999_us"):
                limit = getattr(target, key)
                if limit is not None and tail[key] > limit:
                    violations.append(
                        f"{key} {tail[key]:.2f} > target {limit:.2f}")
            mean_goodput = sum(goodputs) / len(goodputs)
            if (target.min_goodput_mpps is not None
                    and mean_goodput < target.min_goodput_mpps):
                violations.append(
                    f"goodput {mean_goodput:.4f} Mpps < target "
                    f"{target.min_goodput_mpps:.4f}")
            out[tenant] = {
                "windows": len(recs),
                "goodput_mpps": mean_goodput,
                "min_goodput_mpps": min(goodputs),
                "shed": sum(w["shed"] for w in recs),
                "samples": sum(w["samples"] for w in recs),
                **tail,
                "worst_p999_us": max(w["p999_us"] for w in recs),
                "targets": target.to_dict(),
                "ok": not violations,
                "violations": violations,
            }
        return out

    def tenant_windows(self, tenant: str,
                       since: float = 0.0) -> List[Dict[str, Any]]:
        """Chronological per-window records for one tenant (JSON-safe:
        the internal bucket-count scratch is stripped)."""
        return [{k: v for k, v in w.items() if k != "_counts"}
                for w in self.windows
                if w["tenant"] == tenant and w["t_us"] * US > since]
