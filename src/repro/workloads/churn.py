"""Thousand-flow UD churn workload (Figure 12, §6.3).

Methodology from the paper: "the client concurrently sends 16 flows with
different queue pair IDs, maintains a short time slot, and randomly
changes the destination queue pairs for each subsequent time slot",
using 512 B echo messages in RDMA UD mode. The receiver registers *all*
N queue pairs; only 16 are active in any slot, so CEIO's active-flow
credit strategy (inactivity reclamation + round-robin reactivation) is
what decides whether the active set runs on the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..apps.echo import EchoConfig, SharedEchoServer
from ..hw import HostConfig
from ..io_arch import build_arch
from ..net import Flow, FlowKind, SaturatingSource, Testbed
from ..sim.units import US
from .measure import MeasurementWindow
from .scenarios import scaled_host_config

__all__ = ["ChurnConfig", "ChurnResult", "UdChurnScenario"]


@dataclass
class ChurnConfig:
    arch: str = "ceio"
    #: Total registered queue pairs (the Figure 12 x-axis).
    total_flows: int = 128
    #: Queue pairs simultaneously active.
    active_flows: int = 16
    #: Time slot between destination reshuffles, ns.
    time_slot: float = 500 * US
    #: Warm-up horizon, ns — must exceed the CEIO inactivity timeout so the
    #: controller has marked idle flows and recycled their credits before
    #: measurement starts.
    warmup: float = 1_500 * US
    #: Measured horizon, ns.
    duration: float = 1_500 * US
    payload: int = 512
    outstanding: int = 48
    #: Echo worker cores at the receiver.
    worker_cores: int = 14
    scale: int = 4
    seed: int = 0
    host_config: Optional[HostConfig] = None


@dataclass
class ChurnResult:
    arch: str
    total_flows: int
    time_slot: float
    aggregate_mpps: float
    fast_fraction: float
    llc_miss_rate: float


class UdChurnScenario:
    """Builds the churn testbed and runs the slot schedule."""

    def __init__(self, config: ChurnConfig):
        self.config = config
        host_config = config.host_config or scaled_host_config(config.scale)
        self.testbed = Testbed(host_config=host_config, seed=config.seed)
        self.arch = build_arch(config.arch, self.testbed.host)
        self.testbed.install_io_arch(self.arch)
        self.rng = self.testbed.rng.stream("churn")
        self.flows: List[Flow] = []
        self.sources: List[SaturatingSource] = []
        self.workers: List[SharedEchoServer] = []

    def build(self) -> "UdChurnScenario":
        cfg = self.config
        for i in range(cfg.total_flows):
            flow = Flow(FlowKind.CPU_INVOLVED, name=f"qp{i}",
                        message_payload=cfg.payload, packets_per_message=1)
            sender = self.testbed.add_flow(flow)
            self.flows.append(flow)
            self.sources.append(
                SaturatingSource(self.testbed.sim, sender,
                                 outstanding=cfg.outstanding))
        for _ in range(cfg.worker_cores):
            core = self.testbed.host.cpu.allocate()
            worker = SharedEchoServer(self.arch, core, EchoConfig())
            worker.start()
            self.workers.append(worker)
        return self

    def _reshuffle(self) -> None:
        """Stop the current active set and activate a random new one."""
        for source in self.sources:
            source.stop()
        active = self.rng.sample(range(len(self.sources)),
                                 min(self.config.active_flows,
                                     len(self.sources)))
        for idx in active:
            # Sources are one-shot per activation: build a fresh one so the
            # closed loops restart cleanly.
            old = self.sources[idx]
            flow = old.flow
            sender = self.testbed.senders[flow.flow_id]
            fresh = SaturatingSource(self.testbed.sim, sender,
                                     outstanding=self.config.outstanding)
            self.sources[idx] = fresh
            fresh.start()

    def run(self) -> ChurnResult:
        cfg = self.config
        sim = self.testbed.sim

        def run_slots(horizon: float) -> None:
            end = sim.now + horizon
            while sim.now < end:
                self._reshuffle()
                sim.run(until=min(end, sim.now + cfg.time_slot))

        run_slots(cfg.warmup)
        window = MeasurementWindow(self.testbed, self.arch)
        fast_mark = (self.arch.fast_packets.value
                     if hasattr(self.arch, "fast_packets") else 0.0)
        slow_mark = (self.arch.slow_packets.value
                     if hasattr(self.arch, "slow_packets") else 0.0)
        run_slots(cfg.duration)
        measurement = window.finish()
        if hasattr(self.arch, "fast_packets"):
            fast = self.arch.fast_packets.value - fast_mark
            slow = self.arch.slow_packets.value - slow_mark
            fast_fraction = fast / (fast + slow) if fast + slow else 0.0
        else:
            fast_fraction = 1.0
        return ChurnResult(
            arch=cfg.arch,
            total_flows=cfg.total_flows,
            time_slot=cfg.time_slot,
            aggregate_mpps=measurement.total_mpps,
            fast_fraction=fast_fraction,
            llc_miss_rate=measurement.llc_miss_rate,
        )
