"""Workload generators: message-size distributions and arrival processes.

Used by the open-loop scenarios and the thousand-flow churn experiment.
The long-tail size distribution follows the datacenter assumption the
paper's §4.1 design discussion leans on (most flows short, a few huge).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["FixedSize", "UniformSize", "LognormalSize", "LongTailSize",
           "poisson_arrival_times", "poisson_arrivals",
           "pareto_burst_lengths"]


class FixedSize:
    """Every message has the same payload."""

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size

    def sample(self, rng: random.Random) -> int:
        return self.size

    def mean(self) -> float:
        return float(self.size)


class UniformSize:
    def __init__(self, lo: int, hi: int):
        if not 0 < lo <= hi:
            raise ValueError("need 0 < lo <= hi")
        self.lo = lo
        self.hi = hi

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)

    def mean(self) -> float:
        return (self.lo + self.hi) / 2


class LognormalSize:
    """Log-normal payloads clamped to [lo, hi] (RPC-ish)."""

    def __init__(self, median: float, sigma: float = 0.8,
                 lo: int = 64, hi: int = 9000):
        if median <= 0 or sigma <= 0:
            raise ValueError("median and sigma must be positive")
        self.mu = math.log(median)
        self.sigma = sigma
        self.lo = lo
        self.hi = hi

    def sample(self, rng: random.Random) -> int:
        value = int(rng.lognormvariate(self.mu, self.sigma))
        return max(self.lo, min(self.hi, value))

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma ** 2 / 2)


class LongTailSize:
    """Two-point long-tail mix: mostly small, occasionally huge.

    ``p_large`` of messages are ``large`` bytes; the rest are ``small``.
    A crude but controllable stand-in for the pFabric web-search CDF.
    """

    def __init__(self, small: int = 512, large: int = 1 << 20,
                 p_large: float = 0.05):
        if not 0 <= p_large <= 1:
            raise ValueError("p_large must be a probability")
        self.small = small
        self.large = large
        self.p_large = p_large

    def sample(self, rng: random.Random) -> int:
        return self.large if rng.random() < self.p_large else self.small

    def mean(self) -> float:
        return self.p_large * self.large + (1 - self.p_large) * self.small


def poisson_arrival_times(rng: random.Random, rate_per_ns: float,
                          horizon: float) -> Iterator[float]:
    """Lazily yield the arrival timestamps of a Poisson process on
    [0, horizon).

    One ``expovariate`` draw per arrival, in timestamp order — the exact
    draw sequence the old list-building implementation used, so existing
    seeds reproduce identical schedules. Being a generator, a
    million-event horizon costs O(1) memory instead of materialising the
    whole list up front (the :mod:`repro.demand` layer builds on the
    same idiom with time-varying rates).
    """
    if rate_per_ns <= 0:
        raise ValueError("rate must be positive")
    t = rng.expovariate(rate_per_ns)
    while t < horizon:
        yield t
        t += rng.expovariate(rate_per_ns)


def poisson_arrivals(rng: random.Random, rate_per_ns: float,
                     horizon: float) -> List[float]:
    """Arrival timestamps of a Poisson process on [0, horizon).

    List-returning shim over :func:`poisson_arrival_times` for call
    sites that index or len() the schedule; new code should iterate the
    lazy form directly.
    """
    return list(poisson_arrival_times(rng, rate_per_ns, horizon))


def pareto_burst_lengths(rng: random.Random, count: int,
                         mean_packets: float = 32.0,
                         shape: float = 1.5) -> List[int]:
    """Heavy-tailed burst lengths (packets per burst) with a given mean."""
    if shape <= 1:
        raise ValueError("shape must exceed 1 for a finite mean")
    scale = mean_packets * (shape - 1) / shape
    return [max(1, int(scale / (rng.random() ** (1 / shape))))
            for _ in range(count)]
