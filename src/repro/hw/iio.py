"""The Integrated I/O (IIO) buffer on the host uncore.

PCIe posted writes land here (stage 2 of the data path, Figure 2) and the
memory controller drains entries into the LLC or DRAM (stage 3). Its
occupancy is bounded; when full the PCIe DMA engine stalls, which is exactly
the back-pressure HostCC's congestion signal observes (§2.3).
"""

from __future__ import annotations

from ..sim import Simulator, Store
from ..sim.stats import TimeWeightedGauge
__all__ = ["IioBuffer", "IioEntry"]


class IioEntry:
    """One posted write resident in the IIO buffer."""

    __slots__ = ("payload", "nbytes", "enqueue_time")

    def __init__(self, payload, nbytes: int, enqueue_time: float):
        self.payload = payload
        self.nbytes = nbytes
        self.enqueue_time = enqueue_time


class IioBuffer:
    """Bounded byte-accounted FIFO between PCIe and the memory controller."""

    def __init__(self, sim: Simulator, capacity: int):
        self.sim = sim
        self.capacity = capacity
        self._entries = Store(sim, name="iio")
        self._bytes = 0
        self.occupancy_gauge = TimeWeightedGauge("iio.occupancy")
        self._space_waiters = []
        # Conservation occupancy (repro.audit): posted writes issued by the
        # DMA engine but not yet completed by the memory controller. The
        # DMA engine increments it atomically with ``writes_issued``;
        # :meth:`complete` decrements — so issued = inflight + completed at
        # every kernel step.
        self.inbound_inflight = 0

    @property
    def occupancy(self) -> int:
        """Bytes currently buffered (HostCC's congestion signal)."""
        return self._bytes

    @property
    def fill_fraction(self) -> float:
        return self._bytes / self.capacity

    def put(self, payload, nbytes: int):
        """Process: enqueue, blocking while the buffer lacks space."""
        while self._bytes + nbytes > self.capacity:
            waiter = self.sim.event()
            self._space_waiters.append(waiter)
            yield waiter
        self._bytes += nbytes
        self.occupancy_gauge.update(self.sim.now, self._bytes)
        yield self._entries.put(IioEntry(payload, nbytes, self.sim.now))

    def get(self):
        """Process: dequeue the oldest entry (memory controller side).

        The entry still occupies IIO space until :meth:`complete` is called
        — the data physically leaves the buffer only once the memory
        controller has written it onward.
        """
        entry = yield self._entries.get()
        return entry

    def complete(self, entry: IioEntry) -> None:
        """Release the space held by ``entry`` (write to LLC/DRAM done)."""
        self._bytes -= entry.nbytes
        self.inbound_inflight -= 1
        self.occupancy_gauge.update(self.sim.now, self._bytes)
        waiters, self._space_waiters = self._space_waiters, []
        for w in waiters:
            w.succeed()
