"""DRAM model: channel-parallel bandwidth with queueing latency.

Accesses contend for channels; each access occupies one channel for
``bytes / channel_bandwidth`` ns after a base latency. Aggregate bandwidth
and a time-weighted queue gauge are exported — memory-bandwidth pressure is
one of the two resources the paper's analysis (§2.2) says LLC misses burn.
"""

from __future__ import annotations

from ..sim import Resource, Simulator
from ..sim.stats import Counter, RateMeter, TimeWeightedGauge
from .config import DramConfig

__all__ = ["Dram"]


class Dram:
    def __init__(self, sim: Simulator, config: DramConfig):
        self.sim = sim
        self.config = config
        self._channels = Resource(sim, capacity=config.channels, name="dram")
        self.bytes_read = Counter("dram.bytes_read")
        self.bytes_written = Counter("dram.bytes_written")
        self.bandwidth_meter = RateMeter("dram.bw", window=10_000.0)
        self.queue_gauge = TimeWeightedGauge("dram.queue")

    @property
    def peak_bandwidth(self) -> float:
        return self.config.channels * self.config.channel_bandwidth

    @property
    def effective_bandwidth(self) -> float:
        """Capacity available to random line-granule traffic."""
        return self.peak_bandwidth * self.config.random_efficiency

    def utilization(self, now: float) -> float:
        """Recent demand as a fraction of the *effective* random-access
        capacity (HostCC's "memory bandwidth usage" signal)."""
        return min(1.0,
                   self.bandwidth_meter.rate(now) / self.effective_bandwidth)

    def _access(self, nbytes: int, counter: Counter):
        """Process: one DRAM access of ``nbytes``."""
        self.queue_gauge.adjust(self.sim.now, +1)
        yield self._channels.request()
        try:
            yield (self.config.base_latency
                   + nbytes / self.config.channel_bandwidth)
        finally:
            self._channels.release()
            self.queue_gauge.adjust(self.sim.now, -1)
        counter.add(nbytes)
        self.bandwidth_meter.record(self.sim.now, nbytes)

    def read(self, nbytes: int):
        """Process: read ``nbytes`` (yield from / yield sim.process(...))."""
        return self._access(nbytes, self.bytes_read)

    def write(self, nbytes: int):
        """Process: write ``nbytes``."""
        return self._access(nbytes, self.bytes_written)

    def latency_estimate(self, nbytes: int, now: float) -> float:
        """Closed-form expected latency used by non-process fast paths.

        Base latency plus transfer time, inflated by current contention
        (an M/M/c-flavoured multiplier: 1 / (1 - utilization), capped).
        """
        util = self.utilization(now)
        congestion = 1.0 / max(0.05, 1.0 - util)
        transfer = nbytes / self.config.channel_bandwidth
        return (self.config.base_latency + transfer) * min(congestion, 8.0)

    def record_demand(self, now: float, nbytes: int, write: bool = False) -> None:
        """Account bandwidth for accesses modelled in closed form."""
        (self.bytes_written if write else self.bytes_read).add(nbytes)
        self.bandwidth_meter.record(now, nbytes)
