"""Host memory controller: drains the IIO buffer into LLC or DRAM.

Stage 3 of the data path (Figure 2). With DDIO the write allocates directly
into the LLC's DDIO ways; evictions caused by the allocation generate DRAM
write-back traffic. Without DDIO (or for writes the I/O architecture marks
as cache-bypassing) the payload goes straight to DRAM at DRAM cost.

Draining returns PCIe posted-write credits, closing the back-pressure loop
NIC -> PCIe -> IIO -> memory controller.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator
from ..sim.stats import Counter
from .dram import Dram
from .iio import IioBuffer
from .pcie import PcieLink

__all__ = ["DmaWrite", "MemoryController"]


class DmaWrite:
    """What the NIC's DMA engine asks the memory controller to do."""

    __slots__ = ("key", "nbytes", "ddio", "deliver", "flow_id", "dropped")

    def __init__(self, key, nbytes: int, ddio: bool,
                 deliver: Optional[Callable[[float], None]] = None,
                 flow_id: Optional[int] = None):
        self.key = key
        self.nbytes = nbytes
        #: Whether the write allocates into the LLC's DDIO ways.
        self.ddio = ddio
        #: Called (with completion time) once the data is in LLC/DRAM.
        self.deliver = deliver
        #: Owning flow, when known — lets per-flow fault filters
        #: (hw.nic "descriptor_drop") target a single victim.
        self.flow_id = flow_id
        #: Set synchronously by the DMA engine when a descriptor-drop fault
        #: swallows the write, so the issuer can account the loss.
        self.dropped = False


class MemoryController:
    """A single drain process serialising IIO entries into the memory system."""

    #: Fill bandwidth from IIO into the LLC, bytes/ns. Fast relative to
    #: DRAM — an LLC allocation costs no memory-channel time.
    LLC_FILL_BANDWIDTH = 100.0
    #: Sustained write-back drain rate toward DRAM, bytes/ns (the share of
    #: channel bandwidth the uncore's write-back engine achieves for dirty
    #: I/O lines). Together with LLC_FILL_BANDWIDTH this caps the drain at
    #: ~23 bytes/ns while every insert evicts — just below a 200 Gbps
    #: line-rate ingress, so *line-rate thrash backs the IIO buffer up*
    #: (the congestion HostCC observes), while CPU-bound steady states
    #: (a few bytes/ns) drain freely.
    WRITEBACK_BANDWIDTH = 30.0

    def __init__(self, sim: Simulator, iio: IioBuffer, llc, dram: Dram,
                 pcie: PcieLink):
        self.sim = sim
        self.iio = iio
        self.llc = llc
        self.dram = dram
        self.pcie = pcie
        self.writes_completed = Counter("memctrl.writes")
        self.writeback_bytes = Counter("memctrl.writebacks")
        # Conservation meters (repro.audit): every completed write either
        # delivered to an I/O-architecture descriptor or had no consumer.
        self.deliveries = Counter("memctrl.deliveries")
        self.no_deliver = Counter("memctrl.no_deliver")
        self._proc = sim.process(self._drain_loop(), name="memctrl")

    def _drain_loop(self):
        while True:
            entry = yield from self.iio.get()
            write: DmaWrite = entry.payload
            if write.ddio:
                evicted = self.llc.io_insert(write.key, write.nbytes)
                yield write.nbytes / self.LLC_FILL_BANDWIDTH
                if evicted:
                    # Dirty evicted lines drain at write-back bandwidth
                    # before the next IIO entry is served (§2.2's "extra
                    # memory bandwidth" cost of DDIO thrash).
                    yield evicted / self.WRITEBACK_BANDWIDTH
                    self.dram.record_demand(self.sim.now, evicted,
                                            write=True)
                    self.writeback_bytes.add(evicted)
            else:
                yield from self.dram.write(write.nbytes)
            self.iio.complete(entry)
            self.pcie.release_write_credits(write.nbytes)
            self.writes_completed.add(1)
            if write.deliver is not None:
                self.deliveries.add(1)
                write.deliver(self.sim.now)
            else:
                self.no_deliver.add(1)
