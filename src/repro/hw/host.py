"""Receiver-host assembly: one socket's worth of I/O-path hardware."""

from __future__ import annotations

from typing import Optional

from ..sim import RngRegistry, Simulator, StatRegistry
from .cache import build_llc
from .config import HostConfig
from .cpu import CpuComplex
from .dram import Dram
from .iio import IioBuffer
from .memctrl import MemoryController
from .nic import Nic
from .pcie import PcieLink

__all__ = ["Host"]


class Host:
    """Wires LLC, DRAM, IIO, PCIe, memory controller, CPU cores and the NIC.

    The constructed topology is Figure 2's: the NIC DMA engine pushes posted
    writes across PCIe into the IIO buffer, the memory controller drains the
    IIO into the LLC (DDIO) or DRAM, and CPU cores consume buffers through
    the cache hierarchy.
    """

    def __init__(self, sim: Simulator, config: HostConfig = None,
                 name: str = "host", rng: Optional[RngRegistry] = None):
        self.sim = sim
        self.config = config or HostConfig()
        self.name = name
        #: Named RNG streams for host-side stochastic components (ECN
        #: marking in the I/O architectures). The testbed passes its
        #: seeded registry here so ``--seed`` perturbs every stream; the
        #: standalone default keeps direct ``Host(sim)`` construction
        #: deterministic.
        self.rng = rng if rng is not None else RngRegistry(0)
        self.stats = StatRegistry()
        self.llc = build_llc(self.config.cache)
        self.dram = Dram(sim, self.config.dram)
        self.pcie = PcieLink(sim, self.config.pcie)
        self.iio = IioBuffer(sim, self.config.nic.iio_capacity)
        self.memctrl = MemoryController(sim, self.iio, self.llc, self.dram,
                                        self.pcie)
        self.cpu = CpuComplex(sim, self.config.cpu, self.config.cache,
                              self.llc, self.dram)
        self.nic = Nic(sim, self.config.nic, self.pcie, self.iio)

    @property
    def total_credits(self) -> int:
        """Eq. (1): DDIO-resident I/O buffer budget."""
        return self.config.total_credits

    def llc_miss_rate(self) -> float:
        return self.llc.stats.miss_rate
