"""CPU core model.

A :class:`Core` offers timing helpers to application processes: pure
computation (cycles), and buffer reads whose latency depends on LLC
residency. DRAM time for misses is charged in closed form (with a
contention multiplier from current DRAM utilisation) while still recording
bandwidth demand, so CPU misses and DMA traffic see each other's pressure
without paying per-line event costs.
"""

from __future__ import annotations

from typing import Tuple

from ..sim import Simulator
from ..sim.stats import Counter
from .config import CacheConfig, CpuConfig
from .dram import Dram

__all__ = ["Core", "CpuComplex"]


class Core:
    def __init__(self, sim: Simulator, index: int, config: CpuConfig,
                 cache_config: CacheConfig, llc, dram: Dram):
        self.sim = sim
        self.index = index
        self.config = config
        self.cache_config = cache_config
        self.llc = llc
        self.dram = dram
        self.busy_ns = 0.0
        self.reads = Counter(f"core{index}.reads")
        self.read_misses = Counter(f"core{index}.read_misses")
        #: Fault seam (repro.faults hw.cpu "slowdown"): execution-time
        #: multiplier modelling preemption by another tenant; 1.0 healthy.
        self.slowdown = 1.0

    def compute(self, cycles: float):
        """Process: execute ``cycles`` of work (yield the returned delay)."""
        duration = cycles * self.config.cycle_ns * self.slowdown
        self.busy_ns += duration
        return duration

    def read_latency(self, key, nbytes: int) -> Tuple[float, bool]:
        """Latency for this core to read an I/O buffer, and whether it missed.

        LLC hit: ``hit_latency`` (load-to-use; subsequent lines stream).
        Miss: miss penalty plus DRAM access under current contention, for
        the non-resident fraction. Partially-resident buffers pay a blend.
        """
        hit_fraction = self.llc.cpu_read(key, nbytes)
        cfg = self.cache_config
        self.reads.add(1)
        if hit_fraction >= 1.0:
            return cfg.hit_latency, False
        missed_bytes = max(cfg.line, int(nbytes * (1.0 - hit_fraction)))
        dram_ns = self.dram.latency_estimate(missed_bytes, self.sim.now)
        self.dram.record_demand(self.sim.now, missed_bytes)
        self.read_misses.add(1)
        latency = (hit_fraction * cfg.hit_latency
                   + (1.0 - hit_fraction) * cfg.miss_penalty + dram_ns)
        return latency, True

    def read_buffer(self, key, nbytes: int):
        """Process: read an I/O buffer, stalling for hit/miss latency.

        Returns ``True`` if the read missed the LLC.
        """
        latency, missed = self.read_latency(key, nbytes)
        latency *= self.slowdown
        self.busy_ns += latency
        yield latency
        return missed

    def copy_to_app_buffer(self, nbytes: int):
        """Process: memcpy from the I/O buffer into an application buffer.

        The destination is usually cold (§6.4: LineFS suffers ~10% extra
        misses from exactly this), so the copy pays DRAM write bandwidth
        and a store-miss penalty on top of per-byte CPU work.
        """
        cfg = self.cache_config
        copy_cycles = nbytes / 16.0  # ~16 B/cycle sustained memcpy
        dram_ns = self.dram.latency_estimate(nbytes, self.sim.now) * 0.5
        self.dram.record_demand(self.sim.now, nbytes, write=True)
        latency = (copy_cycles * self.config.cycle_ns
                   + cfg.miss_penalty * 0.5 + dram_ns * 0.1) * self.slowdown
        self.busy_ns += latency
        yield latency

    def utilization(self, now: float) -> float:
        return self.busy_ns / now if now > 0 else 0.0


class CpuComplex:
    """All cores of the receiver socket."""

    def __init__(self, sim: Simulator, config: CpuConfig,
                 cache_config: CacheConfig, llc, dram: Dram):
        self.sim = sim
        self.config = config
        self.cores = [Core(sim, i, config, cache_config, llc, dram)
                      for i in range(config.cores)]
        self._free = list(reversed(self.cores))

    def allocate(self) -> Core:
        """Dedicate a core to an I/O flow (§2.3: one core per flow)."""
        if not self._free:
            raise RuntimeError("out of CPU cores to dedicate")
        return self._free.pop()

    def release(self, core: Core) -> None:
        """Return a dedicated core to the pool."""
        if core in self._free:
            raise ValueError(f"core {core.index} is already free")
        self._free.append(core)

    def release_all(self) -> None:
        self._free = list(reversed(self.cores))
