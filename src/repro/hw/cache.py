"""Last-level cache models with a DDIO way partition.

Two interchangeable models are provided behind one interface:

- :class:`FullyAssociativeLLC` — tracks I/O-buffer residency as a single LRU
  over the DDIO partition's byte capacity. Fast; the default for end-to-end
  experiments.
- :class:`SetAssociativeLLC` — a real set/way structure with per-set LRU and
  a way mask for DDIO allocations. Slower; used in unit tests and the cache
  fidelity ablation.

Both model the behaviour that drives the paper's results: **DDIO writes
allocate into a bounded region, and once in-flight I/O data exceeds that
region, newer packets evict older ones before the CPU reads them**, turning
CPU reads into DRAM misses (§2.2).

Keys are opaque buffer identifiers (one per I/O buffer); partial residency
is expressed as a hit *fraction* so callers can charge miss latency for the
evicted portion only.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from .config import CacheConfig

__all__ = ["CacheStats", "FullyAssociativeLLC", "SetAssociativeLLC",
           "build_llc"]


@dataclass
class CacheStats:
    """Line-granularity accounting shared by both models."""

    io_lines_inserted: int = 0
    io_lines_evicted: int = 0
    cpu_lines_read: int = 0
    cpu_lines_hit: int = 0
    cpu_lines_missed: int = 0

    @property
    def miss_rate(self) -> float:
        """CPU read miss rate over lines (the paper's 'LLC miss rate')."""
        if self.cpu_lines_read == 0:
            return 0.0
        return self.cpu_lines_missed / self.cpu_lines_read

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate if self.cpu_lines_read else 0.0


class FullyAssociativeLLC:
    """LRU over the DDIO partition, buffer-granularity, byte-accounted.

    A buffer inserted by I/O is fully resident until LRU pressure evicts it.
    Eviction is partial-at-the-margin: the model evicts whole buffers (the
    realistic DDIO behaviour is line-wise, but whole-buffer eviction is the
    common case because a buffer's lines are inserted back-to-back and age
    together).
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self.capacity = config.ddio_capacity
        self._resident: "OrderedDict[Hashable, int]" = OrderedDict()
        self._bytes = 0
        # Conservation meters (repro.audit), byte-granularity so they close
        # exactly: inserted = evicted + released + overwritten + flushed +
        # occupancy. (The line-granularity ``stats`` fields round per
        # aggregate and cannot balance.)
        self.audit_inserted_bytes = 0
        self.audit_evicted_bytes = 0
        self.audit_released_bytes = 0
        self.audit_overwritten_bytes = 0
        self.audit_flushed_bytes = 0

    # -- inspection -------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Bytes of I/O data currently resident in the DDIO partition."""
        return self._bytes

    def is_resident(self, key: Hashable) -> bool:
        return key in self._resident

    def _lines(self, nbytes: int) -> int:
        line = self.config.line
        return (nbytes + line - 1) // line

    # -- I/O side ----------------------------------------------------------
    def io_insert(self, key: Hashable, nbytes: int) -> int:
        """A DDIO write of ``nbytes`` under ``key``; returns bytes evicted.

        Evicted bytes belong to the *oldest* resident buffers — precisely
        the "subsequent packets overwrite earlier ones" failure mode.
        """
        if nbytes <= 0:
            raise ValueError("io_insert needs a positive size")
        if key in self._resident:
            old = self._resident.pop(key)
            self._bytes -= old
            self.audit_overwritten_bytes += old
        evicted = 0
        while self._bytes + nbytes > self.capacity and self._resident:
            _victim, vbytes = self._resident.popitem(last=False)
            self._bytes -= vbytes
            evicted += vbytes
        self._resident[key] = nbytes
        self._bytes += nbytes
        self.audit_inserted_bytes += nbytes
        self.audit_evicted_bytes += evicted
        self.stats.io_lines_inserted += self._lines(nbytes)
        self.stats.io_lines_evicted += self._lines(evicted) if evicted else 0
        return evicted

    # -- CPU side ----------------------------------------------------------
    def cpu_read(self, key: Hashable, nbytes: int) -> float:
        """CPU reads the buffer; returns the hit fraction in [0, 1].

        A hit refreshes recency. A miss means the data must come from DRAM
        (the caller charges latency and DRAM bandwidth); the read data is
        *not* re-inserted into the DDIO partition (DDIO only applies to
        device writes; demand fills go to the core-private portion which we
        fold into the app's base cost).
        """
        lines = self._lines(nbytes)
        self.stats.cpu_lines_read += lines
        if key in self._resident:
            self._resident.move_to_end(key)
            self.stats.cpu_lines_hit += lines
            return 1.0
        self.stats.cpu_lines_missed += lines
        return 0.0

    def release(self, key: Hashable) -> None:
        """Buffer freed by the app: its lines are dead, drop them."""
        nbytes = self._resident.pop(key, None)
        if nbytes is not None:
            self._bytes -= nbytes
            self.audit_released_bytes += nbytes

    def set_ddio_capacity(self, capacity: int) -> None:
        """Fault seam (hw.cache "ddio_reconfig"): resize the DDIO
        partition at runtime, evicting oldest buffers that no longer fit."""
        self.capacity = max(int(capacity), self.config.line)
        evicted = 0
        while self._bytes > self.capacity and self._resident:
            _victim, vbytes = self._resident.popitem(last=False)
            self._bytes -= vbytes
            evicted += vbytes
        if evicted:
            self.audit_evicted_bytes += evicted
            self.stats.io_lines_evicted += self._lines(evicted)

    def flush(self) -> None:
        self.audit_flushed_bytes += self._bytes
        self._resident.clear()
        self._bytes = 0


class SetAssociativeLLC:
    """Set-associative LLC with a DDIO way mask and per-set LRU.

    Buffers are assigned synthetic physical addresses by an internal bump
    allocator (2 KB aligned), and each line maps to set ``(addr//line) %
    sets``. I/O writes may allocate only into the first ``ddio_ways`` ways
    of each set, matching Intel DDIO's way restriction; CPU-side demand
    fills are not modelled (see :class:`FullyAssociativeLLC` docstring).
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self.sets = config.sets
        self.ddio_ways = config.ddio_ways
        # Per set: OrderedDict mapping line-tag -> owning buffer key (LRU order).
        self._set_lru: List["OrderedDict[int, Hashable]"] = [
            OrderedDict() for _ in range(self.sets)]
        # Per buffer key: (base_addr, nbytes, set of resident line addrs).
        self._buffers: Dict[Hashable, Tuple[int, int, set]] = {}
        self._next_addr = 0
        # Conservation meters (repro.audit), line-granularity (this model
        # is exactly line-wise): inserted = evicted + released + flushed +
        # resident lines.
        self.audit_released_lines = 0
        self.audit_flushed_lines = 0

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._set_lru) * self.config.line

    def is_resident(self, key: Hashable) -> bool:
        entry = self._buffers.get(key)
        return bool(entry and entry[2])

    def _alloc_addr(self, nbytes: int) -> int:
        align = 2048
        addr = self._next_addr
        self._next_addr += (nbytes + align - 1) // align * align
        return addr

    def _line_addrs(self, base: int, nbytes: int):
        line = self.config.line
        first = base // line
        count = (nbytes + line - 1) // line
        return range(first, first + count)

    def io_insert(self, key: Hashable, nbytes: int) -> int:
        if nbytes <= 0:
            raise ValueError("io_insert needs a positive size")
        if key in self._buffers:
            self.release(key)
        base = self._alloc_addr(nbytes)
        resident = set()
        evicted_lines = 0
        for laddr in self._line_addrs(base, nbytes):
            lru = self._set_lru[laddr % self.sets]
            if len(lru) >= self.ddio_ways:
                victim_line, victim_key = next(iter(lru.items()))
                del lru[victim_line]
                ventry = self._buffers.get(victim_key)
                if ventry is not None:
                    ventry[2].discard(victim_line)
                evicted_lines += 1
            lru[laddr] = key
            resident.add(laddr)
        self._buffers[key] = (base, nbytes, resident)
        total = len(resident)
        self.stats.io_lines_inserted += total
        self.stats.io_lines_evicted += evicted_lines
        return evicted_lines * self.config.line

    def cpu_read(self, key: Hashable, nbytes: int) -> float:
        entry = self._buffers.get(key)
        line = self.config.line
        lines = (nbytes + line - 1) // line
        self.stats.cpu_lines_read += lines
        if entry is None:
            self.stats.cpu_lines_missed += lines
            return 0.0
        base, size, resident = entry
        wanted = list(self._line_addrs(base, min(nbytes, size)))
        hits = 0
        for laddr in wanted:
            if laddr in resident:
                hits += 1
                lru = self._set_lru[laddr % self.sets]
                lru.move_to_end(laddr)
        # Lines beyond the buffer size (padding) count as misses, as does
        # any read past a buffer that was never inserted.
        misses = lines - hits
        self.stats.cpu_lines_hit += hits
        self.stats.cpu_lines_missed += misses
        return hits / lines if lines else 0.0

    def release(self, key: Hashable) -> None:
        entry = self._buffers.pop(key, None)
        if entry is None:
            return
        _base, _size, resident = entry
        self.audit_released_lines += len(resident)
        for laddr in resident:
            self._set_lru[laddr % self.sets].pop(laddr, None)

    def set_ddio_ways(self, ways: int) -> None:
        """Fault seam (hw.cache "ddio_reconfig"): change the DDIO way
        mask at runtime, evicting LRU lines past the new limit per set."""
        self.ddio_ways = max(1, int(ways))
        evicted = 0
        for lru in self._set_lru:
            while len(lru) > self.ddio_ways:
                victim_line, victim_key = next(iter(lru.items()))
                del lru[victim_line]
                ventry = self._buffers.get(victim_key)
                if ventry is not None:
                    ventry[2].discard(victim_line)
                evicted += 1
        if evicted:
            self.stats.io_lines_evicted += evicted

    def flush(self) -> None:
        self.audit_flushed_lines += sum(len(lru) for lru in self._set_lru)
        for lru in self._set_lru:
            lru.clear()
        self._buffers.clear()


def build_llc(config: CacheConfig):
    """Instantiate the cache model selected by ``config.set_associative``."""
    if config.set_associative:
        return SetAssociativeLLC(config)
    return FullyAssociativeLLC(config)
