"""SmartNIC model: MAC ingress, firmware pipeline, DMA engine, on-NIC memory.

The NIC hands every received packet to the installed *I/O architecture
handler* (:mod:`repro.io_arch`), which decides where the packet goes —
host memory via DDIO, host DRAM, on-NIC memory, or dropped. The handler
runs inside the firmware pipeline process, so a handler blocked on PCIe
posted-write credits back-pressures the MAC buffer exactly as real DMA
engines do; a full MAC buffer drops packets (tail drop).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..sim import Simulator, Store, TokenBucket
from ..sim.stats import Counter, TimeWeightedGauge
from .config import NicConfig
from .iio import IioBuffer
from .memctrl import DmaWrite
from .pcie import PcieLink

__all__ = ["OnNicMemory", "DmaEngine", "ArmCores", "Nic"]

#: MAC-side receive buffer (packet FIFO in front of the firmware), bytes.
MAC_BUFFER_BYTES = 1024 * 1024


class OnNicMemory:
    """The SmartNIC's on-board DRAM used for elastic buffering (§4.2)."""

    def __init__(self, sim: Simulator, config: NicConfig):
        self.sim = sim
        self.config = config
        self.capacity = config.memory_size
        self._used = 0
        self._bandwidth = TokenBucket(sim, rate=config.memory_bandwidth,
                                      burst=256 * 1024, name="nicmem.bw")
        self.used_gauge = TimeWeightedGauge("nicmem.used")
        self.bytes_written = Counter("nicmem.bytes_written")
        self.bytes_read = Counter("nicmem.bytes_read")
        # Conservation meters (repro.audit): every reservation and every
        # free, at face value — a double free shows up as freed > allocated
        # rather than vanishing into the max(0, ...) clamp below.
        self.allocated_bytes = Counter("nicmem.allocated")
        self.freed_bytes = Counter("nicmem.freed")

    @property
    def used(self) -> int:
        return self._used

    @property
    def free(self) -> int:
        return self.capacity - self._used

    def allocate(self, nbytes: int) -> bool:
        """Reserve space; returns False when on-NIC memory is exhausted."""
        if self._used + nbytes > self.capacity:
            return False
        self._used += nbytes
        self.allocated_bytes.add(nbytes)
        self.used_gauge.update(self.sim.now, self._used)
        return True

    def free_bytes(self, nbytes: int) -> None:
        self._used = max(0, self._used - nbytes)
        self.freed_bytes.add(nbytes)
        self.used_gauge.update(self.sim.now, self._used)

    def write(self, nbytes: int):
        """Process: NIC-side write into on-board memory.

        Only bandwidth is paid inline: the store latency is hidden by the
        NIC's internal DMA pipelining, so back-to-back buffered packets do
        not serialise on it (it reappears on the read path, where the host
        must wait for the data).
        """
        yield self._bandwidth.take(nbytes)
        self.bytes_written.add(nbytes)

    def read(self, nbytes: int):
        """Process: read from on-board memory (pre-DMA to host)."""
        yield self._bandwidth.take(nbytes)
        yield self.config.memory_latency
        self.bytes_read.add(nbytes)

    def bandwidth_take(self, nbytes: int):
        """Bandwidth-reservation event for an overlapped streaming read."""
        return self._bandwidth.take(nbytes)

    def set_effective_bandwidth(self, rate: float) -> None:
        """Adjust sustained bandwidth (access-pattern efficiency, §6.4)."""
        self._bandwidth.set_rate(max(1.0, rate))


class DmaEngine:
    """Issues DMA writes toward the host and DMA reads of on-NIC memory."""

    def __init__(self, sim: Simulator, pcie: PcieLink, iio: IioBuffer):
        self.sim = sim
        self.pcie = pcie
        self.iio = iio
        self.writes_issued = Counter("dma.writes")
        self.reads_issued = Counter("dma.reads")
        # Fault seams (repro.faults hw.nic): "dma_stall" pushes
        # ``stall_until`` forward; "descriptor_drop" installs a predicate
        # that silently loses writes. Both are inert when healthy.
        self.stall_until = 0.0
        self.drop_filter = None
        self.dropped_writes = Counter("dma.dropped_writes")
        # Conservation meters (repro.audit): requests = dropped + pending
        # (stalled / waiting for credits / on the wire) + issued.
        self.requests = Counter("dma.requests")
        self.pending_writes = 0

    def write_to_host(self, write: DmaWrite):
        """Process: stage 1+2 of Figure 2 — credits, wire, then IIO.

        Returns once the write is issued onto the wire; the in-flight PCIe
        latency is pipelined (a helper process lands the data in the IIO
        buffer), so back-to-back DMAs overlap exactly as posted writes do.
        Back-pressure comes from posted credits and wire bandwidth.
        """
        self.requests.add(1)
        if self.drop_filter is not None and self.drop_filter(write):
            # The drop verdict is synchronous (before any yield), so the
            # caller observes ``write.dropped`` the moment this returns and
            # can account the loss to the owning flow.
            write.dropped = True
            self.dropped_writes.add(1)
            return
        self.pending_writes += 1
        if self.sim.now < self.stall_until:
            yield self.stall_until - self.sim.now
        yield from self.pcie.acquire_write_credits(write.nbytes)
        yield from self.pcie.write_issue(write.nbytes)
        self.pending_writes -= 1
        self.writes_issued.add(1)
        self.iio.inbound_inflight += 1
        # Fire-and-forget by design: one short-lived process per posted
        # write in the DMA hot path; a crash still propagates because an
        # unwaited Process re-raises. Keeping per-write handles would
        # grow without bound.
        self.sim.process(self._land(write), name="dma-land")  # repro: noqa=D105

    def _land(self, write: DmaWrite):
        yield self.pcie.write_latency_event()
        yield from self.iio.put(write, write.nbytes)

    def read_from_nic(self, nic_memory: OnNicMemory, nbytes: int):
        """Process: host-issued DMA read of on-NIC memory (CEIO slow path).

        The transfer streams straight from on-board DRAM through the
        internal switch onto PCIe, so serialisation is bounded by the
        *slower* of the two stages (they overlap), plus one on-NIC memory
        access latency and one PCIe round trip (§6.4 blames exactly these
        for the slow-path cost).
        """
        if self.sim.now < self.stall_until:
            yield self.stall_until - self.sim.now
        nicmem_take = nic_memory.bandwidth_take(nbytes)
        wire_take = self.pcie.wire_take(nbytes)
        yield self.sim.all_of([nicmem_take, wire_take])
        yield (nic_memory.config.memory_latency
               + self.pcie.config.read_latency + self.pcie.extra_latency)
        nic_memory.bytes_read.add(nbytes)
        self.pcie.account_read(nbytes)
        self.reads_issued.add(1)


class ArmCores:
    """The NIC's ARM control cores running I/O-manager logic.

    Control loops run at a polling period (counter polls, credit updates);
    the number of concurrent loops is bounded by the core count.
    """

    def __init__(self, sim: Simulator, config: NicConfig):
        self.sim = sim
        self.config = config
        self._loops: List = []

    @property
    def poll_interval(self) -> float:
        return self.config.arm_poll_interval

    def spawn_loop(self, body: Callable[[], None],
                   period: Optional[float] = None, name: str = "arm-loop"):
        """Run ``body()`` every ``period`` ns forever (a control loop)."""
        if len(self._loops) >= self.config.arm_cores:
            raise RuntimeError("all ARM cores are busy")
        period = self.poll_interval if period is None else period

        def loop(sim):
            while True:
                yield period
                body()

        proc = self.sim.process(loop(self.sim), name=name)
        self._loops.append(proc)
        return proc

    def spawn(self, generator, name: str = "arm-task"):
        """Run an arbitrary process on an ARM core."""
        if len(self._loops) >= self.config.arm_cores:
            raise RuntimeError("all ARM cores are busy")
        proc = self.sim.process(generator, name=name)
        self._loops.append(proc)
        return proc


class Nic:
    """Receive-side NIC: MAC buffer -> firmware pipeline -> handler."""

    def __init__(self, sim: Simulator, config: NicConfig, pcie: PcieLink,
                 iio: IioBuffer):
        self.sim = sim
        self.config = config
        self.dma = DmaEngine(sim, pcie, iio)
        self.memory = OnNicMemory(sim, config)
        self.arm = ArmCores(sim, config)
        self._ingress = Store(sim, name="nic.mac")
        self._mac_bytes = 0
        self._mac_pkts = 0
        self.handler = None  # installed by an IOArchitecture
        self.rx_packets = Counter("nic.rx_packets")
        self.rx_bytes = Counter("nic.rx_bytes")
        self.dropped_packets = Counter("nic.dropped")
        self.handled_packets = Counter("nic.handled")
        #: 1 while a packet is inside the handler generator (at most one —
        #: a single firmware pipeline); the audit slack for the window
        #: between entering ``on_packet`` and its admit/drop decision.
        self.handler_inflight = 0
        self.mac_gauge = TimeWeightedGauge("nic.mac_occupancy")
        self._firmware = sim.process(self._firmware_loop(), name="nic-fw")

    def install_handler(self, handler) -> None:
        """Attach the receive-side I/O architecture."""
        self.handler = handler

    def receive(self, packet) -> bool:
        """Called by the network link on packet arrival. Returns False on drop."""
        self.rx_packets.add(1)
        self.rx_bytes.add(packet.size)
        if self.handler is None or self._mac_bytes + packet.size > MAC_BUFFER_BYTES:
            self.dropped_packets.add(1)
            self._notify_drop(packet)
            return False
        self._mac_bytes += packet.size
        self._mac_pkts += 1
        self.mac_gauge.update(self.sim.now, self._mac_bytes)
        self._ingress.try_put(packet)
        return True

    def _notify_drop(self, packet) -> None:
        on_drop = getattr(self.handler, "on_drop", None)
        if on_drop is not None:
            on_drop(packet)

    def _firmware_loop(self):
        while True:
            packet = yield self._ingress.get()
            yield self.config.firmware_overhead
            self.handler_inflight = 1
            yield from self.handler.on_packet(packet)
            self.handler_inflight = 0
            self.handled_packets.add(1)
            self._mac_bytes -= packet.size
            self._mac_pkts -= 1
            self.mac_gauge.update(self.sim.now, self._mac_bytes)
