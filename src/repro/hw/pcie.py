"""PCIe interconnect between the NIC and the host uncore.

Models the three properties the paper's data path depends on:

- **serialisation** — payload plus TLP framing crosses the wire at link
  bandwidth (shared by writes and read completions);
- **posted-write flow control** — writes consume credits returned only when
  the memory controller drains the IIO buffer, so a slow host back-pressures
  the NIC's DMA engine (the §2.2 CPU-bypass degradation mechanism);
- **read round-trips** — host-issued DMA reads of on-NIC memory pay the full
  round-trip latency (~1 µs, §3), the cost CEIO's slow path must amortise.
"""

from __future__ import annotations

from ..sim import Container, Simulator, TokenBucket
from ..sim.stats import Counter, RateMeter
from .config import PcieConfig

__all__ = ["PcieLink"]


class PcieLink:
    def __init__(self, sim: Simulator, config: PcieConfig):
        self.sim = sim
        self.config = config
        # Wire serialisation shared by all transactions.
        self._wire = TokenBucket(sim, rate=config.bandwidth,
                                 burst=max(128 * 1024, config.max_payload * 8),
                                 name="pcie.wire")
        # Posted-write credits in payload bytes.
        self._credits = Container(sim, capacity=config.posted_credits,
                                  init=config.posted_credits,
                                  name="pcie.credits")
        self.bytes_written = Counter("pcie.bytes_written")
        self.bytes_read = Counter("pcie.bytes_read")
        self.bandwidth_meter = RateMeter("pcie.bw", window=10_000.0)
        # Conservation meters (repro.audit): acquired = released +
        # (capacity - level), i.e. no credit is ever minted or destroyed.
        self.credits_acquired = Counter("pcie.credits_acquired")
        self.credits_released = Counter("pcie.credits_released")
        #: Fault seam (repro.faults hw.pcie "latency"): extra in-flight
        #: nanoseconds added to every transaction; 0.0 when healthy.
        self.extra_latency = 0.0

    @property
    def credits_available(self) -> float:
        return self._credits.level

    def utilization(self, now: float) -> float:
        """Recent wire utilisation (HostCC samples this)."""
        return min(1.0, self.bandwidth_meter.rate(now) / self.config.bandwidth)

    def acquire_write_credits(self, payload: int):
        """Process: wait for posted-write credits for ``payload`` bytes."""
        amount = min(payload, self.config.posted_credits)
        yield self._credits.get(amount)
        self.credits_acquired.add(amount)

    def release_write_credits(self, payload: int) -> None:
        """Credits return when the IIO entry drains (memctrl calls this)."""
        amount = min(payload, self.config.posted_credits)
        if self._credits.try_put(amount):
            self.credits_released.add(amount)

    def write_issue(self, payload: int):
        """Process: serialise a posted write onto the wire.

        Returns once the TLPs have been *issued*; the in-flight latency
        (:attr:`PcieConfig.write_latency`) is pipelined and paid by the
        caller via :meth:`write_latency_event`. Credit acquisition is not
        included — the DMA engine acquires credits before committing so a
        stalled host stalls the NIC visibly.
        """
        wire = self.config.wire_bytes(payload)
        yield self._wire.take(wire)
        self.bytes_written.add(payload)
        self.bandwidth_meter.record(self.sim.now, wire)

    def write_latency_event(self):
        """One-way in-flight latency of a posted write, as a yieldable
        bare delay (the kernel's allocation-free timeout idiom)."""
        return self.config.write_latency + self.extra_latency

    def read(self, payload: int):
        """Process: a host-issued DMA read returning ``payload`` bytes.

        The request TLP is negligible; the completion stream pays wire
        serialisation plus the round-trip latency.
        """
        wire = self.config.wire_bytes(payload)
        yield self._wire.take(wire)
        yield self.config.read_latency + self.extra_latency
        self.account_read(payload)

    def set_wire_rate(self, rate: float) -> None:
        """Fault seam (hw.pcie "stall"): retrain the link to ``rate``
        bytes/ns; restored to ``config.bandwidth`` when the window closes."""
        self._wire.set_rate(max(rate, 1e-9))

    def wire_take(self, payload: int):
        """Wire-serialisation event for an overlapped streaming transfer."""
        return self._wire.take(self.config.wire_bytes(payload))

    def account_read(self, payload: int) -> None:
        self.bytes_read.add(payload)
        self.bandwidth_meter.record(self.sim.now,
                                    self.config.wire_bytes(payload))
