"""Hardware configuration matching the paper's testbed (§2.3, §6.1).

Two servers, each: 2× Intel Xeon Silver 4309Y (8 cores/CPU in the SKU used
per socket here, 2.8 GHz base / 3.6 GHz turbo), NVIDIA BlueField-3 on PCIe
5.0×16, 512 GB DDR4-3200 over 8 channels, 200 Gbps link. The LLC is 12 MB
per socket; DDIO is configured to use 6 of 12 ways (§4.1: "the available LLC
size is configured to 6MB (using 6 out of 12 cache ways for DDIO)").

All values are plain dataclass fields so experiments can override any of
them; defaults reproduce the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sim.units import CACHE_LINE, GIB, KIB, MIB, gbps

__all__ = ["CacheConfig", "DramConfig", "PcieConfig", "NicConfig",
           "CpuConfig", "HostConfig"]


@dataclass
class CacheConfig:
    """LLC geometry and timing."""

    #: Total LLC size in bytes (Xeon Silver 4309Y: 12 MB).
    size: int = 12 * MIB
    #: Associativity of the LLC.
    ways: int = 12
    #: Ways reserved for DDIO (I/O writes allocate only here).
    ddio_ways: int = 6
    #: Cache line size in bytes.
    line: int = CACHE_LINE
    #: CPU load-to-use latency for an LLC hit, ns.
    hit_latency: float = 20.0
    #: Extra latency for a miss serviced by DRAM (on top of DRAM queueing), ns.
    miss_penalty: float = 100.0
    #: Use the detailed set-associative model instead of the fast
    #: fully-associative LRU approximation.
    set_associative: bool = False

    @property
    def ddio_capacity(self) -> int:
        """Bytes of LLC the I/O path may occupy."""
        return self.size * self.ddio_ways // self.ways

    @property
    def sets(self) -> int:
        return self.size // (self.line * self.ways)


@dataclass
class DramConfig:
    """DDR4-3200, 8 channels: ~25.6 GB/s per channel theoretical."""

    channels: int = 8
    #: Sustained per-channel bandwidth, bytes/ns (~0.8 of theoretical).
    channel_bandwidth: float = 20.0
    #: Idle access latency (row hit mix), ns.
    base_latency: float = 90.0
    #: Fraction of peak bandwidth achievable by the random, line-granule
    #: access pattern of I/O miss traffic and write-backs (row-buffer
    #: misses dominate). Effective capacity for utilisation/queueing
    #: purposes is ``peak * random_efficiency``.
    random_efficiency: float = 0.25
    total_size: int = 512 * GIB


@dataclass
class PcieConfig:
    """PCIe 5.0 ×16 host interface."""

    #: Usable payload bandwidth after encoding, bytes/ns (~63 GB/s raw;
    #: ~55 GB/s after DLLP/framing).
    bandwidth: float = 55.0
    #: One-way posted-write latency NIC -> host, ns.
    write_latency: float = 300.0
    #: Round-trip latency of a DMA read issued by the host to NIC memory, ns
    #: (§3: "can reach up to 1000ns").
    read_latency: float = 900.0
    #: Max TLP payload per transaction, bytes.
    max_payload: int = 256
    #: TLP + DLLP framing overhead per transaction, bytes.
    tlp_overhead: int = 24
    #: Posted-write flow-control credits, in bytes of payload in flight.
    #: Sized to the IIO buffer so a backed-up IIO visibly exhausts credits.
    posted_credits: int = 256 * KIB

    def wire_bytes(self, payload: int) -> int:
        """Bytes on the PCIe wire for ``payload`` bytes of data."""
        if payload <= 0:
            return 0
        tlps = (payload + self.max_payload - 1) // self.max_payload
        return payload + tlps * self.tlp_overhead


@dataclass
class NicConfig:
    """BlueField-3-like SmartNIC."""

    #: On-NIC DRAM available for elastic buffering, bytes (16 GB on BF-3).
    memory_size: int = 16 * GIB
    #: On-NIC memory access bandwidth, bytes/ns, shared by buffering writes
    #: and drain reads (the BF-3 on-board DDR5 sustains ~50-80 GB/s; a
    #: sustained slow path costs 2x its rate in memory bandwidth).
    memory_bandwidth: float = 50.0
    #: Extra latency for host access to on-NIC memory through the internal
    #: switch, ns (§6.4).
    memory_latency: float = 150.0
    #: Number of ARM control cores available to run NIC-side logic.
    arm_cores: int = 8
    #: Control-loop polling period of an ARM core, ns (steering-counter poll).
    arm_poll_interval: float = 1_000.0
    #: Per-packet firmware processing overhead, ns (descriptor fetch, etc.).
    firmware_overhead: float = 5.0
    #: Rx descriptor ring size per queue (eRPC's default RX ring size; with
    #: 8 flows this is 8 x 4096 buffers — beyond the 6 MB DDIO partition,
    #: which is precisely why the unmanaged baseline thrashes).
    rx_ring_entries: int = 4096
    #: IIO (integrated I/O) buffer capacity on the host uncore, bytes.
    iio_capacity: int = 256 * KIB


@dataclass
class CpuConfig:
    cores: int = 16
    #: Sustained frequency under all-core load, GHz.
    freq_ghz: float = 3.2
    #: L1/L2 hit cost folded into app cycle counts; only LLC/DRAM modeled.

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self.freq_ghz


@dataclass
class HostConfig:
    """Complete receiver-host configuration."""

    cache: CacheConfig = field(default_factory=CacheConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    pcie: PcieConfig = field(default_factory=PcieConfig)
    nic: NicConfig = field(default_factory=NicConfig)
    cpu: CpuConfig = field(default_factory=CpuConfig)
    #: I/O buffer (mbuf) size, bytes — 2 KB for a 1500 B MTU (§4.1).
    io_buf_size: int = 2 * KIB
    #: Network link rate feeding the NIC, bytes/ns (200 Gbps).
    link_rate: float = gbps(200)

    @property
    def total_credits(self) -> int:
        """Eq. (1): C_total = Size_LLC(DDIO) / Size_buf (3000 in the paper)."""
        return self.cache.ddio_capacity // self.io_buf_size


def paper_testbed() -> HostConfig:
    """The exact configuration used in the paper's evaluation."""
    return HostConfig()
