"""Hardware substrate models: LLC/DDIO, DRAM, PCIe, IIO, CPU, SmartNIC."""

from .cache import CacheStats, FullyAssociativeLLC, SetAssociativeLLC, build_llc
from .config import (
    CacheConfig,
    CpuConfig,
    DramConfig,
    HostConfig,
    NicConfig,
    PcieConfig,
    paper_testbed,
)
from .cpu import Core, CpuComplex
from .dram import Dram
from .host import Host
from .iio import IioBuffer, IioEntry
from .memctrl import DmaWrite, MemoryController
from .nic import ArmCores, DmaEngine, Nic, OnNicMemory
from .pcie import PcieLink

__all__ = [
    "CacheConfig", "CpuConfig", "DramConfig", "HostConfig", "NicConfig",
    "PcieConfig", "paper_testbed",
    "CacheStats", "FullyAssociativeLLC", "SetAssociativeLLC", "build_llc",
    "Core", "CpuComplex", "Dram", "Host", "IioBuffer", "IioEntry",
    "DmaWrite", "MemoryController", "ArmCores", "DmaEngine", "Nic",
    "OnNicMemory", "PcieLink",
]
