"""``python -m repro.scenario`` — validate / show / list-templates / run.

Scenario arguments resolve first against the shipped template names,
then as JSON file paths; ``validate`` accepts any number of either.
``run`` compiles and executes a scenario and prints per-host steady-state
metrics as sorted JSON (byte-identical for a fixed seed, any ``--jobs``,
any machine — the determinism contract of ``docs/SCENARIOS.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .schema import ScenarioError, canonical, validate
from .templates import TEMPLATE_NAMES, describe, template

__all__ = ["main"]


def _load(ref: str) -> Dict[str, Any]:
    """Resolve a scenario reference: template name first, then file."""
    if ref in TEMPLATE_NAMES:
        return template(ref)
    try:
        with open(ref, encoding="utf-8") as fh:
            return json.load(fh)
    except FileNotFoundError:
        raise ScenarioError(
            "", f"{ref!r} is neither a shipped template "
            f"({list(TEMPLATE_NAMES)}) nor a readable file") from None
    except json.JSONDecodeError as exc:
        raise ScenarioError("", f"{ref}: not valid JSON ({exc})") from None


def _cmd_list_templates(_args) -> int:
    for name in TEMPLATE_NAMES:
        print(f"{name:22s} {describe(name)}")
    return 0


def _cmd_validate(args) -> int:
    failures = 0
    for ref in args.scenario:
        try:
            normal = validate(_load(ref))
        except ScenarioError as exc:
            print(f"FAIL {ref}: {exc}")
            failures += 1
            continue
        label = normal["name"] or ref
        print(f"ok   {ref}"
              + (f" ({label})" if label != ref else ""))
    return 1 if failures else 0


def _cmd_show(args) -> int:
    try:
        normal = validate(_load(args.scenario))
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.canonical:
        print(canonical(normal))
    else:
        print(json.dumps(normal, indent=2, sort_keys=True))
    return 0


def _cmd_run(args) -> int:
    try:
        normal = validate(_load(args.scenario))
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.seed is not None:
        normal["seed"] = args.seed
    # Imported here so `validate` / `show` stay usable without pulling in
    # the whole simulator stack.
    if args.shards > 1:
        from ..shard import run_sharded
        pool_config = None
        if args.shard_mode == "process":
            from ..runner.shardpool import ShardPoolConfig
            try:
                kill_plan = tuple(
                    (int(w), int(s)) for w, _, s in
                    (spec.partition(":") for spec in args.shard_kill))
            except ValueError:
                print("error: --shard-kill takes WINDOW:SHARD "
                      "(integers)", file=sys.stderr)
                return 1
            pool_config = ShardPoolConfig(
                runlog=args.runlog,
                heartbeat_s=args.shard_heartbeat,
                stall_s=args.shard_stall,
                timeout_s=args.shard_timeout,
                max_restarts=args.shard_restarts,
                kill_plan=kill_plan)
        results = run_sharded(normal, args.shards, mode=args.shard_mode,
                              pool_config=pool_config)
    else:
        from ..workloads.topo_scenario import compile_scenario
        results = compile_scenario(normal).run()
    payload = {"scenario": normal["name"] or args.scenario,
               "seed": normal["seed"],
               "hosts": results}
    print(json.dumps(payload, sort_keys=True))
    if args.strict_audit:
        for host, metrics in sorted(results.items()):
            audit = metrics.get("audit") or {}
            if not audit.get("ok", True):
                print(f"error: conservation violations on {host}: "
                      f"{audit.get('violations')}", file=sys.stderr)
                return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenario",
        description="Validate, inspect, and run declarative scenarios.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-templates",
                   help="list shipped scenario templates"
                   ).set_defaults(func=_cmd_list_templates)

    p_validate = sub.add_parser(
        "validate", help="validate templates or scenario files")
    p_validate.add_argument("scenario", nargs="+",
                            help="template name or JSON file")
    p_validate.set_defaults(func=_cmd_validate)

    p_show = sub.add_parser(
        "show", help="print a scenario's normalised form")
    p_show.add_argument("scenario", help="template name or JSON file")
    p_show.add_argument("--canonical", action="store_true",
                        help="compact canonical JSON (the cache-key form)")
    p_show.set_defaults(func=_cmd_show)

    p_run = sub.add_parser(
        "run", help="compile and run a scenario, print per-host metrics")
    p_run.add_argument("scenario", help="template name or JSON file")
    p_run.add_argument("--seed", type=int, default=None,
                       help="override the scenario's seed")
    p_run.add_argument("--strict-audit", action="store_true",
                       help="exit non-zero on conservation violations")
    p_run.add_argument("--shards", type=int, default=1,
                       help="partition the fabric into N conservative "
                            "shard kernels (docs/SHARDING.md); output "
                            "is byte-identical to --shards 1")
    p_run.add_argument("--shard-mode", choices=("inline", "process"),
                       default="inline",
                       help="advance shard kernels in this process "
                            "(inline) or one worker process each")
    p_run.add_argument("--runlog", default=None,
                       help="append shard pool events to this "
                            "runlog.jsonl (process mode only)")
    p_run.add_argument("--shard-heartbeat", type=float, default=5.0,
                       metavar="S",
                       help="seconds between shard heartbeat events "
                            "in the runlog (process mode)")
    p_run.add_argument("--shard-stall", type=float, default=30.0,
                       metavar="S",
                       help="seconds of worker silence before a "
                            "shard_stall event is logged (process mode)")
    p_run.add_argument("--shard-timeout", type=float, default=None,
                       metavar="S",
                       help="hard per-reply budget in seconds; an "
                            "overrunning worker is killed and recovered "
                            "by journal replay (process mode; default: "
                            "wait forever, logging stalls)")
    p_run.add_argument("--shard-restarts", type=int, default=2,
                       metavar="N",
                       help="per-shard restart budget before the run "
                            "fails (process mode)")
    p_run.add_argument("--shard-kill", action="append", default=[],
                       metavar="WINDOW:SHARD",
                       help="chaos hook: kill SHARD's worker at barrier "
                            "WINDOW (0-based; repeatable; process mode) "
                            "— the run must still complete byte-"
                            "identically via journal replay")
    p_run.set_defaults(func=_cmd_run)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)
