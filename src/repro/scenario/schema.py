"""The declarative scenario schema: validation, normalisation, canonical
serialisation.

A *scenario* is a JSON-safe dict describing one complete multi-host
experiment: a topology (by builder kind + parameters), per-host receiver
stacks (I/O architecture + config overrides), tenants (workload mixes
over erpc/kvstore/linefs flows), an optional fault plan
(:mod:`repro.faults` spec dicts, with the multi-host ``host`` qualifier),
and a measurement window. The schema is strict: unknown keys anywhere
are rejected, every error is *path-addressed* (``tenants[2].payload:
must be a positive integer``), and :func:`normalize` fills every default
so :func:`canonical` round-trips byte-identically::

    canonical(json.loads(canonical(spec))) == canonical(spec)

Compilation into a wired fabric is
:class:`repro.workloads.topo_scenario.TopoScenario`'s job; this module
depends only on :mod:`repro.topo` (pure graph construction — validating
a scenario never touches the simulator).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..faults import FaultPlan, FaultSpec
from ..sim.units import US, gbps
from ..topo import Topology, fat_tree, leaf_spine, star, two_host
from ..topo.graph import (DEFAULT_BUFFER, DEFAULT_DELAY,
                          DEFAULT_ECN_THRESHOLD)

__all__ = ["ScenarioError", "SCHEMA_VERSION", "ARCHES", "WORKLOADS",
           "TOPOLOGY_KINDS", "validate", "normalize", "canonical",
           "build_topology", "fault_plan_of"]

SCHEMA_VERSION = 1

ARCHES: Tuple[str, ...] = ("baseline", "hostcc", "shring", "mpq", "ceio")
WORKLOADS: Tuple[str, ...] = ("erpc", "kvstore", "linefs")
TOPOLOGY_KINDS: Tuple[str, ...] = ("two_host", "star", "leaf_spine",
                                   "fat_tree")

#: Builder parameters per topology kind: name -> (required, default).
#: Every value is a positive integer.
_KIND_PARAMS: Dict[str, Tuple[Tuple[str, Optional[int]], ...]] = {  # repro: noqa=D106 -- registry, never mutated
    "two_host": (),
    "star": (("n_clients", None), ("n_servers", 1)),
    "leaf_spine": (("leaves", None), ("spines", None),
                   ("hosts_per_leaf", None), ("servers_per_leaf", 1)),
    "fat_tree": (("k", None), ("hosts_per_edge", 1),
                 ("servers_per_pod", 1)),
}

_LINK_DEFAULTS: Tuple[Tuple[str, Any], ...] = (
    ("rate_gbps", 200.0),
    ("delay_us", DEFAULT_DELAY / US),
    ("ack_delay_us", None),
    ("buffer", DEFAULT_BUFFER),
    ("ecn_threshold", DEFAULT_ECN_THRESHOLD),
)

_HOST_DEFAULTS: Tuple[Tuple[str, Any], ...] = (
    ("arch", "ceio"),
    ("scale", 4),
    ("io_buf_size", 2048),
    ("set_associative_cache", False),
    ("cores", None),
)

_TENANT_DEFAULTS: Tuple[Tuple[str, Any], ...] = (
    ("host", None),
    ("flows", 1),
    ("payload", 144),
    ("transport", "dpdk"),
    ("outstanding", 96),
    ("open_loop_mpps", None),
    ("chunk_packets", 32),
    ("app_extra_cycles", 0.0),
    ("sources", ()),
)

_MEASURE_DEFAULTS: Tuple[Tuple[str, Any], ...] = (
    ("warmup_us", 400.0),
    ("duration_us", 600.0),
)

#: Per-host CEIO override knobs (overload guardrails). The ``ceio`` host
#: key is OMITTED from the normal form when absent — pre-existing
#: scenarios keep their canonical bytes (and runner cache keys).
_CEIO_DEFAULTS: Tuple[Tuple[str, Any], ...] = (
    ("admission_control", False),
    ("admission_ring_limit", 256),
    ("admission_slow_bytes_limit", 96 * 1024),
)

#: Per-tenant demand-block defaults (inside ``demand.tenants.<name>``).
_DEMAND_TENANT_DEFAULTS: Tuple[Tuple[str, Any], ...] = (
    ("arrivals", "poisson"),
    ("mean_messages", 20.0),
    ("shape", 1.5),
    ("intra_gap_us", 2.0),
    ("slo", {}),
)

_SLO_KEYS = ("p99_us", "p999_us", "p9999_us", "min_goodput_mpps")
_ARRIVAL_KINDS = ("poisson", "sessions")


class ScenarioError(ValueError):
    """A validation failure, addressed by path into the scenario dict."""

    def __init__(self, path: str, message: str):
        self.path = path
        self.message = message
        super().__init__(f"{path}: {message}" if path else message)


def _expect_mapping(value: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise ScenarioError(path, "must be an object")
    return value


def _reject_unknown(data: Mapping[str, Any], allowed, path: str) -> None:
    for key in data:
        if key not in allowed:
            raise ScenarioError(f"{path}.{key}" if path else str(key),
                                f"unknown key (allowed: {sorted(allowed)})")


def _pos_int(value: Any, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ScenarioError(path, "must be a positive integer")
    return value


def _nonneg_number(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or value < 0:
        raise ScenarioError(path, "must be a non-negative number")
    return float(value)


def _pos_number(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or value <= 0:
        raise ScenarioError(path, "must be a positive number")
    return float(value)


def _string(value: Any, path: str) -> str:
    if not isinstance(value, str):
        raise ScenarioError(path, "must be a string")
    return value


def _choice(value: Any, options, path: str) -> str:
    value = _string(value, path)
    if value not in options:
        raise ScenarioError(path, f"must be one of {list(options)}")
    return value


# ----------------------------------------------------------------------
# Section validators (each returns the normalised section)
# ----------------------------------------------------------------------
def _validate_topology(data: Any) -> Dict[str, Any]:
    data = _expect_mapping(data, "topology")
    _reject_unknown(data, ("kind", "params", "links"), "topology")
    if "kind" not in data:
        raise ScenarioError("topology.kind", "is required")
    kind = _choice(data["kind"], TOPOLOGY_KINDS, "topology.kind")
    raw_params = _expect_mapping(data.get("params", {}), "topology.params")
    spec = dict(_KIND_PARAMS[kind])
    _reject_unknown(raw_params, tuple(spec), "topology.params")
    params: Dict[str, int] = {}
    for name, default in _KIND_PARAMS[kind]:
        if name in raw_params:
            params[name] = _pos_int(raw_params[name],
                                    f"topology.params.{name}")
        elif default is None:
            raise ScenarioError(f"topology.params.{name}",
                                f"is required for kind {kind!r}")
        else:
            params[name] = default
    raw_links = _expect_mapping(data.get("links", {}), "topology.links")
    _reject_unknown(raw_links, tuple(n for n, _ in _LINK_DEFAULTS),
                    "topology.links")
    links: Dict[str, Any] = {}
    for name, default in _LINK_DEFAULTS:
        value = raw_links.get(name, default)
        path = f"topology.links.{name}"
        if name == "ack_delay_us":
            links[name] = (None if value is None
                           else _nonneg_number(value, path))
        elif name in ("buffer", "ecn_threshold"):
            links[name] = _pos_int(value, path)
        else:
            links[name] = _pos_number(value, path)
    return {"kind": kind, "params": params, "links": links}


def _validate_ceio_override(data: Any, path: str) -> Dict[str, Any]:
    """Per-host CEIO knob override: fully defaulted when present."""
    data = _expect_mapping(data, path)
    _reject_unknown(data, tuple(n for n, _ in _CEIO_DEFAULTS), path)
    normal: Dict[str, Any] = {}
    for name, default in _CEIO_DEFAULTS:
        value = data.get(name, default)
        sub = f"{path}.{name}"
        if name == "admission_control":
            if not isinstance(value, bool):
                raise ScenarioError(sub, "must be a boolean")
            normal[name] = value
        else:
            normal[name] = _pos_int(value, sub)
    return normal


def _validate_hosts(data: Any, servers: List[str]) -> Dict[str, Any]:
    data = _expect_mapping(data if data is not None else {}, "hosts")
    hosts: Dict[str, Any] = {}
    allowed_keys = tuple(n for n, _ in _HOST_DEFAULTS) + ("ceio",)
    for host in data:
        path = f"hosts.{host}"
        if host != "*" and host not in servers:
            raise ScenarioError(
                path, f"unknown server host (servers: {servers})")
        entry = _expect_mapping(data[host], path)
        _reject_unknown(entry, allowed_keys, path)
        normal: Dict[str, Any] = {}
        if "ceio" in entry:
            normal["ceio"] = _validate_ceio_override(entry["ceio"],
                                                     f"{path}.ceio")
        for name, default in _HOST_DEFAULTS:
            value = entry.get(name, default)
            sub = f"{path}.{name}"
            if name == "arch":
                normal[name] = _choice(value, ARCHES, sub)
            elif name == "set_associative_cache":
                if not isinstance(value, bool):
                    raise ScenarioError(sub, "must be a boolean")
                normal[name] = value
            elif name == "cores":
                # None = keep the testbed's core count (HostConfig default).
                normal[name] = (None if value is None
                                else _pos_int(value, sub))
            else:
                normal[name] = _pos_int(value, sub)
        hosts[host] = normal
    if "*" not in hosts:
        hosts["*"] = dict(_HOST_DEFAULTS)
    return {name: hosts[name] for name in sorted(hosts)}


def _validate_tenants(data: Any, topo: Topology) -> List[Dict[str, Any]]:
    if not isinstance(data, list) or not data:
        raise ScenarioError("tenants", "must be a non-empty array")
    servers = [spec.name for spec in topo.server_hosts]
    host_names = sorted(topo.hosts)
    tenants: List[Dict[str, Any]] = []
    seen_names = set()
    allowed = ("name", "workload") + tuple(n for n, _ in _TENANT_DEFAULTS)
    for i, raw in enumerate(data):
        path = f"tenants[{i}]"
        raw = _expect_mapping(raw, path)
        _reject_unknown(raw, allowed, path)
        if "name" not in raw:
            raise ScenarioError(f"{path}.name", "is required")
        name = _string(raw["name"], f"{path}.name")
        if not name or name in seen_names:
            raise ScenarioError(f"{path}.name",
                                "must be unique and non-empty")
        seen_names.add(name)
        if "workload" not in raw:
            raise ScenarioError(f"{path}.workload", "is required")
        workload = _choice(raw["workload"], WORKLOADS, f"{path}.workload")
        tenant: Dict[str, Any] = {"name": name, "workload": workload}
        for key, default in _TENANT_DEFAULTS:
            value = raw.get(key, default)
            sub = f"{path}.{key}"
            if key == "host":
                if value is None:
                    value = servers[0]
                elif _string(value, sub) not in servers:
                    raise ScenarioError(
                        sub, f"unknown server host (servers: {servers})")
            elif key == "transport":
                value = _choice(value, ("dpdk", "rdma"), sub)
            elif key == "open_loop_mpps":
                value = None if value is None else _pos_number(value, sub)
            elif key == "app_extra_cycles":
                value = _nonneg_number(value, sub)
            elif key == "sources":
                if not isinstance(value, (list, tuple)):
                    raise ScenarioError(sub, "must be an array of hosts")
                value = [_string(v, f"{sub}[{j}]")
                         for j, v in enumerate(value)]
                for j, src in enumerate(value):
                    if src not in topo.hosts:
                        raise ScenarioError(
                            f"{sub}[{j}]",
                            f"unknown host (hosts: {host_names})")
            else:
                value = _pos_int(value, sub)
            tenant[key] = value
        tenants.append(tenant)
    return tenants


def _validate_fault_plan(data: Any, servers: List[str]
                         ) -> List[Dict[str, Any]]:
    if data is None:
        return []
    if not isinstance(data, list):
        raise ScenarioError("fault_plan", "must be an array of fault specs")
    specs: List[Dict[str, Any]] = []
    for i, raw in enumerate(data):
        path = f"fault_plan[{i}]"
        raw = _expect_mapping(raw, path)
        try:
            spec = FaultSpec.from_dict(raw)
        except (KeyError, TypeError, ValueError) as exc:
            raise ScenarioError(path, str(exc)) from None
        if spec.host is not None and spec.host not in servers:
            raise ScenarioError(f"{path}.host",
                                f"unknown server host (servers: {servers})")
        specs.append(spec.to_dict())
    return specs


def _validate_profile(data: Any, path: str) -> Dict[str, Any]:
    """One rate profile, normalised to its ``to_dict`` form."""
    from ..demand.profiles import PROFILE_KINDS, profile_from_dict

    data = _expect_mapping(data, path)
    if "kind" not in data:
        raise ScenarioError(f"{path}.kind", "is required")
    kind = _choice(data["kind"], PROFILE_KINDS, f"{path}.kind")
    if kind == "steady":
        _reject_unknown(data, ("kind", "rate_mpps"), path)
        if "rate_mpps" not in data:
            raise ScenarioError(f"{path}.rate_mpps", "is required")
        _pos_number(data["rate_mpps"], f"{path}.rate_mpps")
    elif kind == "diurnal":
        _reject_unknown(data, ("kind", "base_mpps", "amplitude",
                               "period_us", "phase_us"), path)
        for key in ("base_mpps", "amplitude", "period_us"):
            if key not in data:
                raise ScenarioError(f"{path}.{key}", "is required")
        _pos_number(data["base_mpps"], f"{path}.base_mpps")
        amp = _nonneg_number(data["amplitude"], f"{path}.amplitude")
        if amp >= 1.0:
            raise ScenarioError(f"{path}.amplitude", "must be in [0, 1)")
        _pos_number(data["period_us"], f"{path}.period_us")
        if "phase_us" in data:
            _nonneg_number(data["phase_us"], f"{path}.phase_us")
    elif kind == "flash_crowd":
        _reject_unknown(data, ("kind", "base_mpps", "peak_mpps", "start_us",
                               "ramp_us", "hold_us", "decay_us"), path)
        for key in ("base_mpps", "peak_mpps", "start_us", "ramp_us",
                    "hold_us", "decay_us"):
            if key not in data:
                raise ScenarioError(f"{path}.{key}", "is required")
        base = _pos_number(data["base_mpps"], f"{path}.base_mpps")
        peak = _pos_number(data["peak_mpps"], f"{path}.peak_mpps")
        if peak < base:
            raise ScenarioError(f"{path}.peak_mpps",
                                "must be >= base_mpps")
        _nonneg_number(data["start_us"], f"{path}.start_us")
        _pos_number(data["ramp_us"], f"{path}.ramp_us")
        _nonneg_number(data["hold_us"], f"{path}.hold_us")
        _pos_number(data["decay_us"], f"{path}.decay_us")
    else:  # windows
        _reject_unknown(data, ("kind", "windows"), path)
        raw = data.get("windows")
        if not isinstance(raw, list) or not raw:
            raise ScenarioError(f"{path}.windows",
                                "must be a non-empty array of windows")
        spans = []
        for j, win in enumerate(raw):
            sub = f"{path}.windows[{j}]"
            win = _expect_mapping(win, sub)
            _reject_unknown(win, ("start_us", "end_us", "rate_mpps"), sub)
            for key in ("start_us", "end_us", "rate_mpps"):
                if key not in win:
                    raise ScenarioError(f"{sub}.{key}", "is required")
            start = _nonneg_number(win["start_us"], f"{sub}.start_us")
            end = _pos_number(win["end_us"], f"{sub}.end_us")
            if end <= start:
                raise ScenarioError(f"{sub}.end_us",
                                    "must exceed start_us")
            _nonneg_number(win["rate_mpps"], f"{sub}.rate_mpps")
            spans.append((start, end, j))
        spans.sort()
        for (s0, e0, j0), (s1, _e1, j1) in zip(spans, spans[1:]):
            if s1 < e0:
                raise ScenarioError(
                    f"{path}.windows[{j1}]",
                    f"overlaps windows[{j0}] "
                    f"([{s0}, {e0}) vs start {s1})")
        if all(win["rate_mpps"] == 0 for win in raw):
            raise ScenarioError(f"{path}.windows",
                                "need at least one positive rate")
    try:
        profile = profile_from_dict(data)
    except (KeyError, TypeError, ValueError) as exc:
        raise ScenarioError(path, str(exc)) from None
    return profile.to_dict()


def _validate_demand(data: Any,
                     tenants: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The optional open-loop ``demand`` block (see docs/WORKLOADS.md).

    Omitted entirely from the normal form when absent, so pre-existing
    closed-loop scenarios keep their canonical bytes and cache keys.
    """
    data = _expect_mapping(data, "demand")
    _reject_unknown(data, ("window_us", "profiles", "tenants"), "demand")
    window_us = _pos_number(data.get("window_us", 50.0), "demand.window_us")
    if "profiles" not in data:
        raise ScenarioError("demand.profiles", "is required")
    raw_profiles = _expect_mapping(data["profiles"], "demand.profiles")
    if not raw_profiles:
        raise ScenarioError("demand.profiles", "must not be empty")
    profiles = {
        _string(name, f"demand.profiles.{name}"):
            _validate_profile(raw_profiles[name], f"demand.profiles.{name}")
        for name in raw_profiles
    }
    if "tenants" not in data:
        raise ScenarioError("demand.tenants", "is required")
    raw_tenants = _expect_mapping(data["tenants"], "demand.tenants")
    if not raw_tenants:
        raise ScenarioError("demand.tenants", "must not be empty")
    tenant_names = [t["name"] for t in tenants]
    allowed = ("profile",) + tuple(n for n, _ in _DEMAND_TENANT_DEFAULTS)
    normal_tenants: Dict[str, Any] = {}
    for name in raw_tenants:
        path = f"demand.tenants.{name}"
        if name not in tenant_names:
            raise ScenarioError(
                path, f"unknown tenant (tenants: {sorted(tenant_names)})")
        entry = _expect_mapping(raw_tenants[name], path)
        _reject_unknown(entry, allowed, path)
        if "profile" not in entry:
            raise ScenarioError(f"{path}.profile", "is required")
        profile = _string(entry["profile"], f"{path}.profile")
        if profile not in profiles:
            raise ScenarioError(
                f"{path}.profile",
                f"unknown profile (profiles: {sorted(profiles)})")
        normal: Dict[str, Any] = {"profile": profile}
        for key, default in _DEMAND_TENANT_DEFAULTS:
            value = entry.get(key, default)
            sub = f"{path}.{key}"
            if key == "arrivals":
                normal[key] = _choice(value, _ARRIVAL_KINDS, sub)
            elif key == "shape":
                shape = _pos_number(value, sub)
                if shape <= 1.0:
                    raise ScenarioError(
                        sub, "must exceed 1 (finite Pareto mean)")
                normal[key] = shape
            elif key == "slo":
                slo = _expect_mapping(value, sub)
                _reject_unknown(slo, _SLO_KEYS, sub)
                normal[key] = {k: _pos_number(slo[k], f"{sub}.{k}")
                               for k in sorted(slo)}
            else:
                normal[key] = _pos_number(value, sub)
        normal_tenants[name] = normal
    return {
        "window_us": window_us,
        "profiles": {name: profiles[name] for name in sorted(profiles)},
        "tenants": {name: normal_tenants[name]
                    for name in sorted(normal_tenants)},
    }


def _validate_measure(data: Any) -> Dict[str, float]:
    data = _expect_mapping(data if data is not None else {}, "measure")
    _reject_unknown(data, tuple(n for n, _ in _MEASURE_DEFAULTS), "measure")
    measure = {}
    for name, default in _MEASURE_DEFAULTS:
        measure[name] = _pos_number(data.get(name, default),
                                    f"measure.{name}")
    return measure


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
_TOP_KEYS = ("version", "name", "seed", "topology", "hosts", "tenants",
             "fault_plan", "measure", "demand")


def validate(data: Any) -> Dict[str, Any]:
    """Validate ``data`` and return its fully-defaulted normal form.

    Raises :class:`ScenarioError` with a path-addressed message on the
    first problem found.
    """
    data = _expect_mapping(data, "")
    _reject_unknown(data, _TOP_KEYS, "")
    version = data.get("version")
    if version != SCHEMA_VERSION:
        raise ScenarioError(
            "version", f"must be {SCHEMA_VERSION} (got {version!r})")
    name = _string(data.get("name", ""), "name")
    seed = data.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ScenarioError("seed", "must be an integer")
    topology = _validate_topology(data.get("topology"))
    topo = build_topology({"topology": topology})
    servers = [spec.name for spec in topo.server_hosts]
    if "tenants" not in data:
        raise ScenarioError("tenants", "is required")
    tenants = _validate_tenants(data["tenants"], topo)
    normal = {
        "version": SCHEMA_VERSION,
        "name": name,
        "seed": seed,
        "topology": topology,
        "hosts": _validate_hosts(data.get("hosts"), servers),
        "tenants": tenants,
        "fault_plan": _validate_fault_plan(data.get("fault_plan"), servers),
        "measure": _validate_measure(data.get("measure")),
    }
    # Optional open-loop demand: present in the normal form ONLY when the
    # input declares it (closed-loop canonical bytes must not move).
    if "demand" in data and data["demand"] is not None:
        normal["demand"] = _validate_demand(data["demand"], tenants)
    return normal


def normalize(data: Any) -> Dict[str, Any]:
    """Alias of :func:`validate` (validation *is* normalisation)."""
    return validate(data)


def canonical(data: Any) -> str:
    """Deterministic compact JSON of the normal form — the runner's
    ``scenario=`` identity tag and the round-trip fixed point."""
    return json.dumps(validate(data), sort_keys=True,
                      separators=(",", ":"))


def build_topology(data: Mapping[str, Any]) -> Topology:
    """Build the :class:`Topology` a (partially) validated scenario
    names. Accepts either a full scenario or ``{"topology": {...}}``."""
    section = data["topology"]
    kind = section["kind"]
    params = dict(section.get("params", {}))
    links = dict(_LINK_DEFAULTS)
    links.update(section.get("links", {}))
    common = {
        "rate": gbps(links["rate_gbps"]),
        "delay": links["delay_us"] * US,
        "ack_delay": (None if links["ack_delay_us"] is None
                      else links["ack_delay_us"] * US),
        "buffer": links["buffer"],
        "ecn_threshold": links["ecn_threshold"],
    }
    builder = {"two_host": two_host, "star": star,
               "leaf_spine": leaf_spine, "fat_tree": fat_tree}[kind]
    return builder(**params, **common)


def fault_plan_of(normal: Mapping[str, Any]) -> FaultPlan:
    """The validated scenario's fault plan (possibly empty)."""
    return FaultPlan.from_dicts(normal.get("fault_plan", ()))
