"""Declarative scenarios: schema, templates, CLI (``docs/SCENARIOS.md``).

A scenario is a validated JSON/dict description of one multi-host
experiment — topology, per-host I/O architectures, tenants, fault plan,
measurement window. :func:`validate` normalises (path-addressed errors),
:func:`canonical` serialises deterministically (the runner's
``scenario=`` cache-key component), :func:`template` resolves the
shipped named scenarios, and ``python -m repro.scenario`` exposes
``validate`` / ``show`` / ``list-templates`` / ``run``.
"""

from __future__ import annotations

from .schema import (ARCHES, SCHEMA_VERSION, TOPOLOGY_KINDS, WORKLOADS,
                     ScenarioError, build_topology, canonical,
                     fault_plan_of, normalize, validate)
from .templates import TEMPLATE_NAMES, describe, incast_template, template

__all__ = ["ScenarioError", "SCHEMA_VERSION", "ARCHES", "WORKLOADS",
           "TOPOLOGY_KINDS", "validate", "normalize", "canonical",
           "build_topology", "fault_plan_of",
           "TEMPLATE_NAMES", "template", "describe", "incast_template"]
