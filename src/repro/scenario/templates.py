"""Named scenario templates (see ``docs/SCENARIOS.md`` for the catalog).

Each template function returns a *fresh* scenario dict (callers may
mutate their copy freely); :func:`template` resolves by name and
:data:`TEMPLATE_NAMES` lists what ships. All templates validate against
:mod:`repro.scenario.schema` — CI runs ``python -m repro.scenario
validate`` over every one of them.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

__all__ = ["TEMPLATE_NAMES", "template", "describe", "incast_template"]


def _paper_baseline() -> Dict[str, Any]:
    """The paper's two-server testbed: 8 closed-loop KV flows into one
    CEIO receiver through a single ToR — the declarative twin of the
    hand-built ``ScenarioConfig()`` defaults."""
    return {
        "version": 1,
        "name": "paper-baseline",
        "seed": 0,
        "topology": {"kind": "two_host"},
        "hosts": {"*": {"arch": "ceio"}},
        "tenants": [
            {"name": "kv", "workload": "kvstore", "flows": 8,
             "payload": 144, "outstanding": 96},
        ],
        "measure": {"warmup_us": 400.0, "duration_us": 600.0},
    }


def _incast(fan_in: int) -> Dict[str, Any]:
    # The receiver dedicates one eRPC core per incoming flow, so wide
    # fan-ins widen the core pool past the testbed's 16 (the cache, not
    # the CPU, must be the bottleneck under study).
    return {
        "version": 1,
        "name": f"incast-{fan_in}",
        "seed": 0,
        "topology": {"kind": "star",
                     "params": {"n_clients": fan_in, "n_servers": 1}},
        "hosts": {"*": {"arch": "ceio", "cores": max(16, fan_in + 2)}},
        "tenants": [
            {"name": "kv", "workload": "kvstore", "host": "s0",
             "flows": fan_in, "payload": 144, "outstanding": 24},
        ],
        "measure": {"warmup_us": 400.0, "duration_us": 600.0},
    }


def _incast_32() -> Dict[str, Any]:
    """32-way incast: one KV flow per client host fanning into a single
    receiver — the RDCA-motivated fan-in stress the two-server testbed
    cannot express."""
    return _incast(32)


def _multi_tenant_ddio() -> Dict[str, Any]:
    """Two receiver hosts behind one ToR, different architectures, mixed
    latency-sensitive (KV) and bandwidth-hungry (LineFS) tenants — the
    5GC2ache-style cross-tenant DDIO contention study."""
    return {
        "version": 1,
        "name": "multi-tenant-ddio",
        "seed": 0,
        "topology": {"kind": "star",
                     "params": {"n_clients": 8, "n_servers": 2}},
        "hosts": {
            "*": {"arch": "ceio"},
            "s1": {"arch": "shring"},
        },
        "tenants": [
            {"name": "kv0", "workload": "kvstore", "host": "s0",
             "flows": 4, "payload": 144, "outstanding": 48},
            {"name": "dfs0", "workload": "linefs", "host": "s0",
             "flows": 2, "payload": 1024, "chunk_packets": 32,
             "outstanding": 12},
            {"name": "kv1", "workload": "kvstore", "host": "s1",
             "flows": 4, "payload": 144, "outstanding": 48},
            {"name": "dfs1", "workload": "linefs", "host": "s1",
             "flows": 2, "payload": 1024, "chunk_packets": 32,
             "outstanding": 12},
        ],
        "measure": {"warmup_us": 400.0, "duration_us": 600.0},
    }


def _all_to_all_storage() -> Dict[str, Any]:
    """A 2x2 leaf-spine with one storage server per leaf: every client
    streams LineFS chunks to every server, crossing the spine fabric —
    the all-to-all pattern that exercises multi-hop routing, ECMP, and
    the interior switch-port conservation accounts."""
    return {
        "version": 1,
        "name": "all-to-all-storage",
        "seed": 0,
        "topology": {"kind": "leaf_spine",
                     "params": {"leaves": 2, "spines": 2,
                                "hosts_per_leaf": 4,
                                "servers_per_leaf": 1}},
        "hosts": {"*": {"arch": "ceio"}},
        "tenants": [
            {"name": "dfs-l0", "workload": "linefs", "host": "l0s0",
             "flows": 6, "payload": 1024, "chunk_packets": 32,
             "outstanding": 12},
            {"name": "dfs-l1", "workload": "linefs", "host": "l1s0",
             "flows": 6, "payload": 1024, "chunk_packets": 32,
             "outstanding": 12},
            {"name": "kv-l0", "workload": "kvstore", "host": "l0s0",
             "flows": 2, "payload": 144, "outstanding": 48},
        ],
        "measure": {"warmup_us": 400.0, "duration_us": 600.0},
    }


def _flash_crowd() -> Dict[str, Any]:
    """Open-loop flash crowd into a guarded CEIO receiver: demand ramps
    32 -> 128 Mpps against an ~81 Mpps service ceiling while admission
    control sheds the excess, holding the KV tenant's p99.9 flat (the
    ``capacity`` experiment runs the no-guardrail ablation of this same
    scenario to show the diverging tail)."""
    return {
        "version": 1,
        "name": "flash-crowd",
        "seed": 7,
        "topology": {"kind": "star",
                     "params": {"n_clients": 8, "n_servers": 1}},
        "hosts": {"*": {"arch": "ceio", "cores": 16,
                        "ceio": {"admission_control": True,
                                 "admission_ring_limit": 64}}},
        "tenants": [
            {"name": "kv", "workload": "kvstore", "host": "s0",
             "flows": 8, "payload": 144},
            {"name": "bg", "workload": "kvstore", "host": "s0",
             "flows": 2, "payload": 144},
        ],
        "demand": {
            "window_us": 25.0,
            "profiles": {
                "crowd": {"kind": "flash_crowd", "base_mpps": 32.0,
                          "peak_mpps": 128.0, "start_us": 200.0,
                          "ramp_us": 50.0, "hold_us": 150.0,
                          "decay_us": 50.0},
                "trickle": {"kind": "steady", "rate_mpps": 2.0},
            },
            "tenants": {
                "kv": {"profile": "crowd", "slo": {"p999_us": 50.0}},
                "bg": {"profile": "trickle", "arrivals": "sessions",
                       "mean_messages": 20.0, "shape": 1.5,
                       "intra_gap_us": 2.0},
            },
        },
        "measure": {"warmup_us": 150.0, "duration_us": 300.0},
    }


#: (name, builder) in catalog order.
_BUILDERS: Tuple[Tuple[str, Any], ...] = (
    ("paper-baseline", _paper_baseline),
    ("incast-32", _incast_32),
    ("multi-tenant-ddio", _multi_tenant_ddio),
    ("all-to-all-storage", _all_to_all_storage),
    ("flash-crowd", _flash_crowd),
)

TEMPLATE_NAMES: Tuple[str, ...] = tuple(name for name, _ in _BUILDERS)


def template(name: str) -> Dict[str, Any]:
    """A fresh copy of the named template scenario."""
    for candidate, builder in _BUILDERS:
        if candidate == name:
            return builder()
    raise KeyError(f"unknown scenario template {name!r}; "
                   f"choose from {list(TEMPLATE_NAMES)}")


def describe(name: str) -> str:
    """The template's one-line description (its builder's docstring)."""
    for candidate, builder in _BUILDERS:
        if candidate == name:
            return (builder.__doc__ or "").strip().split("\n")[0]
    raise KeyError(f"unknown scenario template {name!r}")


def incast_template(fan_in: int) -> Dict[str, Any]:
    """The incast family parameterised by fan-in degree (the
    ``experiments/incast.py`` sweep axis); ``incast_template(32)`` is
    exactly the shipped ``incast-32`` template."""
    return _incast(fan_in)
