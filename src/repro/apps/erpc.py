"""An eRPC-style RPC framework (Kalia et al., NSDI 2019 — §6.1's key-value
server is built on this).

Design points mirrored from eRPC:

- **poll-mode event loop** pinned to one core per flow (§2.3: "we dedicate
  one CPU core to each I/O flow");
- **zero-copy request processing** — the handler reads the request payload
  straight from the I/O buffer (this is why eRPC outperforms LineFS in
  Figure 9 and why the paper's §6.4 lesson says zero-copy is essential);
- runs over either a DPDK or an RDMA transport; the RDMA transport pays a
  small extra per-packet cost (doorbells/CQE handling), matching the
  slightly lower eRPC(RDMA) curves in Figure 9b.

The response path transmits on the uncontended reverse link: the server
charges TX CPU cycles and counts the packet, and the client-side latency
is the request's network+host path plus the fixed reverse delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..frameworks.dpdk import EthDev, RX_BURST_MAX
from ..hw.cpu import Core
from ..io_arch.base import IOArchitecture, RxRecord
from ..net.packet import Flow
from ..sim.stats import Counter

__all__ = ["ErpcConfig", "RequestContext", "ErpcServer"]


@dataclass
class ErpcConfig:
    #: Transport: "dpdk" or "rdma".
    transport: str = "dpdk"
    #: eRPC's zero-copy receive path (§6.4 calls it essential): handlers
    #: read the request in place. False adds a per-request copy into an
    #: application buffer — the LineFS-style pattern that §6.4 blames for
    #: its residual ~10% miss rate and lower ceiling.
    zero_copy: bool = True
    #: Per-request RPC framework cycles (dispatch, session lookup, sslot).
    rpc_overhead_cycles: float = 90.0
    #: Extra per-packet cycles on the RDMA transport (doorbell + CQE).
    rdma_extra_cycles: float = 60.0
    #: TX-side cycles to enqueue the response.
    tx_cycles: float = 45.0
    #: Idle poll gap when the RX ring is empty, ns.
    poll_gap: float = 120.0
    rx_burst: int = RX_BURST_MAX


class RequestContext:
    """Handler view of one request (zero-copy: points at the I/O buffer)."""

    __slots__ = ("record", "payload")

    def __init__(self, record: RxRecord):
        self.record = record
        self.payload = record.packet.payload


class ErpcServer:
    """One RPC event loop: a flow, a dedicated core, and a handler.

    ``handler(ctx) -> cycles`` returns the application cycles to charge
    (the handler may also do real Python work, e.g. the KV store's dict
    operations).
    """

    def __init__(self, arch: IOArchitecture, flow: Flow, core: Core,
                 handler: Callable[[RequestContext], float],
                 config: Optional[ErpcConfig] = None,
                 ethdev: Optional[EthDev] = None):
        if config is not None and config.transport not in ("dpdk", "rdma"):
            raise ValueError(f"unknown transport {config.transport!r}")
        self.arch = arch
        self.sim = arch.sim
        self.flow = flow
        self.core = core
        self.handler = handler
        self.config = config or ErpcConfig()
        self.ethdev = ethdev or EthDev(arch)
        self.ethdev.rx_queue_setup(flow)
        self.requests = Counter(f"{flow.name}.requests")
        self.responses = Counter(f"{flow.name}.responses")
        self._running = False
        self._proc = None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._proc = self.sim.process(self._event_loop(),
                                      name=f"erpc-{self.flow.name}")

    def stop(self) -> None:
        self._running = False

    @property
    def per_packet_extra_cycles(self) -> float:
        extra = self.arch.app_overhead_cycles()
        if self.config.transport == "rdma":
            extra += self.config.rdma_extra_cycles
        return extra

    def _event_loop(self):
        cfg = self.config
        while self._running:
            records = yield from self.ethdev.rx_burst(self.flow, cfg.rx_burst)
            if not records:
                yield cfg.poll_gap
                continue
            for record in records:
                # A record may belong to another flow on shared-ring
                # architectures; account it against its own flow.
                rx = self.arch.flows.get(record.flow.flow_id)
                yield from self._serve_one(record, rx)
            self.ethdev.free(records)
            self.ethdev.tx_burst(len(records))

    def _serve_one(self, record: RxRecord, rx):
        cfg = self.config
        # Zero-copy read of the request straight from the I/O buffer: the
        # LLC hit/miss on this access is the paper's entire story.
        yield from self.core.read_buffer(record.key, record.packet.payload)
        if not cfg.zero_copy:
            # Copying path: stage the request into an application buffer
            # (usually cold) before handling it.
            yield from self.core.copy_to_app_buffer(record.packet.payload)
        app_cycles = self.handler(RequestContext(record))
        total = (cfg.rpc_overhead_cycles + app_cycles + cfg.tx_cycles
                 + self.per_packet_extra_cycles)
        yield self.core.compute(total)
        self.requests.add(1)
        self.responses.add(1)
        if rx is not None:
            rx.record_processed(record, self.sim.now)
