"""dperf-style echo load generator (§6.1 cites Baidu's dperf).

Thin, named wrapper over the closed-loop saturating source so scenario
scripts read like the paper's methodology section.
"""

from __future__ import annotations

from typing import List, Optional

from ..net import Flow, FlowKind, SaturatingSource, Testbed

__all__ = ["DperfClient"]


class DperfClient:
    """Drives one or more echo flows at saturation against a testbed."""

    def __init__(self, testbed: Testbed, message_payload: int = 512,
                 outstanding: int = 64):
        self.testbed = testbed
        self.message_payload = message_payload
        self.outstanding = outstanding
        self.sources: List[SaturatingSource] = []

    def add_flow(self, name: str = "",
                 kind: FlowKind = FlowKind.CPU_INVOLVED,
                 packets_per_message: int = 1,
                 outstanding: Optional[int] = None) -> Flow:
        flow = Flow(kind, name=name, message_payload=self.message_payload,
                    packets_per_message=packets_per_message)
        sender = self.testbed.add_flow(flow)
        source = SaturatingSource(
            self.testbed.sim, sender,
            outstanding=self.outstanding if outstanding is None else outstanding)
        self.sources.append(source)
        return flow

    def start(self) -> None:
        for source in self.sources:
            source.start()

    def stop(self) -> None:
        for source in self.sources:
            source.stop()

    @property
    def messages_completed(self) -> float:
        return sum(s.messages_completed.value for s in self.sources)
