"""In-memory key-value store served over eRPC (§6.1).

Workload shape from the paper: 1:1 get/put mix with a 1:4 key:value ratio
(16 B keys, 64 B values -> 144 B request packets), 1,000 pre-populated
entries, requests drawn uniformly at random by the clients.

The store is a real hash map — requests execute actual ``dict`` operations
so correctness is testable — while the *simulated* CPU cost is charged via
a calibrated cycle model (hash + probe + value copy).
"""

from __future__ import annotations

from typing import Optional

from ..sim.rng import RngRegistry
from ..sim.stats import Counter
from .erpc import RequestContext

__all__ = ["KvStore", "KvWorkload", "kv_request_payload"]

KEY_SIZE = 16
VALUE_SIZE = 64
#: Request header + key + value (put) padded as the paper's 144 B packet.
REQUEST_PAYLOAD = 144


def kv_request_payload(key_size: int = KEY_SIZE,
                       value_size: int = VALUE_SIZE) -> int:
    """Packet payload of a put request: header + key + value."""
    return 64 + key_size + value_size


class KvStore:
    """The server-side store plus its request handler."""

    #: Cycles for hash + bucket probe on a resident table.
    LOOKUP_CYCLES = 110.0
    #: Cycles per 8 bytes of value copied into the response.
    COPY_CYCLES_PER_8B = 1.0

    def __init__(self, entries: int = 1000, value_size: int = VALUE_SIZE,
                 seed: int = 0):
        self.value_size = value_size
        self.rng = RngRegistry(seed).stream("kvstore")
        self.table = {self._key(i): self._value(i) for i in range(entries)}
        self.gets = Counter("kv.gets")
        self.puts = Counter("kv.puts")
        self.hits = Counter("kv.hits")
        self.misses = Counter("kv.misses")

    @staticmethod
    def _key(i: int) -> bytes:
        return i.to_bytes(8, "big").rjust(KEY_SIZE, b"\0")

    def _value(self, i: int) -> bytes:
        return (i % 251).to_bytes(1, "big") * self.value_size

    def __len__(self) -> int:
        return len(self.table)

    def get(self, key: bytes) -> Optional[bytes]:
        self.gets.add(1)
        value = self.table.get(key)
        if value is None:
            self.misses.add(1)
        else:
            self.hits.add(1)
        return value

    def put(self, key: bytes, value: bytes) -> None:
        self.puts.add(1)
        self.table[key] = value

    # ------------------------------------------------------------------
    # eRPC handler
    # ------------------------------------------------------------------
    def handle(self, ctx: RequestContext) -> float:
        """1:1 get/put on a random key; returns CPU cycles to charge."""
        idx = self.rng.randrange(len(self.table) or 1)
        key = self._key(idx)
        copy_cycles = self.COPY_CYCLES_PER_8B * (self.value_size / 8)
        if self.rng.random() < 0.5:
            self.get(key)
        else:
            self.put(key, self._value(idx))
        return self.LOOKUP_CYCLES + copy_cycles


class KvWorkload:
    """Client-side description used by scenario builders."""

    def __init__(self, entries: int = 1000, key_size: int = KEY_SIZE,
                 value_size: int = VALUE_SIZE):
        self.entries = entries
        self.key_size = key_size
        self.value_size = value_size

    @property
    def request_payload(self) -> int:
        return kv_request_payload(self.key_size, self.value_size)
