"""LineFS-style in-memory distributed file system server (§6.1).

LineFS (Kim et al., SOSP 2021) receives file chunks over RDMA (CPU-bypass
flows) and performs replication and logging on the host. The paper's §6.4
lesson attributes LineFS's lower ceiling to exactly the behaviour modelled
here:

- chunk payloads arrive as multi-packet RDMA messages, completed by a
  Write-with-immediate (message-granularity completions through the
  :class:`~repro.frameworks.rdma.RdmaEndpoint`);
- the server then **copies** each chunk from the I/O buffers into its log
  (not zero-copy!), touching every received buffer — so LLC residency at
  *message* completion time determines hit/miss — and paying DRAM
  bandwidth for the copy (the ~10% residual miss rate of §6.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..frameworks.rdma import CompletionQueue, QpType, RdmaEndpoint, WorkCompletion
from ..hw.cpu import Core
from ..io_arch.base import IOArchitecture
from ..net.packet import Flow
from ..sim.stats import Counter

__all__ = ["LineFsConfig", "LineFsServer"]


@dataclass
class LineFsConfig:
    #: Replication factor: each chunk is copied once into the local log and
    #: once per replica staging buffer (LineFS replicates writes; the copy
    #: traffic is what §6.4 blames for its residual miss rate).
    replication: int = 2
    #: Cycles of metadata work per chunk (inode/log headers, digestion).
    metadata_cycles: float = 1500.0
    #: Idle wait between CQ polls, ns.
    poll_gap: float = 500.0


class LineFsServer:
    """Consumes chunk completions from a CQ on a dedicated core."""

    def __init__(self, arch: IOArchitecture, core: Core,
                 config: Optional[LineFsConfig] = None,
                 endpoint: Optional[RdmaEndpoint] = None):
        self.arch = arch
        self.sim = arch.sim
        self.core = core
        self.config = config or LineFsConfig()
        self.cq = CompletionQueue(self.sim)
        self.endpoint = endpoint or RdmaEndpoint(arch, self.cq)
        self.flows: List[Flow] = []
        self.chunks_written = Counter("linefs.chunks")
        self.bytes_written = Counter("linefs.bytes")
        self._running = False

    def attach_flow(self, flow: Flow) -> None:
        self.endpoint.create_qp(flow, QpType.RC)
        self.flows.append(flow)

    def detach_flow(self, flow: Flow) -> None:
        self.endpoint.destroy_qp(flow)
        if flow in self.flows:
            self.flows.remove(flow)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.endpoint.start()
        self._proc = self.sim.process(self._loop(), name="linefs-server")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        while self._running:
            completions = self.cq.poll(8)
            if not completions:
                yield self.config.poll_gap
                continue
            for wc in completions:
                yield from self._write_chunk(wc)

    def _write_chunk(self, wc: WorkCompletion):
        """Replicate + log one chunk: read every I/O buffer, copy it out."""
        cfg = self.config
        rx = self.arch.flows.get(wc.flow.flow_id)
        for record in wc.records:
            # The copy source is the I/O buffer: LLC hit or DRAM miss.
            yield from self.core.read_buffer(record.key,
                                             record.packet.payload)
        copies = 1 + cfg.replication
        yield from self.core.copy_to_app_buffer(wc.byte_len * copies)
        yield self.core.compute(cfg.metadata_cycles
                                + self.arch.app_overhead_cycles()
                                * len(wc.records))
        now = self.sim.now
        if rx is not None:
            for record in wc.records:
                rx.record_processed(record, now)
        self.arch.release(wc.records)
        self.chunks_written.add(1)
        self.bytes_written.add(wc.byte_len)
