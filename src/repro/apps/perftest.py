"""perftest analogues: ``ib_write_bw`` and ``ib_write_lat`` (§6.1, §6.3).

The paper benchmarks CEIO's data path against Mellanox perftest: Figure 11
(fast vs slow path vs ib_write_bw throughput over message size) and
Table 3 (write latency at 64 B / 1 KB / 4 KB). These functions build a
self-contained testbed per measurement and return plain dictionaries.

``raw`` mode measures RDMA write on the unmanaged (baseline) architecture
at low occupancy — LLC behaviour is then irrelevant, matching perftest's
single-flow setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core import CeioArchitecture
from ..frameworks.rdma import CompletionQueue, QpType, RdmaEndpoint
from ..hw import HostConfig
from ..io_arch import build_arch
from ..io_arch.base import IOArchitecture
from ..net import Flow, FlowKind, SaturatingSource, Testbed
from ..sim.stats import Counter, Histogram
from ..sim.units import MS, US, to_gbps

__all__ = ["RdmaSink", "BwResult", "LatResult", "ib_write_bw",
           "ib_write_lat"]


class RdmaSink:
    """A pure CPU-bypass consumer: releases buffers at message completion
    without reading them (true one-sided RDMA write semantics)."""

    def __init__(self, arch: IOArchitecture, poll_gap: float = 500.0):
        self.arch = arch
        self.sim = arch.sim
        self.cq = CompletionQueue(self.sim)
        self.endpoint = RdmaEndpoint(arch, self.cq)
        self.poll_gap = poll_gap
        self.bytes_received = Counter("sink.bytes")
        self.messages = Counter("sink.messages")
        self.message_latency = Histogram("sink.msg_latency")
        self._running = False

    def attach_flow(self, flow: Flow) -> None:
        self.endpoint.create_qp(flow, QpType.RC)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.endpoint.start()
        self._proc = self.sim.process(self._loop(), name="rdma-sink")

    def _loop(self):
        while self._running:
            completions = self.cq.poll(16)
            if not completions:
                yield self.poll_gap
                continue
            now = self.sim.now
            rxmap = self.arch.flows
            for wc in completions:
                self.bytes_received.add(wc.byte_len)
                self.messages.add(1)
                first_send = min(r.packet.send_time for r in wc.records)
                self.message_latency.record(max(1.0, now - first_send))
                rx = rxmap.get(wc.flow.flow_id)
                if rx is not None:
                    for record in wc.records:
                        rx.record_processed(record, now)
                self.arch.release(wc.records)


@dataclass
class BwResult:
    arch: str
    msg_size: int
    path: str
    gbps: float
    mpps: float


@dataclass
class LatResult:
    arch: str
    msg_size: int
    path: str
    avg_us: float
    p50_us: float
    p99_us: float


def _packets_for(msg_size: int, mtu_payload: int = 1024):
    """Split a message into packets of at most ``mtu_payload`` bytes."""
    if msg_size <= mtu_payload:
        return msg_size, 1
    count = (msg_size + mtu_payload - 1) // mtu_payload
    return mtu_payload, count


def _bw_batch(payload: int, count: int):
    """ib_write_bw posts writes back-to-back with one completion per batch
    (the Write-with-immediate batching of §4.1): group small messages so a
    "message" is at least an 8 KB batch. Pure bandwidth-test semantics —
    the sink counts bytes either way."""
    batch = max(count, (8192 + payload - 1) // payload)
    return payload, batch


def ib_write_bw(arch_name: str = "ceio", msg_size: int = 65536,
                duration: float = 1.0 * MS, force_slow: bool = False,
                host_config: Optional[HostConfig] = None,
                outstanding: int = 64, seed: int = 0) -> BwResult:
    """Single-flow RDMA write bandwidth (Figure 11)."""
    bed = Testbed(host_config=host_config, seed=seed)
    arch = build_arch(arch_name, bed.host)
    bed.install_io_arch(arch)
    payload, count = _bw_batch(*_packets_for(msg_size))
    flow = Flow(FlowKind.CPU_BYPASS, name="bw",
                message_payload=payload, packets_per_message=count)
    sink = RdmaSink(arch)
    sender = bed.add_flow(flow)
    sink.attach_flow(flow)
    sink.start()
    if force_slow:
        if not isinstance(arch, CeioArchitecture):
            raise ValueError("force_slow requires the ceio architecture")
        arch.pin_slow(flow)
    source = SaturatingSource(bed.sim, sender, outstanding=outstanding)
    source.start()
    bed.run(until=duration)
    goodput = sink.bytes_received.value / duration
    pkts = goodput / max(1, payload)
    path = "slow" if force_slow else (
        "fast" if arch_name == "ceio" else "raw")
    return BwResult(arch=arch_name, msg_size=msg_size, path=path,
                    gbps=to_gbps(goodput), mpps=pkts * 1e3)


def ib_write_lat(arch_name: str = "ceio", msg_size: int = 64,
                 iters: int = 200, force_slow: bool = False,
                 host_config: Optional[HostConfig] = None,
                 seed: int = 0) -> LatResult:
    """Ping-pong RDMA write latency (Table 3).

    One message in flight at a time; the reported latency is the one-way
    delivery+completion time plus the fixed reverse-path delay (perftest
    reports RTT/2 for write_lat; we report the same quantity).
    """
    bed = Testbed(host_config=host_config, seed=seed)
    arch = build_arch(arch_name, bed.host)
    bed.install_io_arch(arch)
    payload, count = _packets_for(msg_size)
    flow = Flow(FlowKind.CPU_BYPASS, name="lat",
                message_payload=payload, packets_per_message=count)
    sink = RdmaSink(arch, poll_gap=100.0)
    sender = bed.add_flow(flow)
    sink.attach_flow(flow)
    sink.start()
    if force_slow:
        if not isinstance(arch, CeioArchitecture):
            raise ValueError("force_slow requires the ceio architecture")
        arch.pin_slow(flow)

    samples: List[float] = []

    def pingpong(sim):
        for _ in range(iters):
            t0 = sim.now
            done = sender.submit_message(flow.make_message())
            yield done
            while sink.message_latency.count < len(samples) + 1:
                yield 50.0
            samples.append(sim.now - t0)

    proc = bed.sim.process(pingpong(bed.sim))
    # Run just until the ping-pong finishes (idle pollers run forever).
    deadline = 100 * MS
    while not proc.triggered and bed.sim.now < deadline and bed.sim.peek() != float("inf"):
        bed.sim.step()

    hist = Histogram("lat")
    for s in samples:
        hist.record(max(1.0, s))
    path = "slow" if force_slow else (
        "fast" if arch_name == "ceio" else "raw")
    return LatResult(arch=arch_name, msg_size=msg_size, path=path,
                     avg_us=hist.mean / US,
                     p50_us=hist.percentile(50) / US,
                     p99_us=hist.percentile(99) / US)
