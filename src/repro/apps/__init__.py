"""Benchmark applications: eRPC/KV store, LineFS, echo, dperf, perftest."""

from .dperf import DperfClient
from .echo import EchoConfig, EchoServer, SharedEchoServer
from .erpc import ErpcConfig, ErpcServer, RequestContext
from .kvstore import KvStore, KvWorkload, kv_request_payload
from .linefs import LineFsConfig, LineFsServer
from .perftest import BwResult, LatResult, RdmaSink, ib_write_bw, ib_write_lat

__all__ = [
    "DperfClient",
    "EchoConfig", "EchoServer", "SharedEchoServer",
    "ErpcConfig", "ErpcServer", "RequestContext",
    "KvStore", "KvWorkload", "kv_request_payload",
    "LineFsConfig", "LineFsServer",
    "BwResult", "LatResult", "RdmaSink", "ib_write_bw", "ib_write_lat",
]
