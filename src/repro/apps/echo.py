"""Echo workload (§6.1): the rawest view of the I/O data path.

One client streams messages; the server echoes a 64 B acknowledgement per
message. Used by the paper to demonstrate peak data-path performance
(Figure 11, Table 2) because the application adds almost no CPU work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..frameworks.dpdk import EthDev, RX_BURST_MAX
from ..hw.cpu import Core
from ..io_arch.base import IOArchitecture
from ..net.packet import Flow
from ..sim.stats import Counter

__all__ = ["EchoConfig", "EchoServer"]


@dataclass
class EchoConfig:
    #: Cycles to build and enqueue the 64 B acknowledgement.
    ack_cycles: float = 35.0
    poll_gap: float = 120.0
    rx_burst: int = RX_BURST_MAX


class SharedEchoServer:
    """An echo worker core serving *any* ready flow (RDMA UD mode, §6.3).

    Used by the thousand-flow experiment: a fixed pool of cores drains
    whichever queue pairs have data, via the architecture's ready-flow
    notification queue.
    """

    def __init__(self, arch: IOArchitecture, core: Core,
                 config: Optional[EchoConfig] = None):
        self.arch = arch
        self.sim = arch.sim
        self.core = core
        self.config = config or EchoConfig()
        self.echoed = Counter(f"shared-echo{core.index}.echoed")
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._proc = self.sim.process(
            self._loop(), name=f"shared-echo{self.core.index}")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        cfg = self.config
        while self._running:
            records = self.arch.poll_any(cfg.rx_burst)
            if not records:
                # NAPI-style: block on the next ready notification instead
                # of spinning (idle polling across thousands of flows would
                # dominate the event calendar).
                yield self.arch.wait_ready()
                continue
            for record in records:
                yield from self.core.read_buffer(record.key,
                                                 record.packet.payload)
                yield self.core.compute(cfg.ack_cycles
                                        + self.arch.app_overhead_cycles())
                rx = self.arch.flows.get(record.flow.flow_id)
                if rx is not None:
                    rx.record_processed(record, self.sim.now)
                self.echoed.add(1)
            self.arch.release(records)


class EchoServer:
    """Minimal consumer: read payload, send 64 B ack, recycle buffer."""

    def __init__(self, arch: IOArchitecture, flow: Flow, core: Core,
                 config: Optional[EchoConfig] = None,
                 ethdev: Optional[EthDev] = None):
        self.arch = arch
        self.sim = arch.sim
        self.flow = flow
        self.core = core
        self.config = config or EchoConfig()
        self.ethdev = ethdev or EthDev(arch)
        self.ethdev.rx_queue_setup(flow)
        self.echoed = Counter(f"{flow.name}.echoed")
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._proc = self.sim.process(
            self._loop(), name=f"echo-{self.flow.name}")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        cfg = self.config
        while self._running:
            records = yield from self.ethdev.rx_burst(self.flow, cfg.rx_burst)
            if not records:
                yield cfg.poll_gap
                continue
            for record in records:
                yield from self.core.read_buffer(record.key,
                                                 record.packet.payload)
                yield self.core.compute(cfg.ack_cycles
                                        + self.arch.app_overhead_cycles())
                rx = self.arch.flows.get(record.flow.flow_id)
                if rx is not None:
                    rx.record_processed(record, self.sim.now)
                self.echoed.add(1)
            self.ethdev.free(records)
            self.ethdev.tx_burst(len(records))
