"""Conservation ledger: named debit/credit accounts over live meters.

An :class:`Account` states one balance equation of the simulated system —
"everything offered to this layer is either forwarded, dropped, or still
resident here" — as two lists of *sources*: debits (what came in) and
credits (where it went). A source is any of

- a counter-like object exposing ``.value`` (:class:`repro.sim.stats.Counter`),
- a zero-argument callable returning a number (occupancy getters),
- an ``(obj, "attr")`` pair read as a plain attribute (occupancy ints).

Sources are registered once at build time and *read* only when a
:class:`~repro.audit.reconcile.Reconciler` checks the ledger, so the
simulation hot path pays nothing beyond the plain integer increments the
instrumented layers already perform — no per-packet allocation, no
callbacks, no event traffic.

Two account shapes exist:

- ``exact`` (the default): ``|debits - credits| <= tolerance``.
- ``bounded``: ``0 <= debits - credits <= slack + tolerance`` where
  ``slack`` is its own source list. Used for equations that are exact only
  up to a known in-flight quantity (e.g. the one packet that may be inside
  the NIC firmware handler) and for capacity invariants
  (``occupancy <= capacity`` is ``bounded`` with empty credits).

``barrier_safe`` marks accounts whose every debit/credit transition is
atomic within a single event-kernel step; only those may be asserted at
arbitrary simulation instants (the periodic debug barriers). The rest are
exact once ``Simulator.run(until)`` has drained all same-timestamp events
— i.e. at end-of-run reconciliation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple, Union

__all__ = ["Account", "Ledger", "read_source"]

#: Valid unit tags for accounts (documentation + report labelling).
UNITS = ("packets", "bytes", "descriptors", "credits", "lines", "ways")

Source = Union[Callable[[], float], Tuple[Any, str], Any]


def read_source(source: Source) -> float:
    """Read a source's current value (see module docstring for kinds)."""
    value = getattr(source, "value", None)
    if value is not None:
        return value
    if isinstance(source, tuple):
        obj, attr = source
        return getattr(obj, attr)
    return source()


class Account:
    """One named balance equation with unit-tagged debit/credit sources.

    ``cross_shard`` marks an account that holds only *part* of its
    equation's sources because the rest live in a peer shard (sharded
    execution splits boundary-link wire accounts at the cut). Such
    accounts are skipped by local reconciliation — their partial
    snapshots are exported instead and merged by name across shards
    (:func:`repro.audit.merge.merge_audit`)."""

    __slots__ = ("name", "unit", "tolerance", "barrier_safe", "bounded",
                 "cross_shard", "_debits", "_credits", "_slack")

    def __init__(self, name: str, unit: str, tolerance: float = 0.0,
                 barrier_safe: bool = False, bounded: bool = False,
                 cross_shard: bool = False):
        if unit not in UNITS:
            raise ValueError(f"unknown unit {unit!r}; choose from {UNITS}")
        self.name = name
        self.unit = unit
        self.tolerance = tolerance
        self.barrier_safe = barrier_safe
        self.bounded = bounded
        self.cross_shard = cross_shard
        self._debits: List[Tuple[str, Source]] = []
        self._credits: List[Tuple[str, Source]] = []
        self._slack: List[Tuple[str, Source]] = []

    # ------------------------------------------------------------------
    def debit(self, label: str, source: Source) -> "Account":
        """Register an inflow source; returns self for chaining."""
        self._debits.append((label, source))
        return self

    def credit(self, label: str, source: Source) -> "Account":
        """Register an outflow/occupancy source; returns self for chaining."""
        self._credits.append((label, source))
        return self

    def slack(self, label: str, source: Source) -> "Account":
        """Register a slack source (``bounded`` accounts only)."""
        self._slack.append((label, source))
        return self

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Read every source and evaluate the balance equation."""
        debits = {label: read_source(src) for label, src in self._debits}
        credits = {label: read_source(src) for label, src in self._credits}
        slack = sum(read_source(src) for _, src in self._slack)
        delta = sum(debits.values()) - sum(credits.values())
        if self.bounded:
            ok = -self.tolerance <= delta <= slack + self.tolerance
        else:
            ok = abs(delta) <= self.tolerance
        return {"account": self.name, "unit": self.unit, "ok": ok,
                "delta": delta, "slack": slack,
                "debits": debits, "credits": credits}


class Ledger:
    """An ordered collection of accounts (insertion order = check order)."""

    __slots__ = ("accounts",)

    def __init__(self):
        self.accounts: Dict[str, Account] = {}

    def account(self, name: str, unit: str, tolerance: float = 0.0,
                barrier_safe: bool = False, bounded: bool = False,
                cross_shard: bool = False) -> Account:
        """Create (or fetch) the account ``name``; parameters apply on
        first creation only."""
        acct = self.accounts.get(name)
        if acct is None:
            acct = Account(name, unit, tolerance=tolerance,
                           barrier_safe=barrier_safe, bounded=bounded,
                           cross_shard=cross_shard)
            self.accounts[name] = acct
        return acct

    def __len__(self) -> int:
        return len(self.accounts)

    def __iter__(self):
        return iter(self.accounts.values())
