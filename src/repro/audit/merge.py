"""Merge per-shard audit results into one global reconciliation.

A sharded run (:mod:`repro.shard`) evaluates each shard's local ledger
independently; accounts split across a cut link are exported as partial
snapshots (:meth:`repro.audit.reconcile.Reconciler.partial_snapshots`)
instead of being checked locally. :func:`merge_audit` unions the partial
snapshots by account name — summing per-label source values across
shards, which re-joins the egress half (``transmitted`` / ``in_flight``)
with the ingress half (``forwarded``) — re-evaluates each merged balance
equation, and concatenates everything into one :class:`AuditReport`
whose ``checked`` count equals the single-kernel ledger's (every local
account once, every cut account merged to one).
"""

from __future__ import annotations

from typing import Any, Dict, List

from .reconcile import AuditReport

__all__ = ["merge_audit"]


def merge_audit(now: float, shard_entries: List[List[Dict[str, Any]]],
                shard_partials: List[List[Dict[str, Any]]]) -> AuditReport:
    """One global report from per-shard results.

    ``shard_entries`` holds each shard's locally-checked snapshots
    (``AuditReport.entries``); ``shard_partials`` each shard's
    cross-shard partial snapshots. Both are JSON-safe, so process-mode
    shards can ship them over the worker pipe verbatim.
    """
    entries: List[Dict[str, Any]] = []
    for local in shard_entries:
        entries.extend(local)

    merged: Dict[str, Dict[str, Any]] = {}
    params: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for partials in shard_partials:
        for part in partials:
            name = part["account"]
            acc = merged.get(name)
            if acc is None:
                acc = merged[name] = {"account": name,
                                      "unit": part["unit"],
                                      "debits": {}, "credits": {},
                                      "slack": 0.0}
                params[name] = {"bounded": part.get("bounded", False),
                                "tolerance": part.get("tolerance", 0.0)}
                order.append(name)
            for side in ("debits", "credits"):
                bucket = acc[side]
                for label, value in part[side].items():
                    bucket[label] = bucket.get(label, 0.0) + value
            acc["slack"] += part.get("slack", 0.0)

    for name in sorted(order):
        acc = merged[name]
        delta = (sum(acc["debits"].values())
                 - sum(acc["credits"].values()))
        tolerance = params[name]["tolerance"]
        if params[name]["bounded"]:
            ok = -tolerance <= delta <= acc["slack"] + tolerance
        else:
            ok = abs(delta) <= tolerance
        acc["delta"] = delta
        acc["ok"] = ok
        entries.append(acc)

    return AuditReport(now, entries)
