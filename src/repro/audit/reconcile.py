"""End-of-run (and debug-barrier) reconciliation of a conservation ledger.

The :class:`Reconciler` walks every account of a
:class:`~repro.audit.ledger.Ledger`, evaluates its balance equation, and
produces a structured :class:`AuditReport`: overall verdict, per-account
balances, and — for each violation — a *who-owes-whom* delta naming the
account, the unit, the side in deficit, and the full per-source breakdown
so the first missing packet/byte/credit is attributable to a layer without
re-running anything.

Timing contract (see ``docs/AUDIT.md``): a full check is exact only after
``Simulator.run(until)`` returns, because ``run`` drains every event at
time ``<= until`` and therefore closes all same-timestamp handoff windows.
Mid-run (periodic barrier) checks restrict themselves to accounts marked
``barrier_safe`` — those whose transitions are atomic within one kernel
step.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .ledger import Ledger

__all__ = ["AuditReport", "Reconciler"]


def _fmt(value: float) -> str:
    """Render a source value compactly (ints without a trailing .0)."""
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


def _violation_message(snap: Dict[str, Any]) -> str:
    """The who-owes-whom sentence for a failed account snapshot."""
    delta = snap["delta"]
    debit_side = "+".join(snap["debits"]) or "(none)"
    credit_side = "+".join(snap["credits"]) or "(none)"
    if delta > 0:
        owing, owed, amount = debit_side, credit_side, delta
    else:
        owing, owed, amount = credit_side, debit_side, -delta
    detail = "; ".join(
        f"{label}={_fmt(value)}"
        for label, value in list(snap["debits"].items())
        + list(snap["credits"].items()))
    return (f"{snap['account']}: {owing} owes {owed} "
            f"{_fmt(amount)} {snap['unit']} ({detail})")


class AuditReport:
    """Outcome of one reconciliation pass."""

    __slots__ = ("now", "checked", "entries", "violations", "barrier_only")

    def __init__(self, now: float, entries: List[Dict[str, Any]],
                 barrier_only: bool = False):
        self.now = now
        self.entries = entries
        self.checked = len(entries)
        self.barrier_only = barrier_only
        self.violations: List[Dict[str, Any]] = []
        for snap in entries:
            if not snap["ok"]:
                self.violations.append({
                    "account": snap["account"],
                    "unit": snap["unit"],
                    "delta": snap["delta"],
                    "debits": snap["debits"],
                    "credits": snap["credits"],
                    "message": _violation_message(snap),
                })

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self, include_balances: bool = False) -> Dict[str, Any]:
        """JSON-safe summary; balances of healthy accounts are elided by
        default to keep runlog/cache records small."""
        data: Dict[str, Any] = {
            "ok": self.ok,
            "now": self.now,
            "checked": self.checked,
            "violations": self.violations,
        }
        if self.barrier_only:
            data["barrier_only"] = True
        if include_balances:
            data["accounts"] = self.entries
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        verdict = "ok" if self.ok else f"{len(self.violations)} violations"
        return f"<AuditReport {self.checked} accounts, {verdict}>"


class Reconciler:
    """Evaluates a ledger's balance equations on demand."""

    __slots__ = ("ledger",)

    def __init__(self, ledger: Ledger):
        self.ledger = ledger

    def check(self, now: float = 0.0,
              barrier_only: bool = False) -> AuditReport:
        """Evaluate every account (or only the ``barrier_safe`` subset).

        ``cross_shard`` accounts are never evaluated locally — they hold
        only part of their equation; export them with
        :meth:`partial_snapshots` and merge across shards instead."""
        entries = [account.snapshot() for account in self.ledger
                   if (account.barrier_safe or not barrier_only)
                   and not account.cross_shard]
        return AuditReport(now, entries, barrier_only=barrier_only)

    def partial_snapshots(self) -> List[Dict[str, Any]]:
        """Snapshots of the ``cross_shard`` accounts, augmented with the
        balance parameters (``bounded`` / ``tolerance``) a merge needs to
        re-evaluate the united equation."""
        out = []
        for account in self.ledger:
            if not account.cross_shard:
                continue
            snap = account.snapshot()
            snap["bounded"] = account.bounded
            snap["tolerance"] = account.tolerance
            out.append(snap)
        return out

    def assert_balanced(self, now: float = 0.0,
                        barrier_only: bool = False) -> Optional[AuditReport]:
        """Check and raise ``AssertionError`` on the first violation —
        the debug-barrier idiom."""
        report = self.check(now, barrier_only=barrier_only)
        if not report.ok:
            raise AssertionError(
                f"conservation violated at t={now:g}: "
                + "; ".join(v["message"] for v in report.violations))
        return report
