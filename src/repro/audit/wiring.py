"""Wire a testbed's components into a conservation :class:`~.ledger.Ledger`.

One function, :func:`build_ledger`, walks the fixed component graph of a
:class:`repro.net.fabric.Testbed` — switch port, wire, NIC MAC, firmware
handler, DMA engine, IIO buffer, memory controller, PCIe credits, on-NIC
memory, LLC — and registers one balance equation per layer, then hands the
ledger to the installed I/O architecture's ``audit_register`` hook for the
architecture-specific equations (descriptor rings, shared-ring slots, CEIO
credits / elastic buffers / phase barriers).

Every source is read **lazily** at reconcile time: building the ledger
costs a handful of small objects once per scenario, and the hot path pays
only the plain integer/Counter increments the components already perform.

Accounts marked ``barrier_safe`` have debit/credit transitions that are
atomic within one kernel step, so they also hold at arbitrary mid-run
barriers (the ``REPRO_SIM_DEBUG=1`` periodic checks). The PCIe credit
account is *not* barrier-safe: :class:`repro.sim.resources.Container`
debits its level synchronously but the waiting DMA process only counts the
acquisition when it resumes (same timestamp), so that equation is exact
only once the event calendar has drained — which ``Simulator.run(until=T)``
guarantees at every return.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Union

from .ledger import Ledger

if TYPE_CHECKING:
    from ..hw.cache import FullyAssociativeLLC, SetAssociativeLLC
    from ..hw.host import Host
    from ..hw.nic import Nic
    from ..io_arch.base import IOArchitecture
    from ..net.link import SwitchPort

__all__ = ["build_ledger", "build_fabric_ledger", "register_host_accounts"]


class _PrefixedLedger:
    """A view of a :class:`Ledger` that prefixes every account name —
    how one fabric-wide ledger hosts per-host account families
    (``"<host>.net.port"``, ``"<host>.arch...."``) without the
    architectures' ``audit_register`` hooks knowing about hosts."""

    __slots__ = ("_ledger", "_prefix")

    def __init__(self, ledger: Ledger, prefix: str):
        self._ledger = ledger
        self._prefix = prefix

    def account(self, name: str, unit: str, **kwargs):
        return self._ledger.account(self._prefix + name, unit, **kwargs)


def _register_network(ledger: Union[Ledger, _PrefixedLedger],
                      port: SwitchPort, nic: Nic) -> None:
    """Switch port and wire: offered packets are dropped, queued, in
    flight, or received by the NIC."""
    swport = ledger.account("net.port", "packets", barrier_safe=True)
    swport.debit("offered", port.rx_offered)
    swport.credit("fault_dropped", port.fault_dropped)
    swport.credit("tail_dropped", port.dropped_packets)
    swport.credit("transmitted", port.tx_packets)
    swport.credit("queued", (port, "queued_packets"))

    wire = ledger.account("net.wire", "packets", barrier_safe=True)
    wire.debit("transmitted", port.tx_packets)
    wire.credit("in_flight", (port, "wire_inflight"))
    wire.credit("nic_received", nic.rx_packets)


def _register_nic(ledger: Union[Ledger, _PrefixedLedger], nic: Nic,
                  arch: IOArchitecture) -> None:
    """MAC buffer and firmware handler: every received packet is MAC-
    dropped, handled, or still buffered; every handled packet was
    categorised by the architecture exactly once."""
    mac = ledger.account("nic.mac", "packets", barrier_safe=True)
    mac.debit("received", nic.rx_packets)
    mac.credit("mac_dropped", nic.dropped_packets)
    mac.credit("handled", nic.handled_packets)
    mac.credit("buffered", (nic, "_mac_pkts"))

    # The window between entering on_packet and the admit/drop/duplicate
    # decision is covered by handler_inflight (bounded, slack <= 1).
    handler = ledger.account("nic.handler", "packets", barrier_safe=True,
                             bounded=True)
    handler.debit("accepted", arch.rx_accepted)
    handler.debit("arch_dropped", arch.rx_dropped)
    handler.debit("shed", arch.rx_shed)
    handler.debit("duplicates",
                  lambda: sum(rx.duplicates.value
                              for rx in arch._all_rx.values()))
    handler.credit("handled", nic.handled_packets)
    handler.credit("mac_dropped", nic.dropped_packets)
    handler.slack("handler_inflight", (nic, "handler_inflight"))


def _register_dma_path(ledger: Union[Ledger, _PrefixedLedger],
                       host: Host) -> None:
    """DMA engine -> PCIe -> IIO -> memory controller."""
    dma = host.nic.dma
    engine = ledger.account("dma.engine", "packets", barrier_safe=True)
    engine.debit("requests", dma.requests)
    engine.credit("dropped_writes", dma.dropped_writes)
    engine.credit("pending", (dma, "pending_writes"))
    engine.credit("issued", dma.writes_issued)

    iio = ledger.account("hw.iio", "packets", barrier_safe=True)
    iio.debit("issued", dma.writes_issued)
    iio.credit("inbound_inflight", (host.iio, "inbound_inflight"))
    iio.credit("completed", host.memctrl.writes_completed)

    memctrl = ledger.account("hw.memctrl", "packets", barrier_safe=True)
    memctrl.debit("completed", host.memctrl.writes_completed)
    memctrl.credit("delivered", host.memctrl.deliveries)
    memctrl.credit("no_consumer", host.memctrl.no_deliver)

    pcie = host.pcie
    credits = ledger.account("hw.pcie_credits", "bytes", tolerance=1e-6)
    credits.debit("acquired", pcie.credits_acquired)
    credits.credit("released", pcie.credits_released)
    credits.credit("outstanding",
                   lambda: pcie.config.posted_credits
                   - pcie._credits.level)

    nicmem = ledger.account("hw.nicmem", "bytes", barrier_safe=True)
    nicmem.debit("allocated", host.nic.memory.allocated_bytes)
    nicmem.credit("freed", host.nic.memory.freed_bytes)
    nicmem.credit("used", (host.nic.memory, "used"))


def _register_llc(ledger: Union[Ledger, _PrefixedLedger],
                  llc: Union[FullyAssociativeLLC, SetAssociativeLLC]
                  ) -> None:
    """Cache residency conservation plus the DDIO capacity invariant, per
    cache model (byte-granularity for the fully-associative LRU, exact
    line-granularity for the set-associative model)."""
    if hasattr(llc, "audit_inserted_bytes"):
        cache = ledger.account("hw.llc", "bytes", barrier_safe=True)
        cache.debit("inserted", (llc, "audit_inserted_bytes"))
        cache.credit("evicted", (llc, "audit_evicted_bytes"))
        cache.credit("released", (llc, "audit_released_bytes"))
        cache.credit("overwritten", (llc, "audit_overwritten_bytes"))
        cache.credit("flushed", (llc, "audit_flushed_bytes"))
        cache.credit("resident", (llc, "_bytes"))

        # An insert larger than the (possibly fault-shrunk) partition is
        # allowed to over-occupy transiently, so the bound carries the
        # largest resident buffer as slack.
        cap = ledger.account("hw.llc_capacity", "bytes", barrier_safe=True,
                             bounded=True)
        cap.debit("resident", (llc, "_bytes"))
        cap.slack("capacity", (llc, "capacity"))
        cap.slack("largest_buffer",
                  lambda: max(llc._resident.values(), default=0))
    else:
        cache = ledger.account("hw.llc", "lines", barrier_safe=True)
        cache.debit("inserted", (llc.stats, "io_lines_inserted"))
        cache.credit("evicted", (llc.stats, "io_lines_evicted"))
        cache.credit("released", (llc, "audit_released_lines"))
        cache.credit("flushed", (llc, "audit_flushed_lines"))
        cache.credit("resident",
                     lambda: sum(len(lru) for lru in llc._set_lru))

        ways = ledger.account("hw.llc_ways", "ways", barrier_safe=True,
                              bounded=True)
        ways.debit("deepest_set",
                   lambda: max((len(lru) for lru in llc._set_lru),
                               default=0))
        ways.slack("ddio_ways", (llc, "ddio_ways"))


def register_host_accounts(ledger: Union[Ledger, _PrefixedLedger],
                           port: SwitchPort, host: Host,
                           arch: IOArchitecture) -> None:
    """Register the standard per-host account set (network, NIC, DMA
    path, LLC, plus the architecture's own equations) on ``ledger`` —
    which may be a :class:`_PrefixedLedger` view for multi-host fabrics.
    """
    _register_network(ledger, port, host.nic)
    _register_nic(ledger, host.nic, arch)
    _register_dma_path(ledger, host)
    _register_llc(ledger, host.llc)
    arch.audit_register(ledger)


def build_ledger(testbed, arch=None) -> Ledger:
    """Build the cross-layer conservation ledger for ``testbed``.

    ``arch`` defaults to the installed I/O architecture; pass one
    explicitly only in unit tests that wire a bare testbed.
    """
    if arch is None:
        arch = testbed.io_arch
    if arch is None:
        raise ValueError("testbed has no installed I/O architecture")
    ledger = Ledger()
    register_host_accounts(ledger, testbed.port, testbed.host, arch)
    return ledger


def build_fabric_ledger(fabric) -> Ledger:
    """One conservation ledger for a compiled :class:`repro.topo.Fabric`.

    Every endpoint (server host) contributes the standard per-host
    account set under its name prefix — for a legacy-named two-host
    fabric the prefix is empty, so the ledger is byte-identical to
    :func:`build_ledger` on the historical ``Testbed``. Every interior
    (switch-to-switch) egress additionally contributes a
    ``switch.<name>.port.<i>`` pair: the port equation (offered packets
    are dropped, queued, or transmitted) and the wire equation
    (transmitted packets are in flight or were handed to the next
    switch's ingress dispatch).
    """
    ledger = Ledger()
    for endpoint in fabric.endpoints.values():
        if endpoint.io_arch is None:
            raise ValueError(
                f"host {endpoint.name!r} has no installed I/O architecture")
        view = (ledger if endpoint.prefix == ""
                else _PrefixedLedger(ledger, endpoint.prefix))
        register_host_accounts(view, endpoint.port, endpoint.host,
                               endpoint.io_arch)
    for switch, index, port, forwarded in fabric.interior_ports():
        base = f"switch.{switch}.port.{index}"
        acct = ledger.account(base, "packets", barrier_safe=True)
        acct.debit("offered", port.rx_offered)
        acct.credit("fault_dropped", port.fault_dropped)
        acct.credit("tail_dropped", port.dropped_packets)
        acct.credit("transmitted", port.tx_packets)
        acct.credit("queued", (port, "queued_packets"))
        wire = ledger.account(f"{base}.wire", "packets", barrier_safe=True)
        wire.debit("transmitted", port.tx_packets)
        wire.credit("in_flight", (port, "wire_inflight"))
        wire.credit("forwarded", forwarded)
    # Boundary (cut) links of a scoped shard fabric. The port equation is
    # fully local to the egress-owning shard; the wire equation splits —
    # transmitted and in_flight live with the egress, the forwarded
    # counter with the ingress shard — so both halves register partial
    # ``cross_shard`` accounts under the single-kernel name and the
    # coordinator merges them (repro.audit.merge).
    if getattr(fabric, "scope", None) is not None:
        for switch, index, port, _peer in fabric.cut_egresses():
            base = f"switch.{switch}.port.{index}"
            acct = ledger.account(base, "packets", barrier_safe=True)
            acct.debit("offered", port.rx_offered)
            acct.credit("fault_dropped", port.fault_dropped)
            acct.credit("tail_dropped", port.dropped_packets)
            acct.credit("transmitted", port.tx_packets)
            acct.credit("queued", (port, "queued_packets"))
            wire = ledger.account(f"{base}.wire", "packets",
                                  cross_shard=True)
            wire.debit("transmitted", port.tx_packets)
            wire.credit("in_flight", (port, "wire_inflight"))
        for peer, index, _local_sw, forwarded in fabric.cut_ingresses():
            wire = ledger.account(f"switch.{peer}.port.{index}.wire",
                                  "packets", cross_shard=True)
            wire.credit("forwarded", forwarded)
    return ledger
