"""Cross-layer conservation auditing for the CEIO testbed.

Three pieces (see ``docs/AUDIT.md``):

- :class:`~repro.audit.ledger.Ledger` / ``Account`` — named debit/credit
  balance equations over the live counters and occupancy integers the
  simulated layers maintain anyway.
- :class:`~repro.audit.reconcile.Reconciler` / ``AuditReport`` — evaluates
  the equations at end-of-run (all accounts) or at periodic debug barriers
  (the ``barrier_safe`` subset) and emits structured who-owes-whom deltas.
- :func:`~repro.audit.wiring.build_ledger` — walks a built testbed + I/O
  architecture and registers the standard account set for every layer.

This module also hosts the *report collector*: a process-local mailbox
that :meth:`Scenario.run_measure` drops each report summary into and that
the runner's pool workers drain after every point, so audit results ride
back to the parent alongside the point value without changing any
``run_point`` return type (golden digests stay byte-identical).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .ledger import Account, Ledger
from .merge import merge_audit
from .reconcile import AuditReport, Reconciler
from .wiring import build_fabric_ledger, build_ledger

__all__ = ["Account", "AuditReport", "Ledger", "Reconciler", "build_ledger",
           "build_fabric_ledger", "merge_audit",
           "record_report", "drain_reports", "pending_report_count"]

#: Reports recorded since the last drain. Process-local by construction:
#: each pool worker is its own process and drains after every point; the
#: serial runner drains at the same boundary.
_PENDING: List[Dict[str, Any]] = []  # repro: noqa=D106 -- drained by the runner at point boundaries

#: Cap on violation messages carried in a drained summary.
_DETAIL_LIMIT = 8


def record_report(report: AuditReport) -> None:
    """Queue a report summary for the next :func:`drain_reports`."""
    _PENDING.append(report.to_dict())


def pending_report_count() -> int:
    return len(_PENDING)


def drain_reports() -> Optional[Dict[str, Any]]:
    """Summarise and clear all queued reports (None if none were queued).

    The summary is deliberately small and JSON-safe: it is attached to
    runner outcomes, the runlog, and cache records.
    """
    if not _PENDING:
        return None
    reports, _PENDING[:] = list(_PENDING), []
    violations = [v for report in reports for v in report["violations"]]
    summary: Dict[str, Any] = {
        "reports": len(reports),
        "checked": sum(report["checked"] for report in reports),
        "violations": len(violations),
    }
    if violations:
        summary["details"] = [v["message"] for v in violations[:_DETAIL_LIMIT]]
    return summary
