"""Determinism & sim-correctness static analysis (rules D101-D106).

Run as ``python -m repro.lint [paths...]``; see ``docs/DETERMINISM.md``
for the rule catalog and the suppression/baseline workflow.
"""

from .config import DEFAULT_CONFIG, LintConfig
from .core import Finding, ModuleInfo, Rule, RULES, lint_paths, lint_source
from .suppress import Baseline
from . import rules  # noqa: F401  (registers the rule classes)

__all__ = [
    "DEFAULT_CONFIG", "LintConfig",
    "Finding", "ModuleInfo", "Rule", "RULES",
    "lint_paths", "lint_source", "Baseline",
]
