"""``python -m repro.lint`` — CI-friendly determinism linter.

Exit codes: 0 = clean (every finding suppressed or baselined), 1 = new
findings (or stale baseline entries under ``--strict-baseline``), 2 =
usage error. ``--format json`` emits a machine-readable report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from . import rules  # noqa: F401  (registers the rule classes)
from .config import DEFAULT_CONFIG
from .core import RULES, Finding, lint_paths
from .suppress import Baseline

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & sim-correctness static analysis "
                    "(per-file rules D101-D106 plus whole-program "
                    "rules D107-D111).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run the per-file pass in N worker processes "
                             "(the whole-program pass always runs in this "
                             "process; default: 1)")
    parser.add_argument("--timing", action="store_true",
                        help="report per-rule analysis wall-clock on "
                             "stderr")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline file (default: "
                             f"{DEFAULT_CONFIG.baseline_name} if present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0")
    parser.add_argument("--strict-baseline", action="store_true",
                        help="also fail when baseline entries are stale "
                             "(match no current finding)")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the baseline keeping only entries "
                             "that still match a finding (drops stale "
                             "ones), then report as usual")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _load_baseline(args) -> Optional[Baseline]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        path = Path(args.baseline)
        if not path.exists():
            if args.update_baseline:
                return Baseline()
            print(f"repro.lint: baseline {path} not found", file=sys.stderr)
            raise SystemExit(2)
        return Baseline.load(path)
    default = Path(DEFAULT_CONFIG.baseline_name)
    return Baseline.load(default) if default.exists() else Baseline()


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for code, cls in sorted(RULES.items()):
            print(f"{code}  {cls.summary}")
        return 0

    select = None
    if args.select:
        select = [c.strip() for c in args.select.split(",") if c.strip()]
        unknown = sorted(set(select) - set(RULES))
        if unknown:
            print(f"repro.lint: unknown rule code(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    if args.jobs < 1:
        print("repro.lint: --jobs must be >= 1", file=sys.stderr)
        return 2
    if args.prune_baseline and (args.no_baseline or args.update_baseline):
        print("repro.lint: --prune-baseline conflicts with "
              "--no-baseline/--update-baseline", file=sys.stderr)
        return 2

    timings: Optional[Dict[str, float]] = {} if args.timing else None
    findings = lint_paths(args.paths, DEFAULT_CONFIG, select,
                          jobs=args.jobs, timings=timings)
    if args.timing and timings:
        total = sum(timings.values())
        for name in sorted(timings, key=lambda n: (-timings[n], n)):
            print(f"repro.lint: timing {name:>13s} "
                  f"{timings[name] * 1000.0:9.1f} ms", file=sys.stderr)
        print(f"repro.lint: timing {'total':>13s} {total * 1000.0:9.1f} ms",
              file=sys.stderr)

    baseline_path = Path(args.baseline or DEFAULT_CONFIG.baseline_name)
    if args.update_baseline:
        Baseline.save(baseline_path, findings)
        print(f"repro.lint: wrote {len(findings)} finding(s) to "
              f"{baseline_path}", file=sys.stderr)
        return 0

    baseline = _load_baseline(args)
    if baseline is not None:
        new, accepted, stale = baseline.split(findings)
    else:
        new, accepted, stale = list(findings), [], 0

    if args.prune_baseline and baseline is not None:
        Baseline.save(baseline_path, accepted)
        print(f"repro.lint: pruned {stale} stale baseline entr"
              + ("y" if stale == 1 else "ies")
              + f", kept {len(accepted)} in {baseline_path}",
              file=sys.stderr)
        stale = 0
    elif stale and baseline is not None and args.format == "text":
        for key in baseline.stale_keys(findings):
            print(f"repro.lint: stale baseline entry: {key[0]}: "
                  f"{key[1]} {key[2]}", file=sys.stderr)

    if args.format == "json":
        print(json.dumps({
            "findings": [vars(f) for f in new],
            "baselined": len(accepted),
            "stale_baseline_entries": stale,
        }, indent=2))
    else:
        for f in new:
            print(f.render())
        summary = (f"{len(new)} finding(s), {len(accepted)} baselined, "
                   f"{stale} stale baseline entr"
                   + ("y" if stale == 1 else "ies"))
        print(f"repro.lint: {summary}", file=sys.stderr)

    if new:
        return 1
    if stale and args.strict_baseline:
        return 1
    return 0
