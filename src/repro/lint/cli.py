"""``python -m repro.lint`` — CI-friendly determinism linter.

Exit codes: 0 = clean (every finding suppressed or baselined), 1 = new
findings (or stale baseline entries under ``--strict-baseline``), 2 =
usage error. ``--format json`` emits a machine-readable report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from . import rules  # noqa: F401  (registers the rule classes)
from .config import DEFAULT_CONFIG
from .core import RULES, Finding, lint_paths
from .suppress import Baseline

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="Determinism & sim-correctness static analysis "
                    "(rules D101-D106).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--baseline", metavar="PATH", default=None,
                        help="baseline file (default: "
                             f"{DEFAULT_CONFIG.baseline_name} if present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current findings "
                             "and exit 0")
    parser.add_argument("--strict-baseline", action="store_true",
                        help="also fail when baseline entries are stale "
                             "(match no current finding)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _load_baseline(args) -> Optional[Baseline]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        path = Path(args.baseline)
        if not path.exists():
            if args.update_baseline:
                return Baseline()
            print(f"repro.lint: baseline {path} not found", file=sys.stderr)
            raise SystemExit(2)
        return Baseline.load(path)
    default = Path(DEFAULT_CONFIG.baseline_name)
    return Baseline.load(default) if default.exists() else Baseline()


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for code, cls in sorted(RULES.items()):
            print(f"{code}  {cls.summary}")
        return 0

    select = None
    if args.select:
        select = [c.strip() for c in args.select.split(",") if c.strip()]
        unknown = sorted(set(select) - set(RULES))
        if unknown:
            print(f"repro.lint: unknown rule code(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    findings = lint_paths(args.paths, DEFAULT_CONFIG, select)

    baseline_path = Path(args.baseline or DEFAULT_CONFIG.baseline_name)
    if args.update_baseline:
        Baseline.save(baseline_path, findings)
        print(f"repro.lint: wrote {len(findings)} finding(s) to "
              f"{baseline_path}", file=sys.stderr)
        return 0

    baseline = _load_baseline(args)
    if baseline is not None:
        new, accepted, stale = baseline.split(findings)
    else:
        new, accepted, stale = list(findings), [], 0

    if args.format == "json":
        print(json.dumps({
            "findings": [vars(f) for f in new],
            "baselined": len(accepted),
            "stale_baseline_entries": stale,
        }, indent=2))
    else:
        for f in new:
            print(f.render())
        summary = (f"{len(new)} finding(s), {len(accepted)} baselined, "
                   f"{stale} stale baseline entr"
                   + ("y" if stale == 1 else "ies"))
        print(f"repro.lint: {summary}", file=sys.stderr)

    if new:
        return 1
    if stale and args.strict_baseline:
        return 1
    return 0
