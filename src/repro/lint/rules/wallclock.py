"""D102 — no wall-clock reads inside the simulated world.

Simulated components must take time from ``sim.now`` only. A
``time.time()``/``datetime.now()`` call inside a sim-side package makes
results depend on the host's clock — runs stop being reproducible and
the result cache silently serves stale answers. The host-side
orchestration packages (``repro.runner``, ``repro.experiments``) are
exempt by config: progress timestamps and cache metadata are *supposed*
to be wall-clock.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from ..core import Finding, ModuleInfo, Rule, attr_chain, register

__all__ = ["WallClock"]

#: time-module functions that read the host clock.
_TIME_FNS = frozenset({
    "time", "monotonic", "perf_counter", "process_time", "thread_time",
    "time_ns", "monotonic_ns", "perf_counter_ns", "process_time_ns",
    "thread_time_ns", "localtime", "gmtime", "ctime", "asctime",
})

#: datetime constructors that read the host clock, as attr suffixes.
_DATETIME_FNS = frozenset({"now", "utcnow", "today"})


@register
class WallClock(Rule):
    code = "D102"
    summary = ("no wall-clock (time.time / datetime.now) inside sim-side "
               "packages — simulated components take time from sim.now")

    def applies(self, module: ModuleInfo) -> bool:
        return (self.config.is_sim_side(module.package)
                and not self.config.is_wallclock_exempt(module.package))

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        time_aliases: Set[str] = set()
        datetime_mod_aliases: Set[str] = set()
        #: Names bound to datetime.datetime / datetime.date classes.
        datetime_cls_aliases: Set[str] = set()
        from_time: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        datetime_mod_aliases.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _TIME_FNS:
                            from_time[alias.asname or alias.name] = alias.name
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            datetime_cls_aliases.add(
                                alias.asname or alias.name)

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            root = parts[0]
            if (len(parts) == 2 and root in time_aliases
                    and parts[1] in _TIME_FNS):
                yield module.finding(
                    node, self.code,
                    f"wall-clock call {chain}() in a sim-side module — "
                    "use sim.now (simulated nanoseconds) instead")
            elif len(parts) == 1 and root in from_time:
                yield module.finding(
                    node, self.code,
                    f"wall-clock call time.{from_time[root]}() (imported "
                    f"as {root}) in a sim-side module — use sim.now "
                    "instead")
            elif (len(parts) == 3 and root in datetime_mod_aliases
                    and parts[1] in ("datetime", "date")
                    and parts[2] in _DATETIME_FNS):
                yield module.finding(
                    node, self.code,
                    f"wall-clock call {chain}() in a sim-side module — "
                    "simulation output must not embed host timestamps")
            elif (len(parts) == 2 and root in datetime_cls_aliases
                    and parts[1] in _DATETIME_FNS):
                yield module.finding(
                    node, self.code,
                    f"wall-clock call {chain}() in a sim-side module — "
                    "simulation output must not embed host timestamps")
