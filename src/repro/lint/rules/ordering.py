"""D103 — unordered iteration must not reach the event calendar.

In a module that schedules on the engine, iterating a ``set`` (directly,
or laundered through ``list()``) makes *event order* depend on hash
order. For str/object elements that varies across interpreter runs
(``PYTHONHASHSEED``); even for ints it couples results to insertion
history. The same goes for ``sorted(..., key=id)`` — CPython addresses
are not reproducible. Iterate sorted snapshots (``sorted(s)``) or keep
insertion-ordered structures (``dict``, ``deque``) instead.

Detection is intentionally syntactic: set literals/comprehensions and
``set()``/``frozenset()`` calls, plus a small module-wide inference pass
that follows simple assignments (``self._touched = set()`` …
``touched = self._touched`` … ``for fid in touched``). Order-insensitive
sinks (membership tests, ``sum``/``min``/``max``/``any`` over a
generator, set comprehensions) are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..core import Finding, ModuleInfo, Rule, attr_chain, register

__all__ = ["UnorderedIteration"]

#: Calls that preserve (dis)order of their first argument.
_PASSTHROUGH = {"list", "tuple", "iter", "enumerate", "reversed"}
#: Calls producing a known-ordered result whatever the argument.
_ORDERING = {"sorted"}
_SET_CALLS = {"set", "frozenset"}
#: Known-ordered values: assignment of one of these *demotes* a name
#: from the set-typed map (the name is reused for something ordered).
_ORDERED_LITERALS = (ast.List, ast.Tuple, ast.Dict, ast.ListComp,
                     ast.DictComp, ast.GeneratorExp)
_ORDERED_CALLS = {"list", "tuple", "dict", "sorted", "deque", "str"}


def _is_set_literalish(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in _SET_CALLS)


class _SetTypes:
    """Module-wide map of names / attribute names with set-typed values."""

    def __init__(self, tree: ast.Module):
        self.names: Set[str] = set()
        self.attrs: Set[str] = set()
        demoted_names: Set[str] = set()
        demoted_attrs: Set[str] = set()
        # Two passes so one level of aliasing propagates
        # (``touched = self._touched`` after ``self._touched = set()``).
        for _ in range(2):
            for node in ast.walk(tree):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        self._bind(target, node.value,
                                   demoted_names, demoted_attrs)
                elif isinstance(node, ast.AnnAssign) and node.value:
                    self._bind(node.target, node.value,
                               demoted_names, demoted_attrs)
        self.names -= demoted_names
        self.attrs -= demoted_attrs

    def _bind(self, target: ast.AST, value: ast.AST,
              demoted_names: Set[str], demoted_attrs: Set[str]) -> None:
        if isinstance(target, ast.Tuple) and isinstance(value, ast.Tuple) \
                and len(target.elts) == len(value.elts):
            for t, v in zip(target.elts, value.elts):
                self._bind(t, v, demoted_names, demoted_attrs)
            return
        set_typed = _is_set_literalish(value) or self.is_set_valued(value)
        ordered = isinstance(value, _ORDERED_LITERALS) or (
            isinstance(value, ast.Call) and isinstance(value.func, ast.Name)
            and value.func.id in _ORDERED_CALLS)
        if isinstance(target, ast.Name):
            if set_typed:
                self.names.add(target.id)
            elif ordered:
                demoted_names.add(target.id)
        elif isinstance(target, ast.Attribute):
            if set_typed:
                self.attrs.add(target.attr)
            elif ordered:
                demoted_attrs.add(target.attr)

    def is_set_valued(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            return node.attr in self.attrs
        return False


@register
class UnorderedIteration(Rule):
    code = "D103"
    summary = ("no set iteration or id()-based sort keys in modules that "
               "schedule on the engine — ordering leaks into event order")

    def applies(self, module: ModuleInfo) -> bool:
        return (self.config.is_sim_side(module.package)
                and module.touches_scheduling)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        types = _SetTypes(module.tree)

        def unordered(expr: ast.AST) -> bool:
            if _is_set_literalish(expr) or types.is_set_valued(expr):
                return True
            if isinstance(expr, ast.Call) and \
                    isinstance(expr.func, ast.Name) and expr.args:
                if expr.func.id in _ORDERING:
                    return False
                if expr.func.id in _PASSTHROUGH:
                    return unordered(expr.args[0])
            return False

        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and unordered(node.iter):
                yield module.finding(
                    node.iter, self.code,
                    "iteration over a set in a scheduling module — event "
                    "order inherits hash order; iterate sorted(...) or an "
                    "insertion-ordered structure")
            elif isinstance(node, (ast.ListComp, ast.DictComp)):
                for gen in node.generators:
                    if unordered(gen.iter):
                        yield module.finding(
                            gen.iter, self.code,
                            "comprehension over a set in a scheduling "
                            "module builds an ordered result from hash "
                            "order — iterate sorted(...) instead")
            elif isinstance(node, ast.Call):
                is_sorted = (isinstance(node.func, ast.Name)
                             and node.func.id == "sorted")
                is_sort_method = (isinstance(node.func, ast.Attribute)
                                  and node.func.attr == "sort")
                if not (is_sorted or is_sort_method):
                    continue
                for kw in node.keywords:
                    if kw.arg == "key" and isinstance(kw.value, ast.Name) \
                            and kw.value.id == "id":
                        yield module.finding(
                            node, self.code,
                            "sort key id() is an interpreter address — "
                            "not reproducible across runs; sort on a "
                            "stable field instead")
