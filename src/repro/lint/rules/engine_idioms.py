"""D104/D105 — misuse of the event-kernel scheduling idioms.

D104 catches the three mistakes the kernel cannot (or only at runtime)
reject:

- ``yield`` of a value that is neither a delay nor an Event inside a
  process generator (a string, a container literal, an explicit
  ``None``) — the kernel raises at runtime, but only on the execution
  path that reaches the yield;
- ``call_later``/``call_at``/``schedule`` with a lambda that closes over
  a loop variable — every scheduled callback sees the *last* iteration's
  value, the classic late-binding bug (bind with positional args
  instead: ``sim.call_later(d, fn, x)``);
- literal negative delays.

D105 catches dropped ownership:

- ``sim.process(gen())`` as a bare statement discards the Process
  handle, so nothing can ever ``interrupt()`` it or observe its result —
  keep it (e.g. on ``self``);
- a ``call_later``/``call_at``/``schedule`` handle bound to a local that
  is never read again — either :meth:`Simulator.cancel` it somewhere or
  do not bind it;
- ``sim.timeout(...)`` / ``sim.event()`` as a bare statement creates an
  event nobody can ever wait on (almost always a missing ``yield``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from ..core import Finding, ModuleInfo, Rule, attr_chain, register

__all__ = ["EngineIdioms", "DroppedHandles"]

_SCHED_CALLS = {"call_later", "call_at", "schedule"}
_BAD_YIELD_LITERALS = (ast.List, ast.Dict, ast.Set, ast.Tuple)


def _sim_receiver(chain: Optional[str], attr: str) -> bool:
    """True when ``chain`` looks like ``sim.<attr>`` / ``*.sim.<attr>``."""
    if chain is None or not chain.endswith("." + attr):
        return False
    receiver = chain[:-(len(attr) + 1)]
    return receiver == "sim" or receiver.endswith(".sim")


def _references_sim(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and node.id == "sim":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "sim":
            return True
        if isinstance(node, ast.arg) and node.arg == "sim":
            return True
    return False


def _is_generator(fn: ast.AST) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            # Nested function defs have their own generator-ness.
            if _owner_function(fn, node) is fn:
                return True
    return False


def _owner_function(root: ast.AST, target: ast.AST) -> Optional[ast.AST]:
    """The innermost function containing ``target`` (linear walk; files
    are small and this runs per candidate yield only)."""
    owner = None

    def descend(node: ast.AST, current: Optional[ast.AST]) -> bool:
        nonlocal owner
        if node is target:
            owner = current
            return True
        for child in ast.iter_child_nodes(node):
            nxt = child if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ) else current
            if descend(child, nxt):
                return True
        return False

    descend(root, root if isinstance(
        root, (ast.FunctionDef, ast.AsyncFunctionDef)) else None)
    return owner


@register
class EngineIdioms(Rule):
    code = "D104"
    summary = ("engine-idiom misuse: non-delay/non-Event yields in process "
               "generators, loop-variable lambdas in call_later, literal "
               "negative delays")

    def applies(self, module: ModuleInfo) -> bool:
        return module.touches_scheduling

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_generator(node) and _references_sim(node):
                    yield from self._check_process_yields(module, node)
        yield from self._check_calls(module)

    # -- bad yield values ------------------------------------------------
    def _check_process_yields(self, module: ModuleInfo,
                              fn: ast.AST) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Yield) or node.value is None:
                continue  # bare ``yield`` is the make-it-a-generator idiom
            if _owner_function(fn, node) is not fn:
                continue
            value = node.value
            bad: Optional[str] = None
            if isinstance(value, _BAD_YIELD_LITERALS):
                bad = "a container literal"
            elif isinstance(value, ast.Constant):
                v = value.value
                if v is None:
                    bad = "None"
                elif isinstance(v, bool):
                    bad = f"{v!r}"
                elif isinstance(v, (str, bytes)):
                    bad = f"{v!r}"
            elif isinstance(value, ast.UnaryOp) \
                    and isinstance(value.op, ast.USub) \
                    and isinstance(value.operand, ast.Constant) \
                    and isinstance(value.operand.value, (int, float)):
                bad = f"the negative delay -{value.operand.value!r}"
            if bad is not None:
                yield module.finding(
                    node, self.code,
                    f"process yields {bad} — the kernel accepts only an "
                    "Event or a non-negative number of nanoseconds")

    # -- call-site checks ------------------------------------------------
    def _check_calls(self, module: ModuleInfo) -> Iterator[Finding]:
        findings: List[Finding] = []

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.loop_targets: List[Set[str]] = []

            def visit_For(self, node: ast.For) -> None:
                names = {n.id for n in ast.walk(node.target)
                         if isinstance(n, ast.Name)}
                self.loop_targets.append(names)
                self.generic_visit(node)
                self.loop_targets.pop()

            visit_AsyncFor = visit_For

            def visit_Call(self, node: ast.Call) -> None:
                fn = node.func
                if isinstance(fn, ast.Attribute):
                    if fn.attr in _SCHED_CALLS:
                        self._lambda_capture(node)
                    if fn.attr in ("call_later", "schedule", "timeout"):
                        self._negative_delay(node)
                self.generic_visit(node)

            def _lambda_capture(self, node: ast.Call) -> None:
                active: Set[str] = set()
                for names in self.loop_targets:
                    active |= names
                if not active:
                    return
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    if not isinstance(arg, ast.Lambda):
                        continue
                    bound = {a.arg for a in arg.args.args
                             + arg.args.posonlyargs + arg.args.kwonlyargs}
                    free = {n.id for n in ast.walk(arg.body)
                            if isinstance(n, ast.Name)
                            and isinstance(n.ctx, ast.Load)} - bound
                    captured = sorted(free & active)
                    if captured:
                        findings.append(module.finding(
                            arg, EngineIdioms.code,
                            "lambda scheduled with call_later closes over "
                            f"loop variable(s) {', '.join(captured)} — "
                            "late binding fires every callback with the "
                            "last value; pass them as call_later(d, fn, "
                            "args...) instead"))

            def _negative_delay(self, node: ast.Call) -> None:
                if not node.args:
                    return
                first = node.args[0]
                if isinstance(first, ast.UnaryOp) \
                        and isinstance(first.op, ast.USub) \
                        and isinstance(first.operand, ast.Constant) \
                        and isinstance(first.operand.value, (int, float)):
                    findings.append(module.finding(
                        first, EngineIdioms.code,
                        "literal negative delay "
                        f"-{first.operand.value!r} — the kernel rejects "
                        "this at runtime; schedule relative delays >= 0"))

        Visitor().visit(module.tree)
        yield from findings


@register
class DroppedHandles(Rule):
    code = "D105"
    summary = ("dropped process/cancellation handles: bare sim.process() "
               "statements, never-read call_later handles, discarded "
               "timeout()/event() results")

    def applies(self, module: ModuleInfo) -> bool:
        return (self.config.is_sim_side(module.package)
                and module.touches_scheduling)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                chain = attr_chain(node.value.func)
                if _sim_receiver(chain, "process"):
                    yield module.finding(
                        node, self.code,
                        "spawned process handle discarded — keep the "
                        "Process (e.g. on self) so it can be interrupted "
                        "and its crash attributed")
                elif _sim_receiver(chain, "timeout") \
                        or _sim_receiver(chain, "event"):
                    yield module.finding(
                        node, self.code,
                        f"result of {chain}() discarded — the event fires "
                        "with no waiter (missing yield?)")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._dead_handles(module, node)

    def _dead_handles(self, module: ModuleInfo,
                      fn: ast.AST) -> Iterator[Finding]:
        assigns = {}  # name -> assign node
        loads: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and isinstance(node.value, ast.Call):
                chain = attr_chain(node.value.func)
                if any(_sim_receiver(chain, c) for c in _SCHED_CALLS):
                    name = node.targets[0].id
                    if not name.startswith("_"):
                        assigns.setdefault(name, node)
            elif isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load):
                loads.add(node.id)
        for name, node in assigns.items():
            if name not in loads:
                yield module.finding(
                    node, self.code,
                    f"cancellation handle {name!r} is never read — either "
                    "sim.cancel() it on some path or drop the binding")
