"""D111 — interprocedural wall-clock / nondeterminism taint.

D102/D103 flag a nondeterministic construct *in the body* of a sim-side
function. They are blind to the function that stays clean itself but
calls a helper — often in a host-side module the per-file rules exempt —
whose call graph reaches ``time.monotonic()``, ``os.urandom()``, or an
unordered iteration. The result is the same: simulated behaviour coupled
to the host, but the drift lives two modules away from the symptom.

D111 closes that hole with the whole-program call graph. For each taint
category it computes the set of functions whose closure (calls plus
nested definitions) contains a tainted construct, then reports at the
**boundary**: the call edge where a sim-side function hands control to a
function outside the category's per-file enforcement scope. Constructs
inside the enforcement scope stay the per-file rules' findings —
interprocedural reporting never duplicates them, and callers of a
function D111 already flags directly are not re-flagged (no cascades).
OS-entropy draws (``os.urandom``/``uuid.uuid4``/``secrets``) have no
per-file rule, so their direct sim-side occurrences are D111 findings
too; ``random.*`` calls are D101's everywhere in the repro package and
are deliberately not a taint source here.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, Iterator, Set, Tuple

from .. import detect
from ..core import Finding, ModuleInfo, Rule, register
from ..project import Project

__all__ = ["InterproceduralTaint"]


class _Category:
    __slots__ = ("name", "detector", "covered", "hint")

    def __init__(self, name: str,
                 detector: Callable[[ModuleInfo], Iterator[Tuple[ast.AST,
                                                                 str]]],
                 covered: Callable[["InterproceduralTaint", ModuleInfo],
                                   bool],
                 hint: str):
        self.name = name
        self.detector = detector
        #: Whether a *direct* occurrence in the module is already a
        #: per-file rule's finding (D102/D103) — D111 must not duplicate.
        self.covered = covered
        self.hint = hint


def _wallclock_covered(rule: "InterproceduralTaint",
                       module: ModuleInfo) -> bool:
    return (rule.config.is_sim_side(module.package)
            and not rule.config.is_wallclock_exempt(module.package))


def _never_covered(rule: "InterproceduralTaint",
                   module: ModuleInfo) -> bool:
    return False


def _unordered_covered(rule: "InterproceduralTaint",
                       module: ModuleInfo) -> bool:
    return (rule.config.is_sim_side(module.package)
            and module.touches_scheduling)


_CATEGORIES = (
    _Category("wall-clock read", detect.wallclock_calls,
              _wallclock_covered,
              "simulated code must take time from sim.now"),
    _Category("OS-entropy draw", detect.os_random_calls, _never_covered,
              "draw a named RngRegistry stream instead"),
    _Category("unordered iteration", detect.unordered_iterations,
              _unordered_covered,
              "hash order leaks into event order; iterate sorted(...)"),
)


@register
class InterproceduralTaint(Rule):
    code = "D111"
    summary = ("sim-side functions must not reach wall-clock, OS entropy, "
               "or unordered iteration through their call graph — "
               "reported at the boundary call")
    scope = "project"

    def check_project(self, project: Project) -> Iterator[Finding]:
        reverse = self._reverse_edges(project)
        for cat in _CATEGORIES:
            direct = self._direct_taint(project, cat)
            closure = self._taint_closure(reverse, direct)
            yield from self._report(project, cat, direct, closure)

    # ------------------------------------------------------------------
    def _enforced(self, cat: _Category, project: Project,
                  package: str) -> bool:
        """Whether D111 roots live in this module for the category."""
        if not self.config.is_sim_side(package) or \
                self.config.is_wallclock_exempt(package):
            return False
        if cat.name == "unordered iteration":
            module = project.modules.get(package)
            return module is not None and module.touches_scheduling
        return True

    @staticmethod
    def _reverse_edges(project: Project) -> Dict[str, Set[str]]:
        reverse: Dict[str, Set[str]] = {}
        for qual, fn in project.functions.items():
            for callee in fn.calls | fn.defines:
                reverse.setdefault(callee, set()).add(qual)
        return reverse

    def _direct_taint(self, project: Project, cat: _Category
                      ) -> Dict[str, Tuple[ast.AST, str]]:
        """function qualname -> first tainted (node, description)."""
        direct: Dict[str, Tuple[ast.AST, str]] = {}
        for module in project.modules.values():
            hits = list(cat.detector(module))
            if not hits:
                continue
            for node, desc in hits:
                fn = project.enclosing_function(module, node)
                if fn is not None:
                    direct.setdefault(fn.qualname, (node, desc))
        return direct

    @staticmethod
    def _taint_closure(reverse: Dict[str, Set[str]],
                       direct: Dict[str, Tuple[ast.AST, str]]
                       ) -> Set[str]:
        seen: Set[str] = set()
        stack = list(direct)
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            stack.extend(reverse.get(qual, ()))
        return seen

    def _report(self, project: Project, cat: _Category,
                direct: Dict[str, Tuple[ast.AST, str]],
                closure: Set[str]) -> Iterator[Finding]:
        for qual in sorted(project.functions):
            fn = project.functions[qual]
            if not self._enforced(cat, project, fn.module):
                continue
            module = project.modules.get(fn.module)
            if module is None:
                continue
            hit = direct.get(qual)
            if hit is not None:
                # Direct occurrence: the per-file rules' finding when the
                # module is in their scope, D111's otherwise (OS entropy).
                if not cat.covered(self, module):
                    node, desc = hit
                    yield module.finding(
                        node, self.code,
                        f"{cat.name} {desc} in sim-side {fn.name}() — "
                        f"{cat.hint}")
                continue
            seen_callees: Set[str] = set()
            for callee, call_node in fn.call_sites:
                if callee in seen_callees or callee not in closure:
                    continue
                seen_callees.add(callee)
                target = project.functions.get(callee)
                if target is None:
                    continue
                target_module = project.modules.get(target.module)
                if target_module is not None and \
                        cat.covered(self, target_module):
                    continue  # per-file rules own findings over there
                if self._enforced(cat, project, target.module):
                    continue  # the callee gets its own D111 finding
                path = project.find_path(callee, set(direct),
                                         follow_defines=True)
                desc = direct[path[-1]][1] if path else "a tainted call"
                via = " -> ".join(p.rsplit(".", 1)[-1] + "()"
                                  for p in (path or [callee]))
                yield module.finding(
                    call_node, self.code,
                    f"{fn.name}() reaches a {cat.name} ({desc}) through "
                    f"{via} — {cat.hint}")


# Re-exported for introspection/tests: the taint category names.
TAINT_CATEGORIES: Tuple[str, ...] = tuple(c.name for c in _CATEGORIES)
