"""D107 — shard-domain discipline (whole-program).

Sharded runs are byte-identical to the single kernel only because every
cross-shard interaction rides the channel protocol (docs/SHARDING.md):
the emitting shard consumes the exact calendar key the single-kernel run
would (``reserve_key`` / the emitter's own ``call_later``), ships it,
and the peer inserts the entry verbatim with ``post_keyed``. Three
structural guarantees keep that true, and all three are cross-module
properties of :mod:`repro.topo` / :mod:`repro.shard` / :mod:`repro.sim`:

1. ``post_keyed`` — the only way to schedule under a foreign domain's
   sequence number — may be called only from a channel receiver
   (``inject_packet`` / ``inject_ack``) or a helper reachable *only*
   from channel receivers. Anywhere else it is a race against the
   domain owner's sequence counter.
2. A ``reserve_key`` call consumes a local sequence number on behalf of
   a peer; the function that reserves must also ship the key through a
   channel emitter, or the key is burned and calendars diverge.
3. Boundary-link emitters (assignments to a port's ``_wire_send`` seam)
   may be installed only by ``attach_channels`` (or helpers it calls) —
   the one entry point the shard kernel drives.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from ..core import Finding, Rule, attr_chain, register
from ..project import FunctionInfo, Project

__all__ = ["ShardDomainDiscipline"]


def _last_segment(chain: str) -> str:
    return chain.rsplit(".", 1)[-1]


@register
class ShardDomainDiscipline(Rule):
    code = "D107"
    summary = ("cross-shard scheduling must ride the channel protocol: "
               "post_keyed only in channel receivers, reserve_key paired "
               "with an emit, _wire_send installed via attach_channels")
    scope = "project"

    def check_project(self, project: Project) -> Iterator[Finding]:
        shard_fns = {
            qual: fn for qual, fn in project.functions.items()
            if self.config.is_shard_module(fn.module)
        }
        callers = self._reverse_edges(project, shard_fns)
        approved: Dict[str, bool] = {}
        installer_reach = self._installer_reach(project, shard_fns)

        for qual in sorted(shard_fns):
            fn = shard_fns[qual]
            module = project.modules.get(fn.module)
            if module is None:
                continue
            reserves: List[ast.Call] = []
            emits = False
            for node in Project._in_order(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                chain = attr_chain(node.func)
                if chain is None:
                    continue
                name = _last_segment(chain)
                if name == "post_keyed":
                    if not self._receiver_approved(qual, callers, approved):
                        yield module.finding(
                            node, self.code,
                            f"post_keyed() outside a channel receiver — "
                            f"{fn.name} schedules under a foreign domain's "
                            "sequence number; only "
                            + "/".join(self.config.channel_receivers)
                            + " (and their private helpers) may insert "
                            "peer calendar keys")
                elif name == "reserve_key":
                    reserves.append(node)
                elif "emit" in name.lower():
                    emits = True
            if reserves and not emits:
                for node in reserves:
                    yield module.finding(
                        node, self.code,
                        f"reserve_key() in {fn.name} consumes a calendar "
                        "key on a peer's behalf but the function never "
                        "ships it through a channel emitter — the "
                        "sequence number is burned and sharded calendars "
                        "diverge from the single kernel")

        for qual in sorted(shard_fns):
            fn = shard_fns[qual]
            module = project.modules.get(fn.module)
            if module is None:
                continue
            for node in Project._in_order(fn.node):
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, ast.AnnAssign):
                    targets = [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and \
                            target.attr == "_wire_send" and \
                            qual not in installer_reach:
                        yield module.finding(
                            node, self.code,
                            f"boundary emitter installed outside the "
                            f"channel-installer path — {fn.name} assigns "
                            "_wire_send but is not reachable from "
                            + "/".join(self.config.channel_installers)
                            + "; cut-link emission the shard kernel "
                            "cannot drain breaks byte-identity")

    # ------------------------------------------------------------------
    def _reverse_edges(self, project: Project,
                       shard_fns: Dict[str, FunctionInfo]
                       ) -> Dict[str, Set[str]]:
        """callee -> callers, restricted to shard-module functions; a
        nested function's lexical parent counts as a caller (closures
        are invoked through the value the parent handed out)."""
        callers: Dict[str, Set[str]] = {}
        for qual, fn in shard_fns.items():
            for callee in fn.calls | fn.defines:
                callers.setdefault(callee, set()).add(qual)
        return callers

    def _receiver_approved(self, qual: str,
                           callers: Dict[str, Set[str]],
                           memo: Dict[str, bool],
                           visiting: Optional[Set[str]] = None) -> bool:
        """A function may touch ``post_keyed`` iff it *is* a channel
        receiver or every shard-module caller of it is approved (i.e. it
        is a private helper of the receivers). Call cycles resolve
        optimistically: a cycle is only enterable from outside, and those
        entries are checked on their own."""
        if qual in memo:
            return memo[qual]
        if visiting is None:
            visiting = set()
        if qual in visiting:
            return True
        visiting.add(qual)
        name = qual.rsplit(".", 1)[-1]
        if name in self.config.channel_receivers:
            ok = True
        else:
            calling = callers.get(qual)
            ok = bool(calling) and all(
                self._receiver_approved(c, callers, memo, visiting)
                for c in sorted(calling))
        memo[qual] = ok
        return ok

    def _installer_reach(self, project: Project,
                         shard_fns: Dict[str, FunctionInfo]) -> Set[str]:
        roots = [qual for qual in shard_fns
                 if qual.rsplit(".", 1)[-1]
                 in self.config.channel_installers]
        return project.reachable_from(sorted(roots))
