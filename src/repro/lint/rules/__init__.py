"""Rule modules. Importing this package registers every rule."""

from . import rng  # noqa: F401
from . import wallclock  # noqa: F401
from . import ordering  # noqa: F401
from . import engine_idioms  # noqa: F401
from . import state  # noqa: F401
from . import shard  # noqa: F401
from . import registry  # noqa: F401
from . import taint  # noqa: F401
