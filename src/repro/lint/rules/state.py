"""D106 — no mutable defaults or module-level mutable state sim-side.

A mutable default argument is shared by every call — per-run state leaks
across simulations that should be independent. Module-level mutable
containers are worse in this codebase: the runner executes many
simulation points inside one worker process, so module state carries
results of one point into the next and breaks the cache's assumption
that (fn, params, seed) determines the output. Put state on an object
whose lifetime is one simulation, or make the module-level value a
tuple/frozenset. Deliberate import-time registries can carry a justified
``# repro: noqa=D106``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..core import Finding, ModuleInfo, Rule, register

__all__ = ["MutableState"]

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque",
                  "defaultdict", "OrderedDict", "Counter"}


def _mutable_kind(node: ast.AST) -> Optional[str]:
    if isinstance(node, _MUTABLE_LITERALS):
        return type(node).__name__.replace("Comp", " comprehension").lower()
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in _MUTABLE_CALLS:
        return f"{node.func.id}()"
    return None


@register
class MutableState(Rule):
    code = "D106"
    summary = ("no mutable default arguments or module-level mutable "
               "state in sim-side packages")

    def applies(self, module: ModuleInfo) -> bool:
        return self.config.is_sim_side(module.package)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                args = node.args
                for default in list(args.defaults) + \
                        [d for d in args.kw_defaults if d is not None]:
                    kind = _mutable_kind(default)
                    if kind is not None:
                        name = getattr(node, "name", "<lambda>")
                        yield module.finding(
                            default, self.code,
                            f"mutable default argument ({kind}) in "
                            f"{name}() is shared across calls — default "
                            "to None and create per call")
        yield from self._module_state(module, module.tree.body)

    def _module_state(self, module: ModuleInfo,
                      body) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.If, ast.Try)):
                # One level deep: TYPE_CHECKING / import-fallback guards.
                for inner in ([stmt.body, stmt.orelse]
                              + ([h.body for h in stmt.handlers]
                                 if isinstance(stmt, ast.Try) else [])):
                    yield from self._module_state(module, inner)
                continue
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            kind = _mutable_kind(value)
            if kind is None:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__") and name.endswith("__"):
                    continue  # __all__ and friends: convention, not state
                yield module.finding(
                    stmt, self.code,
                    f"module-level mutable state {name!r} ({kind}) "
                    "outlives any single simulation — scope it to an "
                    "object created per run")
