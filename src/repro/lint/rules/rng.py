"""D101 — all randomness flows through the RngRegistry.

A component that builds its own ``random.Random`` (worse: seeds the
global ``random`` module, or calls ``numpy.random``) silently ignores the
experiment's ``--seed``: sweeps stop being perturbable, and the runner's
content-addressed cache can no longer distinguish runs that should
differ. The only module allowed to touch the raw generators is
``repro.sim.rng``; everything else draws *named streams* from an
:class:`~repro.sim.rng.RngRegistry` (``testbed.rng.stream("name")``).

Annotating with ``random.Random`` is fine — only *calls* are flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from ..core import Finding, ModuleInfo, Rule, attr_chain, register

__all__ = ["RngDiscipline"]

#: Constructors that mint an independent generator.
_RANDOM_CLASSES = {"Random", "SystemRandom"}


@register
class RngDiscipline(Rule):
    code = "D101"
    summary = ("no raw RNG construction or random-module calls outside "
               "repro.sim.rng — draw named RngRegistry streams")

    def applies(self, module: ModuleInfo) -> bool:
        return (self.config.is_repro(module.package)
                and module.package != self.config.rng_module)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        random_aliases: Set[str] = set()
        numpy_aliases: Set[str] = set()
        # Names bound directly to random-module constructors/functions by
        # ``from random import ...``; maps local name -> original name.
        from_random: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        random_aliases.add(alias.asname or "random")
                    elif alias.name in ("numpy", "numpy.random"):
                        numpy_aliases.add(
                            (alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        from_random[alias.asname or alias.name] = alias.name
                elif node.module in ("numpy", "numpy.random"):
                    for alias in node.names:
                        if node.module == "numpy.random" \
                                or alias.name == "random":
                            from_random[alias.asname or alias.name] = \
                                f"numpy.random.{alias.name}"

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attr_chain(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            root = parts[0]
            if root in random_aliases and len(parts) > 1:
                what = "construction of random." + parts[-1] \
                    if parts[-1] in _RANDOM_CLASSES \
                    else f"call to random.{'.'.join(parts[1:])}"
                yield module.finding(
                    node, self.code,
                    f"{what} outside repro.sim.rng — draw a named stream "
                    "from the RngRegistry instead")
            elif len(parts) == 1 and root in from_random:
                origin = from_random[root]
                if origin in _RANDOM_CLASSES or "." in origin:
                    yield module.finding(
                        node, self.code,
                        f"call to {origin} (imported as {root}) outside "
                        "repro.sim.rng — draw a named stream from the "
                        "RngRegistry instead")
                else:
                    yield module.finding(
                        node, self.code,
                        f"call to random.{origin} (imported as {root}) "
                        "outside repro.sim.rng — draw a named stream from "
                        "the RngRegistry instead")
            elif (root in numpy_aliases and len(parts) >= 2
                  and parts[1] == "random"):
                yield module.finding(
                    node, self.code,
                    f"call to {chain} — numpy randomness bypasses the "
                    "RngRegistry seed discipline entirely")
