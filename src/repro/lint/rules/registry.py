"""D108/D109/D110 — registry-drift checks (whole-program).

Three registries hold cross-module contracts that drift silently under
the per-file pass:

- **D108** audit wiring: every ``debit``/``credit``/``slack`` source in
  :mod:`repro.audit.wiring` and in each architecture's
  ``audit_register`` hook must resolve to a real attribute on the
  object it meters, and an architecture overriding the hook must either
  defer to ``super()`` or register the standard account trio itself.
- **D109** RNG stream names: one literal stream name bound from two
  different classes/modules aliases two logically distinct draw
  sequences onto one generator; dynamic names outside the approved
  helpers defeat the project-wide collision scan; raw-registry draws in
  :mod:`repro.topo` bypass the ``"<host>."`` prefix convention.
- **D110** fault sites: ``FAULT_SITES`` keys, the ``@_handler(site,
  kind)`` implementations, and the docs/FAULTS.md site table must agree
  pairwise.

Resolution is conservative throughout: unknown or open types pass, a
``Union`` source passes when the attribute exists on at least one arm.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..core import Finding, ModuleInfo, Rule, attr_chain, register
from ..project import FunctionInfo, Project

__all__ = ["AuditWiringDrift", "StreamNameRegistry", "FaultSiteDrift"]

_SOURCE_METHODS = frozenset({"debit", "credit", "slack"})


def _audit_functions(rule: Rule, project: Project
                     ) -> Iterator[FunctionInfo]:
    """The functions whose account sources D108 resolves: everything in
    the wiring module plus every ``audit_register`` (the base hook and
    each architecture's override)."""
    for qual in sorted(project.functions):
        fn = project.functions[qual]
        if fn.module == rule.config.audit_wiring_module:
            yield fn
        elif fn.name == rule.config.audit_hook and fn.cls is not None:
            yield fn


@register
class AuditWiringDrift(Rule):
    code = "D108"
    summary = ("audit account sources must resolve to live attributes on "
               "the metered object; arch audit_register overrides must "
               "defer to super() or register the standard account trio")
    scope = "project"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for fn in _audit_functions(self, project):
            module = project.modules.get(fn.module)
            if module is None:
                continue
            yield from self._check_sources(project, module, fn)
        yield from self._check_arch_hooks(project)

    # -- source resolution ---------------------------------------------
    def _check_sources(self, project: Project, module: ModuleInfo,
                       fn: FunctionInfo) -> Iterator[Finding]:
        for node in Project._in_order(fn.node):
            if not isinstance(node, ast.Call) or \
                    not isinstance(node.func, ast.Attribute) or \
                    node.func.attr not in _SOURCE_METHODS or \
                    len(node.args) < 2:
                continue
            source = node.args[1]
            if isinstance(source, ast.Tuple) and len(source.elts) == 2 \
                    and isinstance(source.elts[1], ast.Constant) \
                    and isinstance(source.elts[1].value, str):
                attr = source.elts[1].value
                owners = self._expr_types(project, fn, source.elts[0])
                bad = self._attr_missing(project, owners, attr)
                if bad is not None:
                    yield module.finding(
                        node, self.code,
                        f"audit source ({bad.rsplit('.', 1)[-1]}, "
                        f"{attr!r}) names an attribute that does not "
                        f"exist on {bad} — the ledger would raise at "
                        "reconcile time, long after the drift landed")
            elif attr_chain(source) is not None:
                chain = attr_chain(source)
                parts = chain.split(".")
                if len(parts) < 2:
                    continue
                head = ast.parse(".".join(parts[:-1]), mode="eval").body
                head.lineno = source.lineno
                owners = self._expr_types(project, fn, head)
                bad = self._attr_missing(project, owners, parts[-1])
                if bad is not None:
                    yield module.finding(
                        node, self.code,
                        f"audit source {chain} does not resolve: "
                        f"{bad} has no attribute {parts[-1]!r}")

    def _expr_types(self, project: Project, fn: FunctionInfo,
                    expr: ast.AST) -> Tuple[str, ...]:
        return project._value_types(fn.module, expr,
                                    env=fn.local_types, cls=fn.cls)

    @staticmethod
    def _attr_missing(project: Project, owners: Tuple[str, ...],
                      attr: str) -> Optional[str]:
        """The owner proving the attribute missing, or None. A Union
        source passes when *any* arm has the attribute; unknown/open
        owners pass."""
        if not owners:
            return None
        verdicts = [project.class_has_attr(q, attr) for q in owners]
        if any(v is not False for v in verdicts):
            return None
        return owners[0]

    # -- architecture hooks --------------------------------------------
    def _check_arch_hooks(self, project: Project) -> Iterator[Finding]:
        base = project.classes.get(self.config.arch_base)
        if base is None:
            return
        hook = self.config.audit_hook
        for cls in project.subclasses_of(base.qualname):
            module = project.modules.get(cls.module)
            if module is None:
                continue
            if project.class_has_attr(cls.qualname, hook) is False:
                yield module.finding(
                    cls.node, self.code,
                    f"{cls.name} subclasses {base.name} but neither "
                    f"implements nor inherits {hook}() — its accounts "
                    "never join the conservation ledger")
                continue
            override = cls.methods.get(hook)
            if override is None:
                continue
            if self._defers_to_super(override, hook):
                continue
            registered = self._registered_accounts(override.node)
            missing = [a for a in self.config.standard_accounts
                       if a not in registered]
            if missing:
                yield module.finding(
                    override.node, self.code,
                    f"{cls.name}.{hook}() neither calls super().{hook}() "
                    f"nor registers the standard account(s) "
                    f"{', '.join(missing)} — the cross-arch balance "
                    "equations silently stop covering this architecture")

    @staticmethod
    def _defers_to_super(fn: FunctionInfo, hook: str) -> bool:
        for node in Project._in_order(fn.node):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == hook and \
                    isinstance(node.func.value, ast.Call) and \
                    isinstance(node.func.value.func, ast.Name) and \
                    node.func.value.func.id == "super":
                return True
        return False

    @staticmethod
    def _registered_accounts(node: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for call in ast.walk(node):
            if isinstance(call, ast.Call) and \
                    isinstance(call.func, ast.Attribute) and \
                    call.func.attr == "account" and call.args and \
                    isinstance(call.args[0], ast.Constant) and \
                    isinstance(call.args[0].value, str):
                names.add(call.args[0].value)
        return names


@register
class StreamNameRegistry(Rule):
    code = "D109"
    summary = ("RNG stream names: no cross-module literal collisions, no "
               "dynamic names outside approved helpers, host-prefixed "
               "draws (HostRng) inside repro.topo")
    scope = "project"

    def check_project(self, project: Project) -> Iterator[Finding]:
        #: literal name -> [(owner key, module, fn, node)]
        literals: Dict[str, List[Tuple[str, ModuleInfo, FunctionInfo,
                                       ast.Call]]] = {}
        for qual in sorted(project.functions):
            fn = project.functions[qual]
            if not self.config.is_sim_side(fn.module):
                continue
            if self._is_approved_helper(qual):
                continue
            module = project.modules.get(fn.module)
            if module is None:
                continue
            for node in Project._in_order(fn.node):
                if not isinstance(node, ast.Call) or \
                        not isinstance(node.func, ast.Attribute) or \
                        node.func.attr != "stream" or not node.args:
                    continue
                if self._resolves_to_helper(fn, node):
                    continue
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and \
                        isinstance(arg.value, str):
                    owner = (fn.cls.qualname if fn.cls is not None
                             else fn.module)
                    literals.setdefault(arg.value, []).append(
                        (owner, module, fn, node))
                else:
                    yield module.finding(
                        node, self.code,
                        f"dynamic RNG stream name in {fn.name} — "
                        "non-literal names defeat the project-wide "
                        "collision scan; draw through an approved "
                        "helper ("
                        + ", ".join(h.rsplit(".", 2)[-2] + "." +
                                    h.rsplit(".", 2)[-1]
                                    for h in self.config.stream_helpers)
                        + ") or use a literal")
                yield from self._check_topo_prefix(project, module, fn,
                                                   node)
        for name in sorted(literals):
            sites = literals[name]
            owners = {owner for owner, _, _, _ in sites}
            if len(owners) < 2:
                continue
            for owner, module, fn, node in sites:
                others = sorted(o.rsplit(".", 1)[-1]
                                for o in owners - {owner})
                yield module.finding(
                    node, self.code,
                    f"RNG stream name {name!r} is also drawn from "
                    f"{', '.join(others)} — two components sharing one "
                    "seeded sequence couple their draw orders; rename "
                    "one stream")

    def _is_approved_helper(self, qual: str) -> bool:
        return any(qual == h or qual.startswith(h + ".")
                   for h in self.config.stream_helpers)

    def _resolves_to_helper(self, fn: FunctionInfo,
                            node: ast.Call) -> bool:
        """True when the call-graph resolved this exact call site to an
        approved helper (e.g. ``controller.stream(spec, i)``)."""
        for callee, call in fn.call_sites:
            if call is node:
                return self._is_approved_helper(callee)
        return False

    def _check_topo_prefix(self, project: Project, module: ModuleInfo,
                           fn: FunctionInfo,
                           node: ast.Call) -> Iterator[Finding]:
        if not fn.module.startswith("repro.topo"):
            return
        receiver = node.func.value
        quals = project._value_types(fn.module, receiver,
                                     env=fn.local_types, cls=fn.cls)
        registry_cls = self.config.rng_module + ".RngRegistry"
        if registry_cls in quals:
            yield module.finding(
                node, self.code,
                f"raw RngRegistry draw in {fn.name} — repro.topo code "
                "must draw through HostRng so stream names carry the "
                '"<host>." prefix and per-host draw order stays '
                "location-independent")


@register
class FaultSiteDrift(Rule):
    code = "D110"
    summary = ("FAULT_SITES keys, @_handler implementations, and the "
               "docs/FAULTS.md site table must agree pairwise")
    scope = "project"

    def check_project(self, project: Project) -> Iterator[Finding]:
        plan = project.modules.get(self.config.fault_plan_module)
        injectors = project.modules.get(self.config.fault_injector_module)
        if plan is None or injectors is None:
            return
        sites = self._parse_sites(plan)
        if sites is None:
            return
        anchor, registry = sites
        # Handlers live in two modules: per-host injectors, plus the
        # shard coordinator's channel layer (net.channel). Both use the
        # same @_handler(site, kind) decorator shape.
        handler_modules = [injectors]
        channel = project.modules.get(self.config.fault_channel_module)
        if channel is not None:
            handler_modules.append(channel)
        handlers: Dict[Tuple[str, str],
                       Tuple[ModuleInfo, ast.AST]] = {}
        for module in handler_modules:
            for key, node in self._parse_handlers(module).items():
                handlers.setdefault(key, (module, node))

        declared = {(site, kind) for site, kinds in registry.items()
                    for kind in kinds}
        for site, kind in sorted(declared - set(handlers)):
            yield plan.finding(
                anchor, self.code,
                f"FAULT_SITES declares ({site!r}, {kind!r}) but "
                f"neither {self.config.fault_injector_module} nor "
                f"{self.config.fault_channel_module} has a @_handler "
                "for it — arming such a plan raises at injection time")
        for (site, kind), (module, node) in sorted(handlers.items()):
            if (site, kind) not in declared:
                yield module.finding(
                    node, self.code,
                    f"@_handler({site!r}, {kind!r}) implements a fault "
                    "FAULT_SITES does not declare — no plan can ever "
                    "validate it; add it to the registry or delete it")

        docs = self._parse_docs(plan)
        if docs is None:
            return
        for site in sorted(set(registry) - set(docs)):
            yield plan.finding(
                anchor, self.code,
                f"fault site {site!r} is missing from the "
                f"{self.config.fault_docs_page} site table")
        for site in sorted(set(docs) - set(registry)):
            yield plan.finding(
                anchor, self.code,
                f"{self.config.fault_docs_page} documents fault site "
                f"{site!r} which FAULT_SITES does not declare")
        for site in sorted(set(registry) & set(docs)):
            if set(registry[site]) != set(docs[site]):
                yield plan.finding(
                    anchor, self.code,
                    f"fault site {site!r}: registry kinds "
                    f"{sorted(registry[site])} != documented kinds "
                    f"{sorted(docs[site])} in "
                    f"{self.config.fault_docs_page}")

    # ------------------------------------------------------------------
    @staticmethod
    def _parse_sites(plan: ModuleInfo
                     ) -> Optional[Tuple[ast.AST,
                                         Dict[str, Tuple[str, ...]]]]:
        for node in plan.tree.body:
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value:
                target, value = node.target, node.value
            else:
                continue
            if not (isinstance(target, ast.Name)
                    and target.id == "FAULT_SITES"
                    and isinstance(value, ast.Dict)):
                continue
            registry: Dict[str, Tuple[str, ...]] = {}
            for key, val in zip(value.keys, value.values):
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and isinstance(val, (ast.Tuple, ast.List))):
                    return None
                kinds = []
                for elt in val.elts:
                    if not (isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)):
                        return None
                    kinds.append(elt.value)
                registry[key.value] = tuple(kinds)
            return node, registry
        return None

    @staticmethod
    def _parse_handlers(injectors: ModuleInfo
                        ) -> Dict[Tuple[str, str], ast.AST]:
        handlers: Dict[Tuple[str, str], ast.AST] = {}
        for node in ast.walk(injectors.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            for deco in node.decorator_list:
                if isinstance(deco, ast.Call) and \
                        isinstance(deco.func, ast.Name) and \
                        deco.func.id == "_handler" and \
                        len(deco.args) == 2 and \
                        all(isinstance(a, ast.Constant)
                            and isinstance(a.value, str)
                            for a in deco.args):
                    handlers[(deco.args[0].value,
                              deco.args[1].value)] = node
        return handlers

    _DOC_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|([^|]*)\|")

    def _parse_docs(self, plan: ModuleInfo
                    ) -> Optional[Dict[str, Tuple[str, ...]]]:
        """Locate the docs page by walking up from the plan module's
        file, then read the site table's first two columns."""
        page: Optional[Path] = None
        for parent in Path(plan.path).resolve().parents:
            candidate = parent / self.config.fault_docs_page
            if candidate.is_file():
                page = candidate
                break
        if page is None:
            return None
        docs: Dict[str, Tuple[str, ...]] = {}
        try:
            lines = page.read_text(encoding="utf-8").splitlines()
        except OSError:
            return None
        for line in lines:
            m = self._DOC_ROW.match(line.strip())
            if m is None:
                continue
            site, kinds_cell = m.group(1), m.group(2)
            kinds = tuple(re.findall(r"`([^`]+)`", kinds_cell))
            if kinds:
                docs[site] = kinds
        return docs or None
