"""Shared nondeterminism detectors, reused by D102/D103 and D111.

The per-file rules (:mod:`.rules.wallclock`, :mod:`.rules.ordering`)
flag these constructs with rule-specific messages; the interprocedural
taint rule (D111) needs the same *detection* applied to every module —
including ones outside the sim-side scope — to mark call-graph nodes as
tainted. Each detector yields ``(node, description)`` pairs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set, Tuple

from .core import ModuleInfo, attr_chain

__all__ = ["wallclock_calls", "os_random_calls", "unordered_iterations"]

#: Fully-qualified callables that read OS entropy: their results differ
#: on every run regardless of seeding. ``random.*`` is deliberately
#: absent — D101 owns it throughout the repro package.
_OS_RANDOM_CALLS = frozenset({
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
})
_OS_RANDOM_PREFIXES = ("secrets.",)


def wallclock_calls(module: ModuleInfo) -> Iterator[Tuple[ast.Call, str]]:
    """Calls reading the host clock, import-alias aware."""
    # Imported lazily: rules.taint imports this module while the rules
    # package itself is still initializing.
    from .rules.wallclock import _DATETIME_FNS, _TIME_FNS
    time_aliases: Set[str] = set()
    datetime_mod_aliases: Set[str] = set()
    datetime_cls_aliases: Set[str] = set()
    from_time: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    time_aliases.add(alias.asname or "time")
                elif alias.name == "datetime":
                    datetime_mod_aliases.add(alias.asname or "datetime")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _TIME_FNS:
                        from_time[alias.asname or alias.name] = alias.name
            elif node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        datetime_cls_aliases.add(alias.asname or alias.name)

    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = attr_chain(node.func)
        if chain is None:
            continue
        parts = chain.split(".")
        root = parts[0]
        if len(parts) == 2 and root in time_aliases and \
                parts[1] in _TIME_FNS:
            yield node, f"{chain}()"
        elif len(parts) == 1 and root in from_time:
            yield node, f"time.{from_time[root]}()"
        elif len(parts) == 3 and root in datetime_mod_aliases and \
                parts[1] in ("datetime", "date") and \
                parts[2] in _DATETIME_FNS:
            yield node, f"{chain}()"
        elif len(parts) == 2 and root in datetime_cls_aliases and \
                parts[1] in _DATETIME_FNS:
            yield node, f"{chain}()"


def os_random_calls(module: ModuleInfo) -> Iterator[Tuple[ast.Call, str]]:
    """Calls drawing OS (or module-global, unseedable-per-run) entropy."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        chain = attr_chain(node.func)
        if chain is None:
            continue
        if chain in _OS_RANDOM_CALLS or \
                any(chain.startswith(p) for p in _OS_RANDOM_PREFIXES):
            yield node, f"{chain}()"


def unordered_iterations(module: ModuleInfo
                         ) -> Iterator[Tuple[ast.AST, str]]:
    """Set iteration (direct or via ``list()``/``iter()`` laundering) —
    the D103 detection, without its scheduling-module gate."""
    from .rules.ordering import _is_set_literalish, _SetTypes
    types = _SetTypes(module.tree)

    def unordered(expr: ast.AST) -> bool:
        if _is_set_literalish(expr) or types.is_set_valued(expr):
            return True
        if isinstance(expr, ast.Call) and \
                isinstance(expr.func, ast.Name) and expr.args:
            if expr.func.id == "sorted":
                return False
            if expr.func.id in ("list", "tuple", "iter", "enumerate",
                               "reversed"):
                return unordered(expr.args[0])
        return False

    for node in ast.walk(module.tree):
        if isinstance(node, ast.For) and unordered(node.iter):
            yield node.iter, "iteration over a set"
        elif isinstance(node, (ast.ListComp, ast.DictComp)):
            for gen in node.generators:
                if unordered(gen.iter):
                    yield gen.iter, "comprehension over a set"
