"""Configuration for the determinism linter.

The rules are scoped by *package*, not by path: ``src/repro/io_arch/...``
is the dotted module ``repro.io_arch...`` regardless of where the checkout
lives. Two scopes matter:

- the **repro package** (everything under ``src/repro``) — rules about
  how production code uses the kernel apply here;
- the **sim-side packages** — the subset of the repro package that runs
  *inside* a simulation and therefore must be bit-reproducible. Host-side
  orchestration (``repro.runner``, ``repro.experiments``, ``repro.lint``
  itself) may read wall clocks and use OS randomness; the simulated world
  must not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["LintConfig", "DEFAULT_CONFIG"]

#: Packages whose modules execute inside the simulated world. D102/D103/
#: D105/D106 apply only here.
SIM_PACKAGES: Tuple[str, ...] = (
    "repro.sim",
    "repro.hw",
    "repro.net",
    "repro.io_arch",
    "repro.core",
    "repro.faults",
    "repro.audit",
    "repro.apps",
    "repro.frameworks",
    "repro.workloads",
    "repro.topo",
    "repro.scenario",
    "repro.shard",
)


@dataclass(frozen=True)
class LintConfig:
    #: Sim-side packages (prefix match on dotted module names).
    sim_packages: Tuple[str, ...] = SIM_PACKAGES
    #: Packages exempt from the wall-clock rule even if listed as
    #: sim-side in a future config: the runner runs on the host side of
    #: the wall (progress timestamps, cache mtimes) by design.
    wallclock_exempt: Tuple[str, ...] = ("repro.runner", "repro.experiments")
    #: The one module allowed to construct raw RNGs.
    rng_module: str = "repro.sim.rng"
    #: Default baseline filename, resolved against the working directory.
    baseline_name: str = ".repro-lint-baseline.json"

    def is_repro(self, package: str) -> bool:
        return package == "repro" or package.startswith("repro.")

    def is_sim_side(self, package: str) -> bool:
        return any(package == p or package.startswith(p + ".")
                   for p in self.sim_packages)

    def is_wallclock_exempt(self, package: str) -> bool:
        return any(package == p or package.startswith(p + ".")
                   for p in self.wallclock_exempt)


DEFAULT_CONFIG = LintConfig()
