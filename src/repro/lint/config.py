"""Configuration for the determinism linter.

The rules are scoped by *package*, not by path: ``src/repro/io_arch/...``
is the dotted module ``repro.io_arch...`` regardless of where the checkout
lives. Two scopes matter:

- the **repro package** (everything under ``src/repro``) — rules about
  how production code uses the kernel apply here;
- the **sim-side packages** — the subset of the repro package that runs
  *inside* a simulation and therefore must be bit-reproducible. Host-side
  orchestration (``repro.runner``, ``repro.experiments``, ``repro.lint``
  itself) may read wall clocks and use OS randomness; the simulated world
  must not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["LintConfig", "DEFAULT_CONFIG"]

#: Packages whose modules execute inside the simulated world. D102/D103/
#: D105/D106 apply only here.
SIM_PACKAGES: Tuple[str, ...] = (
    "repro.sim",
    "repro.hw",
    "repro.net",
    "repro.io_arch",
    "repro.core",
    "repro.faults",
    "repro.audit",
    "repro.apps",
    "repro.frameworks",
    "repro.workloads",
    "repro.demand",
    "repro.topo",
    "repro.scenario",
    "repro.shard",
    # The shard command journal is host-side plumbing by location but
    # sim-side by contract: its replay must be bit-reproducible, so it
    # is held to the simulated world's rules (the rest of repro.runner
    # stays exempt).
    "repro.runner.shardjournal",
)


@dataclass(frozen=True)
class LintConfig:
    #: Sim-side packages (prefix match on dotted module names).
    sim_packages: Tuple[str, ...] = SIM_PACKAGES
    #: Packages exempt from the wall-clock rule even if listed as
    #: sim-side in a future config: the runner runs on the host side of
    #: the wall (progress timestamps, cache mtimes) by design.
    wallclock_exempt: Tuple[str, ...] = ("repro.runner", "repro.experiments")
    #: The one module allowed to construct raw RNGs.
    rng_module: str = "repro.sim.rng"
    #: Default baseline filename, resolved against the working directory.
    baseline_name: str = ".repro-lint-baseline.json"

    # -- whole-program rule family (D107-D111) ---------------------------
    #: Modules implementing the cross-shard channel protocol. D107's
    #: structural checks (post_keyed/reserve_key placement, _wire_send
    #: installation) apply to these packages.
    shard_modules: Tuple[str, ...] = ("repro.topo", "repro.shard",
                                      "repro.sim")
    #: Methods allowed to call ``post_keyed`` (channel receivers: the
    #: only code that may schedule onto a foreign domain).
    channel_receivers: Tuple[str, ...] = ("inject_packet", "inject_ack")
    #: Functions allowed to install cross-shard emitters (assign to a
    #: ``_wire_send`` / outbox seam), directly or via helpers they call.
    channel_installers: Tuple[str, ...] = ("attach_channels",)
    #: The architecture base class every concrete arch must extend and
    #: whose audit hook it must wire up.
    arch_base: str = "repro.io_arch.base.IOArchitecture"
    #: Name of the audit hook method on architectures.
    audit_hook: str = "audit_register"
    #: The standard account trio every arch's audit hook must register
    #: when it does not defer to the base implementation via super().
    standard_accounts: Tuple[str, ...] = ("arch.delivery", "arch.app_rings",
                                          "arch.descriptors")
    #: The audit wiring module whose sources D108 resolves.
    audit_wiring_module: str = "repro.audit.wiring"
    #: Functions allowed to build dynamic RNG stream names (D109): the
    #: host-prefix helper and the fault controllers' per-spec streams.
    stream_helpers: Tuple[str, ...] = (
        "repro.topo.fabric.HostRng.stream",
        "repro.faults.injectors.FaultController.stream",
        "repro.shard.channel.ChannelFaultController.stream",
    )
    #: Module holding the fault-site registry literal (D110).
    fault_plan_module: str = "repro.faults.plan"
    #: Module holding the ``@_handler(site, kind)`` implementations.
    fault_injector_module: str = "repro.faults.injectors"
    #: Second handler module: coordinator-layer ``net.channel`` faults.
    fault_channel_module: str = "repro.shard.channel"
    #: Documentation page whose site table must match the registry,
    #: relative to the repository root (located by walking up from the
    #: fault plan module's source file).
    fault_docs_page: str = "docs/FAULTS.md"

    def is_repro(self, package: str) -> bool:
        return package == "repro" or package.startswith("repro.")

    def is_sim_side(self, package: str) -> bool:
        return any(package == p or package.startswith(p + ".")
                   for p in self.sim_packages)

    def is_wallclock_exempt(self, package: str) -> bool:
        return any(package == p or package.startswith(p + ".")
                   for p in self.wallclock_exempt)

    def is_shard_module(self, package: str) -> bool:
        return any(package == p or package.startswith(p + ".")
                   for p in self.shard_modules)


DEFAULT_CONFIG = LintConfig()
