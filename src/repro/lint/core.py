"""Rule registry, module model, and the lint driver.

A *rule* is a class with a ``code`` (``DXXX``), a one-line ``summary``,
and a ``check(module)`` generator producing :class:`Finding` objects. A
*module* is one parsed source file plus everything rules commonly need:
its dotted package name, raw lines, inline suppressions, and a lazily
computed "touches the engine's scheduling API" flag.

Findings flow through two filters before they reach the report: inline
``# repro: noqa=DXXX`` suppressions (:mod:`repro.lint.suppress`) and the
committed baseline file.

Rules come in two *scopes*. ``scope = "file"`` rules (D101–D106) see one
:class:`ModuleInfo` at a time and also run under :func:`lint_source`.
``scope = "project"`` rules (D107–D111) run only in :func:`lint_paths`,
after every file has been parsed, against the resolved
:class:`~repro.lint.project.Project` view — which is exactly why a
single-file invocation provably cannot reproduce their findings.
"""

from __future__ import annotations

import ast
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from .config import DEFAULT_CONFIG, LintConfig
from .suppress import parse_noqa

__all__ = [
    "Finding", "Rule", "ModuleInfo", "RULES", "register",
    "lint_paths", "lint_source", "iter_python_files", "dotted_name",
    "attr_chain",
]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def key(self):
        """Baseline identity: location-independent so that unrelated edits
        moving a violation up or down a file do not rot the baseline."""
        return (self.path, self.code, self.message)


#: Registered rule classes by code, in registration order.
RULES: Dict[str, Type["Rule"]] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    """Class decorator adding a rule to the global registry."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


class Rule:
    """Base class for lint rules.

    File-scope rules implement :meth:`check`; project-scope rules set
    ``scope = "project"`` and implement :meth:`check_project` instead.
    """

    code: str = ""
    summary: str = ""
    #: "file" rules run per module (and under ``lint_source``);
    #: "project" rules run once per ``lint_paths`` invocation against
    #: the whole-program view.
    scope: str = "file"

    def __init__(self, config: LintConfig):
        self.config = config

    def applies(self, module: "ModuleInfo") -> bool:  # pragma: no cover
        return True

    def check(self, module: "ModuleInfo") -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError


#: Attribute-call names that mean "this module schedules on the engine".
SCHEDULING_ATTRS = frozenset({
    "call_later", "call_at", "schedule", "process", "timeout",
    "spawn_loop", "any_of", "all_of", "run_process",
})


def attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted source text of a Name/Attribute chain (``self.sim.timeout``),
    or ``None`` if the chain roots in something else (a call, a subscript)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def dotted_name(path: Path) -> str:
    """Dotted module name for ``path``.

    Anything under a ``src`` directory is named from there
    (``src/repro/hw/nic.py`` -> ``repro.hw.nic``); otherwise the name is
    rooted at the last recognisable top-level directory (``tests``,
    ``benchmarks``, ``examples``, ``scripts``) or just the file stem.
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor in ("src",):
        if anchor in parts:
            parts = parts[len(parts) - parts[::-1].index(anchor):]
            return ".".join(parts)
    for top in ("tests", "benchmarks", "examples", "scripts"):
        if top in parts:
            parts = parts[parts.index(top):]
            return ".".join(parts)
    return parts[-1] if parts else ""


class ModuleInfo:
    """One parsed source file with the context rules need."""

    def __init__(self, path: str, source: str, config: LintConfig,
                 package: Optional[str] = None):
        self.path = path
        self.source = source
        self.config = config
        self.lines = source.splitlines()
        self.package = package if package is not None \
            else dotted_name(Path(path))
        self.tree = ast.parse(source, filename=path)
        #: line -> set of suppressed codes (or ALL) from ``# repro: noqa``.
        self.noqa = parse_noqa(self.lines)
        self._touches_scheduling: Optional[bool] = None

    @property
    def touches_scheduling(self) -> bool:
        """Whether this module calls into the engine's scheduling API
        (``sim.process``/``call_later``/``timeout``/... or constructs a
        ``Simulator``). Ordering-sensitivity rules only fire here."""
        if self._touches_scheduling is None:
            found = False
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Call):
                    fn = node.func
                    if (isinstance(fn, ast.Attribute)
                            and fn.attr in SCHEDULING_ATTRS):
                        found = True
                        break
                    if isinstance(fn, ast.Name) and fn.id == "Simulator":
                        found = True
                        break
            self._touches_scheduling = found
        return self._touches_scheduling

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(self.path, getattr(node, "lineno", 0),
                       getattr(node, "col_offset", 0) + 1, code, message)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories),
    sorted for deterministic report order, skipping caches."""
    seen = set()
    for raw in paths:
        p = Path(raw)
        if p.is_file() and p.suffix == ".py":
            candidates = [p]
        elif p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            candidates = []
        for c in candidates:
            if "__pycache__" in c.parts or c in seen:
                continue
            seen.add(c)
            yield c


def _instantiate_rules(config: LintConfig,
                       select: Optional[Iterable[str]] = None,
                       scope: Optional[str] = None) -> List[Rule]:
    codes = set(select) if select else None
    rules = []
    for code, cls in sorted(RULES.items()):
        if codes is not None and code not in codes:
            continue
        if scope is not None and cls.scope != scope:
            continue
        rules.append(cls(config))
    return rules


def lint_source(path: str, source: str,
                config: LintConfig = DEFAULT_CONFIG,
                select: Optional[Iterable[str]] = None,
                package: Optional[str] = None) -> List[Finding]:
    """Lint one in-memory source blob with the **file-scope** rules;
    returns suppression-filtered, sorted findings. Project-scope rules
    need the whole-program view and only run under :func:`lint_paths`.
    ``package`` overrides dotted-name derivation (used by rule unit
    tests to place fixtures in arbitrary packages)."""
    try:
        module = ModuleInfo(path, source, config, package=package)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, (exc.offset or 0) or 1,
                        "E999", f"syntax error: {exc.msg}")]
    findings: List[Finding] = []
    for rule in _instantiate_rules(config, select, scope="file"):
        if not rule.applies(module):
            continue
        for f in rule.check(module):
            if module.noqa.suppresses(f.line, f.code):
                continue
            findings.append(f)
    return sorted(findings)


def _check_module(module: ModuleInfo, rules: List[Rule],
                  timings: Optional[Dict[str, float]]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies(module):
            continue
        t0 = time.perf_counter()
        for f in rule.check(module):
            if not module.noqa.suppresses(f.line, f.code):
                findings.append(f)
        if timings is not None:
            timings[rule.code] = (timings.get(rule.code, 0.0)
                                  + time.perf_counter() - t0)
    return findings


def _lint_file_worker(item: Tuple[str, str, Optional[Tuple[str, ...]]]
                      ) -> Tuple[List[Finding], Dict[str, float]]:
    """``--jobs`` worker: file-scope pass over one already-read source.

    Runs in a subprocess, so rules must be registered here and only the
    default config is supported (the CLI never builds another one).
    """
    path, source, select = item
    from . import rules  # noqa: F401  (registers rule classes in the worker)
    timings: Dict[str, float] = {}
    try:
        module = ModuleInfo(path, source, DEFAULT_CONFIG)
    except SyntaxError as exc:
        return ([Finding(path, exc.lineno or 0, (exc.offset or 0) or 1,
                         "E999", f"syntax error: {exc.msg}")], timings)
    file_rules = _instantiate_rules(DEFAULT_CONFIG, select, scope="file")
    return _check_module(module, file_rules, timings), timings


def lint_paths(paths: Iterable[str],
               config: LintConfig = DEFAULT_CONFIG,
               select: Optional[Iterable[str]] = None,
               jobs: int = 1,
               timings: Optional[Dict[str, float]] = None) -> List[Finding]:
    """Lint files/directories; returns sorted findings (pre-baseline).

    Runs the per-file pass (in ``jobs`` worker processes when > 1), then
    builds the whole-program :class:`~repro.lint.project.Project` over
    every successfully parsed module and runs the project-scope rules in
    this process. ``timings``, when given, receives cumulative per-rule
    wall-clock seconds plus a ``"project-build"`` entry.
    """
    findings: List[Finding] = []
    modules: List[ModuleInfo] = []
    for file in iter_python_files(paths):
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(Finding(str(file), 0, 1, "E902",
                                    f"cannot read file: {exc}"))
            continue
        try:
            modules.append(ModuleInfo(str(file), source, config))
        except SyntaxError as exc:
            findings.append(Finding(str(file), exc.lineno or 0,
                                    (exc.offset or 0) or 1, "E999",
                                    f"syntax error: {exc.msg}"))

    select_t = tuple(select) if select is not None else None
    if jobs > 1:
        from concurrent.futures import ProcessPoolExecutor
        items = [(m.path, m.source, select_t) for m in modules]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for file_findings, file_timings in pool.map(
                    _lint_file_worker, items):
                findings.extend(file_findings)
                if timings is not None:
                    for code, secs in file_timings.items():
                        timings[code] = timings.get(code, 0.0) + secs
    else:
        file_rules = _instantiate_rules(config, select, scope="file")
        for module in modules:
            findings.extend(_check_module(module, file_rules, timings))

    project_rules = _instantiate_rules(config, select, scope="project")
    if project_rules:
        from .project import Project
        t0 = time.perf_counter()
        project = Project(modules)
        if timings is not None:
            timings["project-build"] = time.perf_counter() - t0
        for rule in project_rules:
            t0 = time.perf_counter()
            for f in rule.check_project(project):
                owner = project.modules_by_path.get(f.path)
                if owner is not None and \
                        owner.noqa.suppresses(f.line, f.code):
                    continue
                findings.append(f)
            if timings is not None:
                timings[rule.code] = (timings.get(rule.code, 0.0)
                                      + time.perf_counter() - t0)
    return sorted(findings)
