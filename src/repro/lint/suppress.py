"""Inline suppressions and the committed baseline.

Inline form, on the flagged line (a trailing justification is encouraged
and ignored by the parser)::

    self._registry = {}  # repro: noqa=D106 -- import-time registry

``# repro: noqa`` with no codes suppresses every rule on that line.

The baseline is a JSON file of *accepted* findings. Matching is by
``(path, code, message)`` — deliberately ignoring line numbers so that
unrelated edits do not rot it — and is multiset-aware: two identical
violations in one file need two baseline entries. ``--update-baseline``
rewrites the file from the current findings; entries that no longer
match anything are dropped (and reported as stale beforehand).
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Tuple

__all__ = ["NoqaMap", "parse_noqa", "Baseline"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:=(?P<codes>[A-Z][A-Z0-9]*(?:\s*,\s*[A-Z][A-Z0-9]*)*))?",
)

#: Sentinel: the line suppresses every code.
ALL_CODES = frozenset({"*"})


class NoqaMap:
    """Per-line suppression lookup."""

    def __init__(self, by_line: Dict[int, FrozenSet[str]]):
        self._by_line = by_line

    def suppresses(self, line: int, code: str) -> bool:
        codes = self._by_line.get(line)
        if codes is None:
            return False
        return codes is ALL_CODES or code in codes

    def __len__(self) -> int:
        return len(self._by_line)


def parse_noqa(lines: Iterable[str]) -> NoqaMap:
    by_line: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "repro:" not in text:
            continue
        m = _NOQA_RE.search(text)
        if m is None:
            continue
        raw = m.group("codes")
        if raw is None:
            by_line[lineno] = ALL_CODES
        else:
            by_line[lineno] = frozenset(
                c.strip() for c in raw.split(",") if c.strip())
    return NoqaMap(by_line)


class Baseline:
    """The committed set of accepted findings."""

    VERSION = 1

    def __init__(self, entries: Iterable[Tuple[str, str, str]] = ()):
        self._counts: Counter = Counter(entries)

    # -- I/O -------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}")
        return cls((e["path"], e["code"], e["message"])
                   for e in data.get("findings", []))

    @staticmethod
    def save(path: Path, findings: Iterable) -> None:
        payload = {
            "version": Baseline.VERSION,
            "comment": "Accepted repro.lint findings. Every entry needs a "
                       "justification; prefer fixing over baselining.",
            "findings": [
                {"path": f.path, "line": f.line, "code": f.code,
                 "message": f.message}
                for f in sorted(findings)
            ],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=False)
                        + "\n", encoding="utf-8")

    # -- filtering -------------------------------------------------------
    def split(self, findings: Iterable) -> Tuple[List, List, int]:
        """Partition ``findings`` into (new, accepted) and count stale
        baseline entries that matched nothing."""
        remaining = Counter(self._counts)
        new, accepted = [], []
        for f in findings:
            k = f.key()
            if remaining.get(k, 0) > 0:
                remaining[k] -= 1
                accepted.append(f)
            else:
                new.append(f)
        stale = sum(remaining.values())
        return new, accepted, stale

    def stale_keys(self, findings: Iterable) -> List[Tuple[str, str, str]]:
        """The ``(path, code, message)`` entries that match no current
        finding — the ones :meth:`split` counts as stale, spelled out so
        the CLI can name them (and ``--prune-baseline`` can drop them)."""
        remaining = Counter(self._counts)
        for f in findings:
            k = f.key()
            if remaining.get(k, 0) > 0:
                remaining[k] -= 1
        return sorted(remaining.elements())

    def __len__(self) -> int:
        return sum(self._counts.values())
