"""Whole-program view: module graph, symbol table, and call graph.

The per-file pass (PR 3) sees one AST at a time; the cross-module
contracts this repo lives on — the shard channel protocol, audit-wiring
source resolution, project-wide RNG stream naming, registry/handler/docs
agreement — need a resolved view of the *whole* ``src/repro`` tree built
once per lint run. :class:`Project` provides it:

- **module graph** — dotted name -> :class:`~repro.lint.core.ModuleInfo`,
  plus each module's import bindings (``import``/``from``/relative forms
  resolved to project-dotted targets);
- **symbol table** — every class with its attribute set (``self.x``
  assignments anywhere in the class, class-level assignments,
  ``__slots__`` strings, method/property names, and
  ``object.__setattr__(self, "x", ...)`` for frozen dataclasses) and a
  light attribute/parameter *type* map inferred from constructor calls
  (``self.dma = DmaEngine(...)``) and annotations — resolved through the
  import graph and inherited through resolved bases;
- **call graph** — function-level edges from direct calls, imported-name
  calls, ``self.method()`` dispatch through the resolved base chain, and
  typed-local method calls; nested ``def``s add *defines* edges so
  reachability follows closures installed by a protocol entry point.

Everything is resolved **conservatively**: an unresolvable base class
marks the class *open* (attribute checks pass), an unresolvable callee
simply contributes no edge. Rules built on this view must only flag what
the resolved facts prove.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import ModuleInfo, attr_chain

__all__ = ["ClassInfo", "FunctionInfo", "Project"]

#: Bases that end resolution without opening the class: subclassing these
#: adds no attributes a conservation/audit rule would ever name.
_CLOSED_BUILTIN_BASES = frozenset({
    "object", "Exception", "ValueError", "RuntimeError", "TypeError",
    "KeyError", "dict", "list", "tuple", "set", "frozenset", "int",
    "float", "str", "bytes", "Enum", "IntEnum", "NamedTuple", "Protocol",
    "ABC", "Generic",
})


class FunctionInfo:
    """One function or method: its AST, owner, resolved callees, and the
    local name -> candidate-class-quals type environment."""

    __slots__ = ("qualname", "module", "name", "node", "cls", "calls",
                 "call_sites", "defines", "local_types", "parent")

    def __init__(self, qualname: str, module: str, name: str,
                 node: ast.AST, cls: Optional["ClassInfo"] = None,
                 parent: Optional["FunctionInfo"] = None):
        self.qualname = qualname
        self.module = module
        self.name = name
        self.node = node
        self.cls = cls
        self.parent = parent
        #: Resolved callee qualnames (project functions only).
        self.calls: Set[str] = set()
        #: (callee qualname, Call node) pairs, in source order.
        self.call_sites: List[Tuple[str, ast.Call]] = []
        #: Qualnames of functions defined lexically inside this one.
        self.defines: Set[str] = set()
        #: local / parameter name -> tuple of candidate class qualnames.
        self.local_types: Dict[str, Tuple[str, ...]] = {}


class ClassInfo:
    """One class: attributes, attribute types, methods, resolved bases."""

    __slots__ = ("qualname", "module", "name", "node", "base_exprs",
                 "bases", "attrs", "attr_types", "methods", "open_")

    def __init__(self, qualname: str, module: str, name: str,
                 node: ast.ClassDef):
        self.qualname = qualname
        self.module = module
        self.name = name
        self.node = node
        #: Base-class expressions as written (dotted text), pre-resolution.
        self.base_exprs: List[str] = []
        #: Resolved base qualnames (link phase).
        self.bases: List[str] = []
        #: Every attribute name the class is known to define.
        self.attrs: Set[str] = set()
        #: attr -> candidate class qualnames (from ctor calls/annotations).
        self.attr_types: Dict[str, Tuple[str, ...]] = {}
        self.methods: Dict[str, FunctionInfo] = {}
        #: True when some base could not be resolved — attribute checks
        #: on this class must pass (the base may define anything).
        self.open_: bool = False


def _annotation_names(node: Optional[ast.AST]) -> List[str]:
    """Dotted class names appearing in an annotation expression
    (``SwitchPort``, ``Optional[Nic]``, ``Union[A, B]``, ``"Host"``)."""
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
    names: List[str] = []
    stack = [node]
    while stack:
        n = stack.pop()
        if isinstance(n, ast.Subscript):
            head = attr_chain(n.value)
            if head is not None and head.rsplit(".", 1)[-1] == "Callable":
                continue  # parameter lists of Callable are not receivers
            stack.append(n.slice)
            continue
        if isinstance(n, (ast.Tuple, ast.List)):
            stack.extend(n.elts)
            continue
        chain = attr_chain(n)
        if chain is not None:
            tail = chain.rsplit(".", 1)[-1]
            if tail not in ("Optional", "Union", "None"):
                names.append(chain)
    return names


def _module_base(module: ModuleInfo) -> str:
    """The package a level-1 relative import resolves against."""
    if module.path.endswith("__init__.py"):
        return module.package
    return module.package.rsplit(".", 1)[0] if "." in module.package else ""


class Project:
    """The resolved whole-program view over one lint run's modules."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        #: dotted name -> ModuleInfo (first wins on duplicates).
        self.modules: Dict[str, ModuleInfo] = {}
        #: path -> ModuleInfo (suppression lookup for project findings).
        self.modules_by_path: Dict[str, ModuleInfo] = {}
        #: module dotted name -> {local binding -> dotted target}.
        self.imports: Dict[str, Dict[str, str]] = {}
        #: class qualname ("repro.hw.nic.Nic") -> ClassInfo.
        self.classes: Dict[str, ClassInfo] = {}
        #: function qualname ("repro.hw.nic.Nic.receive") -> FunctionInfo.
        self.functions: Dict[str, FunctionInfo] = {}
        for m in modules:
            self.modules.setdefault(m.package, m)
            self.modules_by_path.setdefault(m.path, m)
        for m in self.modules.values():
            self._collect_imports(m)
        for m in self.modules.values():
            self._collect_defs(m)
        for cls in self.classes.values():
            self._link_bases(cls)
        for fn in list(self.functions.values()):
            self._analyse_function(fn)

    # ------------------------------------------------------------------
    # Phase 1: imports
    # ------------------------------------------------------------------
    def _collect_imports(self, module: ModuleInfo) -> None:
        table: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        # ``import a.b.c`` binds ``a``.
                        top = alias.name.split(".")[0]
                        table.setdefault(top, top)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    anchor = _module_base(module)
                    for _ in range(node.level - 1):
                        anchor = (anchor.rsplit(".", 1)[0]
                                  if "." in anchor else "")
                    base = f"{anchor}.{base}" if base else anchor
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = \
                        f"{base}.{alias.name}" if base else alias.name
        self.imports[module.package] = table

    # ------------------------------------------------------------------
    # Phase 2: classes and functions
    # ------------------------------------------------------------------
    def _collect_defs(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                self._collect_class(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(module, node, f"{module.package}."
                                       f"{node.name}", cls=None, parent=None)
            elif isinstance(node, (ast.If, ast.Try)):
                for inner in ast.walk(node):
                    if isinstance(inner, ast.ClassDef):
                        self._collect_class(module, inner)

    def _collect_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{module.package}.{node.name}"
        info = ClassInfo(qual, module.package, node.name, node)
        for base in node.bases:
            chain = attr_chain(base)
            if chain is not None:
                info.base_exprs.append(chain)
            else:
                info.open_ = True  # computed base: anything may be inherited
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.attrs.add(stmt.name)
                fn = self._collect_function(
                    module, stmt, f"{qual}.{stmt.name}", cls=info,
                    parent=None)
                info.methods[stmt.name] = fn
                self._collect_self_attrs(module, info, stmt)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        info.attrs.add(target.id)
                        if target.id == "__slots__":
                            info.attrs.update(self._slot_names(stmt.value))
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                info.attrs.add(stmt.target.id)
                quals = self._resolve_annotation(module.package,
                                                 stmt.annotation)
                if quals:
                    info.attr_types.setdefault(stmt.target.id, quals)
        self.classes.setdefault(qual, info)

    @staticmethod
    def _slot_names(value: ast.AST) -> Iterator[str]:
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for elt in value.elts:
                if isinstance(elt, ast.Constant) and \
                        isinstance(elt.value, str):
                    yield elt.value

    def _collect_self_attrs(self, module: ModuleInfo, info: ClassInfo,
                            method: ast.AST) -> None:
        for node in ast.walk(method):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
                quals = self._resolve_annotation(module.package,
                                                 node.annotation)
                t = node.target
                if quals and isinstance(t, ast.Attribute) and \
                        isinstance(t.value, ast.Name) and \
                        t.value.id == "self":
                    info.attr_types.setdefault(t.attr, quals)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets = [node.target]
            elif isinstance(node, ast.Call):
                # object.__setattr__(self, "attr", ...) — frozen dataclasses.
                chain = attr_chain(node.func)
                if chain is not None and chain.endswith("__setattr__") \
                        and len(node.args) >= 2 \
                        and isinstance(node.args[1], ast.Constant) \
                        and isinstance(node.args[1].value, str):
                    info.attrs.add(node.args[1].value)
                continue
            else:
                continue
            for target in targets:
                for t in ast.walk(target):
                    if isinstance(t, ast.Attribute) and \
                            isinstance(t.value, ast.Name) and \
                            t.value.id == "self":
                        info.attrs.add(t.attr)
                        if value is not None and len(targets) == 1 and \
                                not isinstance(target, (ast.Tuple, ast.List)):
                            quals = self._value_types(module.package, value)
                            if quals:
                                info.attr_types.setdefault(t.attr, quals)

    def _collect_function(self, module: ModuleInfo, node: ast.AST,
                          qualname: str, cls: Optional[ClassInfo],
                          parent: Optional[FunctionInfo]) -> FunctionInfo:
        fn = FunctionInfo(qualname, module.package, node.name, node,
                          cls=cls, parent=parent)
        self.functions.setdefault(qualname, fn)
        if parent is not None:
            parent.defines.add(qualname)
        # _in_order stops at nested defs, so every one it yields is an
        # immediate child; deeper nests register through the recursion.
        for stmt in self._in_order(node):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(module, stmt,
                                       f"{qualname}.{stmt.name}",
                                       cls=cls, parent=fn)
        return fn

    # ------------------------------------------------------------------
    # Phase 3: base linking
    # ------------------------------------------------------------------
    def _link_bases(self, cls: ClassInfo) -> None:
        for expr in cls.base_exprs:
            qual = self.resolve(cls.module, expr)
            if qual is not None and qual in self.classes:
                cls.bases.append(qual)
            elif expr.rsplit(".", 1)[-1] not in _CLOSED_BUILTIN_BASES:
                cls.open_ = True

    # ------------------------------------------------------------------
    # Phase 4: call graph + local types
    # ------------------------------------------------------------------
    def _analyse_function(self, fn: FunctionInfo) -> None:
        node = fn.node
        env = fn.local_types
        args = getattr(node, "args", None)
        if args is not None:
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                quals = self._resolve_annotation(fn.module, arg.annotation)
                if quals:
                    env[arg.arg] = quals
        if fn.cls is not None and args is not None and \
                (args.posonlyargs + args.args):
            first = (args.posonlyargs + args.args)[0].arg
            env.setdefault(first, (fn.cls.qualname,))
        for stmt in self._in_order(node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                quals = self._value_types(fn.module, stmt.value, env=env,
                                          cls=fn.cls)
                if quals:
                    env[stmt.targets[0].id] = quals
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                quals = self._resolve_annotation(fn.module, stmt.annotation)
                if quals:
                    env[stmt.target.id] = quals
            if isinstance(stmt, ast.Call):
                callee = self._resolve_call(fn, stmt, env)
                if callee is not None:
                    fn.calls.add(callee)
                    fn.call_sites.append((callee, stmt))

    @staticmethod
    def _in_order(root: ast.AST) -> Iterator[ast.AST]:
        """Depth-first, source-order walk that does not descend into
        nested function definitions (they are analysed separately)."""
        stack = deque(ast.iter_child_nodes(root))
        while stack:
            node = stack.popleft()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extendleft(reversed(list(ast.iter_child_nodes(node))))

    def _resolve_call(self, fn: FunctionInfo, call: ast.Call,
                      env: Dict[str, Tuple[str, ...]]) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            # Nested function defined here, module function, or import.
            nested = f"{fn.qualname}.{func.id}"
            if nested in self.functions:
                return nested
            if fn.parent is not None:
                sibling = f"{fn.parent.qualname}.{func.id}"
                if sibling in self.functions:
                    return sibling
            qual = self.resolve(fn.module, func.id)
            if qual in self.functions:
                return qual
            if qual in self.classes:
                init = f"{qual}.__init__"
                return init if init in self.functions else None
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            # super().method()
            if isinstance(base, ast.Call) and \
                    isinstance(base.func, ast.Name) and \
                    base.func.id == "super" and fn.cls is not None:
                return self._resolve_method(fn.cls.bases, func.attr)
            chain = attr_chain(base)
            if chain is None:
                return None
            # module alias: mod.fn(...)
            qual = self.resolve(fn.module, f"{chain}.{func.attr}")
            if qual in self.functions:
                return qual
            # typed receiver: obj.method(...)
            for cls_qual in self._chain_types(fn, chain, env):
                resolved = self._resolve_method([cls_qual], func.attr)
                if resolved is not None:
                    return resolved
        return None

    def _resolve_method(self, roots: Sequence[str],
                        name: str) -> Optional[str]:
        for cls_qual in self.iter_mro(roots):
            cls = self.classes.get(cls_qual)
            if cls is not None and name in cls.methods:
                return cls.methods[name].qualname
        return None

    # ------------------------------------------------------------------
    # Resolution helpers (also the rule-facing API)
    # ------------------------------------------------------------------
    def resolve(self, module: str, dotted: str) -> Optional[str]:
        """Resolve ``dotted`` as written in ``module`` to a project
        qualname (module, class, or function) or None."""
        parts = dotted.split(".")
        table = self.imports.get(module, {})
        local = f"{module}.{parts[0]}"
        if local in self.classes or local in self.functions:
            return local if len(parts) == 1 else self._descend(local, parts[1:])
        if parts[0] in table:
            target = table[parts[0]]
            full = ".".join([target] + parts[1:])
        else:
            full = dotted
        return self._resolve_full(full)

    def _resolve_full(self, full: str) -> Optional[str]:
        if full in self.modules or full in self.classes \
                or full in self.functions:
            return full
        if "." in full:
            head, tail = full.rsplit(".", 1)
            resolved_head = self._resolve_full(head)
            if resolved_head is not None:
                return self._descend(resolved_head, [tail])
        return None

    def _descend(self, qual: str, parts: Sequence[str]) -> Optional[str]:
        for part in parts:
            candidate = f"{qual}.{part}"
            if candidate in self.modules or candidate in self.classes \
                    or candidate in self.functions:
                qual = candidate
                continue
            # Re-exported name: follow the module's own import table.
            if qual in self.modules:
                nested = self.imports.get(qual, {}).get(part)
                if nested is not None:
                    resolved = self._resolve_full(nested)
                    if resolved is not None:
                        qual = resolved
                        continue
            return None
        return qual

    def _resolve_annotation(self, module: str,
                            annotation: Optional[ast.AST]
                            ) -> Tuple[str, ...]:
        quals = []
        for name in _annotation_names(annotation):
            qual = self.resolve(module, name)
            if qual in self.classes:
                quals.append(qual)
        return tuple(dict.fromkeys(quals))

    def _value_types(self, module: str, value: ast.AST,
                     env: Optional[Dict[str, Tuple[str, ...]]] = None,
                     cls: Optional[ClassInfo] = None) -> Tuple[str, ...]:
        """Candidate classes of a right-hand side: a constructor call, a
        typed local, ``self.attr`` with a known attribute type, or an
        attribute step off a typed value."""
        if isinstance(value, ast.Call):
            chain = attr_chain(value.func)
            if chain is not None:
                qual = self.resolve(module, chain)
                if qual in self.classes:
                    return (qual,)
            return ()
        chain = attr_chain(value)
        if chain is None:
            return ()
        parts = chain.split(".")
        quals: Tuple[str, ...] = ()
        if env is not None and parts[0] in env:
            quals = env[parts[0]]
        elif parts[0] == "self" and cls is not None:
            quals = (cls.qualname,)
        else:
            return ()
        for attr in parts[1:]:
            quals = self.attr_types_of(quals, attr)
            if not quals:
                return ()
        return quals

    def _chain_types(self, fn: FunctionInfo, chain: str,
                     env: Dict[str, Tuple[str, ...]]) -> Tuple[str, ...]:
        dummy = ast.parse(chain, mode="eval").body
        return self._value_types(fn.module, dummy, env=env, cls=fn.cls)

    # ------------------------------------------------------------------
    # Symbol-table queries
    # ------------------------------------------------------------------
    def iter_mro(self, roots: Sequence[str]) -> Iterator[str]:
        """Roots plus all resolved bases, depth-first, deduplicated."""
        seen: Set[str] = set()
        stack = list(reversed(list(roots)))
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            yield qual
            cls = self.classes.get(qual)
            if cls is not None:
                stack.extend(reversed(cls.bases))

    def class_is_open(self, qual: str) -> bool:
        return any(self.classes[c].open_ for c in self.iter_mro([qual])
                   if c in self.classes)

    def class_has_attr(self, qual: str, attr: str) -> Optional[bool]:
        """True / False, or None when the class is open (unknowable)."""
        if qual not in self.classes:
            return None
        for c in self.iter_mro([qual]):
            cls = self.classes.get(c)
            if cls is not None and attr in cls.attrs:
                return True
        return None if self.class_is_open(qual) else False

    def attr_types_of(self, quals: Sequence[str],
                      attr: str) -> Tuple[str, ...]:
        out: List[str] = []
        for qual in quals:
            for c in self.iter_mro([qual]):
                cls = self.classes.get(c)
                if cls is not None and attr in cls.attr_types:
                    out.extend(cls.attr_types[attr])
                    break
        return tuple(dict.fromkeys(out))

    def subclasses_of(self, base_qual: str) -> List[ClassInfo]:
        out = []
        for cls in self.classes.values():
            if cls.qualname != base_qual and \
                    base_qual in self.iter_mro([cls.qualname]):
                out.append(cls)
        return sorted(out, key=lambda c: c.qualname)

    def enclosing_function(self, module: ModuleInfo,
                           node: ast.AST) -> Optional[FunctionInfo]:
        """The innermost project function whose body contains ``node``
        (matched by position, for rules that walk a module's tree)."""
        best: Optional[FunctionInfo] = None
        best_span = None
        for fn in self.functions.values():
            if fn.module != module.package:
                continue
            f = fn.node
            end = getattr(f, "end_lineno", None)
            if end is None:
                continue
            if f.lineno <= node.lineno <= end:
                span = end - f.lineno
                if best_span is None or span < best_span:
                    best, best_span = fn, span
        return best

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def reachable_from(self, roots: Sequence[str],
                       follow_defines: bool = True) -> Set[str]:
        """Transitive closure over call (and optionally defines) edges."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            fn = self.functions[qual]
            nxt = set(fn.calls)
            if follow_defines:
                nxt |= fn.defines
            stack.extend(sorted(nxt - seen))
        return seen

    def find_path(self, start: str, targets: Set[str],
                  follow_defines: bool = False) -> Optional[List[str]]:
        """Shortest call path from ``start`` to any of ``targets``
        (deterministic: neighbours visited in sorted order)."""
        if start not in self.functions:
            return None
        prev: Dict[str, Optional[str]] = {start: None}
        queue = deque([start])
        while queue:
            qual = queue.popleft()
            if qual in targets:
                path = []
                cur: Optional[str] = qual
                while cur is not None:
                    path.append(cur)
                    cur = prev[cur]
                return list(reversed(path))
            fn = self.functions.get(qual)
            if fn is None:
                continue
            nxt = set(fn.calls)
            if follow_defines:
                nxt |= fn.defines
            for callee in sorted(nxt):
                if callee not in prev:
                    prev[callee] = qual
                    queue.append(callee)
        return None
