"""CEIO — the paper's primary contribution.

Credit-based flow control (§4.1), elastic on-NIC buffering with
order-preserving SW rings and asynchronous DMA reads (§4.2), and the
host-side driver APIs (§5).
"""

from .config import CeioConfig
from .credit import CreditAccount, CreditController
from .driver import CeioDriver
from .elastic_buffer import ElasticBufferManager, FlowSlowBuffer
from .runtime import CeioArchitecture, CeioFlowState
from .steering import SteeringAction, SteeringRule, SteeringTable
from .sw_ring import SwEntry, SwRing

__all__ = [
    "CeioConfig",
    "CreditAccount", "CreditController",
    "CeioDriver",
    "ElasticBufferManager", "FlowSlowBuffer",
    "CeioArchitecture", "CeioFlowState",
    "SteeringAction", "SteeringRule", "SteeringTable",
    "SwEntry", "SwRing",
]
