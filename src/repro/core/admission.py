"""Admission control / load shedding for open-loop overload (robustness).

Closed-loop clients self-limit: each outstanding request gates the next,
so queues are bounded by the window. Open-loop demand (repro.demand) keeps
arriving regardless of service rate, and any queue past the knee grows
without bound — along with the tail latency measured from submission.

The guardrail is deliberately simple (and deliberately *early*): before a
packet is steered, the NIC checks the flow's application-facing SW-ring
depth and its elastic slow-path backlog. Past either limit the packet is
**shed** — ACKed unmarked so the transport retires the message without
retransmitting or backing off; the loss is surfaced to the *application*
layer (goodput), not hidden in the congestion controller. That keeps the
standing queues (and p99.9+) bounded while the unguarded ablation's tail
diverges, at the cost of explicitly metered shed work.

Every decision is conserved by construction: ``offered == admitted +
shed`` at any instant, which the ``arch.admission`` ledger account checks
alongside the architecture-level ``offered == accepted + dropped + shed +
duplicates`` equation.
"""

from __future__ import annotations

from ..sim.stats import Counter

__all__ = ["AdmissionController"]


class AdmissionController:
    """Per-packet admit/shed decisions driven by queue-depth signals."""

    def __init__(self, ring_limit: int, slow_bytes_limit: int):
        if ring_limit <= 0:
            raise ValueError("admission ring_limit must be positive")
        if slow_bytes_limit <= 0:
            raise ValueError("admission slow_bytes_limit must be positive")
        self.ring_limit = ring_limit
        self.slow_bytes_limit = slow_bytes_limit
        self.offered = Counter("admission.offered")
        self.admitted = Counter("admission.admitted")
        self.shed = Counter("admission.shed")

    def admit(self, queue_depth: int, slow_bytes: int) -> bool:
        """Decide one packet. Counts the decision either way."""
        self.offered.add(1)
        if queue_depth >= self.ring_limit or slow_bytes >= self.slow_bytes_limit:
            self.shed.add(1)
            return False
        self.admitted.add(1)
        return True
