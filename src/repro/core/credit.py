"""Credit-based flow controller (§4.1, Algorithm 1).

Credits are the unit of LLC occupancy: one credit is one I/O buffer
resident in the DDIO partition (Eq. 1: ``C_total = Size_LLC / Size_buf``).
A packet admitted to the fast path *consumes* a credit; the CEIO driver
*releases* credits once the application has processed a batch of messages
(lazy release, §4.1).

This module is pure bookkeeping — no simulation time — so Algorithm 1 can
be unit- and property-tested in isolation. The runtime (:mod:`.runtime`)
drives it from NIC events.

Credit conservation invariant (checked by :meth:`CreditController.audit`):

    sum(available) + sum(inflight) + reserve == C_total

Algorithm 1 notes: the paper's pseudocode redistributes credits from the
``n`` existing flows to ``m`` new flows, recording *owed credits*
(``o_j^i``) when an existing flow's free credits fall short of its quota
(it is then inserted into the set *I*), and repaying creditors first when
such a flow later releases credits. We implement exactly that contract;
quotas follow the updated fair share ``C_flow = C_total / (n + m)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

__all__ = ["CreditAccount", "CreditController"]


class CreditAccount:
    """Per-flow credit state."""

    __slots__ = ("flow_id", "available", "inflight", "owed", "donating",
                 "last_activity")

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        #: Credits the flow may consume right now.
        self.available: float = 0.0
        #: Credits consumed by fast-path packets not yet released.
        self.inflight: int = 0
        #: creditor flow id -> credits this flow still owes it (o_j^i).
        self.owed: Dict[int, float] = {}
        #: True while released credits are redirected to fast-path flows
        #: (the §4.1 Q3 "active flow" reallocation).
        self.donating: bool = False
        self.last_activity: float = 0.0

    @property
    def owes(self) -> bool:
        return any(v > 1e-9 for v in self.owed.values())

    @property
    def total_owed(self) -> float:
        return sum(self.owed.values())


class CreditController:
    """Owns all credit accounts and implements Algorithm 1."""

    def __init__(self, total_credits: int):
        if total_credits <= 0:
            raise ValueError("total credits must be positive")
        self.total = float(total_credits)
        self.accounts: Dict[int, CreditAccount] = {}
        #: Credits not allocated to any flow (departed flows, donations with
        #: no eligible recipient). The initial pool is the whole budget.
        self.reserve: float = float(total_credits)
        #: Credits still in flight on behalf of flows that were removed;
        #: they return to the reserve as their buffers are released.
        self._departed_inflight: int = 0
        # Conservation flux meters (repro.audit): every credit consumed is
        # eventually released, reclaimed by the watchdog, or still in
        # flight (possibly on behalf of a departed flow). Plain floats —
        # this module stays simulation-free.
        self.consumed_total: float = 0.0
        self.released_total: float = 0.0
        self.reclaimed_total: float = 0.0

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def account(self, flow_id: int) -> CreditAccount:
        return self.accounts[flow_id]

    @property
    def fair_share(self) -> float:
        n = len(self.accounts)
        return self.total / n if n else self.total

    def audit(self) -> float:
        """Total credits across accounts + reserve; must equal ``total``."""
        return (sum(a.available + a.inflight for a in self.accounts.values())
                + self.reserve + self._departed_inflight)

    # ------------------------------------------------------------------
    # Algorithm 1 — credit assignment (new flow arrival)
    # ------------------------------------------------------------------
    def add_flows(self, new_ids: Iterable[int]) -> List[CreditAccount]:
        new_ids = [fid for fid in new_ids if fid not in self.accounts]
        if not new_ids:
            return []
        existing = list(self.accounts.values())
        n, m = len(existing), len(new_ids)
        share = self.total / (n + m)  # line 2: C_flow

        new_accounts = [CreditAccount(fid) for fid in new_ids]
        for acct in new_accounts:
            self.accounts[acct.flow_id] = acct

        # Unallocated reserve funds the newcomers before existing flows are
        # taxed (this also covers the bootstrap case n == 0).
        needed = m * share
        from_reserve = min(self.reserve, needed)
        self.reserve -= from_reserve
        for acct in new_accounts:
            acct.available += from_reserve / m
        needed -= from_reserve
        if needed <= 1e-9 or n == 0:
            return new_accounts

        # Each existing flow's quota toward the newcomers (lines 3-8):
        # ideally (m/n) * C_flow, scaled by how much reserve already paid.
        quota = needed / n
        for acct in existing:
            give = min(acct.available, quota)
            acct.available -= give
            for newcomer in new_accounts:
                newcomer.available += give / m
            short = quota - give
            if short > 1e-9:
                # Lines 8, 12-13: record what this flow owes each newcomer.
                for newcomer in new_accounts:
                    acct.owed[newcomer.flow_id] = (
                        acct.owed.get(newcomer.flow_id, 0.0) + short / m)
        return new_accounts

    def remove_flow(self, flow_id: int) -> None:
        """Tear down a flow: its free credits go back to the reserve, debts
        owed to it are forgiven, and credits it still holds in flight are
        recovered into the reserve as they release (see :meth:`release`)."""
        acct = self.accounts.pop(flow_id, None)
        if acct is None:
            return
        self.reserve += acct.available
        self._departed_inflight += acct.inflight
        acct.available = 0.0
        for other in self.accounts.values():
            other.owed.pop(flow_id, None)

    # ------------------------------------------------------------------
    # Data-path operations
    # ------------------------------------------------------------------
    def consume(self, flow_id: int, now: float = 0.0) -> bool:
        """Consume one credit for an admitted fast-path packet."""
        acct = self.accounts.get(flow_id)
        if acct is None or acct.available < 1.0:
            return False
        acct.available -= 1.0
        acct.inflight += 1
        acct.last_activity = now
        self.consumed_total += 1.0
        return True

    def consume_overdraft(self, flow_id: int, now: float = 0.0) -> None:
        """Account a packet that was admitted *after* exhaustion (the RMT
        rule still said fast because the ARM core had not polled yet).

        ``available`` goes negative: the flow repays the overdraft out of
        future releases before it can be considered credit-worthy again,
        so poll lag cannot leak LLC occupancy over time."""
        acct = self.accounts.get(flow_id)
        if acct is None:
            return
        acct.available -= 1.0
        acct.inflight += 1
        acct.last_activity = now
        self.consumed_total += 1.0

    def credits_exhausted(self, flow_id: int) -> bool:
        acct = self.accounts.get(flow_id)
        return acct is None or acct.available < 1.0

    # ------------------------------------------------------------------
    # Algorithm 1 — credit release (lines 16-25)
    # ------------------------------------------------------------------
    def release(self, flow_id: int, count: int, now: float = 0.0) -> None:
        """Return ``count`` credits released by processed buffers.

        Repayment order: debts to creditors first (lines 19-25), then the
        flow keeps the remainder — unless it is *donating*, in which case
        the remainder is spread over fast-path flows (§4.1 Q3).
        """
        if count <= 0:
            return
        acct = self.accounts.get(flow_id)
        if acct is None:
            # Departed flow's in-flight buffers finally freed.
            recovered = min(count, self._departed_inflight)
            self._departed_inflight -= recovered
            self.reserve += recovered
            self.released_total += recovered
            return
        # Over-release is a caller bug; clamp to preserve conservation.
        released = min(count, acct.inflight)
        if released <= 0:
            return
        acct.inflight -= released
        acct.last_activity = now
        self.released_total += released
        gamma = float(released)
        if acct.owes:
            gamma = self._repay(acct, gamma)
        if gamma <= 0:
            return
        if acct.donating:
            # Repay the flow's own overdraft first — donating credits while
            # in debt would strand the flow below zero forever.
            if acct.available < 0:
                repay = min(gamma, -acct.available)
                acct.available += repay
                gamma -= repay
            if gamma > 0:
                self._donate(acct, gamma)
        else:
            acct.available += gamma

    def _repay(self, acct: CreditAccount, gamma: float) -> float:
        creditors = [fid for fid, amt in acct.owed.items() if amt > 1e-9]
        while creditors and gamma > 1e-9:
            per = gamma / len(creditors)
            remaining = []
            for fid in creditors:
                pay = min(acct.owed[fid], per)
                acct.owed[fid] -= pay
                gamma -= pay
                target = self.accounts.get(fid)
                if target is not None:
                    target.available += pay
                else:
                    self.reserve += pay
                if acct.owed[fid] > 1e-9:
                    remaining.append(fid)
            if len(remaining) == len(creditors):
                break  # all creditors capped by per-share; avoid spinning
            creditors = remaining
        acct.owed = {fid: amt for fid, amt in acct.owed.items()
                     if amt > 1e-9}
        return max(0.0, gamma)

    def _donate(self, donor: CreditAccount, gamma: float) -> None:
        recipients = [a for a in self.accounts.values()
                      if not a.donating and a.flow_id != donor.flow_id]
        if not recipients:
            self.reserve += gamma
            return
        per = gamma / len(recipients)
        for acct in recipients:
            acct.available += per

    # ------------------------------------------------------------------
    # Reallocation & reactivation (§4.1 Q3)
    # ------------------------------------------------------------------
    def set_donating(self, flow_id: int, donating: bool) -> None:
        acct = self.accounts.get(flow_id)
        if acct is not None:
            acct.donating = donating

    def grant_from_reserve(self, flow_id: int, amount: float) -> float:
        """Grant up to ``amount`` credits funded by the reserve only."""
        acct = self.accounts.get(flow_id)
        if acct is None or amount <= 0:
            return 0.0
        granted = min(self.reserve, amount)
        self.reserve -= granted
        acct.available += granted
        return granted

    def reclaim(self, flow_id: int) -> float:
        """Take an inactive flow's free credits into the reserve; they are
        re-granted when the flow is reactivated."""
        acct = self.accounts.get(flow_id)
        if acct is None:
            return 0.0
        taken, acct.available = acct.available, 0.0
        self.reserve += taken
        return taken

    def reclaim_inflight(self, flow_id: int, now: float = 0.0) -> int:
        """Credit-loss recovery (repro.faults): presume a flow's in-flight
        credits lost and hand them back as available credits.

        A DMA write that was silently dropped consumed a credit that no
        delivery will ever release; without this the flow's capacity leaks
        away one lost descriptor at a time until it deadlocks. Conservation
        holds — the credits move from ``inflight`` to ``available`` within
        the same account. If a presumed-lost buffer *does* later release,
        :meth:`release` clamps against the (now zero) inflight count, so
        a mistaken reclaim can never mint credits. Returns credits moved.
        """
        acct = self.accounts.get(flow_id)
        if acct is None or acct.inflight <= 0:
            return 0
        lost, acct.inflight = acct.inflight, 0
        acct.available += lost
        acct.last_activity = now
        self.reclaimed_total += lost
        return lost

    def grant_share(self, flow_id: int, now: float = 0.0,
                    target: Optional[float] = None) -> float:
        """Top a (re)activated flow back up toward the fair share, funded by
        the reserve first and then uniformly by other flows' free credits.
        No debt is recorded — reactivation must not create obligations.

        ``target`` overrides the naive all-flows fair share; the runtime
        passes ``C_total / active_flows`` so that with thousands of mostly
        idle flows an activated flow still gets a useful allowance.
        """
        acct = self.accounts.get(flow_id)
        if acct is None:
            return 0.0
        if target is None:
            target = self.fair_share
        deficit = target - (acct.available + acct.inflight)
        if deficit <= 0:
            return 0.0
        granted = min(self.reserve, deficit)
        self.reserve -= granted
        deficit -= granted
        if deficit > 1e-9:
            others = [a for a in self.accounts.values()
                      if a.flow_id != flow_id and a.available > 1e-9]
            if others:
                per = deficit / len(others)
                for other in others:
                    take = min(other.available, per)
                    other.available -= take
                    granted += take
        acct.available += granted
        acct.last_activity = now
        acct.donating = False
        return granted
