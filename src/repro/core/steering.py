"""RMT-style flow-steering table (§4.1, Figure 6).

The NIC's reconfigurable match-action engine holds one rule per flow whose
action directs received packets to the fast path (DMA to host via DDIO) or
the slow path (DMA to on-NIC memory). Rules carry hit counters that the
flow controller polls from the ARM cores — the control loop the paper
builds on ("continuously polls counters in the steering flow table to
track credit consumption").
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

__all__ = ["SteeringAction", "SteeringRule", "SteeringTable"]


class SteeringAction(enum.Enum):
    FAST_PATH = "fast"
    SLOW_PATH = "slow"
    DROP = "drop"


class SteeringRule:
    """A match-action entry: match on flow id, action + hit counters."""

    __slots__ = ("flow_id", "action", "hit_count", "hit_bytes",
                 "last_hit_time")

    def __init__(self, flow_id: int,
                 action: SteeringAction = SteeringAction.FAST_PATH):
        self.flow_id = flow_id
        self.action = action
        self.hit_count = 0
        self.hit_bytes = 0
        self.last_hit_time = 0.0

    def record_hit(self, nbytes: int, now: float) -> None:
        self.hit_count += 1
        self.hit_bytes += nbytes
        self.last_hit_time = now


class SteeringTable:
    """The flow table: install/update/remove rules, match packets."""

    def __init__(self, default_action: SteeringAction = SteeringAction.DROP):
        self._rules: Dict[int, SteeringRule] = {}
        self.default_action = default_action

    def __len__(self) -> int:
        return len(self._rules)

    def install(self, flow_id: int,
                action: SteeringAction = SteeringAction.FAST_PATH
                ) -> SteeringRule:
        rule = SteeringRule(flow_id, action)
        self._rules[flow_id] = rule
        return rule

    def remove(self, flow_id: int) -> None:
        self._rules.pop(flow_id, None)

    def get(self, flow_id: int) -> Optional[SteeringRule]:
        return self._rules.get(flow_id)

    def set_action(self, flow_id: int, action: SteeringAction) -> None:
        rule = self._rules.get(flow_id)
        if rule is None:
            raise KeyError(f"no steering rule for flow {flow_id}")
        rule.action = action

    def match(self, flow_id: int, nbytes: int, now: float) -> SteeringAction:
        """Look up the action for a packet, updating hit counters."""
        rule = self._rules.get(flow_id)
        if rule is None:
            return self.default_action
        rule.record_hit(nbytes, now)
        return rule.action

    def rules(self):
        return self._rules.values()
