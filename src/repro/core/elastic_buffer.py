"""Elastic on-NIC buffering (§4.2).

When a flow exhausts its credits, its packets are DMAed into the
SmartNIC's on-board memory instead of being dropped. This module owns that
memory's per-flow accounting and the drain machinery that later moves
buffered payloads to host memory via DMA reads.

Draining is gated on LLC headroom: a drained packet is inserted into the
DDIO partition (the DMA-read completion is a posted write to host memory,
which DDIO steers into the LLC), so the manager only fetches a batch when
the partition has room. When headroom is missing the manager *pauses the
fast path globally* — the paper's "temporarily pauses the fast path during
slow path DMAing, drains the I/O flow, and then re-enables the fast path"
(§4.1 Q2) — until application releases free space.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from ..sim.stats import Counter, RateMeter

__all__ = ["FlowSlowBuffer", "ElasticBufferManager"]


class FlowSlowBuffer:
    """Per-flow FIFO of packets resident in on-NIC memory."""

    __slots__ = ("flow_id", "entries", "nbytes", "production", "consumption",
                 "cpu_involved", "small_messages")

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        #: (packet, SwEntry) pairs in arrival order.
        self.entries: Deque[Tuple] = deque()
        self.nbytes = 0
        #: Guard-threshold class, learned from the first buffered packet.
        self.cpu_involved = True
        #: Small-message bypass traffic (e.g. echo over RDMA) is latency-
        #: sensitive and gets the shallow guard band too.
        self.small_messages = True
        self.production = RateMeter(f"slow{flow_id}.prod", window=10_000.0)
        self.consumption = RateMeter(f"slow{flow_id}.cons", window=10_000.0)

    def __len__(self) -> int:
        return len(self.entries)


class ElasticBufferManager:
    """Owns the slow-path side: on-NIC buffers and DMA-read drains."""

    #: Per-packet descriptor/WQE handling cost of a drain, ns. Amortised
    #: by large messages — the reason the slow path only approaches the
    #: fast path beyond ~4 KB messages (Figure 11).
    DRAIN_PER_PACKET_NS = 20.0
    #: §6.4: "degraded on-NIC memory throughput due to chaotic access
    #: patterns" — with many flows holding on-NIC buffers at once, the
    #: on-board DRAM loses row-buffer locality. Effective bandwidth drops
    #: linearly to ``1 - CHAOS_PENALTY`` of nominal as the concurrently
    #: buffered flow count reaches :attr:`CHAOS_FLOWS`.
    CHAOS_PENALTY = 0.45
    CHAOS_FLOWS = 16
    #: Extra per-packet drain cost at full chaos (internal-switch DMA
    #: latency inflation), ns.
    DRAIN_CHAOS_NS = 18.0

    def __init__(self, host, config):
        self.host = host
        self.sim = host.sim
        self.config = config
        self.buffers: Dict[int, FlowSlowBuffer] = {}
        self.buffered_packets = Counter("ceio.slow_buffered")
        self.drained_packets = Counter("ceio.slow_drained")
        self.slow_drops = Counter("ceio.slow_drops")
        #: On-NIC memory exhausted on a buffer attempt. The runtime decides
        #: what happens next (spill to DRAM, or drop + ``slow_drops``) —
        #: this counter makes the overflow visible either way instead of
        #: the flow silently wedging.
        self.overflow_events = Counter("ceio.slow_overflow")
        #: True while drains are waiting on LLC headroom; the runtime routes
        #: all fast-path admissions to the slow path during this window.
        self.fast_path_paused = False
        #: Set by the runtime: callable(flow_id) invoked when drained data
        #: becomes host-resident (wakes poll_any servers).
        self.notify = None
        #: Set by the runtime: callable(packet) that sends a deferred ACK
        #: (hard backpressure past the RED band).
        self.ack_deferred = None
        #: Flows whose on-NIC buffer is currently non-empty.
        self._active_buffered = 0
        # Conservation meters (repro.audit): every buffered entry is
        # eventually removed by a drain, discarded by forget_flow, or still
        # sitting in a live per-flow buffer.
        self.audit_removed = 0
        self.forgotten_entries = 0

    def flow_buffer(self, flow_id: int) -> FlowSlowBuffer:
        buf = self.buffers.get(flow_id)
        if buf is None:
            buf = FlowSlowBuffer(flow_id)
            self.buffers[flow_id] = buf
        return buf

    def slow_bytes(self, flow_id: int) -> int:
        buf = self.buffers.get(flow_id)
        return buf.nbytes if buf else 0

    # ------------------------------------------------------------------
    # NIC-side: buffer an overflow packet
    # ------------------------------------------------------------------
    def buffer_packet(self, packet, record):
        """Process (firmware ctx): store packet in on-NIC memory.

        Returns True when buffered, False when on-NIC memory is exhausted —
        the caller then falls back (spill to host DRAM, or drop when the
        ``spill_to_dram`` fallback is disabled; it owns ``slow_drops``).
        """
        memory = self.host.nic.memory
        if not memory.allocate(packet.size):
            self.overflow_events.add(1)
            return False
        yield from memory.write(packet.size)
        buf = self.flow_buffer(packet.flow.flow_id)
        buf.cpu_involved = packet.flow.is_cpu_involved
        buf.small_messages = (
            packet.flow.message_payload * packet.flow.packets_per_message
            < self.config.latency_class_message_bytes)
        if buf.nbytes == 0:
            self._active_buffered += 1
            self._update_chaos()
        buf.entries.append((packet, record))
        buf.nbytes += packet.size
        buf.production.record(self.sim.now, packet.size)
        self.buffered_packets.add(1)
        return True

    # ------------------------------------------------------------------
    # Host-side: drain a batch via DMA read
    # ------------------------------------------------------------------
    def _llc_headroom(self) -> int:
        llc = self.host.llc
        return llc.capacity - llc.occupancy if hasattr(llc, "capacity") else (
            self.host.config.cache.ddio_capacity - llc.occupancy)

    def drain_batch(self, flow_id: int, entries: List):
        """Process: fetch the payloads behind ``entries`` to host memory.

        ``entries`` are SwRing entries whose records reference packets held
        in this flow's on-NIC buffer. On completion each entry is marked
        host-resident and its LLC lines are allocated. The batch is split
        into chunks no larger than half the DDIO partition so a drain can
        always make progress regardless of cache size.
        """
        if not entries:
            return
        buf = self.flow_buffer(flow_id)
        for entry in entries:
            entry.fetching = True
        capacity = self.host.config.cache.ddio_capacity
        index = 0
        while index < len(entries):
            chunk = []
            total = 0
            while index < len(entries):
                size = entries[index].record.packet.size
                if chunk and total + size > capacity // 2:
                    break
                chunk.append(entries[index])
                total += size
                index += 1
            yield from self._drain_chunk(flow_id, buf, chunk, total)
        if self.notify is not None:
            self.notify(flow_id)

    def _drain_chunk(self, flow_id: int, buf: FlowSlowBuffer,
                     chunk: List, total: int):

        # Wait for DDIO headroom; pause the fast path if we have to wait so
        # application releases can catch up (§4.1 Q2). The wait is
        # best-effort: past the deadline the drain proceeds anyway and the
        # DDIO insert simply evicts (what real hardware would do) — a drain
        # must never deadlock against buffers the application can only
        # release after this very drain completes.
        waited = False
        deadline = self.sim.now + 50_000.0
        while self._llc_headroom() < total and self.sim.now < deadline:
            self.fast_path_paused = True
            waited = True
            yield 1_000.0
        if waited:
            self.fast_path_paused = False

        per_packet = (self.DRAIN_PER_PACKET_NS
                      + self._chaos() * self.DRAIN_CHAOS_NS)
        yield len(chunk) * per_packet
        yield from self.host.nic.dma.read_from_nic(self.host.nic.memory,
                                                   total)
        now = self.sim.now
        # A crash_restart fault may have forgotten this flow's buffer while
        # the DMA read was in flight: forget_flow already freed its on-NIC
        # bytes, so an orphaned drain must not free (or account) them again.
        live = self.buffers.get(flow_id) is buf
        for entry in chunk:
            packet = entry.record.packet
            self.host.llc.io_insert(entry.record.key, packet.size)
            if live:
                self.host.nic.memory.free_bytes(packet.size)
                buf.nbytes = max(0, buf.nbytes - packet.size)
                if buf.nbytes == 0:
                    self._active_buffered = max(0, self._active_buffered - 1)
                    self._update_chaos()
                if buf.entries and buf.entries[0][1] is entry:
                    buf.entries.popleft()
                    self.audit_removed += 1
                buf.consumption.record(now, packet.size)
            entry.resident = True
            entry.fetching = False
            entry.record.deliver_time = now
            packet.delivered_time = now
            if entry.record.defer_ack and self.ack_deferred is not None:
                entry.record.defer_ack = False
                self.ack_deferred(packet)
            self.drained_packets.add(1)

    def forget_flow(self, flow_id: int) -> int:
        """Quiesce support (repro.faults app crash): discard a departed
        flow's on-NIC buffer, freeing its memory. Returns bytes freed."""
        buf = self.buffers.pop(flow_id, None)
        if buf is None:
            return 0
        self.forgotten_entries += len(buf.entries)
        freed = buf.nbytes
        if freed > 0:
            self.host.nic.memory.free_bytes(freed)
            self._active_buffered = max(0, self._active_buffered - 1)
            self._update_chaos()
        buf.entries.clear()
        buf.nbytes = 0
        return freed

    def _chaos(self) -> float:
        return min(1.0, self._active_buffered / self.CHAOS_FLOWS)

    def _update_chaos(self) -> None:
        memory = self.host.nic.memory
        nominal = memory.config.memory_bandwidth
        memory.set_effective_bandwidth(
            nominal * (1.0 - self.CHAOS_PENALTY * self._chaos()))

    def overloaded(self, flow_id: int) -> bool:
        """True when this flow's slow path is filling faster than it drains
        (the condition under which CEIO triggers the network CCA, §4.1 Q2)."""
        buf = self.buffers.get(flow_id)
        if buf is None or buf.nbytes == 0:
            return False
        now = self.sim.now
        prod = buf.production.rate(now)
        cons = buf.consumption.rate(now)
        return prod > cons * 1.25 and buf.nbytes > self.config.cca_mark_min_bytes

    def mark_probability(self, flow_id: int) -> float:
        """RED-style ECN probability from per-flow slow-path backlog.

        Marking is gated on the §4.1 Q2 condition — the network's
        production rate exceeding the slow path's consumption rate — so a
        backlog that is already draining does not keep cutting the sender.
        """
        buf = self.buffers.get(flow_id)
        if buf is None:
            return 0.0
        if buf.cpu_involved or buf.small_messages:
            lo = self.config.cca_mark_min_bytes
            hi = self.config.cca_mark_max_bytes
        else:
            lo = self.config.cca_mark_min_bytes_bypass
            hi = self.config.cca_mark_max_bytes_bypass
        if buf.nbytes <= lo:
            return 0.0
        if buf.nbytes >= hi:
            # Above the band the sender must be pushed *below* the service
            # rate or a standing queue that peaked high would never shrink.
            return 1.0
        p = (buf.nbytes - lo) / max(1, hi - lo)
        now = self.sim.now
        if buf.production.rate(now) <= buf.consumption.rate(now):
            # Backlog already draining: mark gently so the queue keeps
            # shrinking without cutting the sender into starvation.
            return p * 0.25
        return p
