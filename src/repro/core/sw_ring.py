"""The CEIO software ring (§4.2, Figure 7).

A two-producer / one-consumer ring that unifies the fast-path HW ring and
the slow-path HW ring into one application-facing, **order-preserving**
sequence. Ordering across path transitions relies on *phase exclusivity*:
when a flow degrades to the slow path, a barrier is set at the number of
fast-path packets already issued to the DMA engine; slow-path entries are
held back until every one of those fast-path packets has been delivered,
so the consumer never observes a slow packet ahead of an earlier fast one.

Entries carry a per-entry location flag (``resident``) exactly as the
paper describes — the driver polls it to decide which entries still need a
DMA read from on-NIC memory.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

__all__ = ["SwEntry", "SwRing"]


class SwEntry:
    """One SW-ring slot: a record plus its location/fetch flags."""

    __slots__ = ("record", "resident", "fetching")

    def __init__(self, record, resident: bool):
        self.record = record
        #: True once the payload is in host memory (fast path: immediately;
        #: slow path: after the DMA read completes).
        self.resident = resident
        #: True while a slow-path DMA read for this entry is in flight.
        self.fetching = False


class SwRing:
    """Order-preserving merge of fast-path and slow-path deliveries."""

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        self._entries: Deque[SwEntry] = deque()
        self._pending_slow: Deque[SwEntry] = deque()
        #: Barrier: slow entries may enter only once this many fast-path
        #: packets have been delivered. None = no transition in progress.
        self._barrier: Optional[int] = None
        self.fast_issued = 0
        self.fast_delivered = 0
        self.out_of_order = 0
        #: Records handed to the application via :meth:`pop_ready`
        #: (conservation meter for repro.audit).
        self.popped = 0
        #: Ordering holes forgiven by the stuck-slot watchdog (fast-path
        #: packets that were issued but whose delivery was lost).
        self.holes_released = 0
        self._last_seq_popped = -1

    # ------------------------------------------------------------------
    # Producers
    # ------------------------------------------------------------------
    def note_fast_issued(self) -> None:
        """A fast-path DMA write was issued for this flow."""
        self.fast_issued += 1

    def push_fast(self, record) -> None:
        """Fast-path delivery (DMA write completed into host memory)."""
        self._entries.append(SwEntry(record, resident=True))
        self.fast_delivered += 1
        self._flush_pending()

    def set_barrier(self) -> None:
        """Flow degraded: pin the fast/slow boundary at packets issued so far."""
        self._barrier = self.fast_issued

    def clear_barrier(self) -> None:
        self._barrier = None
        self._flush_pending()

    def push_slow(self, record) -> SwEntry:
        """Slow-path arrival (payload buffered in on-NIC memory)."""
        entry = SwEntry(record, resident=False)
        self._pending_slow.append(entry)
        self._flush_pending()
        return entry

    def push_slow_unordered(self, record) -> SwEntry:
        """Ablation hook: bypass the barrier (phase exclusivity off)."""
        entry = SwEntry(record, resident=False)
        self._entries.append(entry)
        return entry

    def _flush_pending(self) -> None:
        if self._barrier is not None and self.fast_delivered < self._barrier:
            return
        while self._pending_slow:
            self._entries.append(self._pending_slow.popleft())

    # ------------------------------------------------------------------
    # Stuck-slot recovery (repro.faults)
    # ------------------------------------------------------------------
    def barrier_unmet(self) -> bool:
        """True while slow entries are held back waiting on fast-path
        deliveries that have not happened (the state the stuck-slot
        watchdog monitors for progress)."""
        return self._barrier is not None and self.fast_delivered < self._barrier

    def release_barrier_holes(self) -> int:
        """Give up on fast-path packets the barrier is still waiting for.

        Their DMA writes were lost (dropped descriptors); no delivery will
        ever close the gap. Forgiving them means aligning ``fast_issued``
        down to ``fast_delivered`` — so a later re-degrade cannot recreate
        an unmeetable barrier from the same dead writes — and flushing the
        held-back slow entries. Returns the number of holes forgiven.
        """
        if not self.barrier_unmet():
            return 0
        missing = self._barrier - self.fast_delivered
        self.holes_released += missing
        self.fast_issued = self.fast_delivered
        self._barrier = None
        self._flush_pending()
        return missing

    # ------------------------------------------------------------------
    # Consumer (the CEIO driver)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries) + len(self._pending_slow)

    @property
    def ready_count(self) -> int:
        """Entries at the head that are host-resident."""
        count = 0
        for entry in self._entries:
            if not entry.resident:
                break
            count += 1
        return count

    def pop_ready(self, max_entries: int) -> List:
        """Pop up to ``max_entries`` host-resident records from the head."""
        records = []
        while (self._entries and len(records) < max_entries
               and self._entries[0].resident):
            entry = self._entries.popleft()
            seq = entry.record.packet.seq
            if seq < self._last_seq_popped and not entry.record.packet.retransmitted:
                self.out_of_order += 1
            self._last_seq_popped = max(self._last_seq_popped, seq)
            records.append(entry.record)
        self.popped += len(records)
        return records

    def nonresident_head(self, max_entries: int) -> List[SwEntry]:
        """The next entries that still need fetching (skipping ones already
        being fetched), up to ``max_entries``, scanning from the head."""
        out = []
        for entry in self._entries:
            if len(out) >= max_entries:
                break
            if entry.resident:
                continue
            if not entry.fetching:
                out.append(entry)
        return out

    @property
    def has_nonresident(self) -> bool:
        return any(not e.resident for e in self._entries) or bool(
            self._pending_slow)
