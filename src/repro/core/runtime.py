"""The CEIO I/O architecture: NIC-side runtime + host-side driver (§3-§5).

Wiring (Figure 5):

- every registered flow gets a steering rule (initially fast path), a
  credit account (Algorithm 1 assignment), and a SW ring;
- ``on_packet`` follows the *current* steering rule — credits are debited
  by bookkeeping, but rule flips happen in the ARM control loop that polls
  steering counters, so a few packets can over-admit between polls exactly
  as on real hardware (this is why CEIO's measured miss rate is ~1%, not
  0%);
- degraded flows buffer into on-NIC memory; the driver drains them with
  (a)synchronous DMA reads and upgrades the flow back to the fast path
  once the slow ring is empty and credits are available;
- lazy credit release, donation of slow-path flows' credits, inactivity
  reclamation, and round-robin reactivation implement §4.1's Q1-Q3.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..hw import DmaWrite, Host
from ..io_arch.base import FlowRx, IOArchitecture, RxRecord
from ..net.packet import Flow, Packet
from ..sim import SimulationError
from ..sim.stats import Counter
from .admission import AdmissionController
from .config import CeioConfig
from .credit import CreditController
from .driver import CeioDriver
from .elastic_buffer import ElasticBufferManager
from .steering import SteeringAction, SteeringTable
from .sw_ring import SwRing

__all__ = ["CeioFlowState", "CeioArchitecture"]

_keys = itertools.count(10**9)  # distinct from base-class key space


class CeioFlowState:
    """Per-flow runtime state beyond the generic FlowRx."""

    __slots__ = ("flow", "swring", "draining", "drain_proc",
                 "degraded_since", "cca_marking", "inactive", "pinned_slow",
                 "watchdog_backoff", "barrier_stuck_since",
                 "barrier_progress")

    def __init__(self, flow: Flow):
        self.flow = flow
        self.swring = SwRing(flow.flow_id)
        self.draining = False
        #: Handle of the in-flight background drain process (owner: the
        #: driver), kept so teardown/diagnostics can interrupt it.
        self.drain_proc = None
        self.degraded_since: Optional[float] = None
        self.cca_marking = False
        self.inactive = False
        #: Diagnostics hook (Figure 11 / Table 3): hold the flow on the
        #: slow path regardless of credits.
        self.pinned_slow = False
        #: Credit-watchdog exponential backoff multiplier (doubles per
        #: reclamation, reset on a genuine credit release).
        self.watchdog_backoff = 1.0
        #: Stuck-slot tracking: when the barrier stopped making progress,
        #: and the fast_delivered count it was last seen at.
        self.barrier_stuck_since: Optional[float] = None
        self.barrier_progress = -1


class CeioArchitecture(IOArchitecture):
    name = "ceio"

    def __init__(self, host: Host, config: Optional[CeioConfig] = None):
        super().__init__(host)
        self.config = config or CeioConfig()
        self.credits = CreditController(host.total_credits)
        self.steering = SteeringTable()
        self.buffer_manager = ElasticBufferManager(host, self.config)
        self.driver = CeioDriver(self)
        self.states: Dict[int, CeioFlowState] = {}
        #: Retained across unregister_flow (like ``_all_rx``) so SW-ring
        #: pop/occupancy sums stay conserved across crash_restart faults.
        self._all_states: Dict[int, CeioFlowState] = {}
        #: Fast-path DMA writes swallowed by a descriptor-drop fault
        #: (their deliveries will never run).
        self.fast_write_drops = 0
        self.buffer_manager.notify = self._notify_ready
        # Deferred ACKs send only the ACK: the packet was already counted
        # accepted at admission (going through _accept again would double-
        # count it in ``rx_accepted`` and unbalance the audit ledger).
        self.buffer_manager.ack_deferred = self._ack_deferred
        self.poll_interval = host.config.nic.arm_poll_interval
        #: Flows with data-path activity since the last control tick — the
        #: ARM loop only inspects these plus a rotating inactivity slice,
        #: keeping the tick O(active flows) with thousands registered.
        self._touched: set = set()
        self._inactive_scan_pos = 0
        self.fast_packets = Counter("ceio.fast_packets")
        self.slow_packets = Counter("ceio.slow_packets")
        self.overdraft = Counter("ceio.overdraft")
        self.upgrades = Counter("ceio.upgrades")
        self.degrades = Counter("ceio.degrades")
        #: Graceful-degradation counters (repro.faults recovery paths).
        self.credit_reclaimed = Counter("ceio.credit_reclaimed")
        self.swring_holes = Counter("ceio.swring_holes")
        self.spilled = Counter("ceio.spilled")
        #: Overload guardrail (open-loop demand): shed at admission when
        #: per-flow queues exceed the configured limits. None when off.
        self.admission: Optional[AdmissionController] = (
            AdmissionController(self.config.admission_ring_limit,
                                self.config.admission_slow_bytes_limit)
            if self.config.admission_control else None)
        host.nic.arm.spawn_loop(self._control_tick,
                                period=self.poll_interval, name="ceio-ctl")
        host.nic.arm.spawn_loop(self._reactivate_tick,
                                period=self.config.reactivation_period,
                                name="ceio-react")
        self._reactivation_cycle: List[int] = []
        #: Slow-path RED marking stream off the seeded registry (was a
        #: fixed-seed Random that ignored ``--seed``).
        self._mark_rng = host.rng.stream("ceio.mark")

    # ------------------------------------------------------------------
    # Flow lifecycle
    # ------------------------------------------------------------------
    def register_flow(self, flow: Flow) -> FlowRx:
        rx = super().register_flow(flow)
        if flow.flow_id not in self.states:
            state = CeioFlowState(flow)
            self.states[flow.flow_id] = state
            self._all_states[flow.flow_id] = state
            self.credits.add_flows([flow.flow_id])
            self.steering.install(flow.flow_id, SteeringAction.FAST_PATH)
        return rx

    def unregister_flow(self, flow: Flow) -> None:
        """Quiesce and tear down a flow (also the app-crash path: the
        restarted worker re-registers from scratch)."""
        fid = flow.flow_id
        super().unregister_flow(flow)
        state = self.states.pop(fid, None)
        # Remove steering *before* interrupting the drain: the drain's
        # finally-block calls on_drain_complete -> _maybe_upgrade, which
        # bails out on a missing rule instead of resurrecting the flow.
        self.steering.remove(fid)
        # A crashed app can never release its in-flight buffers; fold the
        # credits back into the account first so remove_flow returns them
        # to the reserve instead of parking them as departed-inflight.
        self.credits.reclaim_inflight(fid, self.sim.now)
        self.credits.remove_flow(fid)
        if state is not None:
            proc = state.drain_proc
            if proc is not None and proc.is_alive:
                try:
                    proc.interrupt("flow unregistered")
                except SimulationError:
                    pass  # between scheduling points; it will exit on its own
        self.buffer_manager.forget_flow(fid)
        self._touched.discard(fid)

    def flow_state(self, flow_id: int) -> CeioFlowState:
        return self.states[flow_id]

    # ------------------------------------------------------------------
    # NIC data path
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet):
        self.rx_offered.add(1)
        fid = packet.flow.flow_id
        state = self.states.get(fid)
        rx = self.flows.get(fid)
        if state is None or rx is None:
            self._drop(packet, rx)
            return
        if self._dedup(packet, rx):
            return
        if self.admission is not None and not self.admission.admit(
                len(state.swring), self.buffer_manager.slow_bytes(fid)):
            self._shed(packet, rx)
            return
        action = self.steering.match(fid, packet.size, self.sim.now)
        self._touched.add(fid)
        if action is SteeringAction.DROP:
            self._drop(packet, rx)
            return
        if action is SteeringAction.FAST_PATH and not self.buffer_manager.fast_path_paused:
            yield from self._fast_path(packet, state, rx)
        else:
            yield from self._slow_path(packet, state, rx)

    def _fast_path(self, packet: Packet, state: CeioFlowState, rx: FlowRx):
        if not self.credits.consume(packet.flow.flow_id, self.sim.now):
            # Rule still says fast because the ARM core hasn't polled the
            # counters yet; the packet over-admits (bounded by poll lag)
            # and borrows against future releases.
            self.credits.consume_overdraft(packet.flow.flow_id, self.sim.now)
            self.overdraft.add(1)
        self.fast_packets.add(1)
        state.swring.note_fast_issued()
        rx.in_use += 1
        self.delivery_inflight += 1
        record = RxRecord(packet, next(_keys), path="fast")
        self._accept(packet)

        swring = state.swring
        overhead = self.config.fast_path_overhead_ns
        sim = self.sim

        def deliver(now: float) -> None:
            # The RMT/credit pipeline stage adds latency but is pipelined,
            # so it is charged at delivery rather than serialised in the
            # firmware loop. Equal delay on every packet preserves order.
            sim.call_later(overhead, self._push_fast, packet, record,
                           swring, rx)

        write = DmaWrite(record.key, packet.size, ddio=True, deliver=deliver,
                         flow_id=packet.flow.flow_id)
        yield from self.host.nic.dma.write_to_host(write)
        if write.dropped:
            # Descriptor-drop fault: the accepted packet will never deliver.
            # Account the loss to the flow (it was ACKed, so the sender
            # will not retransmit); the consumed credit and descriptor leak
            # until the watchdog/ release recover them — the realistic
            # failure mode the chaos suite exercises.
            self.delivery_inflight -= 1
            self.fast_write_drops += 1
            self.dma_write_drops.add(1)
            rx.dropped.add(1)

    def _ack_deferred(self, packet: Packet) -> None:
        if self.ack is not None:
            self.ack(packet, True)

    def _push_fast(self, packet, record, swring, rx) -> None:
        t = self.sim.now
        self.delivery_inflight -= 1
        packet.delivered_time = t
        record.deliver_time = t
        swring.push_fast(record)
        rx.delivered.add(1)
        self._notify_ready(packet.flow.flow_id)

    def _slow_path(self, packet: Packet, state: CeioFlowState, rx: FlowRx):
        record = RxRecord(packet, next(_keys), path="slow")
        ok = yield from self.buffer_manager.buffer_packet(packet, record)
        if not ok:
            # On-NIC memory exhausted. Graceful degradation: spill the
            # packet straight to host DRAM (cache-bypassing DMA write) so
            # the flow keeps making progress instead of wedging; with the
            # fallback disabled this is a counted drop.
            if self.config.spill_to_dram:
                yield from self._spill_to_dram(packet, state, rx, record)
            else:
                self.buffer_manager.slow_drops.add(1)
                self._drop(packet, rx)
            return
        self.slow_packets.add(1)
        rx.in_use += 1
        rx.delivered.add(1)
        if self.config.phase_exclusivity:
            state.swring.push_slow(record)
        else:
            state.swring.push_slow_unordered(record)
        # RED-style CCA trigger: mark proportionally to slow-path backlog
        # so DCTCP holds the standing queue near the guard level. Past the
        # top of the band, marking alone cannot throttle below the senders'
        # minimum windows, so the ACK itself is withheld until the packet
        # drains — hard receiver backpressure that self-clocks the senders
        # to the slow path's service rate.
        p = self.buffer_manager.mark_probability(packet.flow.flow_id)
        if p >= 1.0:
            record.defer_ack = True
            self.rx_accepted.add(1)  # accepted, ACK deferred to the drain
        else:
            mark = state.cca_marking or (p > 0
                                         and self._mark_rng.random() < p)
            self._accept(packet, extra_mark=mark)
        self._notify_ready(packet.flow.flow_id)

    def _spill_to_dram(self, packet: Packet, state: CeioFlowState,
                       rx: FlowRx, record: RxRecord):
        """Overflow fallback: DMA the packet to host DRAM, bypassing both
        on-NIC memory and the DDIO partition.

        The record enters the SW ring like a slow-path entry (ordering is
        preserved) but needs no later DMA read — it becomes host-resident
        as soon as the write lands; the CPU pays a natural LLC miss when it
        reads the buffer.
        """
        record.path = "host"
        self.spilled.add(1)
        self.slow_packets.add(1)
        rx.in_use += 1
        rx.delivered.add(1)
        if self.config.phase_exclusivity:
            entry = state.swring.push_slow(record)
        else:
            entry = state.swring.push_slow_unordered(record)
        # Claim the entry so no drain selects it for an on-NIC DMA read —
        # the payload was never buffered on the NIC.
        entry.fetching = True
        fid = packet.flow.flow_id

        def deliver(now: float) -> None:
            packet.delivered_time = now
            record.deliver_time = now
            entry.resident = True
            entry.fetching = False
            self._notify_ready(fid)

        write = DmaWrite(record.key, packet.size, ddio=False,
                         deliver=deliver, flow_id=fid)
        # Overflow is hard congestion: assert CE on the ACK so senders back
        # off toward whatever rate the spill path sustains.
        self._accept(packet, extra_mark=True)
        yield from self.host.nic.dma.write_to_host(write)
        if write.dropped:
            # The spilled entry can never become host-resident; account the
            # loss to the flow (delivery counters already balanced at
            # admission, so only the flow-visible drop is recorded).
            self.dma_write_drops.add(1)
            rx.dropped.add(1)

    # ------------------------------------------------------------------
    # Host software API
    # ------------------------------------------------------------------
    def rx_burst(self, flow: Flow, max_packets: int) -> List[RxRecord]:
        """Non-blocking poll (the default data path: ``async_recv``)."""
        return self.driver.async_recv(flow, max_packets)

    def _flow_still_ready(self, fid: int) -> bool:
        # Only *poppable* records count: entries awaiting a slow-path fetch
        # re-notify via the buffer manager when the fetch completes.
        state = self.states.get(fid)
        return state is not None and state.swring.ready_count > 0

    def recv_burst(self, flow: Flow, max_packets: int):
        """Process-context receive honouring the async ablation switch."""
        if self.config.async_drain:
            return self.driver.async_recv(flow, max_packets)
            yield  # pragma: no cover - makes this a generator
        return (yield from self._sync_recv(flow, max_packets))

    def _sync_recv(self, flow: Flow, max_packets: int):
        state = self.flow_state(flow.flow_id)
        records = state.swring.pop_ready(max_packets)
        if records or not state.swring.has_nonresident:
            return records
        # Synchronous ablation: the CPU stalls on the PCIe round trip.
        self.driver.sync_fetches.add(1)
        yield from self.driver._drain_once(state)
        return state.swring.pop_ready(max_packets)

    def release(self, records: List[RxRecord]) -> None:
        self.driver.release(records)

    # ------------------------------------------------------------------
    # ARM control loops
    # ------------------------------------------------------------------
    #: Steering-counter entries one ARM control tick can examine. The scan
    #: of the whole flow table therefore takes ``N / SCAN_FLOWS_PER_TICK``
    #: ticks — the bounded control-plane rate that makes CEIO's active-flow
    #: strategy lag behind fast flow churn at thousands of flows (§6.3,
    #: Figure 12).
    SCAN_FLOWS_PER_TICK = 4

    def _control_tick(self) -> None:
        # Flows with data-path activity since the last tick are handled at
        # full rate (their counters sit hot in the ARM cache)...
        # Sorted: inspection order feeds the event calendar, and set order
        # is hash order (D103).
        touched, self._touched = self._touched, set()
        for fid in sorted(touched):
            state = self.states.get(fid)
            if state is not None:
                self._inspect_flow(fid, state)
        # ...but *inactive* flows are only discovered — in either direction
        # — by the rotating full-table scan, which covers a bounded number
        # of steering entries per tick.
        fids = list(self.states)
        if not fids:
            return
        for _ in range(self.SCAN_FLOWS_PER_TICK):
            self._inactive_scan_pos = (self._inactive_scan_pos + 1) % len(fids)
            fid = fids[self._inactive_scan_pos]
            self._scan_flow(fid, self.states[fid])

    def _inspect_flow(self, fid: int, state: CeioFlowState) -> None:
        """Data-path-driven control: degrade/upgrade/CCA for active flows."""
        now = self.sim.now
        cfg = self.config
        rule = self.steering.get(fid)
        if rule is None or state.inactive:
            return  # reactivation is the scan's job (bounded-rate)
        if rule.action is SteeringAction.FAST_PATH:
            if self.credits.credits_exhausted(fid):
                self._degrade(fid, state)
        else:
            state.cca_marking = self.buffer_manager.overloaded(fid)
            drained_clean = (not state.swring.has_nonresident
                             and self.buffer_manager.slow_bytes(fid) == 0)
            if drained_clean:
                # No longer behaving like a bypass flow: stop donating.
                self.credits.set_donating(fid, False)
            elif (cfg.credit_reallocation
                    and state.degraded_since is not None
                    and now - state.degraded_since
                    > cfg.donation_threshold):
                self.credits.set_donating(fid, True)
            self._maybe_upgrade(fid, state)

    def _scan_flow(self, fid: int, state: CeioFlowState) -> None:
        """Full-table scan entry: inactivity reclamation and reactivation."""
        now = self.sim.now
        cfg = self.config
        rule = self.steering.get(fid)
        if rule is None:
            return
        self._watchdog_check(fid, state, rule, now)
        idle = now - rule.last_hit_time
        if state.inactive:
            if idle < cfg.inactive_timeout:
                # Traffic resumed since the scan last looked: give the flow
                # an active-set share back and let it upgrade.
                state.inactive = False
                self.credits.grant_share(fid, now,
                                         target=self._active_share())
                self._maybe_upgrade(fid, state)
        elif idle > cfg.inactive_timeout:
            state.inactive = True
            self.credits.reclaim(fid)
            # An inactive flow holds no credits: traffic that resumes
            # before the scan reactivates it belongs on the slow path.
            if (rule.action is SteeringAction.FAST_PATH
                    and self.credits.credits_exhausted(fid)):
                self._degrade(fid, state)

    def _watchdog_check(self, fid, state: CeioFlowState, rule,
                        now: float) -> None:
        """Graceful-degradation watchdogs (repro.faults), piggybacked on
        the rotating ARM scan so they cost nothing extra per tick.

        Two independent recoveries:

        - **stuck-slot release**: a phase-exclusivity barrier whose
          fast-path deliveries make no progress for ``swring_stuck_timeout``
          is waiting on DMA writes that were lost; forgive the holes so
          held-back slow entries (and their deferred ACKs) flow again.
        - **credit-loss reclamation**: a flow that keeps receiving packets
          (recent steering hits) while its credit account shows no
          consume/release activity for ``credit_watchdog_timeout`` has had
          its in-flight credits orphaned by lost writes; reclaim them, with
          capped exponential backoff in case the writes were merely slow.

        Both are demand-gated on recent steering hits, so flows that simply
        stopped sending (experiment churn) keep the seeded no-fault
        behaviour bit-identically.
        """
        cfg = self.config
        demand = now - rule.last_hit_time < cfg.credit_watchdog_timeout
        if cfg.swring_stuck_timeout > 0 and state.swring.barrier_unmet():
            progress = state.swring.fast_delivered
            if progress != state.barrier_progress:
                state.barrier_progress = progress
                state.barrier_stuck_since = now
            elif (demand and state.barrier_stuck_since is not None
                    and now - state.barrier_stuck_since
                    > cfg.swring_stuck_timeout):
                released = state.swring.release_barrier_holes()
                self.swring_holes.add(released)
                state.barrier_stuck_since = None
                state.barrier_progress = -1
                self._touched.add(fid)
        else:
            state.barrier_stuck_since = None
            state.barrier_progress = -1
        if not cfg.credit_watchdog or not demand:
            return
        acct = self.credits.accounts.get(fid)
        if acct is None or acct.inflight <= 0:
            return
        timeout = cfg.credit_watchdog_timeout * state.watchdog_backoff
        if now - acct.last_activity > timeout:
            lost = self.credits.reclaim_inflight(fid, now)
            if lost:
                self.credit_reclaimed.add(lost)
                state.watchdog_backoff = min(
                    state.watchdog_backoff * 2.0,
                    cfg.credit_watchdog_backoff_cap)
                self._touched.add(fid)

    def _active_share(self) -> float:
        """Fair share over currently *active* flows (§4.1 Q3: credits of
        inactive flows are recycled for the flows actually sending)."""
        active = sum(1 for st in self.states.values() if not st.inactive)
        return self.credits.total / max(1, active)

    def _degrade(self, fid: int, state: CeioFlowState) -> None:
        self.steering.set_action(fid, SteeringAction.SLOW_PATH)
        state.degraded_since = self.sim.now
        state.swring.set_barrier()
        self.degrades.add(1)

    def pin_slow(self, flow: Flow) -> None:
        """Force a flow onto the slow path ("setting its credit to zero",
        §6.3) — used by the fast-vs-slow-path micro-benchmarks."""
        state = self.states[flow.flow_id]
        state.pinned_slow = True
        self.credits.reclaim(flow.flow_id)
        self._degrade(flow.flow_id, state)

    def unpin(self, flow: Flow) -> None:
        state = self.states[flow.flow_id]
        state.pinned_slow = False
        self.credits.grant_share(flow.flow_id, self.sim.now)
        self._maybe_upgrade(flow.flow_id, state)

    #: A flow may upgrade while this much slow-path data remains: the
    #: residue keeps draining and ordering is preserved (new fast entries
    #: enqueue behind the pending slow entries), but waiting for a *fully*
    #: empty slow ring would postpone the upgrade forever under continuous
    #: arrivals — the drain would chase a moving target.
    UPGRADE_RESIDUE_BYTES = 8 * 1024

    def _maybe_upgrade(self, fid: int, state: CeioFlowState) -> None:
        if self.steering.get(fid) is None:
            return  # flow unregistered (e.g. mid-drain crash teardown)
        if state.pinned_slow:
            return
        if state.inactive:
            # Inactive flows come back only through the bounded-rate scan
            # (or the round-robin timer) — that is the §4.1 Q3 mechanism
            # whose lag Figure 12 measures.
            return
        if self.buffer_manager.slow_bytes(fid) > self.UPGRADE_RESIDUE_BYTES:
            return
        if self.credits.credits_exhausted(fid):
            # A fully drained flow may pull idle credits from the reserve
            # (e.g. its own earlier donations) to become credit-worthy.
            acct = self.credits.account(fid)
            deficit = 1.0 - acct.available
            self.credits.grant_from_reserve(
                fid, min(max(deficit, 0.0) + 4.0, self._active_share()))
            if self.credits.credits_exhausted(fid):
                return
        self.steering.set_action(fid, SteeringAction.FAST_PATH)
        state.degraded_since = None
        state.cca_marking = False
        state.swring.clear_barrier()
        self.credits.set_donating(fid, False)
        self.upgrades.add(1)

    def on_drain_complete(self, state: CeioFlowState) -> None:
        """Called by the driver when a drain leaves the slow ring empty."""
        self._maybe_upgrade(state.flow.flow_id, state)

    def _reactivate_tick(self) -> None:
        """Round-robin backup (§4.1 Q3): give one inactive flow its share
        back per tick so every flow periodically gets fast-path access."""
        if not self._reactivation_cycle:
            self._reactivation_cycle = [fid for fid, st in self.states.items()
                                        if st.inactive]
        while self._reactivation_cycle:
            fid = self._reactivation_cycle.pop()
            state = self.states.get(fid)
            if state is None or not state.inactive:
                continue
            state.inactive = False
            self.credits.grant_share(fid, self.sim.now,
                                     target=self._active_share())
            self._maybe_upgrade(fid, state)
            break

    # ------------------------------------------------------------------
    # Introspection for experiments
    # ------------------------------------------------------------------
    def fast_fraction(self) -> float:
        total = self.fast_packets.value + self.slow_packets.value
        return self.fast_packets.value / total if total else 0.0

    # ------------------------------------------------------------------
    # Conservation auditing (repro.audit)
    # ------------------------------------------------------------------
    def audit_register(self, ledger) -> None:
        """CEIO replaces the base delivery/ring equations (the SW ring is
        the application-facing structure) and adds credit, elastic-buffer
        and phase-barrier conservation."""
        rxs = self._all_rx
        states = self._all_states
        credits = self.credits
        bm = self.buffer_manager

        delivery = ledger.account("arch.delivery", "packets",
                                  barrier_safe=True)
        delivery.debit("accepted", self.rx_accepted)
        delivery.credit("delivered",
                        lambda: sum(rx.delivered.value for rx in rxs.values()))
        delivery.credit("inflight", (self, "delivery_inflight"))
        delivery.credit("fast_write_drops", (self, "fast_write_drops"))

        rings = ledger.account("arch.app_rings", "packets", barrier_safe=True)
        rings.debit("delivered",
                    lambda: sum(rx.delivered.value for rx in rxs.values()))
        rings.credit("popped",
                     lambda: sum(st.swring.popped for st in states.values()))
        rings.credit("ring_occupancy",
                     lambda: sum(len(st.swring) for st in states.values()))

        desc = ledger.account("arch.descriptors", "descriptors",
                              barrier_safe=True)
        desc.debit("accepted", self.rx_accepted)
        desc.credit("released", self.released_records)
        desc.credit("in_use", lambda: sum(rx.in_use for rx in rxs.values()))

        barrier = ledger.account("ceio.fast_barrier", "packets",
                                 barrier_safe=True, bounded=True)
        barrier.debit("issued_minus_delivered",
                      lambda: sum(st.swring.fast_issued
                                  - st.swring.fast_delivered
                                  for st in states.values()))
        barrier.slack("inflight", (self, "delivery_inflight"))
        barrier.slack("fast_write_drops", (self, "fast_write_drops"))

        pool = ledger.account("ceio.credit_pool", "credits",
                              tolerance=1e-6, barrier_safe=True)
        pool.debit("audit", credits.audit)
        pool.credit("total", (credits, "total"))

        flux = ledger.account("ceio.credit_flux", "credits",
                              tolerance=1e-6, barrier_safe=True)
        flux.debit("consumed", (credits, "consumed_total"))
        flux.credit("released", (credits, "released_total"))
        flux.credit("reclaimed", (credits, "reclaimed_total"))
        flux.credit("inflight",
                    lambda: sum(a.inflight
                                for a in credits.accounts.values())
                    + credits._departed_inflight)

        elastic = ledger.account("ceio.elastic_entries", "packets",
                                 barrier_safe=True)
        elastic.debit("buffered", bm.buffered_packets)
        elastic.credit("removed", (bm, "audit_removed"))
        elastic.credit("forgotten", (bm, "forgotten_entries"))
        elastic.credit("occupancy",
                       lambda: sum(len(b.entries)
                                   for b in bm.buffers.values()))

        self._register_admission_account(ledger)


# Register with the architecture registry (done here rather than in
# repro.io_arch to avoid a circular import).
from ..io_arch import ARCHITECTURES as _ARCHITECTURES  # noqa: E402

_ARCHITECTURES["ceio"] = CeioArchitecture
