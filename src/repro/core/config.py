"""CEIO tunables and ablation switches (§4, §6.3 Table 4)."""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.units import MS, US

__all__ = ["CeioConfig"]


@dataclass
class CeioConfig:
    """Knobs of the CEIO runtime. Defaults are the paper's full design;
    the ``enable_*`` switches produce the "CEIO w/o optimization" ablations
    of Table 4."""

    #: Lazy credit release (§4.1): replenish only at message boundaries /
    #: release batches. Off = eager per-packet release.
    lazy_release: bool = True
    #: Number of released buffers that forces replenishment even without a
    #: message boundary (bounds credit latency for huge messages).
    release_batch: int = 64
    #: Active-flow credit reallocation (§4.1 Q3): donate credits of flows
    #: stuck in the slow path to fast-path flows.
    credit_reallocation: bool = True
    #: Asynchronous slow-path DMA reads (§4.2). Off = synchronous fetch.
    async_drain: bool = True
    #: Phase exclusivity (§4.2): drain the slow ring fully before the flow's
    #: fast path resumes. Off permits interleaving (breaks ordering).
    phase_exclusivity: bool = True
    #: Packets fetched per slow-path DMA read batch (CPU-involved flows:
    #: small batches keep the queueing delay in check).
    drain_batch: int = 32
    #: Byte budget per DMA read batch for CPU-bypass flows: large
    #: scatter-gather reads amortise the PCIe round trip, which is what
    #: closes the fast/slow gap beyond 4 KB messages (Figure 11).
    drain_batch_bytes: int = 64 * 1024
    #: Host-resident prefetch window per flow: the drain keeps at most this
    #: many fetched-but-unprocessed packets ahead of the application. Deep
    #: enough to hide the PCIe read round-trip, shallow enough that drained
    #: data never pressures the DDIO partition ahead of consumption.
    drain_prefetch: int = 64
    #: ns a flow must sit degraded before its released credits are donated.
    donation_threshold: float = 100 * US
    #: Idle time after which a flow is considered inactive (§4.1: "a simple
    #: timer ... e.g., 1 second" — scaled to simulation horizons).
    inactive_timeout: float = 1 * MS
    #: Period of the round-robin re-activation timer (§4.1 Q3 backup).
    reactivation_period: float = 50 * US
    #: RED-style slow-path guard (§4.1 Q2: "CCA is triggered when NIC cores
    #: detect that the network's production rate exceeds the consumption
    #: rate ... in the slow path"): ECN marking probability ramps linearly
    #: from 0 at ``cca_mark_min_bytes`` of per-flow slow-path backlog to 1
    #: at ``cca_mark_max_bytes``. Keeps the standing queue (and thus tail
    #: latency) small without ShRing-style collapse.
    cca_mark_min_bytes: int = 4 * 1024
    cca_mark_max_bytes: int = 32 * 1024
    #: Guard thresholds for CPU-bypass flows: throughput-oriented traffic
    #: is allowed a much deeper elastic backlog (the 16 GB on-NIC memory
    #: exists precisely to absorb it) before the CCA is triggered.
    cca_mark_min_bytes_bypass: int = 256 * 1024
    cca_mark_max_bytes_bypass: int = 2 * 1024 * 1024
    #: Bypass flows whose messages are smaller than this are treated as
    #: latency-class (shallow guard band): small-message RDMA traffic is
    #: request/response-like, not bulk transfer. §6.3's note that "users
    #: may need to adjust time-sensitive thresholds" applies here.
    latency_class_message_bytes: int = 4096
    #: Added per-packet latency of the fast path (RMT match + credit check
    #: on the NIC pipeline). Pipelined: costs latency, not throughput —
    #: Table 3 measures 1.10-1.48x over raw RDMA write, Figure 11 shows no
    #: bandwidth loss.
    fast_path_overhead_ns: float = 180.0
    #: Credit-loss watchdog: reclaim a flow's in-flight credits when the
    #: flow shows demand but its credit account has been idle past the
    #: timeout (DMA writes that consumed credits were silently lost — no
    #: delivery will ever release them). Off = the pre-faults behaviour:
    #: lost credits deadlock the flow forever.
    credit_watchdog: bool = True
    #: Idle time (no consume/release activity while packets keep arriving)
    #: before in-flight credits are presumed lost and reclaimed.
    credit_watchdog_timeout: float = 150 * US
    #: Cap for the exponential backoff multiplier applied to the watchdog
    #: timeout after each reclamation (guards against reclaiming credits
    #: that were merely delayed, e.g. by a long PCIe stall).
    credit_watchdog_backoff_cap: float = 8.0
    #: SW-ring stuck-slot timeout: a phase-exclusivity barrier whose
    #: fast-path deliveries stop making progress for this long is released
    #: (the missing packets' descriptors were dropped; the ordering holes
    #: they left would otherwise wedge the slow path forever). 0 disables.
    swring_stuck_timeout: float = 150 * US
    #: Elastic-buffer overflow fallback: when on-NIC memory is exhausted,
    #: spill the packet to host DRAM (cache-bypassing DMA write) instead
    #: of dropping it. Off = drop on overflow.
    spill_to_dram: bool = True
    #: Overload guardrail (open-loop demand): shed packets at admission
    #: when the flow's SW ring or elastic backlog exceeds the limits below.
    #: A shed packet is ACKed unmarked (the transport completes the
    #: message; the *application* observes the loss), so shedding caps
    #: NIC/host queueing instead of translating overload into unbounded
    #: standing queues. Off = the paper's closed-loop default.
    admission_control: bool = False
    #: SW-ring depth (delivered-but-unpopped records) above which new
    #: packets of the flow are shed.
    admission_ring_limit: int = 256
    #: Elastic-buffer backlog bytes above which new packets are shed
    #: (bounds slow-path sojourn — and thus tail latency — under overload).
    admission_slow_bytes_limit: int = 96 * 1024
