"""The host-side CEIO driver (§5): ``recv`` / ``async_recv`` / ``post_recv``.

The driver is what applications (or the DPDK/RDMA shims) link against. It
polls the per-flow SW ring, initiates slow-path DMA reads, and performs
**lazy credit release**: credits consumed by fast-path buffers are
replenished only once the application has processed a *batch of messages*
(§4.1) — per-packet releases are the ablation mode.
"""

from __future__ import annotations

from typing import Dict, List

from ..net.packet import Flow
from ..sim import Interrupt
from ..sim.stats import Counter

__all__ = ["CeioDriver"]


class CeioDriver:
    def __init__(self, runtime):
        self.runtime = runtime
        self.sim = runtime.sim
        self.config = runtime.config
        #: flow_id -> fast-path buffers released but not yet credited.
        self._release_accum: Dict[int, int] = {}
        self.sync_fetches = Counter("ceio.sync_fetches")
        self.async_fetches = Counter("ceio.async_fetches")

    # ------------------------------------------------------------------
    # Receive APIs
    # ------------------------------------------------------------------
    def async_recv(self, flow: Flow, max_packets: int) -> List:
        """Non-blocking receive: return host-resident records immediately
        and kick off DMA reads for slow-path entries in the background, so
        the application overlaps fetches with processing (§4.2)."""
        state = self.runtime.flow_state(flow.flow_id)
        records = state.swring.pop_ready(max_packets)
        if state.swring.has_nonresident:
            self._start_drain(state, background=True)
        return records

    def recv(self, flow: Flow, max_packets: int):
        """Process (blocking receive): wait until at least one record is
        available, fetching slow-path entries synchronously if needed."""
        state = self.runtime.flow_state(flow.flow_id)
        while True:
            records = state.swring.pop_ready(max_packets)
            if records:
                return records
            if state.swring.has_nonresident:
                self.sync_fetches.add(1)
                yield from self._drain_once(state)
                continue
            # Nothing delivered yet: poll.
            yield self.runtime.poll_interval

    def post_recv(self, flow: Flow, buffers: int) -> None:
        """Zero-copy support: the application donates ``buffers`` receive
        buffers, growing the flow's descriptor budget."""
        rx = self.runtime.flows[flow.flow_id]
        rx.ring_entries += buffers

    # ------------------------------------------------------------------
    # Release + lazy credit replenishment
    # ------------------------------------------------------------------
    def release(self, records: List) -> None:
        """Application finished these buffers. Fast-path buffers replenish
        credits lazily: at message boundaries or every ``release_batch``."""
        runtime = self.runtime
        boundary_flows = set()
        for record in records:
            fid = record.flow.flow_id
            # Retained index: releases arriving after a crash teardown
            # still balance the descriptor ledger (repro.audit).
            rx = runtime._all_rx.get(fid)
            if rx is not None:
                rx.in_use -= 1
                runtime.released_records.add(1)
            runtime.host.llc.release(record.key)
            if record.path != "fast":
                continue  # slow-path buffers never held credits
            self._release_accum[fid] = self._release_accum.get(fid, 0) + 1
            if not self.config.lazy_release:
                boundary_flows.add(fid)
            elif (record.packet.last_in_message
                  or self._release_accum[fid] >= self.config.release_batch):
                boundary_flows.add(fid)
        # Sorted: replenish order reaches the credit controller and the
        # upgrade path, and set order is hash order (D103).
        for fid in sorted(boundary_flows):
            self._replenish(fid)

    def _replenish(self, fid: int) -> None:
        count = self._release_accum.pop(fid, 0)
        if count:
            self.runtime.credits.release(fid, count, self.sim.now)
            # A genuine release proves the release path works again: let
            # the credit watchdog re-arm at its base timeout.
            state = self.runtime.states.get(fid)
            if state is not None:
                state.watchdog_backoff = 1.0
            # Replenishment may make the flow upgrade-eligible.
            self.runtime._touched.add(fid)

    # ------------------------------------------------------------------
    # Slow-path drains
    # ------------------------------------------------------------------
    def _start_drain(self, state, background: bool) -> None:
        if state.draining:
            return
        state.draining = True
        self.async_fetches.add(1)

        batch = self._batch_size(state.flow)
        prefetch = max(self.config.drain_prefetch, 3 * batch)
        manager = self.runtime.buffer_manager
        flow_id = state.flow.flow_id

        def drain(sim):
            # Up to two batch reads in flight: the PCIe round trip of one
            # overlaps the wire serialisation of the next (this pipelining
            # is what keeps the slow-path gap small for >=4 KB messages).
            outstanding = []
            try:
                while state.swring.has_nonresident or outstanding:
                    outstanding = [p for p in outstanding if not p.triggered]
                    # Demand-driven prefetch: never run more than a window
                    # ahead of the application, or drained data would evict
                    # unread fast-path buffers from the DDIO partition.
                    if (state.swring.ready_count < prefetch
                            and len(outstanding) < 2):
                        entries = state.swring.nonresident_head(batch)
                        if entries:
                            # Claim synchronously: the spawned process only
                            # starts on the next tick, and an unclaimed
                            # entry must not be selected twice.
                            for entry in entries:
                                entry.fetching = True
                            outstanding.append(sim.process(
                                manager.drain_batch(flow_id, entries),
                                name="drain-batch"))
                            continue
                    if outstanding:
                        yield sim.any_of(outstanding)
                    else:
                        yield self.runtime.poll_interval
            except Interrupt:
                pass  # flow unregistered mid-drain (crash teardown)
            finally:
                state.draining = False
                self.runtime.on_drain_complete(state)

        state.drain_proc = self.sim.process(
            drain(self.sim), name=f"drain-f{state.flow.flow_id}")

    def _batch_size(self, flow: Flow) -> int:
        """Packets per DMA-read batch: latency-sized for CPU-involved
        flows, byte-budget-sized for bypass flows (amortises the PCIe
        round trip over large scatter-gather reads). Capped in bytes so a
        single read never exceeds the PCIe burst window."""
        frame = flow.message_payload + 42
        cap = max(1, (96 * 1024) // frame)
        if flow.is_cpu_involved:
            return max(1, min(self.config.drain_batch, cap))
        want = max(self.config.drain_batch,
                   self.config.drain_batch_bytes // frame)
        return max(1, min(want, cap))

    def _drain_once(self, state):
        """Synchronous single-batch drain (blocking ``recv`` and the
        async-off ablation)."""
        entries = state.swring.nonresident_head(
            self._batch_size(state.flow))
        if not entries:
            yield self.runtime.poll_interval
            return
        yield from self.runtime.buffer_manager.drain_batch(
            state.flow.flow_id, entries)
        if not state.swring.has_nonresident:
            self.runtime.on_drain_complete(state)
