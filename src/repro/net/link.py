"""Point-to-point link and ECN-marking switch port.

The testbed fabric is client NIC -> switch -> server NIC at 200 Gbps. The
switch egress port toward the server is the only contended queue; it does
standard DCTCP-style ECN marking (mark when the instantaneous queue exceeds
K) and tail-drops when its buffer is full.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim import Simulator, Store
from ..sim.stats import Counter, TimeWeightedGauge

__all__ = ["Link", "SwitchPort"]


def _trace_drop(tracer, link_name: str, kind: str, packet) -> None:
    """Attribute a dropped packet to its cause ("tail" for buffer
    overflow, else the injecting fault's kind) so chaos experiments and
    ``Tracer.dump()`` can tell congestion loss from injected loss."""
    if tracer is not None:
        tracer.emit("link.drop", link=link_name, kind=kind,
                    flow=packet.flow.flow_id, seq=packet.seq)


class Link:
    """FIFO serialising link: rate (bytes/ns) plus propagation delay."""

    def __init__(self, sim: Simulator, rate: float, propagation: float,
                 deliver: Optional[Callable] = None, name: str = "link"):
        if rate <= 0:
            raise ValueError("link rate must be positive")
        self.sim = sim
        self.rate = rate
        self.propagation = propagation
        self.deliver = deliver
        self.name = name
        self._queue = Store(sim, name=f"{name}.q")
        self.tx_packets = Counter(f"{name}.tx")
        self.tx_bytes = Counter(f"{name}.tx_bytes")
        # Fault seam (repro.faults net.link): callable(packet) -> drop-kind
        # string or None; installed only while a fault window is open.
        self.fault = None
        self.fault_dropped = Counter(f"{name}.fault_dropped")
        #: Optional Tracer; every drop emits a "link.drop" event through it.
        self.tracer = None
        self._egress_proc = sim.process(self._egress(), name=f"{name}-egress")

    def send(self, packet) -> None:
        """Enqueue a packet for transmission (non-blocking, unbounded —
        upstream senders are window-limited)."""
        if self.fault is not None:
            kind = self.fault(packet)
            if kind is not None:
                self.fault_dropped.add(1)
                _trace_drop(self.tracer, self.name, kind, packet)
                return
        self._queue.try_put(packet)

    def _egress(self):
        while True:
            packet = yield self._queue.get()
            yield packet.size / self.rate
            self.tx_packets.add(1)
            self.tx_bytes.add(packet.size)
            if self.deliver is not None:
                # Propagation does not occupy the link: schedule delivery
                # (allocation-free; the packet rides as the callable's arg).
                self.sim.call_later(self.propagation, self.deliver, packet)


class SwitchPort:
    """Shared egress queue with ECN marking and tail drop.

    ``ecn_threshold`` is DCTCP's K in bytes; packets enqueued while the
    queue exceeds K are CE-marked. The buffer is finite: overflowing
    packets are dropped (the sender discovers this via duplicate ACKs or
    retransmission timeout).
    """

    def __init__(self, sim: Simulator, rate: float, propagation: float,
                 deliver: Callable, buffer_bytes: int = 1_000_000,
                 ecn_threshold: int = 200_000, name: str = "swport"):
        self.sim = sim
        self.rate = rate
        self.propagation = propagation
        self.deliver = deliver
        self.buffer_bytes = buffer_bytes
        self.ecn_threshold = ecn_threshold
        self.name = name
        self._queue = Store(sim, name=f"{name}.q")
        self._queued_bytes = 0
        self.queue_gauge = TimeWeightedGauge(f"{name}.queue")
        self.rx_offered = Counter(f"{name}.rx_offered")
        self.tx_packets = Counter(f"{name}.tx")
        self.marked_packets = Counter(f"{name}.marked")
        self.dropped_packets = Counter(f"{name}.dropped")
        # Conservation occupancy (repro.audit): packets queued or in
        # serialisation, and packets on the wire (tx'd, not yet delivered).
        self.queued_packets = 0
        self.wire_inflight = 0
        # Bind once so per-packet scheduling loads an instance attribute
        # instead of allocating a bound method.
        self._wire_arrive = self._wire_arrive  # type: ignore[misc]
        #: How a transmitted packet gets onto the wire. The default
        #: schedules local arrival; repro.shard replaces it on boundary
        #: (cut-link) egresses with a channel emitter that consumes the
        #: same one sequence number and ships the packet cross-shard.
        self._wire_send = self._wire_schedule
        # Fault seam + drop tracing, as on Link.
        self.fault = None
        self.fault_dropped = Counter(f"{name}.fault_dropped")
        self.tracer = None
        self._egress_proc = sim.process(self._egress(), name=f"{name}-egress")

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    def send(self, packet) -> None:
        self.rx_offered.add(1)
        if self.fault is not None:
            kind = self.fault(packet)
            if kind is not None:
                self.fault_dropped.add(1)
                _trace_drop(self.tracer, self.name, kind, packet)
                return
        if self._queued_bytes + packet.size > self.buffer_bytes:
            self.dropped_packets.add(1)
            _trace_drop(self.tracer, self.name, "tail", packet)
            return
        if self._queued_bytes > self.ecn_threshold:
            packet.ecn_marked = True
            self.marked_packets.add(1)
        self._queued_bytes += packet.size
        self.queued_packets += 1
        self.queue_gauge.update(self.sim.now, self._queued_bytes)
        self._queue.try_put(packet)

    def _egress(self):
        while True:
            packet = yield self._queue.get()
            yield packet.size / self.rate
            self._queued_bytes -= packet.size
            self.queued_packets -= 1
            self.queue_gauge.update(self.sim.now, self._queued_bytes)
            self.tx_packets.add(1)
            self.wire_inflight += 1
            self._wire_send(packet)

    def _wire_schedule(self, packet) -> None:
        self.sim.call_later(self.propagation, self._wire_arrive, packet)

    def _wire_arrive(self, packet) -> None:
        self.wire_inflight -= 1
        self.deliver(packet)

    def _wire_depart(self, packet) -> None:
        """Local half of a boundary-link arrival: the in-flight count
        drops here while the delivery executes in the peer shard under
        the same calendar key (the two halves touch disjoint state)."""
        self.wire_inflight -= 1
