"""Two-server testbed wiring: senders -> switch -> receiver NIC, plus ACKs.

The paper's testbed is two directly-attached 200 Gbps servers through a
ToR. The forward path (client data toward the server under test) is the
contended one; the reverse path carries only ACKs and small responses and
is modelled as a fixed delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..hw import Host, HostConfig
from ..sim import RngRegistry, Simulator
from ..sim.units import US, gbps
from .dctcp import DctcpConfig, DctcpSender
from .link import SwitchPort
from .packet import Flow, Packet

__all__ = ["FabricConfig", "Testbed"]


@dataclass
class FabricConfig:
    #: Forward-path bandwidth, bytes/ns (200 Gbps).
    rate: float = gbps(200)
    #: One-way propagation+switching delay, ns (two directly-attached
    #: servers through one ToR; calibrated against perftest's ~1.5 µs RTT).
    one_way_delay: float = 0.6 * US
    #: Switch egress buffer, bytes.
    switch_buffer: int = 2_000_000
    #: DCTCP marking threshold K, bytes.
    ecn_threshold: int = 300_000
    #: Reverse (ACK) path delay, ns. ``None`` keeps the historical
    #: symmetric path (ACKs take ``one_way_delay``) bit for bit; set it
    #: to model an asymmetric reverse path. Multi-link topologies
    #: (:mod:`repro.topo`) carry this per link instead.
    ack_delay: Optional[float] = None

    @property
    def reverse_delay(self) -> float:
        """The effective ACK-path delay."""
        return (self.one_way_delay if self.ack_delay is None
                else self.ack_delay)


class Testbed:
    """Owns the simulator, the receiver host, the fabric, and the senders."""

    def __init__(self, host_config: Optional[HostConfig] = None,
                 fabric_config: Optional[FabricConfig] = None,
                 dctcp_config: Optional[DctcpConfig] = None,
                 seed: int = 0):
        self.sim = Simulator()
        self.rng = RngRegistry(seed)
        self.host = Host(self.sim, host_config, rng=self.rng)
        self.fabric_config = fabric_config or FabricConfig()
        self.dctcp_config = dctcp_config or DctcpConfig()
        self.port = SwitchPort(
            self.sim,
            rate=self.fabric_config.rate,
            propagation=self.fabric_config.one_way_delay,
            deliver=self._deliver,
            buffer_bytes=self.fabric_config.switch_buffer,
            ecn_threshold=self.fabric_config.ecn_threshold,
            name="tor",
        )
        self.senders: Dict[int, DctcpSender] = {}
        self.flows: List[Flow] = []
        self.io_arch = None
        #: The currently open MeasurementWindow, if any. Maintained by
        #: :class:`repro.workloads.measure.MeasurementWindow` so late
        #: flow registration can be caught (see :meth:`add_flow`).
        self.active_window = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def install_io_arch(self, io_arch) -> None:
        """Attach the receive-side I/O architecture to the host NIC."""
        self.io_arch = io_arch
        io_arch.ack = self.ack
        self.host.nic.install_handler(io_arch)

    def add_flow(self, flow: Flow, late_ok: bool = False) -> DctcpSender:
        """Create the sender-side transport for ``flow`` and register it
        with the installed I/O architecture.

        Adding a flow while a :class:`MeasurementWindow` is open is an
        error unless ``late_ok`` is set: the open window snapshotted its
        counters at warm-up end, so a silently added flow would be
        excluded from metrics (``finish()`` skips unmarked flows) even
        though its packets land in every conservation account. Callers
        that legitimately register mid-window (the §5 crash/restart
        re-registration path) pass ``late_ok=True``; the flow is then
        reported from its registration point onward.
        """
        if self.io_arch is None:
            raise RuntimeError("install_io_arch() before add_flow()")
        window = self.active_window
        if window is not None and not late_ok:
            raise RuntimeError(
                f"add_flow({flow.name!r}) after measurement started at "
                f"t={window.t_start:g} ns: the open MeasurementWindow "
                "would silently exclude this flow from its metrics. Add "
                "flows before the window opens, or pass late_ok=True — "
                "the flow is then announced to the window via "
                "note_new_flow() and measured from registration onward.")
        sender = DctcpSender(self.sim, flow, self.port.send,
                             self.dctcp_config)
        self.senders[flow.flow_id] = sender
        self.flows.append(flow)
        self.io_arch.register_flow(flow)
        if window is not None:
            window.note_new_flow(flow)
        return sender

    # ------------------------------------------------------------------
    # Data / ACK paths
    # ------------------------------------------------------------------
    def _deliver(self, packet: Packet) -> None:
        packet.arrival_time = self.sim.now
        self.host.nic.receive(packet)

    def ack(self, packet: Packet, extra_mark: bool = False) -> None:
        """ACK an accepted packet back to its sender after the reverse path.

        ``extra_mark`` lets host-side controllers (HostCC, ShRing's ring
        guard, CEIO's slow-path guard) assert congestion on top of any CE
        mark the switch applied.
        """
        sender = self.senders.get(packet.flow.flow_id)
        if sender is None:
            return
        marked = packet.ecn_marked or extra_mark
        self.sim.call_later(self.fabric_config.reverse_delay,
                            sender.on_ack, packet.seq, marked)

    def run(self, until: float) -> None:
        self.sim.run(until=until)
