"""Traffic sources driving DCTCP senders.

Sources model the client side of the testbed: client threads that keep the
server saturated (closed loop) or offer load at a given rate (open loop).
Both support ``start``/``stop`` so scenario scripts (§2.3's dynamic flow
distribution and network burst) can swap flows at runtime.
"""

from __future__ import annotations

from ..sim import Interrupt, Simulator
from ..sim.stats import Counter
from .dctcp import DctcpSender
from .packet import Flow

__all__ = ["SaturatingSource", "OpenLoopSource"]


class SaturatingSource:
    """Closed-loop: keeps ``outstanding`` messages in flight per flow.

    A new message is submitted the moment one completes (all packets
    ACKed), which keeps the sender window-limited — the behaviour of a
    saturating benchmark client (dperf / perftest / eRPC load generator).
    """

    def __init__(self, sim: Simulator, sender: DctcpSender,
                 outstanding: int = 8):
        self.sim = sim
        self.sender = sender
        self.outstanding = outstanding
        self.messages_completed = Counter(
            f"{sender.flow.name}.messages")
        self._running = False
        self._loops = []

    @property
    def flow(self) -> Flow:
        return self.sender.flow

    def start(self, delay: float = 0.0) -> None:
        """Begin issuing messages, optionally after ``delay`` ns.

        Real benchmark client threads do not start in lockstep; scenario
        builders stagger their sources to avoid artificial synchronised
        slow-start bursts.
        """
        if self._running:
            return
        self._running = True
        for i in range(self.outstanding):
            self._loops.append(
                self.sim.process(self._loop(delay), name="sat-src"))

    def stop(self) -> None:
        self._running = False

    def _loop(self, delay: float = 0.0):
        if delay > 0:
            yield delay
        while self._running:
            done = self.sender.submit_message(self.flow.make_message())
            yield done
            self.messages_completed.add(1)


class OpenLoopSource:
    """Open-loop: submits messages at exponential (Poisson) intervals."""

    def __init__(self, sim: Simulator, sender: DctcpSender,
                 rate_msgs_per_ns: float, rng,
                 jitter: bool = True):
        if rate_msgs_per_ns <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.sender = sender
        self.rate = rate_msgs_per_ns
        self.rng = rng
        self.jitter = jitter
        self.messages_submitted = Counter(
            f"{sender.flow.name}.submitted")
        self._running = False
        self._proc = None

    @property
    def flow(self) -> Flow:
        return self.sender.flow

    def start(self, delay: float = 0.0) -> None:
        if self._running:
            return
        self._running = True
        self._proc = self.sim.process(self._loop(delay), name="openloop-src")

    def stop(self) -> None:
        self._running = False
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")

    def _interval(self) -> float:
        mean = 1.0 / self.rate
        if not self.jitter:
            return mean
        return self.rng.expovariate(self.rate)

    def _loop(self, delay: float = 0.0):
        try:
            if delay > 0:
                yield delay
            while self._running:
                yield self._interval()
                if not self._running:
                    return
                self.sender.submit_message(self.flow.make_message())
                self.messages_submitted.add(1)
        except Interrupt:
            return
