"""Packets, messages, and flow descriptions.

Terminology follows §2.1: *CPU-involved flows* are consumed by application
code on host cores (RPCs); *CPU-bypass flows* are RDMA-style transfers whose
payload goes to DRAM without per-packet CPU processing (the NIC signals
completion per message batch, e.g. via Write-with-immediate).
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional

__all__ = ["FlowKind", "Packet", "Message", "Flow",
           "ETHERNET_OVERHEAD", "MTU"]

#: Ethernet + IP + UDP/RoCE framing bytes added to every payload.
ETHERNET_OVERHEAD = 42
MTU = 1500

_flow_ids = itertools.count(1)


class FlowKind(enum.Enum):
    CPU_INVOLVED = "cpu-involved"
    CPU_BYPASS = "cpu-bypass"


class Packet:
    """One wire packet. ``size`` is the full frame; payload lands in one
    I/O buffer at the receiver."""

    __slots__ = ("flow", "seq", "size", "payload", "message_id",
                 "last_in_message", "ecn_marked", "send_time",
                 "first_send_time", "submit_time", "arrival_time",
                 "delivered_time", "retransmitted")

    def __init__(self, flow: "Flow", seq: int, payload: int,
                 message_id: int = 0, last_in_message: bool = False):
        self.flow = flow
        self.seq = seq
        self.payload = payload
        self.size = payload + ETHERNET_OVERHEAD
        self.message_id = message_id
        self.last_in_message = last_in_message
        self.ecn_marked = False
        self.send_time: float = 0.0        # last (re)transmission
        self.first_send_time: float = -1.0  # original transmission
        #: When the application submitted the owning message (-1 until
        #: stamped by :meth:`Message.packets`). Open-loop latency is
        #: measured from here so sender-side queueing under overload is
        #: not coordinated-omission'd away.
        self.submit_time: float = -1.0
        self.arrival_time: float = 0.0     # at the receiver NIC MAC
        self.delivered_time: float = 0.0   # visible to host software
        self.retransmitted = False

    def clone(self) -> "Packet":
        """A field-wise copy sharing the :class:`Flow` reference.

        Retransmission clones the packet instead of mutating the copy
        that may still be traversing the network: once a packet leaves
        the sender it is immutable from the sender's side, which is what
        lets sharded runs snapshot boundary-crossing packets by value
        and still match the single-kernel run byte for byte.
        """
        twin = Packet(self.flow, self.seq, self.payload,
                      message_id=self.message_id,
                      last_in_message=self.last_in_message)
        twin.ecn_marked = self.ecn_marked
        twin.send_time = self.send_time
        twin.first_send_time = self.first_send_time
        twin.submit_time = self.submit_time
        twin.arrival_time = self.arrival_time
        twin.delivered_time = self.delivered_time
        twin.retransmitted = self.retransmitted
        return twin

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Packet f{self.flow.flow_id} seq={self.seq} "
                f"{self.payload}B msg={self.message_id}>")


class Message:
    """An application message: ``count`` packets of ``payload`` bytes each.

    The last packet carries ``last_in_message`` (the Write-with-immediate /
    final-fragment marker the CEIO driver keys lazy credit release on).
    """

    _ids = itertools.count(1)

    __slots__ = ("message_id", "payload", "count", "submit_time",
                 "complete_time")

    def __init__(self, payload: int, count: int = 1):
        if payload <= 0 or count <= 0:
            raise ValueError("message needs positive payload and count")
        self.message_id = next(Message._ids)
        self.payload = payload
        self.count = count
        self.submit_time: float = 0.0
        self.complete_time: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.payload * self.count

    def packets(self, flow: "Flow", seq_start: int) -> List[Packet]:
        out = []
        for i in range(self.count):
            packet = Packet(flow, seq_start + i, self.payload,
                            message_id=self.message_id,
                            last_in_message=(i == self.count - 1))
            # Senders stamp submit_time before building packets
            # (DctcpSender.submit_message), so sojourn-from-submission
            # latency is measurable per packet.
            packet.submit_time = self.submit_time
            out.append(packet)
        return out


class Flow:
    """A network flow between a client thread and a receiver queue."""

    def __init__(self, kind: FlowKind, name: str = "",
                 message_payload: int = 1024, packets_per_message: int = 1,
                 flow_id: Optional[int] = None):
        self.flow_id = next(_flow_ids) if flow_id is None else flow_id
        self.kind = kind
        self.name = name or f"flow{self.flow_id}"
        self.message_payload = message_payload
        self.packets_per_message = packets_per_message
        #: Attached transport sender (set by the fabric when wired up).
        self.sender = None
        #: Receiver-side state handle (set by the I/O architecture).
        self.rx = None

    @property
    def is_cpu_involved(self) -> bool:
        return self.kind is FlowKind.CPU_INVOLVED

    def make_message(self) -> Message:
        return Message(self.message_payload, self.packets_per_message)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Flow {self.name} {self.kind.value}>"
