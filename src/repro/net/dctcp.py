"""DCTCP congestion control (Alizadeh et al., SIGCOMM 2010).

The paper's testbed uses DCTCP as the network CCA under every I/O
architecture (§2.3), and two of the three baselines *depend* on it: ShRing
relies on CCA reactions to avoid overflowing its fixed ring, and HostCC
"triggers existing network CCAs when host congestion is detected".

This is a window-based sender with:

- ECN-fraction window adaptation: ``alpha = (1-g) alpha + g F`` per window,
  multiplicative decrease ``cwnd *= 1 - alpha/2`` on marked windows,
  additive increase otherwise;
- duplicate-ACK fast retransmit (selective per-packet ACKs);
- a retransmission-timeout fallback that collapses the window.

ACK generation lives at the receiver wiring (:mod:`repro.net.fabric`): the
receiver I/O architecture ACKs each packet it *accepts*, echoing both
switch CE marks and any host-side marks the architecture added.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..sim import Simulator
from ..sim.stats import Counter
from ..sim.units import US
from .packet import Flow, Message, Packet

__all__ = ["DctcpConfig", "DctcpSender"]


@dataclass
class DctcpConfig:
    """Windows are in **bytes** (like real TCP): packet-counted windows
    would hand a bulk flow with MTU packets ~6x the bandwidth of an RPC
    flow with 144 B packets, inverting the fair-share behaviour the mixed
    experiments depend on."""

    init_cwnd: float = 16 * 1500.0
    min_cwnd: float = 2048.0
    #: Receive-window cap: ~4x the fabric BDP (25 B/ns x ~1.2 µs); a cap
    #: far above the BDP lets slow-start overshoot park enormous standing
    #: queues in the receiver.
    max_cwnd: float = 64 * 1500.0
    #: EWMA gain for the marked fraction (the DCTCP paper's g).
    g: float = 1.0 / 16.0
    #: Bytes added per unmarked window (additive increase: one MSS).
    additive_increase: float = 1500.0
    #: Retransmission timeout, ns.
    rto: float = 200 * US
    #: Initial RTT estimate, ns.
    rtt_init: float = 10 * US
    dupack_threshold: int = 3


class DctcpSender:
    """Per-flow DCTCP transport feeding packets into an egress callable."""

    def __init__(self, sim: Simulator, flow: Flow,
                 egress: Callable[[Packet], None],
                 config: Optional[DctcpConfig] = None):
        self.sim = sim
        self.flow = flow
        self.egress = egress
        self.config = config or DctcpConfig()
        flow.sender = self

        self.cwnd = self.config.init_cwnd
        self.ssthresh = self.config.max_cwnd
        self.alpha = 0.0
        self.srtt = self.config.rtt_init
        self.rttvar = self.config.rtt_init / 2
        self.next_seq = 0
        #: seq -> (packet, last-send-time); insertion order = seq order.
        self.inflight: "OrderedDict[int, tuple]" = OrderedDict()
        self.inflight_bytes = 0
        self._pending: deque = deque()
        self._dup_counts: Dict[int, int] = {}
        # Per-RTT window ECN accounting (time-based: seq-based windows
        # stall during loss recovery when only old sequences are ACKed).
        self._window_start = 0.0
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._in_recovery = False
        # Message completion tracking (sender-side, i.e. all packets ACKed).
        self._msg_remaining: Dict[int, int] = {}
        self._msg_events: Dict[int, object] = {}
        self._msg_objects: Dict[int, Message] = {}

        self.packets_sent = Counter(f"{flow.name}.sent")
        self.packets_acked = Counter(f"{flow.name}.acked")
        self.retransmits = Counter(f"{flow.name}.retx")
        self.timeouts = Counter(f"{flow.name}.rto")
        self._rto_proc = sim.process(self._rto_loop(),
                                     name=f"{flow.name}-rto")

    # ------------------------------------------------------------------
    # Application side
    # ------------------------------------------------------------------
    def submit_message(self, message: Message):
        """Queue a message; returns an event fired when fully ACKed."""
        message.submit_time = self.sim.now
        done = self.sim.event()
        self._msg_remaining[message.message_id] = message.count
        self._msg_events[message.message_id] = done
        self._msg_objects[message.message_id] = message
        for packet in message.packets(self.flow, self.next_seq):
            self._pending.append(packet)
            self.next_seq += 1
        self._pump()
        return done

    @property
    def backlog(self) -> int:
        """Packets queued but not yet transmitted."""
        return len(self._pending)

    @property
    def rate_estimate(self) -> float:
        """Instantaneous window-based rate estimate, bytes/ns."""
        return self.cwnd / max(self.srtt, 1.0)

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        while self._pending:
            size = self._pending[0].size
            # Always allow one packet in flight, else a window smaller than
            # one frame would stall forever.
            if self.inflight and self.inflight_bytes + size > self.cwnd:
                break
            self._transmit(self._pending.popleft())

    def _transmit(self, packet: Packet) -> None:
        packet.send_time = self.sim.now
        if packet.first_send_time < 0:
            packet.first_send_time = self.sim.now
        packet.ecn_marked = False  # cleared on (re)transmit; set by the path
        if packet.seq not in self.inflight:
            self.inflight_bytes += packet.size
        self.inflight[packet.seq] = (packet, self.sim.now)
        self.inflight.move_to_end(packet.seq)
        self.packets_sent.add(1)
        self.egress(packet)

    def _retransmit(self, seq: int) -> None:
        entry = self.inflight.get(seq)
        if entry is None:
            return
        packet, _sent = entry
        # Clone instead of mutating: the original copy may still be in a
        # network queue (spurious retransmit), and post-egress packets
        # are immutable from the sender's side (see Packet.clone).
        packet = packet.clone()
        packet.retransmitted = True
        self.retransmits.add(1)
        self._dup_counts.pop(seq, None)
        self._transmit(packet)

    # ------------------------------------------------------------------
    # ACK path (called by the receiver wiring)
    # ------------------------------------------------------------------
    def on_ack(self, seq: int, ecn_marked: bool) -> None:
        entry = self.inflight.pop(seq, None)
        if entry is None:
            return  # duplicate/stale ACK
        packet, sent_time = entry
        self.inflight_bytes = max(0, self.inflight_bytes - packet.size)
        self.packets_acked.add(1)
        self._dup_counts.pop(seq, None)

        rtt_sample = self.sim.now - sent_time
        self.rttvar = (0.75 * self.rttvar
                       + 0.25 * abs(rtt_sample - self.srtt))
        self.srtt = 0.875 * self.srtt + 0.125 * rtt_sample

        self._acked_in_window += 1
        if ecn_marked:
            self._marked_in_window += 1

        # Selective-ACK style loss inference: an ACK for seq implies any
        # still-inflight packet with a smaller seq was likely lost.
        self._count_dupacks(seq)

        if self.sim.now - self._window_start >= self.srtt:
            self._end_window()

        self._complete_message_packet(packet)
        self._pump()

    def _count_dupacks(self, acked_seq: int) -> None:
        if not self.inflight:
            return
        # Fast path: in-order delivery (no smaller seq outstanding).
        if min(self.inflight) >= acked_seq:
            return
        to_retx = []
        for seq in self.inflight:
            if seq >= acked_seq:
                continue
            count = self._dup_counts.get(seq, 0) + 1
            self._dup_counts[seq] = count
            if count == self.config.dupack_threshold and not self._in_recovery:
                to_retx.append(seq)
        if to_retx:
            self._in_recovery = True
            self.cwnd = max(self.config.min_cwnd, self.cwnd / 2)
            self.ssthresh = max(self.config.min_cwnd, self.cwnd)
            for seq in to_retx:
                self._retransmit(seq)

    def _end_window(self) -> None:
        acked = max(1, self._acked_in_window)
        fraction = self._marked_in_window / acked
        self.alpha = ((1 - self.config.g) * self.alpha
                      + self.config.g * fraction)
        if self._marked_in_window > 0:
            self.cwnd = max(self.config.min_cwnd,
                            self.cwnd * (1 - self.alpha / 2))
            self.ssthresh = max(self.config.min_cwnd, self.cwnd)
        elif self.cwnd < self.ssthresh:
            # Slow start: double per window until the threshold.
            self.cwnd = min(self.ssthresh, self.config.max_cwnd,
                            self.cwnd * 2)
        else:
            self.cwnd = min(self.config.max_cwnd,
                            self.cwnd + self.config.additive_increase)
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._window_start = self.sim.now
        self._in_recovery = False

    def _complete_message_packet(self, packet: Packet) -> None:
        mid = packet.message_id
        remaining = self._msg_remaining.get(mid)
        if remaining is None:
            return
        remaining -= 1
        if remaining > 0:
            self._msg_remaining[mid] = remaining
            return
        del self._msg_remaining[mid]
        message = self._msg_objects.pop(mid)
        message.complete_time = self.sim.now
        self._msg_events.pop(mid).succeed(message)

    # ------------------------------------------------------------------
    # Timeout fallback
    # ------------------------------------------------------------------
    @property
    def rto(self) -> float:
        """Adaptive retransmission timeout (RFC 6298 style): a receiver
        that legitimately withholds ACKs (CEIO's hard backpressure, slow
        storage paths) inflates the RTT estimate and the RTO backs off with
        it instead of firing spuriously."""
        return max(self.config.rto, self.srtt + 4 * self.rttvar)

    def _rto_loop(self):
        while True:
            yield max(self.config.rto / 2, self.rto / 4)
            if not self.inflight:
                continue
            oldest_seq, (packet, sent_time) = next(iter(self.inflight.items()))
            if self.sim.now - sent_time >= self.rto:
                self.timeouts.add(1)
                self.ssthresh = max(self.config.min_cwnd, self.cwnd / 2)
                self.cwnd = self.config.min_cwnd
                self.alpha = min(1.0, self.alpha + 0.5)
                # Go-back-N: everything in flight at RTO is presumed lost.
                # Retransmit the oldest now and requeue the rest at the
                # front of the pending queue; slow start re-sends them as
                # ACKs return (one-at-a-time RTO recovery would crawl).
                requeue = [pkt for seq2, (pkt, _t) in self.inflight.items()
                           if seq2 != oldest_seq]
                clones = []
                for pkt in requeue:
                    del self.inflight[pkt.seq]
                    self.inflight_bytes = max(
                        0, self.inflight_bytes - pkt.size)
                    self._dup_counts.pop(pkt.seq, None)
                    # Requeue a clone: the presumed-lost copy may in fact
                    # still arrive, and must keep its original fields.
                    twin = pkt.clone()
                    twin.retransmitted = True
                    clones.append(twin)
                for pkt in sorted(clones, key=lambda p: p.seq,
                                  reverse=True):
                    self._pending.appendleft(pkt)
                self._retransmit(oldest_seq)
