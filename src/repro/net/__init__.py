"""Network substrate: packets, flows, links, ECN switch, DCTCP, testbed."""

from .dctcp import DctcpConfig, DctcpSender
from .fabric import FabricConfig, Testbed
from .link import Link, SwitchPort
from .packet import ETHERNET_OVERHEAD, MTU, Flow, FlowKind, Message, Packet
from .source import OpenLoopSource, SaturatingSource

__all__ = [
    "DctcpConfig", "DctcpSender",
    "FabricConfig", "Testbed",
    "Link", "SwitchPort",
    "ETHERNET_OVERHEAD", "MTU", "Flow", "FlowKind", "Message", "Packet",
    "OpenLoopSource", "SaturatingSource",
]
