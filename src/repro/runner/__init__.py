"""``repro.runner`` — parallel sweep orchestration for the experiments.

Layers (each usable on its own):

- :mod:`~repro.runner.sweep` — declarative parameter grids and
  :class:`Point` (stable structural identity + per-point seeds);
- :mod:`~repro.runner.pool` — fault-tolerant ``multiprocessing`` worker
  pool (per-point timeout, crash recovery, bounded retry with backoff,
  serial fallback);
- :mod:`~repro.runner.cache` — content-addressed on-disk result cache
  keyed by params + seed + code fingerprint;
- :mod:`~repro.runner.progress` — live progress/ETA lines and the
  machine-readable ``runlog.jsonl``;
- :mod:`~repro.runner.cli` — glue used by ``python -m repro.experiments``
  (``--jobs`` / ``--no-cache`` / ``--rerun``).

See docs/ARCHITECTURE.md, "Orchestration".
"""

from .cache import DEFAULT_CACHE_DIR, ResultCache, cache_key, code_fingerprint
from .cli import (
    RunnerOptions,
    SweepOutcome,
    execute_points,
    run_experiment_cached,
    run_sweeps,
)
from .pool import PointOutcome, PoolConfig, WorkerPool
from .progress import Progress
from .sweep import (
    Point,
    canonical_params,
    content_id,
    derive_seed,
    grid,
    make_point,
    resolve_worker,
    run_points_serial,
)

__all__ = [
    "DEFAULT_CACHE_DIR", "ResultCache", "cache_key", "code_fingerprint",
    "RunnerOptions", "SweepOutcome", "execute_points",
    "run_experiment_cached", "run_sweeps",
    "PointOutcome", "PoolConfig", "WorkerPool",
    "Progress",
    "Point", "canonical_params", "content_id", "derive_seed", "grid",
    "make_point", "resolve_worker", "run_points_serial",
]
