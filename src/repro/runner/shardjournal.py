"""The shard command journal: replayable history of a sharded run.

A conservative barrier run drives every shard kernel through a pure
command stream — ``("advance", horizon, inclusive, inbox)`` windows
plus one ``("open",)`` phase marker — and a shard kernel is a pure
function of ``(scenario, plan, index)`` plus that stream: the inbox
messages carry their exact calendar keys, so replaying the journaled
commands against a freshly built kernel reproduces the original
byte-for-byte (the argument pinned by ``tests/shard/``'s identity
suite and written up in docs/SHARDING.md).

:class:`ShardJournal` records, per shard, every command the worker
*acknowledged* — the coordinator appends only after receiving the
reply, so an in-flight command is never journaled and is simply
re-issued after a replay. :class:`~repro.runner.shardpool.
ProcessShards` uses this to resurrect a dead worker mid-run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["ShardJournal"]


class ShardJournal:
    """Per-shard ordered log of acknowledged coordinator commands."""

    def __init__(self, n_shards: int):
        self.n_shards = n_shards
        self._commands: List[List[Tuple]] = [[] for _ in range(n_shards)]

    def record(self, shard: int, command: Tuple) -> None:
        """Append one acknowledged command to ``shard``'s log."""
        self._commands[shard].append(command)

    def commands(self, shard: int) -> Tuple[Tuple, ...]:
        """``shard``'s acknowledged commands, in issue order."""
        return tuple(self._commands[shard])

    def windows(self, shard: int) -> int:
        """Barrier windows ``shard`` has completed."""
        return sum(1 for cmd in self._commands[shard]
                   if cmd[0] == "advance")

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary (runlog / stats payload)."""
        return {"shards": self.n_shards,
                "commands": [len(cmds) for cmds in self._commands],
                "windows": [self.windows(i)
                            for i in range(self.n_shards)]}
