"""Sweep progress: live per-point lines, ETA, and a machine-readable log.

Human output goes to ``stream`` (stderr by default, so experiment tables
on stdout stay clean and pipeable). Every event is also appended to a
``runlog.jsonl`` — one JSON object per line — so tooling (CI, dashboards,
the benchmarks conftest) can audit exactly what executed, what was served
from cache, how many attempts each point needed, and how long it took.

The ETA model is deliberately simple: mean elapsed time of *executed*
(non-cached) points times the number of outstanding points, divided by
the worker count. Cached points are excluded from the mean — they
complete in microseconds and would destroy the estimate.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, IO, Optional

from .pool import PointOutcome
from .sweep import Point

__all__ = ["Progress"]


class Progress:
    """Collects per-point events; renders lines; appends to a JSONL log."""

    def __init__(self, total: int, jobs: int = 1,
                 stream: Optional[IO[str]] = None,
                 jsonl_path: Optional[str] = None,
                 quiet: bool = False):
        self.total = total
        self.jobs = max(1, jobs)
        self.stream = stream if stream is not None else sys.stderr
        self.jsonl_path = Path(jsonl_path) if jsonl_path else None
        self.quiet = quiet
        self.done = 0
        self.executed = 0
        self.cached = 0
        self.failed = 0
        self.retried = 0
        #: Conservation-audit totals across all points that carried an
        #: audit summary (repro.audit); points executed before auditing
        #: existed (old cache entries) simply don't contribute.
        self.audit_reports = 0
        self.audit_checked = 0
        self.audit_violations = 0
        #: point_id -> violation count, for strict-gating diagnostics.
        self.audit_failed_points: Dict[str, int] = {}
        self._exec_elapsed = 0.0
        self._t0 = time.monotonic()
        if self.jsonl_path:
            self.jsonl_path.parent.mkdir(parents=True, exist_ok=True)
        self._log({"event": "sweep_start", "total": total, "jobs": jobs})

    # ------------------------------------------------------------------
    def _log(self, record: Dict[str, Any]) -> None:
        if not self.jsonl_path:
            return
        record = {"ts": time.time(), **record}
        with open(self.jsonl_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record) + "\n")

    def _emit(self, line: str) -> None:
        if not self.quiet:
            print(line, file=self.stream, flush=True)

    def _eta(self) -> str:
        remaining = self.total - self.done
        if remaining <= 0 or not self.executed:
            return ""
        per_point = self._exec_elapsed / self.executed
        eta = per_point * remaining / self.jobs
        return f", ETA {eta:.0f}s"

    # ------------------------------------------------------------------
    # Pool / cache callbacks
    # ------------------------------------------------------------------
    def point_started(self, point: Point, attempt: int) -> None:
        self._log({"event": "point_start", "point_id": point.point_id,
                   "exp_id": point.exp_id, "attempt": attempt,
                   "seed": point.seed, "faults": point.faults or None})
        if attempt > 1:
            self.retried += 1
            self._emit(f"        retry #{attempt - 1} {point.pretty()}")

    def point_finished(self, outcome: PointOutcome) -> None:
        self.done += 1
        if outcome.cached:
            self.cached += 1
            status = "cached"
        elif outcome.ok:
            self.executed += 1
            self._exec_elapsed += outcome.elapsed
            status = "done"
        else:
            self.failed += 1
            status = "FAILED"
        point = outcome.point
        audit = getattr(outcome, "audit", None)
        violations = 0
        if audit:
            self.audit_reports += audit.get("reports", 0)
            self.audit_checked += audit.get("checked", 0)
            violations = audit.get("violations", 0)
            if violations:
                self.audit_violations += violations
                self.audit_failed_points[point.point_id] = violations
        self._log({"event": "point_done", "point_id": point.point_id,
                   "exp_id": point.exp_id, "status": status,
                   "attempts": outcome.attempts,
                   "elapsed_s": round(outcome.elapsed, 4),
                   "faults": point.faults or None,
                   "audit": audit,
                   "error": outcome.error})
        detail = "" if outcome.cached else f" {outcome.elapsed:.1f}s"
        if violations:
            detail += f" [AUDIT: {violations} violation(s)]"
        if outcome.error:
            detail += f" ({outcome.error})"
        self._emit(f"[{self.done:>3}/{self.total}] {status:<6} "
                   f"{point.pretty()}{detail}{self._eta()}")
        if violations:
            for message in (audit.get("details") or [])[:3]:
                self._emit(f"        audit: {message}")

    # ------------------------------------------------------------------
    def summary(self) -> str:
        elapsed = time.monotonic() - self._t0
        text = (f"{self.total} points: {self.executed} executed, "
                f"{self.cached} cached, {self.failed} failed "
                f"({self.retried} retries) in {elapsed:.1f}s")
        if self.audit_checked:
            text += (f"; audit: {self.audit_checked} balance checks, "
                     f"{self.audit_violations} violations")
        self._log({"event": "sweep_done", "executed": self.executed,
                   "cached": self.cached, "failed": self.failed,
                   "retries": self.retried,
                   "elapsed_s": round(elapsed, 3)})
        self._log({"event": "audit_summary",
                   "reports": self.audit_reports,
                   "checked": self.audit_checked,
                   "violations": self.audit_violations,
                   "failed_points": self.audit_failed_points or None})
        return text
