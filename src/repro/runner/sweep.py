"""Declarative sweeps: parameter grids, simulation points, stable IDs.

A *point* is one independent simulation: a worker function (referenced as
``"module:attr"`` so any process can resolve it), a JSON-serialisable
parameter dict, and the seed its testbed will use. Everything downstream
— the worker pool, the result cache, the progress log — operates on
points, never on experiment internals.

Point identity is structural: ``content_key`` hashes the worker reference
plus the canonical JSON of the parameters, so the same simulation reached
from two different experiments (e.g. Fig. 4a's HostCC trajectory, which
Fig. 10a also needs) is one point, executed once and cached once.

Seeds and determinism: with no explicit root seed every point uses its
experiment's legacy default, reproducing the calibrated tables bit for
bit. With ``--seed N`` each point draws its own substream via
``RngRegistry(N).spawn(content_id)`` — independent streams per point, yet
bit-identical results for any ``--jobs`` value, because a point's seed
depends only on *what it computes*, never on scheduling order.
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from ..sim.rng import RngRegistry

__all__ = ["Point", "grid", "canonical_params", "content_id", "make_point",
           "resolve_worker", "derive_seed", "run_points_serial"]


def canonical_params(params: Mapping[str, Any]) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def content_id(fn: str, params: Mapping[str, Any]) -> str:
    """Short structural digest of (worker, params) — seed-independent."""
    digest = hashlib.sha256(
        f"{fn}|{canonical_params(params)}".encode()).hexdigest()
    return digest[:12]


def derive_seed(root_seed: int, fn: str, params: Mapping[str, Any]) -> int:
    """Per-point substream seed for an explicit root seed (see module doc)."""
    spawn_key = f"{fn}#{content_id(fn, params)}"
    return RngRegistry(root_seed).spawn(spawn_key).root_seed


@dataclass(frozen=True)
class Point:
    """One independent simulation point of a sweep."""

    exp_id: str
    #: Worker reference, ``"package.module:function"``.
    fn: str
    #: JSON-serialisable parameters; fully determine the computation
    #: together with ``seed``.
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Testbed root seed (``None`` = the worker's own default).
    seed: Optional[int] = None
    #: Human-readable suffix for progress lines (not part of identity).
    label: str = ""
    #: Canonical JSON of the point's fault plan (``FaultPlan.canonical()``),
    #: "" for healthy points. Part of identity: a cached healthy result
    #: must never be served for a faulted run, even if the worker reads the
    #: plan from ``params`` and an older cache entry predates the field.
    faults: str = ""
    #: Canonical JSON of the point's scenario spec
    #: (``repro.scenario.canonical()``), "" for hand-built scenarios.
    #: Part of identity for the same reason as ``faults``: a result
    #: computed for one declarative scenario must never be served for
    #: another, while hand-built points keep their historical keys.
    scenario: str = ""

    @property
    def content_key(self) -> str:
        """Cross-experiment identity: same worker+params+seed = same point.

        Healthy hand-built points keep the historical three-field format,
        so every pre-faults / pre-scenario cache entry and golden key
        stays valid byte for byte.
        """
        key = f"{self.fn}|{canonical_params(self.params)}|{self.seed}"
        if self.faults:
            key += f"|faults={self.faults}"
        if self.scenario:
            key += f"|scenario={self.scenario}"
        return key

    @property
    def point_id(self) -> str:
        return f"{self.exp_id}/{self.label or content_id(self.fn, self.params)}"

    def pretty(self) -> str:
        return f"{self.exp_id}/{self.label}" if self.label else self.point_id


def make_point(exp_id: str, fn: str, params: Mapping[str, Any],
               root_seed: Optional[int], default_seed: Optional[int],
               label: str = "", faults: str = "",
               scenario: str = "") -> Point:
    """Build a point, resolving its seed per the determinism contract."""
    if root_seed is None:
        seed = default_seed
    else:
        seed = derive_seed(root_seed, fn, params)
    return Point(exp_id=exp_id, fn=fn, params=dict(params), seed=seed,
                 label=label, faults=faults, scenario=scenario)


def grid(**axes: Iterable[Any]) -> List[Dict[str, Any]]:
    """Cartesian product of named axes, in axis-declaration order.

    >>> grid(arch=["a", "b"], size=[1, 2])
    [{'arch': 'a', 'size': 1}, {'arch': 'a', 'size': 2},
     {'arch': 'b', 'size': 1}, {'arch': 'b', 'size': 2}]
    """
    names = list(axes)
    return [dict(zip(names, combo))
            for combo in itertools.product(*(list(axes[n]) for n in names))]


def resolve_worker(fn: str) -> Callable[[Mapping[str, Any], Optional[int]], Any]:
    """Import and return the worker behind a ``"module:attr"`` reference."""
    module_name, _, attr = fn.partition(":")
    if not module_name or not attr:
        raise ValueError(f"worker reference must be 'module:attr', got {fn!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError:
        raise AttributeError(
            f"module {module_name!r} has no worker {attr!r}") from None


def run_points_serial(points: Iterable[Point]) -> Dict[str, Any]:
    """Execute points in-process, in order — the ``--jobs 1`` reference
    path and the substrate for :func:`repro.experiments.run_experiment`."""
    from ..audit import drain_reports
    results: Dict[str, Any] = {}
    done: Dict[str, Any] = {}  # content_key -> value (intra-sweep dedupe)
    for point in points:
        if point.content_key not in done:
            worker = resolve_worker(point.fn)
            done[point.content_key] = worker(dict(point.params), point.seed)
            # Point boundary: clear the conservation-audit mailbox so the
            # in-process path never accumulates reports across points.
            drain_reports()
        results[point.point_id] = done[point.content_key]
    return results
