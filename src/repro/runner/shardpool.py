"""Process-backed shard execution with runlog heartbeats and recovery.

One long-lived worker process per shard kernel, driven over pipes by the
coordinator (:func:`repro.shard.run_sharded` with ``mode="process"``).
The point pool (:mod:`repro.runner.pool`) polices sweep points between
process boundaries; this module applies the same supervision *inside*
one sharded run, where the failure unit is a shard, not a point:

- **heartbeats** — at most every ``heartbeat_s`` of wall time, one
  ``shard_heartbeat`` runlog event per shard records its simulated time
  and cumulative event count, so a shard that stops progressing is
  visible (its ``events_executed`` flatlines while the others grow);
- **stall attribution** — a shard that leaves the coordinator waiting
  longer than ``stall_s`` gets a ``shard_stall`` event naming it (and a
  ``shard_resume`` when it recovers), instead of the whole run
  surfacing as an opaque point timeout;
- **journal-replay recovery** — a worker that dies mid-window, or
  overruns ``timeout_s``, is *restarted*: a fresh worker rebuilds the
  shard kernel from the scenario and deterministically replays the
  journaled command history (:class:`~repro.runner.shardjournal.
  ShardJournal`) up to the last completed barrier, then the in-flight
  command is re-issued and the run resumes — ``shard_restarted`` and
  ``shard_replay_done`` events attribute each recovery, with capped
  exponential backoff and a per-shard budget of ``max_restarts``;
- **failure** — a worker raising a (deterministic, hence
  restart-futile) exception, a diverged replay, or an exhausted restart
  budget fails the run with a ``shard_failed`` event and an exception
  naming the shard, after a *bounded* teardown that joins every worker
  and closes every pipe end — no orphans survive a failed run.

Events append to the same JSONL format the sweep runner's
:class:`~repro.runner.progress.Progress` writes (``{"ts": ..., "event":
...}`` per line), so a shard pool can share ``runlog.jsonl`` with the
surrounding sweep.
"""

from __future__ import annotations

import json
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from .shardjournal import ShardJournal

__all__ = ["ShardPoolConfig", "ProcessShards"]

_POLL_S = 0.05

#: Total wall-clock budget for joining all workers at teardown.
_CLOSE_JOIN_S = 5.0


@dataclass
class ShardPoolConfig:
    #: Minimum wall-clock seconds between heartbeat event batches.
    heartbeat_s: float = 5.0
    #: Seconds of worker unresponsiveness before a stall is logged.
    stall_s: float = 30.0
    #: Hard per-reply budget in seconds (``None`` = wait, logging stalls).
    timeout_s: Optional[float] = None
    #: multiprocessing start method (``None`` = platform default).
    start_method: Optional[str] = None
    #: Path of the JSONL runlog to append shard events to (``None`` =
    #: no logging).
    runlog: Optional[str] = None
    #: Per-shard restart budget before the run fails (0 = fail on the
    #: first death, the pre-recovery behaviour).
    max_restarts: int = 2
    #: First restart's backoff sleep; doubles per attempt up to the cap.
    restart_backoff_s: float = 0.1
    restart_backoff_cap_s: float = 2.0
    #: Chaos hook: ``(window_index, shard)`` pairs — kill that shard's
    #: worker right after the coordinator issues that barrier window's
    #: advance command (0-based), exercising the recovery path
    #: deterministically (``--shard-kill`` on the scenario CLI).
    kill_plan: Tuple[Tuple[int, int], ...] = field(default_factory=tuple)


def _shard_worker(conn, normal, shards: int, index: int) -> None:
    """Worker main: build shard ``index`` of a ``shards``-way partition,
    then serve coordinator commands until told to exit.

    Commands: ``("advance", horizon, inclusive, inbox)`` injects the
    inbox and runs one window, replying ``("advanced", executed,
    outbox)``; ``("open",)`` opens measurement windows; ``("finish",)``
    replies with the kernel's final export; ``("exit",)`` returns. Any
    exception is reported as ``("error", detail)`` rather than killing
    the pipe silently.
    """
    from ..scenario.schema import build_topology
    from ..shard.kernel import ShardKernel
    from ..topo.partition import partition
    try:
        plan = partition(build_topology(normal), shards)
        kernel = ShardKernel(normal, plan, index)
        conn.send(("ready", sorted(kernel.fabric.endpoints)))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "advance":
                _cmd, horizon, inclusive, inbox = msg
                for item in inbox:
                    kernel.inject(item)
                executed, out = kernel.advance(horizon, inclusive)
                conn.send(("advanced", executed, out))
            elif cmd == "open":
                kernel.open_windows()
                conn.send(("opened",))
            elif cmd == "finish":
                conn.send(("finished",) + kernel.finish())
            elif cmd == "exit":
                return
    except EOFError:
        return
    except BaseException as exc:
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)).strip()
        try:
            conn.send(("error", detail))
        except (BrokenPipeError, OSError):
            pass


class _ShardDead(Exception):
    """Internal: the worker died / timed out — restartable, unlike a
    deterministic ``("error", ...)`` reply (which would simply recur
    on replay)."""


class ProcessShards:
    """The shard-executor protocol of :mod:`repro.shard.coordinator`,
    backed by one worker process per shard, with journal-replay
    recovery of dead workers."""

    def __init__(self, normal: Dict[str, Any], plan, config=None):
        self.config = config or ShardPoolConfig()
        self.plan = plan
        self.n = plan.n_shards
        self._normal = dict(normal)
        self._runlog_path = (Path(self.config.runlog)
                             if self.config.runlog else None)
        self._closed = False
        self._last_events = [0] * self.n
        self._last_beat = time.monotonic()
        self.journal = ShardJournal(self.n)
        self._restarts = [0] * self.n
        self._inflight: List[Optional[Tuple]] = [None] * self.n
        self._window = 0
        self._log({"event": "shard_pool_start", "shards": self.n,
                   "plan": plan.describe()})
        self._ctx = (multiprocessing.get_context(self.config.start_method)
                     if self.config.start_method
                     else multiprocessing.get_context())
        self._conns: List[Any] = [None] * self.n
        self._procs: List[Any] = [None] * self.n
        for i in range(self.n):
            self._spawn(i)
        for i in range(self.n):
            while True:
                try:
                    reply = self._recv(i)
                except _ShardDead as exc:
                    self._respawn(i, str(exc))
                    continue
                self._log({"event": "shard_ready", "shard": i,
                           "hosts": reply[1]})
                break

    def _spawn(self, index: int) -> None:
        """Start (or re-start) shard ``index``'s worker process. The
        child pipe end is closed in the parent immediately, so a dead
        worker's pipe reads EOF instead of hanging."""
        parent, child = self._ctx.Pipe()
        # Daemonic workers die with the coordinator, but a daemonic
        # parent (a sweep pool worker) may not have daemonic children;
        # there the bounded close()/_fail teardown is the only reaper.
        daemon = not multiprocessing.current_process().daemon
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(child, self._normal, self.n, index),
            name=f"repro-shard-{index}", daemon=daemon)
        proc.start()
        child.close()
        self._conns[index] = parent
        self._procs[index] = proc

    # -- runlog ---------------------------------------------------------
    def _log(self, record: Dict[str, Any]) -> None:
        """Append one event to the runlog (same line format as
        :class:`repro.runner.progress.Progress`)."""
        if self._runlog_path is None:
            return
        self._runlog_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._runlog_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"ts": time.time(), **record}) + "\n")

    # -- supervised receive ---------------------------------------------
    def _recv(self, index: int) -> Tuple:
        """Wait for shard ``index``'s next reply, logging stalls.
        Raises :class:`_ShardDead` on crash, pipe corruption, or
        timeout (restartable); fails the run outright on a worker's
        ``("error", ...)`` reply (deterministic, restart-futile)."""
        conn = self._conns[index]
        cfg = self.config
        start = time.monotonic()
        stalled = False
        while True:
            waited = time.monotonic() - start
            if not stalled and waited >= cfg.stall_s:
                stalled = True
                self._log({"event": "shard_stall", "shard": index,
                           "waited_s": round(waited, 3),
                           "events_executed": self._last_events[index]})
            if cfg.timeout_s is not None and waited >= cfg.timeout_s:
                raise _ShardDead(f"timeout after {cfg.timeout_s}s")
            if conn.poll(_POLL_S):
                try:
                    reply = conn.recv()
                except Exception as exc:  # EOF or a torn mid-kill write
                    raise _ShardDead(
                        f"worker closed its pipe ({exc!r})") from exc
                if reply[0] == "error":
                    self._fail(index, reply[1])
                if stalled:
                    self._log({"event": "shard_resume", "shard": index,
                               "waited_s": round(
                                   time.monotonic() - start, 3)})
                return reply
            if not self._procs[index].is_alive():
                raise _ShardDead("worker died (exit "
                                 f"{self._procs[index].exitcode})")

    def _fail(self, index: int, detail: str) -> None:
        """Record the failure, tear the whole pool down (bounded), and
        raise."""
        self._log({"event": "shard_failed", "shard": index,
                   "error": detail})
        self.close()
        raise RuntimeError(f"shard {index} failed: {detail}")

    # -- recovery -------------------------------------------------------
    def _respawn(self, index: int, detail: str) -> None:
        """Charge one restart attempt, reap the corpse, back off
        (capped exponential), and start a fresh worker — or fail the
        run when the budget is spent."""
        attempt = self._restarts[index] + 1
        if attempt > self.config.max_restarts:
            self._fail(index, f"{detail} (restart budget of "
                              f"{self.config.max_restarts} exhausted)")
        self._restarts[index] = attempt
        self._log({"event": "shard_restarted", "shard": index,
                   "attempt": attempt, "reason": detail})
        proc, conn = self._procs[index], self._conns[index]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=_CLOSE_JOIN_S)
        try:
            conn.close()
        except OSError:
            pass
        backoff = min(self.config.restart_backoff_cap_s,
                      self.config.restart_backoff_s * 2 ** (attempt - 1))
        if backoff > 0:
            time.sleep(backoff)
        self._spawn(index)

    def _restart(self, index: int, detail: str) -> None:
        """Full mid-run recovery: respawn, handshake, replay the
        journal, verify determinism, re-issue the in-flight command.
        Loops (budget-bounded via :meth:`_respawn`) if the replacement
        dies too."""
        while True:
            self._respawn(index, detail)
            try:
                self._recv(index)  # the fresh worker's ready handshake
                self._replay(index)
            except _ShardDead as exc:
                detail = str(exc)
                continue
            if self._inflight[index] is not None:
                try:
                    self._conns[index].send(self._inflight[index])
                except (BrokenPipeError, OSError):
                    detail = "worker died before the re-issued command"
                    continue
            return

    def _replay(self, index: int) -> None:
        """Drive the fresh kernel through the journaled command history.
        Replies are discarded — every outbox they carry was already
        delivered — but the replayed event count must equal the
        acknowledged total: the kernel is a pure function of the
        command stream, so any difference means non-determinism and the
        merged results could no longer be trusted."""
        commands = self.journal.commands(index)
        events = 0
        for cmd in commands:
            self._conns[index].send(cmd)
            reply = self._recv(index)
            if reply[0] == "advanced":
                events += reply[1]
        if events != self._last_events[index]:
            self._fail(index,
                       f"replay diverged: {events} events replayed vs "
                       f"{self._last_events[index]} acknowledged")
        self._log({"event": "shard_replay_done", "shard": index,
                   "commands": len(commands), "events_executed": events})

    # -- command round-trip ---------------------------------------------
    def _issue(self, index: int, cmd: Tuple) -> None:
        """Send one command, remembering it as in-flight until its
        reply lands. A send on a broken pipe is deliberately swallowed:
        :meth:`_collect` detects the death and recovers."""
        self._inflight[index] = cmd
        try:
            self._conns[index].send(cmd)
        except (BrokenPipeError, OSError):
            pass

    def _collect(self, index: int) -> Tuple:
        """The in-flight command's reply, restarting through worker
        deaths. On success the command is journaled (``advance`` /
        ``open`` — the replayable prefix) and retired."""
        while True:
            try:
                reply = self._recv(index)
            except _ShardDead as exc:
                self._restart(index, str(exc))
                continue
            cmd = self._inflight[index]
            if cmd is not None and cmd[0] in ("advance", "open"):
                self.journal.record(index, cmd)
            self._inflight[index] = None
            return reply

    # -- executor protocol ----------------------------------------------
    def advance(self, horizon: float, inclusive: bool,
                inboxes: List[List[Tuple]]) -> List[List[Tuple]]:
        """Run one barrier window on every shard concurrently."""
        window = self._window
        self._window += 1
        for i in range(self.n):
            self._issue(i, ("advance", horizon, inclusive, inboxes[i]))
        for kill_window, shard in self.config.kill_plan:
            if kill_window == window and 0 <= shard < self.n:
                proc = self._procs[shard]
                if proc.is_alive():
                    proc.kill()
        outs = []
        for i in range(self.n):
            reply = self._collect(i)
            self._last_events[i] += reply[1]
            outs.append(reply[2])
        now = time.monotonic()
        if now - self._last_beat >= self.config.heartbeat_s:
            self._last_beat = now
            for i in range(self.n):
                self._log({"event": "shard_heartbeat", "shard": i,
                           "sim_now_ns": horizon,
                           "events_executed": self._last_events[i]})
        return outs

    def open_windows(self) -> None:
        """Open measurement windows on every shard."""
        for i in range(self.n):
            self._issue(i, ("open",))
        for i in range(self.n):
            self._collect(i)

    def finish(self) -> List[Tuple]:
        """Collect every shard's final export and log its event count.
        ``finish`` is not journaled (nothing ever replays past it); a
        worker dying mid-export replays to the last barrier and the
        re-issued ``finish`` exports the identical state."""
        for i in range(self.n):
            self._issue(i, ("finish",))
        finals = []
        for i in range(self.n):
            reply = self._collect(i)
            finals.append(reply[1:])
            self._log({"event": "shard_done", "shard": i,
                       "events_executed": reply[4]})
        return finals

    def close(self) -> None:
        """Shut the workers down (idempotent) within a bounded
        wall-clock budget: polite exit, one shared join deadline, then
        terminate -> kill escalation, and close every parent pipe end —
        also the teardown path of a *failed* run, so no orphaned
        process or fd survives."""
        if self._closed:
            return
        self._closed = True
        procs = [p for p in self._procs if p is not None]
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + _CLOSE_JOIN_S
        for proc in procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
        for proc in procs:
            if proc.is_alive():
                proc.join(timeout=2)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=2)
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:
                pass
        self._log({"event": "shard_pool_done", "shards": self.n,
                   "events_executed": list(self._last_events),
                   "restarts": list(self._restarts)})
