"""Process-backed shard execution with runlog heartbeats.

One long-lived worker process per shard kernel, driven over pipes by the
coordinator (:func:`repro.shard.run_sharded` with ``mode="process"``).
The point pool (:mod:`repro.runner.pool`) polices sweep points between
process boundaries; this module applies the same supervision *inside*
one sharded run, where the failure unit is a shard, not a point:

- **heartbeats** — at most every ``heartbeat_s`` of wall time, one
  ``shard_heartbeat`` runlog event per shard records its simulated time
  and cumulative event count, so a shard that stops progressing is
  visible (its ``events_executed`` flatlines while the others grow);
- **stall attribution** — a shard that leaves the coordinator waiting
  longer than ``stall_s`` gets a ``shard_stall`` event naming it (and a
  ``shard_resume`` when it recovers), instead of the whole run
  surfacing as an opaque point timeout;
- **crash detection** — a worker that dies mid-window, or overruns
  ``timeout_s``, fails the run with a ``shard_failed`` event and an
  exception naming the shard.

Events append to the same JSONL format the sweep runner's
:class:`~repro.runner.progress.Progress` writes (``{"ts": ..., "event":
...}`` per line), so a shard pool can share ``runlog.jsonl`` with the
surrounding sweep.
"""

from __future__ import annotations

import json
import multiprocessing
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ShardPoolConfig", "ProcessShards"]

_POLL_S = 0.05


@dataclass
class ShardPoolConfig:
    #: Minimum wall-clock seconds between heartbeat event batches.
    heartbeat_s: float = 5.0
    #: Seconds of worker unresponsiveness before a stall is logged.
    stall_s: float = 30.0
    #: Hard per-reply budget in seconds (``None`` = wait, logging stalls).
    timeout_s: Optional[float] = None
    #: multiprocessing start method (``None`` = platform default).
    start_method: Optional[str] = None
    #: Path of the JSONL runlog to append shard events to (``None`` =
    #: no logging).
    runlog: Optional[str] = None


def _shard_worker(conn, normal, shards: int, index: int) -> None:
    """Worker main: build shard ``index`` of a ``shards``-way partition,
    then serve coordinator commands until told to exit.

    Commands: ``("advance", horizon, inclusive, inbox)`` injects the
    inbox and runs one window, replying ``("advanced", executed,
    outbox)``; ``("open",)`` opens measurement windows; ``("finish",)``
    replies with the kernel's final export; ``("exit",)`` returns. Any
    exception is reported as ``("error", detail)`` rather than killing
    the pipe silently.
    """
    from ..scenario.schema import build_topology
    from ..shard.kernel import ShardKernel
    from ..topo.partition import partition
    try:
        plan = partition(build_topology(normal), shards)
        kernel = ShardKernel(normal, plan, index)
        conn.send(("ready", sorted(kernel.fabric.endpoints)))
        while True:
            msg = conn.recv()
            cmd = msg[0]
            if cmd == "advance":
                _cmd, horizon, inclusive, inbox = msg
                for item in inbox:
                    kernel.inject(item)
                executed, out = kernel.advance(horizon, inclusive)
                conn.send(("advanced", executed, out))
            elif cmd == "open":
                kernel.open_windows()
                conn.send(("opened",))
            elif cmd == "finish":
                conn.send(("finished",) + kernel.finish())
            elif cmd == "exit":
                return
    except EOFError:
        return
    except BaseException as exc:
        detail = "".join(
            traceback.format_exception_only(type(exc), exc)).strip()
        try:
            conn.send(("error", detail))
        except (BrokenPipeError, OSError):
            pass


class ProcessShards:
    """The shard-executor protocol of :mod:`repro.shard.coordinator`,
    backed by one worker process per shard."""

    def __init__(self, normal: Dict[str, Any], plan, config=None):
        self.config = config or ShardPoolConfig()
        self.plan = plan
        self.n = plan.n_shards
        self._runlog_path = (Path(self.config.runlog)
                             if self.config.runlog else None)
        self._closed = False
        self._last_events = [0] * self.n
        self._last_beat = time.monotonic()
        self._log({"event": "shard_pool_start", "shards": self.n,
                   "plan": plan.describe()})
        ctx = (multiprocessing.get_context(self.config.start_method)
               if self.config.start_method
               else multiprocessing.get_context())
        self._conns = []
        self._procs = []
        for i in range(self.n):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_shard_worker,
                               args=(child, dict(normal), self.n, i),
                               name=f"repro-shard-{i}", daemon=True)
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)
        for i in range(self.n):
            reply = self._recv(i)
            self._log({"event": "shard_ready", "shard": i,
                       "hosts": reply[1]})

    # -- runlog ---------------------------------------------------------
    def _log(self, record: Dict[str, Any]) -> None:
        """Append one event to the runlog (same line format as
        :class:`repro.runner.progress.Progress`)."""
        if self._runlog_path is None:
            return
        self._runlog_path.parent.mkdir(parents=True, exist_ok=True)
        with open(self._runlog_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps({"ts": time.time(), **record}) + "\n")

    # -- supervised receive ---------------------------------------------
    def _recv(self, index: int) -> Tuple:
        """Wait for shard ``index``'s next reply, logging stalls and
        failing the run on crash, error reply, or timeout."""
        conn = self._conns[index]
        cfg = self.config
        start = time.monotonic()
        stalled = False
        while True:
            waited = time.monotonic() - start
            if not stalled and waited >= cfg.stall_s:
                stalled = True
                self._log({"event": "shard_stall", "shard": index,
                           "waited_s": round(waited, 3),
                           "events_executed": self._last_events[index]})
            if cfg.timeout_s is not None and waited >= cfg.timeout_s:
                self._fail(index, f"timeout after {cfg.timeout_s}s")
            if conn.poll(_POLL_S):
                try:
                    reply = conn.recv()
                except EOFError:
                    self._fail(index, "worker closed its pipe")
                if reply[0] == "error":
                    self._fail(index, reply[1])
                if stalled:
                    self._log({"event": "shard_resume", "shard": index,
                               "waited_s": round(
                                   time.monotonic() - start, 3)})
                return reply
            if not self._procs[index].is_alive():
                self._fail(index, "worker died (exit "
                                  f"{self._procs[index].exitcode})")

    def _fail(self, index: int, detail: str) -> None:
        """Record the failure, tear the pool down, and raise."""
        self._log({"event": "shard_failed", "shard": index,
                   "error": detail})
        self.close()
        raise RuntimeError(f"shard {index} failed: {detail}")

    # -- executor protocol ----------------------------------------------
    def advance(self, horizon: float, inclusive: bool,
                inboxes: List[List[Tuple]]) -> List[List[Tuple]]:
        """Run one barrier window on every shard concurrently."""
        for i, conn in enumerate(self._conns):
            conn.send(("advance", horizon, inclusive, inboxes[i]))
        outs = []
        for i in range(self.n):
            reply = self._recv(i)
            self._last_events[i] += reply[1]
            outs.append(reply[2])
        now = time.monotonic()
        if now - self._last_beat >= self.config.heartbeat_s:
            self._last_beat = now
            for i in range(self.n):
                self._log({"event": "shard_heartbeat", "shard": i,
                           "sim_now_ns": horizon,
                           "events_executed": self._last_events[i]})
        return outs

    def open_windows(self) -> None:
        """Open measurement windows on every shard."""
        for conn in self._conns:
            conn.send(("open",))
        for i in range(self.n):
            self._recv(i)

    def finish(self) -> List[Tuple]:
        """Collect every shard's final export and log its event count."""
        for conn in self._conns:
            conn.send(("finish",))
        finals = []
        for i in range(self.n):
            reply = self._recv(i)
            finals.append(reply[1:])
            self._log({"event": "shard_done", "shard": i,
                       "events_executed": reply[4]})
        return finals

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
        for conn in self._conns:
            conn.close()
        self._log({"event": "shard_pool_done", "shards": self.n,
                   "events_executed": list(self._last_events)})
