"""Content-addressed on-disk result cache for simulation points.

A cache entry is keyed by a SHA-256 over four components:

``worker ref | canonical params JSON | seed | code fingerprint``

The *code fingerprint* hashes the content of every ``.py`` file in the
``repro`` package, so editing any simulator/experiment source invalidates
every entry (a point's params cannot see which code paths it exercises, so
the only safe granularity is the whole package). Params and seed changes
invalidate exactly the points they affect.

Values are stored as JSON (workers return plain dicts/lists/scalars) under
``.repro_cache/points/<key[:2]>/<key>.json`` with enough metadata to audit
an entry (point id, params, seed, elapsed, fingerprint). Writes are
atomic (tmp file + ``os.replace``) so a crashed or parallel run never
leaves a truncated entry; reads treat any undecodable entry as a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple

from .sweep import Point, canonical_params

__all__ = ["ResultCache", "code_fingerprint", "cache_key", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro_cache"

_FINGERPRINT_CACHE: Dict[str, str] = {}


def code_fingerprint(package_root: Optional[str] = None) -> str:
    """Digest of all ``repro`` package sources (memoised per process)."""
    if package_root is None:
        package_root = str(Path(__file__).resolve().parent.parent)
    cached = _FINGERPRINT_CACHE.get(package_root)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    root = Path(package_root)
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()[:16]
    _FINGERPRINT_CACHE[package_root] = fingerprint
    return fingerprint


def cache_key(point: Point, fingerprint: str, audit_tag: str = "") -> str:
    # content_key is "fn|params|seed" for healthy points — byte-identical
    # to the historical four-component blob — and gains a "|faults=..."
    # component for faulted points, so they can never collide with (or be
    # served from) a healthy entry. audit_tag is non-empty only under
    # strict audit gating: a gated run must not be satisfied by an entry
    # whose audit summary was never captured, while runs without gating
    # keep their historical keys byte for byte.
    blob = f"{point.content_key}|{fingerprint}"
    if audit_tag:
        blob += f"|audit={audit_tag}"
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Get/put point results; misses on absent, stale, or corrupt entries."""

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 fingerprint: Optional[str] = None,
                 audit_tag: str = ""):
        self.root = Path(root)
        self.fingerprint = fingerprint or code_fingerprint()
        #: Non-empty under strict audit gating; see :func:`cache_key`.
        self.audit_tag = audit_tag
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / "points" / key[:2] / f"{key}.json"

    def key(self, point: Point) -> str:
        return cache_key(point, self.fingerprint, self.audit_tag)

    def get_entry(self, point: Point) -> Optional[Dict[str, Any]]:
        """Full cache record (metadata + value + audit summary) or None;
        a corrupt entry is a miss, not an error."""
        path = self._path(self.key(point))
        try:
            with open(path, encoding="utf-8") as fh:
                record = json.load(fh)
            record["value"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def get(self, point: Point) -> Tuple[bool, Any]:
        """Return ``(hit, value)``; a corrupt entry is a miss, not an error."""
        record = self.get_entry(point)
        if record is None:
            return False, None
        return True, record["value"]

    def put(self, point: Point, value: Any,
            elapsed: Optional[float] = None,
            audit: Optional[Dict[str, Any]] = None) -> None:
        record = {
            "point_id": point.point_id,
            "fn": point.fn,
            "params": dict(point.params),
            "seed": point.seed,
            "faults": point.faults or None,
            "scenario": point.scenario or None,
            "fingerprint": self.fingerprint,
            "elapsed_s": elapsed,
            "saved_at": time.time(),
            "audit": audit,
            "value": value,
        }
        path = self._path(self.key(point))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def contains(self, point: Point) -> bool:
        return self._path(self.key(point)).is_file()

    def prune(self, keep_fingerprints: Iterable[str] = ()) -> int:
        """Delete entries whose fingerprint is neither current nor kept.
        Returns the number of entries removed."""
        keep = set(keep_fingerprints) | {self.fingerprint}
        removed = 0
        points_dir = self.root / "points"
        if not points_dir.is_dir():
            return 0
        for path in points_dir.glob("*/*.json"):
            try:
                with open(path, encoding="utf-8") as fh:
                    record = json.load(fh)
                stale = record.get("fingerprint") not in keep
            except (OSError, ValueError):
                stale = True
            if stale:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
