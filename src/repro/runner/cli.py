"""Sweep orchestration glue: cache + pool + progress + experiment registry.

:func:`execute_points` is the core primitive: deduplicate points by
structural identity (the same simulation requested by two experiments
runs once), serve what the result cache already has, fan the rest across
the worker pool, and persist fresh results — returning a complete
``point_id -> value`` mapping plus any points that exhausted their
retries.

:func:`run_sweeps` builds the point list for a set of experiment ids,
executes it, and collects each experiment's :class:`ExperimentResult`.
Experiments that don't (yet) expose a sweep run as a single opaque
"whole" point via :func:`run_whole_experiment`, so they still cache and
parallelise against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .cache import DEFAULT_CACHE_DIR, ResultCache
from .pool import PointOutcome, PoolConfig, WorkerPool
from .progress import Progress
from .sweep import Point, make_point

__all__ = ["RunnerOptions", "SweepOutcome", "execute_points", "run_sweeps",
           "run_whole_experiment", "run_experiment_cached"]


@dataclass
class RunnerOptions:
    jobs: int = 1
    use_cache: bool = True
    #: Ignore existing cache entries (but still write fresh ones).
    rerun: bool = False
    cache_dir: str = DEFAULT_CACHE_DIR
    timeout: Optional[float] = None
    retries: int = 1
    backoff: float = 0.5
    quiet: bool = False
    #: Override the runlog location (default: ``<cache_dir>/runlog.jsonl``).
    runlog: Optional[str] = None
    #: Profile every executed point with cProfile, dumping one ``.prof``
    #: per point into this directory. Implies serial execution and skips
    #: cache reads (a cache hit would mean nothing runs to profile).
    profile_dir: Optional[str] = None
    #: Fail the run (exit 1) if any point reports a conservation-audit
    #: violation. Also switches the cache to audit-tagged keys, so gated
    #: runs never trust entries whose audit summary was never captured —
    #: and, symmetrically, keys of ungated runs stay byte-identical to
    #: their historical values.
    strict_audit: bool = False


@dataclass
class SweepOutcome:
    """Per-experiment result of :func:`run_sweeps`."""

    exp_id: str
    result: Any = None              # ExperimentResult when collection ran
    error: Optional[str] = None
    n_points: int = 0
    n_executed: int = 0
    n_cached: int = 0


def execute_points(points: List[Point], options: RunnerOptions,
                   progress: Optional[Progress] = None,
                   ) -> Tuple[Dict[str, Any], List[PointOutcome]]:
    """Run (or recall) every point; see module docstring."""
    cache = None
    if options.use_cache:
        cache = ResultCache(options.cache_dir,
                            audit_tag="v1" if options.strict_audit else "")

    # Structural dedupe: first point with a given content_key is canonical.
    unique: Dict[str, Point] = {}
    for point in points:
        unique.setdefault(point.content_key, point)

    values: Dict[str, Any] = {}     # content_key -> value
    to_run: List[Point] = []
    skip_cache_read = options.rerun or options.profile_dir is not None
    for key, point in unique.items():
        if cache is not None and not skip_cache_read:
            entry = cache.get_entry(point)
            if entry is not None:
                values[key] = entry["value"]
                if progress:
                    progress.point_finished(PointOutcome(
                        point=point, ok=True, value=entry["value"],
                        cached=True, audit=entry.get("audit")))
                continue
        to_run.append(point)

    failures: List[PointOutcome] = []

    def _on_done(outcome: PointOutcome) -> None:
        if outcome.ok:
            values[outcome.point.content_key] = outcome.value
            if cache is not None:
                cache.put(outcome.point, outcome.value,
                          elapsed=outcome.elapsed, audit=outcome.audit)
        else:
            failures.append(outcome)
        if progress:
            progress.point_finished(outcome)

    pool = WorkerPool(PoolConfig(jobs=options.jobs, timeout=options.timeout,
                                 retries=options.retries,
                                 backoff=options.backoff,
                                 profile_dir=options.profile_dir))
    pool.run(to_run,
             on_start=progress.point_started if progress else None,
             on_done=_on_done)

    results = {p.point_id: values[p.content_key]
               for p in points if p.content_key in values}
    return results, failures


# ----------------------------------------------------------------------
# Whole-experiment fallback worker (experiments without points()/collect())
# ----------------------------------------------------------------------
def run_whole_experiment(params: Dict[str, Any],
                         seed: Optional[int]) -> Dict[str, Any]:
    from ..experiments import run_experiment
    result = run_experiment(params["exp_id"], quick=params["quick"],
                            seed=seed)
    return result.to_dict()


def _whole_point(exp_id: str, quick: bool, seed: Optional[int]) -> Point:
    return Point(exp_id=exp_id, fn="repro.runner.cli:run_whole_experiment",
                 params={"exp_id": exp_id, "quick": quick}, seed=seed,
                 label="whole")


# ----------------------------------------------------------------------
# Experiment-level orchestration
# ----------------------------------------------------------------------
def run_sweeps(exp_ids: List[str], quick: bool = True,
               seed: Optional[int] = None,
               options: Optional[RunnerOptions] = None,
               progress: Optional[Progress] = None,
               ) -> Tuple[List[SweepOutcome], Progress]:
    """Execute the combined sweep of several experiments, then collect."""
    from ..experiments import EXPERIMENTS
    from ..experiments.report import ExperimentResult

    options = options or RunnerOptions()
    plans: List[Tuple[str, Any, List[Point]]] = []  # (exp_id, spec, points)
    for exp_id in exp_ids:
        spec = EXPERIMENTS[exp_id]
        if spec.points is not None:
            pts = spec.points(quick=quick, seed=seed)
        else:
            pts = [_whole_point(exp_id, quick, seed)]
        plans.append((exp_id, spec, pts))

    all_points = [p for _, _, pts in plans for p in pts]
    if progress is None:
        runlog = options.runlog or f"{options.cache_dir}/runlog.jsonl"
        progress = Progress(total=len(all_points), jobs=options.jobs,
                            jsonl_path=runlog, quiet=options.quiet)
    results, failures = execute_points(all_points, options, progress)
    failed_ids = {o.point.point_id: o.error for o in failures}

    outcomes: List[SweepOutcome] = []
    for exp_id, spec, pts in plans:
        outcome = SweepOutcome(exp_id=exp_id, n_points=len(pts))
        missing = [p for p in pts if p.point_id not in results]
        if missing:
            details = "; ".join(
                f"{p.point_id}: {failed_ids.get(p.point_id, 'no result')}"
                for p in missing[:3])
            outcome.error = (f"{len(missing)}/{len(pts)} points failed "
                             f"({details})")
        elif spec.points is not None:
            outcome.result = spec.collect(results, quick=quick, seed=seed)
        else:
            outcome.result = ExperimentResult.from_dict(
                results[pts[0].point_id])
        outcomes.append(outcome)
    return outcomes, progress


def run_experiment_cached(exp_id: str, quick: bool = True,
                          seed: Optional[int] = None,
                          options: Optional[RunnerOptions] = None):
    """One experiment through the cache (used by benchmarks/conftest.py).

    Returns the ExperimentResult; raises RuntimeError if points failed.
    """
    options = options or RunnerOptions(quiet=True)
    outcomes, _ = run_sweeps([exp_id], quick=quick, seed=seed,
                             options=options)
    outcome = outcomes[0]
    if outcome.error:
        raise RuntimeError(f"{exp_id}: {outcome.error}")
    return outcome.result
