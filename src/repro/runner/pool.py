"""Fault-tolerant process pool for simulation points.

Each worker process pulls one point at a time from its own task queue and
reports on a shared result queue; the supervisor (this module, in the
parent) owns all policy:

- **per-point timeout** — a worker that overruns its deadline is
  terminated and replaced; the point is retried;
- **crash tolerance** — a worker that dies without reporting (segfault,
  ``os._exit``, OOM-kill) is detected by liveness polling and replaced;
- **bounded retry with backoff** — every failure (exception, crash,
  timeout) is retried up to ``retries`` times, with exponentially growing
  delay, then recorded as a :class:`PointOutcome` failure — one bad point
  never aborts the sweep;
- **graceful degradation** — ``jobs <= 1``, or any failure to start
  ``multiprocessing`` workers (platforms without ``fork``/semaphores),
  falls back to in-process serial execution with the same retry policy
  (timeouts cannot be enforced without process isolation and are
  documented as best-effort there).

Results are deterministic regardless of scheduling: a point's value is a
pure function of ``(fn, params, seed)``, so the supervisor only collates.
"""

from __future__ import annotations

import cProfile
import multiprocessing
import os
import queue as queue_mod
import re
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..audit import drain_reports
from .sweep import Point, resolve_worker

__all__ = ["PoolConfig", "PointOutcome", "WorkerPool"]

_POLL_S = 0.05


@dataclass
class PoolConfig:
    #: Worker processes; ``<= 1`` selects the in-process serial path.
    jobs: int = 1
    #: Per-point wall-clock budget in seconds (``None`` = unlimited).
    timeout: Optional[float] = None
    #: Extra attempts after the first failure.
    retries: int = 1
    #: Base retry delay in seconds; doubles per subsequent attempt.
    backoff: float = 0.5
    #: multiprocessing start method (``None`` = platform default).
    start_method: Optional[str] = None
    #: When set, wrap each point in ``cProfile`` and dump a ``.prof`` file
    #: per point into this directory. Forces serial in-process execution
    #: (child-process profiles would be lost with the worker).
    profile_dir: Optional[str] = None


@dataclass
class PointOutcome:
    point: Point
    ok: bool
    value: Any = None
    error: Optional[str] = None
    attempts: int = 1
    elapsed: float = 0.0
    cached: bool = False
    #: Conservation-audit summary drained from ``repro.audit`` after the
    #: point executed (``None``: no audited scenario ran, or the value was
    #: served from a cache entry that predates auditing).
    audit: Optional[Dict[str, Any]] = None


@dataclass
class _TaskState:
    point: Point
    attempts: int = 0
    ready_at: float = 0.0           # backoff gate for the next attempt
    retry_pending: bool = False
    outcome: Optional[PointOutcome] = None
    errors: List[str] = field(default_factory=list)


class _Worker:
    """One child process plus its dedicated task queue."""

    def __init__(self, ctx, result_q, name: str):
        self.task_q = ctx.Queue()
        self.proc = ctx.Process(target=_worker_main,
                                args=(self.task_q, result_q),
                                name=name, daemon=True)
        self.proc.start()
        self.task_idx: Optional[int] = None
        self.deadline: Optional[float] = None
        self.started_at: float = 0.0

    @property
    def idle(self) -> bool:
        return self.task_idx is None

    def assign(self, idx: int, point: Point,
               timeout: Optional[float]) -> None:
        now = time.monotonic()
        self.task_idx = idx
        self.started_at = now
        self.deadline = (now + timeout) if timeout else None
        self.task_q.put((idx, point.fn, dict(point.params), point.seed))

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5)
        self.task_q.close()
        self.task_q.cancel_join_thread()


def _worker_main(task_q, result_q) -> None:
    # The parent-side daemon flag (which reaps us on pool exit) also
    # copies into this process and would forbid us children of our own.
    # Clearing the child-local copy lets points that shard across worker
    # processes (repro.runner.shardpool) run under the pool; the parent
    # still sees us as daemonic.
    multiprocessing.current_process().daemon = False
    while True:
        item = task_q.get()
        if item is None:
            return
        idx, fn, params, seed = item
        start = time.monotonic()
        try:
            value = resolve_worker(fn)(params, seed)
            result_q.put((idx, True, value, None, time.monotonic() - start,
                          drain_reports()))
        except BaseException as exc:  # report, don't die: the pool retries
            drain_reports()  # discard partial reports of the failed attempt
            detail = "".join(
                traceback.format_exception_only(type(exc), exc)).strip()
            result_q.put((idx, False, None, detail,
                          time.monotonic() - start, None))


class WorkerPool:
    """Execute a sequence of points under :class:`PoolConfig` policy."""

    def __init__(self, config: Optional[PoolConfig] = None):
        self.config = config or PoolConfig()
        #: Filled by :meth:`run`: True when the multiprocessing path was
        #: unavailable and the pool degraded to serial execution.
        self.degraded_to_serial = False

    # ------------------------------------------------------------------
    def run(self, points: Sequence[Point],
            on_start: Optional[Callable[[Point, int], None]] = None,
            on_done: Optional[Callable[[PointOutcome], None]] = None,
            ) -> List[PointOutcome]:
        """Run every point; returns outcomes in input order."""
        if not points:
            return []
        if self.config.jobs <= 1 or self.config.profile_dir:
            return self._run_serial(points, on_start, on_done)
        try:
            return self._run_pool(points, on_start, on_done)
        except (ImportError, OSError, ValueError) as exc:
            # No fork/spawn/semaphores on this platform: degrade, don't die.
            self.degraded_to_serial = True
            self.degradation_reason = f"{type(exc).__name__}: {exc}"
            return self._run_serial(points, on_start, on_done)

    # ------------------------------------------------------------------
    # Serial fallback
    # ------------------------------------------------------------------
    def _run_serial(self, points, on_start, on_done) -> List[PointOutcome]:
        cfg = self.config
        outcomes = []
        for point in points:
            attempts = 0
            errors: List[str] = []
            value = None
            ok = False
            audit = None
            start = time.monotonic()
            while attempts <= cfg.retries:
                attempts += 1
                if on_start:
                    on_start(point, attempts)
                try:
                    # In-process execution shares the audit mailbox with the
                    # caller; discard anything a previous caller left behind
                    # so it isn't attributed to this point.
                    drain_reports()
                    worker = resolve_worker(point.fn)
                    if cfg.profile_dir:
                        value = self._run_profiled(worker, point)
                    else:
                        value = worker(dict(point.params), point.seed)
                    ok = True
                    audit = drain_reports()
                    break
                except Exception as exc:
                    drain_reports()  # discard the failed attempt's reports
                    errors.append("".join(traceback.format_exception_only(
                        type(exc), exc)).strip())
                    if attempts <= cfg.retries:
                        time.sleep(cfg.backoff * (2 ** (attempts - 1)))
            outcome = PointOutcome(
                point=point, ok=ok, value=value,
                error=None if ok else "; ".join(errors),
                attempts=attempts, elapsed=time.monotonic() - start,
                audit=audit)
            outcomes.append(outcome)
            if on_done:
                on_done(outcome)
        return outcomes

    def _run_profiled(self, worker, point: Point):
        """Run one point under cProfile, dumping ``<point_id>.prof``."""
        profile_dir = self.config.profile_dir
        os.makedirs(profile_dir, exist_ok=True)
        fname = re.sub(r"[^A-Za-z0-9._-]+", "_", point.point_id) + ".prof"
        prof = cProfile.Profile()
        try:
            return prof.runcall(worker, dict(point.params), point.seed)
        finally:
            prof.dump_stats(os.path.join(profile_dir, fname))

    # ------------------------------------------------------------------
    # Multiprocessing path
    # ------------------------------------------------------------------
    def _run_pool(self, points, on_start, on_done) -> List[PointOutcome]:
        cfg = self.config
        ctx = (multiprocessing.get_context(cfg.start_method)
               if cfg.start_method else multiprocessing.get_context())
        result_q = ctx.Queue()
        n_workers = min(cfg.jobs, len(points))
        workers = [_Worker(ctx, result_q, name=f"repro-worker-{i}")
                   for i in range(n_workers)]
        tasks = [_TaskState(point=p) for p in points]
        pending: List[int] = list(range(len(tasks)))
        done_count = 0
        try:
            while done_count < len(tasks):
                now = time.monotonic()
                done_count += self._drain_results(result_q, tasks, workers,
                                                 on_done, now)
                done_count += self._police_workers(ctx, result_q, tasks,
                                                   workers, on_done)
                self._dispatch(tasks, pending, workers, on_start)
                if done_count < len(tasks):
                    time.sleep(_POLL_S)
        finally:
            self._shutdown(workers)
        return [t.outcome for t in tasks]

    # -- supervisor steps ----------------------------------------------
    def _drain_results(self, result_q, tasks, workers, on_done,
                       now) -> int:
        finished = 0
        while True:
            try:
                idx, ok, value, error, elapsed, audit = result_q.get_nowait()
            except queue_mod.Empty:
                return finished
            except (EOFError, OSError):  # queue torn by a killed worker
                return finished
            for worker in workers:
                if worker.task_idx == idx:
                    worker.task_idx = None
                    worker.deadline = None
            task = tasks[idx]
            if task.outcome is not None:
                continue  # late duplicate from a timed-out attempt
            if ok:
                task.outcome = PointOutcome(
                    point=task.point, ok=True, value=value,
                    attempts=task.attempts, elapsed=elapsed, audit=audit)
                finished += 1
                if on_done:
                    on_done(task.outcome)
            else:
                task.errors.append(error)
                finished += self._fail_or_retry(task, now, on_done)
        return finished

    def _police_workers(self, ctx, result_q, tasks, workers,
                        on_done) -> int:
        """Detect crashed and overrun workers; replace them; retry."""
        finished = 0
        now = time.monotonic()
        for i, worker in enumerate(workers):
            if worker.idle:
                if not worker.proc.is_alive():  # died between tasks
                    workers[i] = _Worker(ctx, result_q, worker.proc.name)
                continue
            crashed = not worker.proc.is_alive()
            overrun = worker.deadline is not None and now > worker.deadline
            if not (crashed or overrun):
                continue
            idx = worker.task_idx
            task = tasks[idx]
            worker.kill()
            workers[i] = _Worker(ctx, result_q, worker.proc.name)
            if task.outcome is not None:
                continue  # result arrived in a drain just before the check
            task.errors.append(
                f"timeout after {self.config.timeout}s" if overrun
                else f"worker died (exit {worker.proc.exitcode})")
            finished += self._fail_or_retry(task, now, on_done)
        return finished

    def _fail_or_retry(self, task: _TaskState, now: float, on_done) -> int:
        if task.attempts <= self.config.retries:
            task.ready_at = now + self.config.backoff * (
                2 ** (task.attempts - 1))
            task.retry_pending = True
            return 0
        task.outcome = PointOutcome(
            point=task.point, ok=False, value=None,
            error="; ".join(task.errors), attempts=task.attempts)
        if on_done:
            on_done(task.outcome)
        return 1

    def _dispatch(self, tasks, pending: List[int], workers, on_start):
        now = time.monotonic()
        # Refill the pending list with tasks whose backoff expired.
        for idx, task in enumerate(tasks):
            if getattr(task, "retry_pending", False) and now >= task.ready_at:
                task.retry_pending = False
                pending.append(idx)
        for worker in workers:
            if not pending:
                return
            if not worker.idle or not worker.proc.is_alive():
                continue
            idx = pending.pop(0)
            task = tasks[idx]
            task.attempts += 1
            if on_start:
                on_start(task.point, task.attempts)
            worker.assign(idx, task.point, self.config.timeout)

    @staticmethod
    def _shutdown(workers) -> None:
        for worker in workers:
            try:
                worker.task_q.put(None)
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + 5
        for worker in workers:
            worker.proc.join(timeout=max(0.1, deadline - time.monotonic()))
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=2)
