"""Sharded conservative parallel DES (see ``docs/SHARDING.md``).

A big fabric scenario normally executes on one event kernel — one
:class:`~repro.sim.Simulator` draining one calendar — which caps
throughput at a single core. This package partitions the fabric at
switch boundaries (:func:`repro.topo.partition`) into N *shard kernels*
(:class:`~repro.shard.kernel.ShardKernel`), each a scoped scenario
replica with its own simulator, host-prefixed RNG streams, and audit
ledger, connected by channels that carry boundary-link packets and ACKs
together with their exact calendar keys.

Synchronisation is conservative: the fixed propagation delay of the cut
links bounds how fast causality crosses a boundary, so all kernels can
run ``lookahead`` ns past the last barrier without hearing from each
other (:func:`~repro.shard.coordinator.run_sharded`). Because every
cross-shard event replays under the identical ``(time, composite seq)``
key the single kernel would have used, sharded measurements — and the
``python -m repro.scenario run --shards N`` stdout — are byte-identical
to the single-kernel run at the same seed, for any shard count.

Execution modes: ``inline`` (all kernels in this process; the
deterministic reference) and ``process`` (one worker per shard with
runlog heartbeats; :mod:`repro.runner.shardpool`).
"""

from .coordinator import InlineShards, run_sharded
from .kernel import ShardKernel

__all__ = ["InlineShards", "ShardKernel", "run_sharded"]
