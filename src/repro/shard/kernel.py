"""One shard of a conservative parallel DES run.

A :class:`ShardKernel` wraps a scoped :class:`~repro.workloads.
topo_scenario.TopoScenario` replica: the *whole* scenario build runs
(flow ordinals, ECMP draws, RNG stream positions — the global
bookkeeping every shard must agree on), but live components exist only
for the shard's own cell of the :class:`~repro.topo.partition.ShardPlan`.
Boundary links are rewired into channel messages via
:meth:`repro.topo.Fabric.attach_channels`:

- an outbound message is ``(dst_shard, kind, when, seq, payload)`` where
  ``(when, seq)`` is the exact calendar key the emitting kernel consumed
  (``seq`` is the composite domain sequence number, see
  :data:`repro.sim.engine.DOMAIN_SHIFT`);
- ``kind == "pkt"`` carries ``(src_switch, dst_switch, snapshot)`` for a
  boundary-link packet, replayed by the peer's cut-ingress dispatch;
- ``kind == "ack"`` carries ``(flow_ordinal, pkt_seq, marked)`` for an
  ACK whose client lives in a peer shard.

Because both halves execute under the identical key, the union of all
shards' event sequences is exactly the single kernel's calendar order —
which is what makes sharded measurements byte-identical.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Mapping, Tuple

from ..audit import record_report
from ..topo.partition import ShardPlan
from ..workloads.topo_scenario import TopoScenario

__all__ = ["ShardKernel"]


class ShardKernel:
    """Shard ``index`` of ``plan``: a scoped scenario replica plus its
    channel outbox, driven in barrier windows by a coordinator (the
    inline one in :mod:`repro.shard.coordinator` or the process pool in
    :mod:`repro.runner.shardpool`)."""

    def __init__(self, normal: Mapping[str, Any], plan: ShardPlan,
                 index: int):
        self.plan = plan
        self.index = index
        self.scenario = TopoScenario(
            normal, scope=set(plan.cells[index])).build()
        self.fabric = self.scenario.fabric
        self.sim = self.fabric.sim
        #: Messages emitted since the last :meth:`advance` drain.
        self.outbox: List[Tuple] = []
        self._next_audit = float(TopoScenario.AUDIT_BARRIER_NS)
        self.fabric.attach_channels(self._emit_packet, self._emit_ack)

    # -- channel emitters (installed on the scoped fabric) --------------
    def _emit_packet(self, src_sw: str, dst_sw: str, when: float,
                     seq: int, snap: tuple) -> None:
        """Queue a boundary-link packet for the shard owning ``dst_sw``."""
        self.outbox.append((self.plan.shard_of_switch[dst_sw], "pkt",
                            when, seq, (src_sw, dst_sw, snap)))

    def _emit_ack(self, ordinal: int, when: float, seq: int,
                  pkt_seq: int, marked: bool) -> None:
        """Queue an ACK for the shard owning the flow's client host."""
        flow = self.fabric.flows_by_ordinal[ordinal]
        src = self.fabric.flow_sources[flow.flow_id]
        self.outbox.append((self.plan.shard_of_host[src], "ack",
                            when, seq, (ordinal, pkt_seq, marked)))

    # -- coordinator protocol -------------------------------------------
    @property
    def now(self) -> float:
        """This kernel's simulated time, ns."""
        return self.sim.now

    @property
    def events_executed(self) -> int:
        """Events executed by bounded-horizon windows so far."""
        return self.sim.events_executed

    def inject(self, msg: Tuple) -> None:
        """Insert a peer shard's channel message into the local calendar
        under its original ``(when, seq)`` key."""
        _dst, kind, when, seq, payload = msg
        if kind == "pkt":
            src_sw, dst_sw, snap = payload
            self.fabric.inject_packet(src_sw, dst_sw, when, seq,
                                      tuple(snap))
        else:
            ordinal, pkt_seq, marked = payload
            self.fabric.inject_ack(ordinal, when, seq, pkt_seq, marked)

    def advance(self, horizon: float,
                inclusive: bool = False) -> Tuple[int, List[Tuple]]:
        """Run one conservative window up to ``horizon`` (exclusive, or
        inclusive at a phase's final barrier) and drain the outbox.
        Returns ``(events executed, emitted messages)``."""
        executed = self.sim.run_until(horizon, inclusive=inclusive)
        if self.sim.debug and self.scenario.reconciler is not None:
            self._debug_barrier()
        out, self.outbox = self.outbox, []
        return executed, out

    def _debug_barrier(self) -> None:
        """Mirror the single kernel's periodic conservation checks under
        ``REPRO_SIM_DEBUG=1``: once per crossed 50 µs boundary, evaluate
        the ``barrier_safe`` local accounts (cross-shard partial accounts
        are merged at end of run instead). Checks never schedule events,
        so they cannot perturb byte-identity."""
        now = self.sim.now
        if now < self._next_audit:
            return
        report = self.scenario.reconciler.check(now=now, barrier_only=True)
        if not report.ok:
            record_report(report)
        step = float(TopoScenario.AUDIT_BARRIER_NS)
        self._next_audit = (now // step + 1.0) * step

    def open_windows(self) -> None:
        """Open measurement windows on the local endpoints (counter
        reads only — safe between barrier windows)."""
        self.scenario.open_windows()

    def finish(self) -> Tuple[Dict[str, Dict[str, Any]],
                              List[Dict[str, Any]],
                              List[Dict[str, Any]], int]:
        """Close windows and export this shard's results: JSON-safe
        per-host metric dicts (audit not yet attached), the locally
        checked audit entries, the cross-shard partial snapshots, and
        the events-executed total."""
        results = {name: asdict(measurement)
                   for name, measurement
                   in self.scenario.finish_measurements().items()}
        reconciler = self.scenario.reconciler
        report = reconciler.check(now=self.sim.now)
        return (results, report.entries, reconciler.partial_snapshots(),
                self.events_executed)
