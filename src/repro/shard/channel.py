"""Coordinator-layer faults on cut links (the ``net.channel`` site).

Host-site faults compile into per-shard
:class:`~repro.faults.injectors.FaultController` processes; the one
place those controllers cannot reach is the *channel* — the cut links a
:class:`~repro.topo.partition.ShardPlan` severs, whose packets travel
as coordinator messages instead of simulator events.
:class:`ChannelFaultController` injects loss and latency there: the
coordinator passes every exchanged message through :meth:`apply`
between draining one shard's outbox and filling the next shard's inbox.

Determinism: the coordinator traverses messages in a fixed order
(shards in index order, each outbox in emission order), which is itself
a pure function of (scenario, shard count). Every stochastic decision
draws from a named stream of a seeded
:class:`~repro.sim.rng.RngRegistry`, so a plan plus a seed fully
determines every dropped or delayed message — identically in inline
and process mode. Under ``--shards 1`` there are no cut links and the
site is a declared no-op (:data:`repro.faults.plan.CHANNEL_SITE`).

Audit: a dropped message was debited ``transmitted`` by the egress
shard but never credits ``forwarded`` on the ingress shard; a delayed
message may still be un-forwarded at the measurement horizon. Both
would break the merged ``switch.<sw>.port.<i>.wire`` equation, so
:meth:`partial_snapshots` emits synthetic partials crediting
``channel_dropped`` / ``channel_delayed`` on the affected accounts —
appended *after* the shard partials so the real egress half fixes the
equation's parameters.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.plan import FaultSpec
from ..sim.rng import RngRegistry
from ..topo.fabric import port_plan

__all__ = ["ChannelFaultController"]

#: A channel message as emitted by :class:`~repro.shard.kernel
#: .ShardKernel`: ``(dst_shard, kind, when, seq, payload)``.
_Msg = Tuple[Any, ...]

_Filter = Callable[[_Msg], Optional[_Msg]]
_Handler = Callable[["ChannelFaultController", FaultSpec, int], _Filter]

#: (site, kind) -> filter factory.
_CHANNEL_HANDLERS: Dict[Tuple[str, str], _Handler] = {}  # repro: noqa=D106 -- registry, populated at import only


def _handler(site: str, kind: str):
    def register(fn: _Handler) -> _Handler:
        _CHANNEL_HANDLERS[(site, kind)] = fn
        return fn
    return register


class ChannelFaultController:
    """Compiles ``net.channel`` specs into per-message filters.

    ``specs`` is the channel half of :meth:`repro.faults.plan.FaultPlan.
    split_channel` (order names the RNG streams); ``seed`` the
    scenario's root seed; ``topology`` the *full* topology, whose
    :func:`~repro.topo.fabric.port_plan` names the audit account of any
    cut link without holding a fabric.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int, topology):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.rng = RngRegistry(seed)
        self._port_index: Dict[Tuple[str, str], int] = {}
        per_switch: Dict[str, int] = {}
        for sw, nbr in port_plan(topology):
            self._port_index[(sw, nbr)] = per_switch.get(sw, 0)
            per_switch[sw] = self._port_index[(sw, nbr)] + 1
        self._filters: List[Tuple[FaultSpec, _Filter]] = []
        for index, spec in enumerate(self.specs):
            factory = _CHANNEL_HANDLERS.get((spec.site, spec.kind))
            if factory is None:
                raise ValueError(f"no channel injector for "
                                 f"site={spec.site!r} kind={spec.kind!r}")
            self._filters.append((spec, factory(self, spec, index)))
        #: ``(src_switch, dst_switch, due time)`` per dropped message.
        self.drops: List[Tuple[str, str, float]] = []
        #: ``(src_switch, dst_switch, original due, rewritten due)``.
        self.delays: List[Tuple[str, str, float, float]] = []

    def __bool__(self) -> bool:
        return bool(self._filters)

    # ------------------------------------------------------------------
    def stream(self, spec: FaultSpec, index: int):
        """The spec's seeded draw stream. The default name is prefixed
        ``channel.`` so coordinator draws can never alias a host
        controller's ``faults.<i>.<site>.<kind>`` stream."""
        name = spec.stream or f"channel.{index}.{spec.site}.{spec.kind}"
        return self.rng.stream(name)

    def apply(self, msg: _Msg) -> Optional[_Msg]:
        """Filter one exchanged message: the message (possibly with a
        rewritten due time), or ``None`` when a fault consumed it.

        Only ``pkt`` messages — packets on a cut wire — are eligible;
        ACK messages model the receiver's bookkeeping, not a link.
        Window membership is judged on the *original* due time, so a
        latency rewrite cannot move a message into a later spec's
        window; rewrites by successive specs accumulate.
        """
        if msg[1] != "pkt":
            return msg
        orig = msg[2]
        src_sw, dst_sw = msg[4][0], msg[4][1]
        for spec, filt in self._filters:
            if not (spec.start <= orig < spec.start + spec.duration):
                continue
            verdict = filt(msg)
            if verdict is None:
                self.drops.append((src_sw, dst_sw, orig))
                return None
            msg = verdict
        if msg[2] != orig:
            self.delays.append((src_sw, dst_sw, orig, msg[2]))
        return msg

    # ------------------------------------------------------------------
    def partial_snapshots(self, t_end: float) -> List[Dict[str, Any]]:
        """Synthetic partials balancing the merged wire equations.

        A drop is credited when its message was due by ``t_end`` (later
        ones are still covered by the egress shard's ``in_flight``); a
        delay when the original due time is inside the run but the
        rewritten one is past it (otherwise it either forwarded
        normally or ``in_flight`` covers it).
        """
        credits: Dict[Tuple[str, str], Dict[str, float]] = {}
        for src_sw, dst_sw, when in self.drops:
            if when <= t_end:
                bucket = credits.setdefault((src_sw, dst_sw), {})
                bucket["channel_dropped"] = \
                    bucket.get("channel_dropped", 0.0) + 1.0
        for src_sw, dst_sw, orig, new in self.delays:
            if orig <= t_end < new:
                bucket = credits.setdefault((src_sw, dst_sw), {})
                bucket["channel_delayed"] = \
                    bucket.get("channel_delayed", 0.0) + 1.0
        out = []
        for (src_sw, dst_sw) in sorted(credits):
            index = self._port_index[(src_sw, dst_sw)]
            out.append({
                "account": f"switch.{src_sw}.port.{index}.wire",
                "unit": "packets",
                "debits": {},
                "credits": credits[(src_sw, dst_sw)],
                "slack": 0.0,
            })
        return out

    def describe(self) -> Dict[str, int]:
        """Injection counters for run stats and tests."""
        return {"specs": len(self.specs), "dropped": len(self.drops),
                "delayed": len(self.delays)}


# ----------------------------------------------------------------------
# net.channel — loss and latency on cut-link messages
# ----------------------------------------------------------------------
@_handler("net.channel", "loss")
def _channel_loss(controller: ChannelFaultController, spec: FaultSpec,
                  index: int) -> _Filter:
    """Drop an in-window message with probability ``magnitude``. The
    egress shard already executed the local wire half (``in_flight``
    decremented at the due time), so the loss is exactly a packet
    vanishing on the wire — the same observable as ``net.link`` loss,
    one propagation later."""
    rng = controller.stream(spec, index)
    p = spec.magnitude

    def filt(msg: _Msg) -> Optional[_Msg]:
        return None if rng.random() < p else msg

    return filt


@_handler("net.channel", "latency")
def _channel_latency(controller: ChannelFaultController, spec: FaultSpec,
                     index: int) -> _Filter:
    """Add ``magnitude`` ns to an in-window message's due time. The
    rewritten key ``(when + magnitude, seq)`` is still unique (``seq``
    is a one-shot composite domain counter value) and still in the
    receiver's future, so keyed injection stays valid."""
    extra = spec.magnitude

    def filt(msg: _Msg) -> Optional[_Msg]:
        dst, kind, when, seq, payload = msg
        return (dst, kind, when + extra, seq, payload)

    return filt
