"""Conservative barrier-window execution of a sharded scenario.

:func:`run_sharded` is the sharded twin of
:meth:`repro.workloads.topo_scenario.TopoScenario.run`: it partitions
the scenario's topology (:func:`repro.topo.partition`), builds one
:class:`~repro.shard.kernel.ShardKernel` per cell, and advances them in
lockstep windows of the plan's ``lookahead`` — the minimum propagation
delay across any cut link, below which no causal influence can cross a
shard boundary.

Each phase (warm-up, then measurement) runs the same loop::

    H = min(now + lookahead, T)
    advance every shard to H   (exclusive below T, inclusive at T)
    exchange channel messages  (injected under their original keys)
    now = H; stop when an inclusive pass injected nothing due <= T

Termination is guaranteed because a message emitted at time ``t``
arrives no earlier than ``t + lookahead``: once every kernel has
inclusively drained through ``T``, new messages are due strictly after
``T`` within at most two extra passes. Messages due past ``T`` stay in
the receivers' calendars for the next phase — exactly where the single
kernel's ``call_later`` entries would be.

The measurement windows, the audit merge
(:func:`repro.audit.merge_audit`), and the per-host result dicts are
assembled so the returned mapping serialises byte-identically to the
single-kernel run's at the same seed — the correctness gate pinned by
``tests/shard/test_byte_identity.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..audit import merge_audit, record_report
from ..scenario import fault_plan_of, validate
from ..scenario.schema import build_topology
from ..sim.units import US
from ..topo.partition import ShardPlan, partition
from ..workloads.topo_scenario import TopoScenario
from .channel import ChannelFaultController
from .kernel import ShardKernel

__all__ = ["InlineShards", "run_sharded"]


class InlineShards:
    """The reference shard executor: every kernel lives in this process
    and advances sequentially. Process-global id counters (flow ids,
    message ids, I/O buffer keys) interleave across kernels here, which
    is safe because they are identity tokens only — never part of any
    measurement, audit value, or output."""

    def __init__(self, normal: Mapping[str, Any], plan: ShardPlan):
        self.kernels = [ShardKernel(normal, plan, i)
                        for i in range(plan.n_shards)]

    def advance(self, horizon: float, inclusive: bool,
                inboxes: List[List[Tuple]]) -> List[List[Tuple]]:
        """Inject each kernel's inbox, run one window on every kernel,
        and return the per-kernel outboxes."""
        outs = []
        for kernel, inbox in zip(self.kernels, inboxes):
            for msg in inbox:
                kernel.inject(msg)
            _executed, out = kernel.advance(horizon, inclusive)
            outs.append(out)
        return outs

    def open_windows(self) -> None:
        """Open measurement windows on every kernel."""
        for kernel in self.kernels:
            kernel.open_windows()

    def finish(self) -> List[Tuple]:
        """Collect every kernel's ``(results, entries, partials,
        events)`` export."""
        return [kernel.finish() for kernel in self.kernels]

    def close(self) -> None:
        """Nothing to tear down for in-process kernels."""


def _barrier_run(executor, n: int, lookahead: float, start: float,
                 target: float, inbox: List[List[Tuple]],
                 channel: Optional[ChannelFaultController] = None
                 ) -> Tuple[int, float, List[List[Tuple]]]:
    """Advance all shards from ``start`` to ``target`` in conservative
    windows; returns ``(rounds, now, undelivered inbox)`` — the inbox
    holds only messages due strictly after ``target``, which the next
    phase's first window delivers. ``channel`` (the compiled
    ``net.channel`` fault filters) sits between outbox drain and inbox
    fill: it may drop a message or rewrite its due time, *before* the
    pending count so a drop never forces an extra round."""
    now = start
    rounds = 0
    while True:
        horizon = min(now + lookahead, target)
        inclusive = horizon >= target
        outs = executor.advance(horizon, inclusive, inbox)
        inbox = [[] for _ in range(n)]
        pending = 0
        for out in outs:
            for msg in out:
                if channel is not None:
                    msg = channel.apply(msg)
                    if msg is None:
                        continue
                inbox[msg[0]].append(msg)
                if msg[2] <= target:
                    pending += 1
        rounds += 1
        now = horizon
        if inclusive and pending == 0:
            return rounds, now, inbox


def run_sharded(spec: Mapping[str, Any], shards: int,
                mode: str = "inline", pool_config: Any = None,
                stats: Optional[Dict[str, Any]] = None
                ) -> Dict[str, Dict[str, Any]]:
    """Run ``spec`` partitioned into (at most) ``shards`` kernels.

    Returns the ``{host: metrics}`` mapping of
    :meth:`TopoScenario.run`, byte-identical as sorted JSON to the
    single-kernel result at the same seed. ``mode`` selects the inline
    reference executor or one worker process per shard
    (:class:`repro.runner.shardpool.ProcessShards`, configured by
    ``pool_config``). ``stats``, when given a dict, is filled with the
    partition summary, barrier-round count, and per-shard event counts
    (the scaling metric of ``benchmarks/test_shard_scaling.py``).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if mode not in ("inline", "process"):
        raise ValueError(f"unknown shard mode {mode!r}")
    normal = validate(spec)
    topology = build_topology(normal)
    plan = partition(topology, shards)
    if stats is not None:
        stats["plan"] = plan.describe()
    if plan.n_shards == 1:
        # Unsplittable (single-switch) or explicitly unsharded: the
        # plain scenario run IS the shard run, trivially identical.
        results = TopoScenario(normal).run()
        if stats is not None:
            stats["rounds"] = 0
            stats["events"] = None
        return results

    if mode == "process":
        from ..runner.shardpool import ProcessShards
        executor = ProcessShards(normal, plan, config=pool_config)  # repro: noqa=D111 -- pool wall-clock is worker-liveness supervision only; simulated state never reads it
    else:
        executor = InlineShards(normal, plan)

    channel_specs, _host_faults = fault_plan_of(normal).split_channel()
    channel = (ChannelFaultController(channel_specs, normal["seed"],
                                      topology)
               if channel_specs else None)

    measure = normal["measure"]
    t_warm = measure["warmup_us"] * US
    t_end = t_warm + measure["duration_us"] * US
    n = plan.n_shards
    try:
        inbox: List[List[Tuple]] = [[] for _ in range(n)]
        rounds, now, inbox = _barrier_run(
            executor, n, plan.lookahead, 0.0, t_warm, inbox,
            channel=channel)
        executor.open_windows()
        more, now, inbox = _barrier_run(
            executor, n, plan.lookahead, now, t_end, inbox,
            channel=channel)
        finals = executor.finish()
    finally:
        executor.close()

    host_results: Dict[str, Dict[str, Any]] = {}
    entries_per: List[List[Dict[str, Any]]] = []
    partials_per: List[List[Dict[str, Any]]] = []
    events: List[int] = []
    for results, entries, partials, executed in finals:
        host_results.update(results)
        entries_per.append(entries)
        partials_per.append(partials)
        events.append(executed)

    if channel is not None:
        # After the shard partials: the real egress half must be the
        # first-seen partial of each account (it carries the equation's
        # bounded/tolerance parameters).
        partials_per.append(channel.partial_snapshots(t_end))

    report = merge_audit(t_end, entries_per, partials_per)
    audit_dict = report.to_dict()
    ordered: Dict[str, Dict[str, Any]] = {}
    for spec_host in topology.server_hosts:
        metrics = host_results[spec_host.name]
        metrics["audit"] = audit_dict
        ordered[spec_host.name] = metrics
    record_report(report)
    if stats is not None:
        stats["rounds"] = rounds + more
        stats["events"] = events
        if channel is not None:
            stats["channel"] = channel.describe()
    return ordered
