"""A DPDK-flavoured poll-mode I/O facade (`librte_ethdev` analogue).

CEIO's host library sits on top of ``librte_ethdev`` (§5); applications in
this repo consume packets through this shim so switching the underlying
I/O architecture (baseline / HostCC / ShRing / CEIO) never changes
application code — exactly the compatibility story of the paper.
"""

from __future__ import annotations

from typing import List, Optional

from ..io_arch.base import IOArchitecture, RxRecord
from ..net.packet import Flow
from ..sim.stats import Counter

__all__ = ["Mempool", "EthDev", "RX_BURST_MAX"]

#: Standard DPDK burst size.
RX_BURST_MAX = 32


class Mempool:
    """Fixed-size mbuf pool with allocation accounting.

    Descriptor-level back-pressure lives in the I/O architecture; the pool
    tracks software-side exhaustion (an application bug class worth
    simulating: leaking mbufs eventually stalls receive).
    """

    def __init__(self, name: str, capacity: int, buf_size: int = 2048):
        if capacity <= 0:
            raise ValueError("mempool capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.buf_size = buf_size
        self._free = capacity
        self.alloc_failures = Counter(f"{name}.alloc_failures")

    @property
    def available(self) -> int:
        return self._free

    @property
    def in_use(self) -> int:
        return self.capacity - self._free

    def alloc(self, count: int = 1) -> bool:
        if count > self._free:
            self.alloc_failures.add(1)
            return False
        self._free -= count
        return True

    def free(self, count: int = 1) -> None:
        self._free = min(self.capacity, self._free + count)


class EthDev:
    """Poll-mode ethernet device bound to one I/O architecture."""

    def __init__(self, arch: IOArchitecture,
                 mempool: Optional[Mempool] = None):
        self.arch = arch
        self.sim = arch.sim
        self.mempool = mempool or Mempool(
            "default", capacity=1 << 20,
            buf_size=arch.host.config.io_buf_size)
        self.rx_burst_calls = Counter("ethdev.rx_bursts")
        self.tx_packets = Counter("ethdev.tx_packets")

    def rx_queue_setup(self, flow: Flow) -> None:
        """Bind a flow to a receive queue (rte_eth_rx_queue_setup)."""
        self.arch.register_flow(flow)

    def rx_burst(self, flow: Flow, max_packets: int = RX_BURST_MAX):
        """Process: receive up to ``max_packets`` records (rte_eth_rx_burst).

        Generator so that architectures with blocking receive semantics can
        stall the caller; the common case returns immediately.
        """
        self.rx_burst_calls.add(1)
        records = yield from self.arch.recv_burst(flow, max_packets)
        if records:
            self.mempool.alloc(len(records))
        return records

    def tx_burst(self, count: int) -> None:
        """Transmit-side accounting (responses leave on an uncontended
        reverse path; their CPU cost is charged by the application)."""
        self.tx_packets.add(count)

    def free(self, records: List[RxRecord]) -> None:
        """Return mbufs to the pool and descriptors to the architecture."""
        if not records:
            return
        self.arch.release(records)
        self.mempool.free(len(records))
