"""A verbs-flavoured RDMA facade (`libibverbs` analogue).

Receive-side RDMA semantics relevant to the paper:

- payloads land in registered buffers without per-packet CPU involvement
  (CPU-bypass flows, §2.1);
- the *application* learns about data at **message** granularity — e.g. an
  RDMA Write-with-immediate after a batch of writes (the NCCL pattern §4.1
  cites). This is exactly what makes lazy credit release starve bypass
  flows onto CEIO's slow path;
- UD mode carries one message per datagram and supports many remote QPs
  cheaply (used by the thousand-flow experiment, Figure 12).

The NIC-side reassembly (grouping packets into message completions) runs
as a polling process that charges no host-CPU time — it models the RNIC's
own DMA/completion engine, not software.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from ..io_arch.base import IOArchitecture, RxRecord
from ..net.packet import Flow
from ..sim import Simulator, Store
from ..sim.stats import Counter

__all__ = ["QpType", "WorkCompletion", "CompletionQueue", "QueuePair",
           "RdmaEndpoint"]


class QpType(enum.Enum):
    RC = "reliable-connection"
    UD = "unreliable-datagram"


class WorkCompletion:
    """One CQE: a completed receive (message-granularity)."""

    __slots__ = ("flow", "message_id", "byte_len", "records", "timestamp",
                 "opcode")

    def __init__(self, flow: Flow, message_id: int, byte_len: int,
                 records: List[RxRecord], timestamp: float,
                 opcode: str = "RECV_RDMA_WITH_IMM"):
        self.flow = flow
        self.message_id = message_id
        self.byte_len = byte_len
        self.records = records
        self.timestamp = timestamp
        self.opcode = opcode


class CompletionQueue:
    """Completion queue polled (or blocked on) by the application."""

    def __init__(self, sim: Simulator, depth: int = 4096):
        self.sim = sim
        self._cq = Store(sim, capacity=depth, name="cq")
        self.overflows = Counter("cq.overflows")

    def __len__(self) -> int:
        return len(self._cq)

    def push(self, wc: WorkCompletion) -> None:
        if not self._cq.try_put(wc):
            self.overflows.add(1)

    def poll(self, max_wc: int) -> List[WorkCompletion]:
        """Non-blocking poll (ibv_poll_cq)."""
        return self._cq.get_batch(max_wc)

    def wait(self):
        """Process: block until one completion is available (event channel)."""
        wc = yield self._cq.get()
        return wc


class QueuePair:
    """A receive queue pair bound to a flow."""

    def __init__(self, arch: IOArchitecture, flow: Flow,
                 qp_type: QpType, cq: CompletionQueue):
        self.arch = arch
        self.flow = flow
        self.qp_type = qp_type
        self.cq = cq
        self.posted_recvs = Counter(f"qp{flow.flow_id}.posted")
        arch.register_flow(flow)

    def post_recv(self, count: int) -> None:
        """Post receive WQEs (descriptor budget is owned by the arch)."""
        self.posted_recvs.add(count)


class RdmaEndpoint:
    """NIC-side reassembly: packets -> message-granularity completions.

    One endpoint serves many QPs sharing a CQ. It polls the architecture's
    receive rings, groups records by ``message_id``, and pushes a WC once
    a message's packet count is complete (the Write-with-immediate /
    last-fragment signal).
    """

    #: Stop pulling from the receive rings while this many completions are
    #: already waiting for the application: an unbounded pull would absorb
    #: arbitrary bursts into the CQ where no flow-control loop can see
    #: them. With a bounded CQ the backlog stays in the I/O architecture's
    #: buffers, where its congestion machinery applies.
    MAX_CQ_BACKLOG = 32

    def __init__(self, arch: IOArchitecture, cq: CompletionQueue,
                 poll_interval: float = 1_000.0, burst: int = 64):
        self.arch = arch
        self.sim = arch.sim
        self.cq = cq
        self.poll_interval = poll_interval
        self.burst = burst
        self.qps: Dict[int, QueuePair] = {}
        self._partial: Dict[int, List[RxRecord]] = {}
        self.messages_completed = Counter("rdma.messages")
        self._proc = None

    def create_qp(self, flow: Flow, qp_type: QpType = QpType.RC) -> QueuePair:
        qp = QueuePair(self.arch, flow, qp_type, self.cq)
        self.qps[flow.flow_id] = qp
        return qp

    def destroy_qp(self, flow: Flow) -> None:
        self.qps.pop(flow.flow_id, None)

    def start(self) -> None:
        if self._proc is None:
            self._proc = self.sim.process(self._reassembly_loop(),
                                          name="rdma-endpoint")

    def _reassembly_loop(self):
        while True:
            if len(self.cq) >= self.MAX_CQ_BACKLOG:
                yield self.poll_interval
                continue
            progressed = False
            for fid, qp in list(self.qps.items()):
                records = yield from self.arch.recv_burst(qp.flow, self.burst)
                if records:
                    progressed = True
                    self._absorb(qp, records)
            if not progressed:
                yield self.poll_interval

    def _absorb(self, qp: QueuePair, records: List[RxRecord]) -> None:
        expected = qp.flow.packets_per_message
        for record in records:
            mid = record.packet.message_id
            parts = self._partial.setdefault(mid, [])
            parts.append(record)
            if len(parts) >= expected or record.packet.last_in_message:
                del self._partial[mid]
                byte_len = sum(r.packet.payload for r in parts)
                self.cq.push(WorkCompletion(qp.flow, mid, byte_len,
                                            parts, self.sim.now))
                self.messages_completed.add(1)
