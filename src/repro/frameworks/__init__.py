"""Application-facing I/O frameworks: a DPDK shim and a verbs/RDMA shim."""

from .dpdk import RX_BURST_MAX, EthDev, Mempool
from .rdma import (
    CompletionQueue,
    QpType,
    QueuePair,
    RdmaEndpoint,
    WorkCompletion,
)

__all__ = [
    "RX_BURST_MAX", "EthDev", "Mempool",
    "CompletionQueue", "QpType", "QueuePair", "RdmaEndpoint",
    "WorkCompletion",
]
