"""Table 3: latency of CEIO's fast and slow paths vs raw RDMA write.

``ib_write_lat``-style ping-pong at 64 B / 1024 B / 4096 B. Paper: CEIO
adds a modest 1.10-1.48x latency overhead (absolute overhead < 10 µs,
negligible vs transport-protocol time constants); the slow path is always
the slowest, with the penalty growing for large packets.
"""

from __future__ import annotations

from ..apps import ib_write_lat
from .report import ExperimentResult

__all__ = ["run"]

SIZES = [64, 1024, 4096]


def run(quick: bool = True) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table3",
        title="Latency (µs) of CEIO fast/slow paths vs raw RDMA write",
        paper_claim=("modest overhead (paper: 1.10-1.48x, <10µs absolute); "
                     "slow path > fast path > raw"),
    )
    result.headers = ["msg_B", "raw_us", "fast_us", "fast_x",
                      "slow_us", "slow_x"]
    iters = 60 if quick else 200
    for size in SIZES:
        raw = ib_write_lat("baseline", size, iters=iters).avg_us
        fast = ib_write_lat("ceio", size, iters=iters).avg_us
        slow = ib_write_lat("ceio", size, iters=iters,
                            force_slow=True).avg_us
        result.rows.append([size, raw, fast, fast / raw, slow, slow / raw])
        result.check_order(
            f"{size}B: slow >= fast >= raw",
            {"slow": slow, "fast": fast, "raw": raw},
            ["slow", "fast", "raw"])
        result.check(
            f"{size}B: absolute overhead stays below 10µs",
            slow - raw < 10.0,
            f"slow-raw = {slow - raw:.2f}µs")
        result.check(
            f"{size}B: fast-path overhead modest (<1.6x)",
            fast / raw < 1.6,
            f"{fast / raw:.2f}x")
    return result
