"""Table 3: latency of CEIO's fast and slow paths vs raw RDMA write.

``ib_write_lat``-style ping-pong at 64 B / 1024 B / 4096 B. Paper: CEIO
adds a modest 1.10-1.48x latency overhead (absolute overhead < 10 µs,
negligible vs transport-protocol time constants); the slow path is always
the slowest, with the penalty growing for large packets.

Sweep decomposition: one point per (mode, message size).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from ..apps import ib_write_lat
from ..runner.sweep import Point, make_point, run_points_serial
from .report import ExperimentResult

__all__ = ["run", "points", "run_point", "collect"]

SIZES = [64, 1024, 4096]
MODES = ["raw", "fast", "slow"]
#: perftest's own default seed — keeps the default table bit-identical.
DEFAULT_SEED = 0
_FN = "repro.experiments.table3:run_point"


def points(quick: bool = True, seed: Optional[int] = None) -> List[Point]:
    pts = []
    for size in SIZES:
        for mode in MODES:
            params = {"mode": mode, "size": size, "quick": quick}
            pts.append(make_point("table3", _FN, params, seed, DEFAULT_SEED,
                                  label=f"{mode}.{size}"))
    return pts


def run_point(params: Mapping[str, Any], seed: int) -> Dict[str, float]:
    iters = 60 if params["quick"] else 200
    arch = "baseline" if params["mode"] == "raw" else "ceio"
    lat = ib_write_lat(arch, params["size"], iters=iters,
                       force_slow=params["mode"] == "slow", seed=seed)
    return {"avg_us": lat.avg_us}


def collect(results: Mapping[str, Any], quick: bool = True,
            seed: Optional[int] = None) -> ExperimentResult:
    result = ExperimentResult(
        exp_id="table3",
        title="Latency (µs) of CEIO fast/slow paths vs raw RDMA write",
        paper_claim=("modest overhead (paper: 1.10-1.48x, <10µs absolute); "
                     "slow path > fast path > raw"),
    )
    result.headers = ["msg_B", "raw_us", "fast_us", "fast_x",
                      "slow_us", "slow_x"]
    for size in SIZES:
        raw = results[f"table3/raw.{size}"]["avg_us"]
        fast = results[f"table3/fast.{size}"]["avg_us"]
        slow = results[f"table3/slow.{size}"]["avg_us"]
        result.rows.append([size, raw, fast, fast / raw, slow, slow / raw])
        result.check_order(
            f"{size}B: slow >= fast >= raw",
            {"slow": slow, "fast": fast, "raw": raw},
            ["slow", "fast", "raw"])
        result.check(
            f"{size}B: absolute overhead stays below 10µs",
            slow - raw < 10.0,
            f"slow-raw = {slow - raw:.2f}µs")
        result.check(
            f"{size}B: fast-path overhead modest (<1.6x)",
            fast / raw < 1.6,
            f"{fast / raw:.2f}x")
    return result


def run(quick: bool = True, seed: Optional[int] = None) -> ExperimentResult:
    return collect(run_points_serial(points(quick, seed)), quick, seed)
